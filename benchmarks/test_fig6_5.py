"""Figure 6-5: effect of the packet-count quota, without screend.

Paper claims reproduced here (§6.6.2):

* small quotas (5/10/20) give stable, near-optimum behaviour;
* "as the quota increases, livelock becomes more of a problem":
  quota=100 degrades under overload, quota=infinity collapses;
* 10-20 packets is a near-optimal setting.
"""

from conftest import BENCH_RATES, TRIAL_KWARGS, run_figure, series_peak, series_tail

from repro.experiments.figures import figure_6_5
from repro.experiments.results import format_table
from repro.metrics import is_livelock_free


def test_figure_6_5(benchmark):
    result = run_figure(
        benchmark, figure_6_5, rates=BENCH_RATES, **TRIAL_KWARGS
    )
    print()
    print(format_table(result))

    q5 = result.series["quota = 5 packets"]
    q10 = result.series["quota = 10 packets"]
    q20 = result.series["quota = 20 packets"]
    q100 = result.series["quota = 100 packets"]
    qinf = result.series["quota = infinity"]

    # Small quotas: stable and near-optimum.
    for series in (q5, q10, q20):
        assert is_livelock_free(series)
        assert series_tail(series) > 0.9 * series_peak(series)

    # Larger quotas reintroduce livelock progressively.
    assert not is_livelock_free(q100)
    assert series_tail(q100) < 0.6 * series_peak(q10)
    assert series_tail(qinf) < 0.1 * series_peak(q10)
    assert series_tail(qinf) <= series_tail(q100)

    # Quotas 10 and 20 are within a few per cent of each other (both
    # "near-optimum" per the paper).
    assert abs(series_peak(q10) - series_peak(q20)) < 0.1 * series_peak(q10)
