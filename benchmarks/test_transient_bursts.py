"""Transient overload from bursty arrivals (§9) — extension benchmark.

"Such pathologies may be caused not only by long-term receive overload,
but also by transient overload from short-term bursty arrivals."

Measured: loss at a *mean* rate below the MLFRR, delivered in wire-speed
bursts. The burst arrives faster than the classic kernel's ipintrq
drains, so packets are lost (and device-level work wasted) even though
the long-run average is sustainable. The modified kernel absorbs the
same bursts: the polling thread drains the ring to completion and the
only buffering is the interface's.
"""

from conftest import TRIAL_KWARGS

from repro.core import variants
from repro.experiments.harness import run_trial

MEAN_RATE = 3_500  # well below both kernels' ~4,700+ capacity
BURST = 64  # wire-speed burst: exceeds ipintrq (50) but not service+ring


def run_pair():
    rows = {}
    for label, config in (
        ("unmodified", variants.unmodified()),
        ("polling q=10", variants.polling(quota=10)),
    ):
        trial = run_trial(
            config, MEAN_RATE, workload="bursty", burst_size=BURST,
            **TRIAL_KWARGS,
        )
        rows[label] = trial
    return rows


def test_transient_burst_overload(benchmark):
    rows = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    print()
    for label, trial in rows.items():
        print(
            "%-14s out=%7.0f loss=%5.1f%% drops=%s"
            % (
                label,
                trial.output_rate_pps,
                100 * trial.loss_fraction,
                trial.drops,
            )
        )
    benchmark.extra_info["loss"] = {
        label: trial.loss_fraction for label, trial in rows.items()
    }

    unmod = rows["unmodified"]
    polled = rows["polling q=10"]

    # The mean rate is sustainable; steady traffic would be loss-free.
    # Bursts still cost the classic kernel real loss...
    assert unmod.loss_fraction > 0.05
    # ...specifically late loss at ipintrq (wasted device work).
    assert unmod.counters.get("queue.ipintrq.dropped", 0) > 50
    # The modified kernel absorbs the same bursts without dropping a
    # single packet anywhere ("letting the receiving interface buffer
    # bursts"): its apparent loss_fraction is only end-of-window ring
    # backlog, so check the drop counters themselves.
    assert not polled.drops
    assert polled.output_rate_pps > unmod.output_rate_pps
