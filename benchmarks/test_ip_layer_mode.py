"""IP layer as software interrupt (4.2BSD) vs kernel thread (Digital
UNIX) — ablation.

§6.3: "Digital UNIX follows a similar model, with the IP layer running
as a separately scheduled thread at IPL = 0, instead of as a software
interrupt handler." Both placements put IP processing *below* device
IPL, so both exhibit the same receive livelock; the softirq variant has
slightly less dispatch overhead, the thread variant pays context
switches. This benchmark verifies the paper's implicit claim that the
pathology is structural, not an artifact of one implementation choice.
"""

from conftest import BENCH_RATES, TRIAL_KWARGS

from repro.core import variants
from repro.experiments.harness import run_sweep, sweep_series
from repro.kernel.config import IP_LAYER_SOFTIRQ, IP_LAYER_THREAD
from repro.metrics import estimate_mlfrr, is_livelock_free, peak_rate


def run_both():
    series = {}
    for mode in (IP_LAYER_SOFTIRQ, IP_LAYER_THREAD):
        config = variants.unmodified(ip_layer_mode=mode)
        series[mode] = sweep_series(
            run_sweep(config, BENCH_RATES, **TRIAL_KWARGS)
        )
    return series


def test_ip_layer_mode(benchmark):
    series = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print()
    for mode, points in series.items():
        print("%-8s peak=%7.0f  MLFRR=%7.0f" % (
            mode, peak_rate(points)[1], estimate_mlfrr(points)))
    benchmark.extra_info["series"] = {
        mode: [[float(x), float(y)] for x, y in pts]
        for mode, pts in series.items()
    }

    softirq = series[IP_LAYER_SOFTIRQ]
    thread = series[IP_LAYER_THREAD]

    # Both livelock-prone: output falls well below peak under overload.
    for points in (softirq, thread):
        assert not is_livelock_free(points)
        _, peak = peak_rate(points)
        tail = max(points)[1]
        assert tail < 0.6 * peak

    # Their capacities are close (same structure, different plumbing).
    mlfrr_s = estimate_mlfrr(softirq)
    mlfrr_t = estimate_mlfrr(thread)
    assert abs(mlfrr_s - mlfrr_t) <= 1_500, (mlfrr_s, mlfrr_t)
