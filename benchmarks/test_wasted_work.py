"""Early drop vs late drop: wasted-work accounting (§5.1, §6.4) — ablation.

"Once the system has invested enough work in an incoming packet ... it
makes more sense to process that packet to completion than to drop it";
conversely, packets that must be dropped should be dropped "as early as
possible (i.e., in the receiving interface), so that discarded packets
do not waste any resources."

Measured at identical overload: where each kernel drops packets, and
how many CPU microseconds each kernel sinks into packets it later drops.
"""

from conftest import TRIAL_KWARGS

from repro.core import variants
from repro.experiments.harness import run_trial
from repro.kernel.costs import DEFAULT_COSTS

OVERLOAD = 12_000


def wasted_us(trial):
    """CPU microseconds invested in packets that were later dropped."""
    costs = DEFAULT_COSTS
    # Drops at ipintrq wasted the device-level receive work.
    ipintrq = trial.counters.get("queue.ipintrq.dropped", 0)
    wasted = ipintrq * costs.us(costs.rx_device_per_packet)
    # Drops at the output queue wasted the whole input + forwarding path.
    for name, value in trial.counters.items():
        if name.endswith("ifqueue.dropped"):
            per_packet = costs.us(
                costs.polled_rx_per_packet + costs.ip_forward
            )
            wasted += value * per_packet
    # Drops at the RX ring wasted nothing (the wire delivered them free).
    return wasted


def run_three():
    return {
        "unmodified": run_trial(variants.unmodified(), OVERLOAD, **TRIAL_KWARGS),
        "polling quota=10": run_trial(
            variants.polling(quota=10), OVERLOAD, **TRIAL_KWARGS
        ),
        "polling no quota": run_trial(
            variants.polling(quota=None), OVERLOAD, **TRIAL_KWARGS
        ),
    }


def test_wasted_work(benchmark):
    trials = benchmark.pedantic(run_three, rounds=1, iterations=1)
    print()
    waste = {}
    for label, trial in trials.items():
        waste[label] = wasted_us(trial)
        print(
            "%-18s out=%7.0f  wasted CPU: %8.0f us  drops: %s"
            % (label, trial.output_rate_pps, waste[label], trial.drops)
        )
    benchmark.extra_info["wasted_us"] = waste

    # The healthy polling kernel wastes essentially nothing: all its
    # drops happen in the receiving interface, before any CPU is spent.
    assert waste["polling quota=10"] == 0
    ring_drops = trials["polling quota=10"].counters.get(
        "nic.in0.rx_overflow_drops", 0
    )
    assert ring_drops > 1_000

    # The unmodified kernel wastes device-level work on every ipintrq drop.
    assert waste["unmodified"] > 50_000  # > 50 ms of CPU per measured window

    # The no-quota kernel wastes the *entire* forwarding path per drop —
    # the most expensive possible failure.
    assert waste["polling no quota"] > waste["unmodified"]
