"""End-system (server) goodput under receive overload — extension bench.

The paper's §2 motivation includes NFS-style servers; §3 defines useful
throughput as delivery to the *ultimate consumer* — for an end-system,
the application. This benchmark measures requests completed by a
user-mode server under a flood for four kernels:

* unmodified            — application starves (classic livelock);
* polling alone         — application still starves (§7: the polling
  mechanisms are indifferent to other activities);
* polling + cycle limit — goodput restored (§7);
* polling + socket-queue feedback — goodput restored by applying §6.6.1
  feedback "to other queues in the system" (the socket queue).
"""

from conftest import TRIAL_KWARGS

from repro.core import variants
from repro.experiments.endhost import EndHost, HOST_ADDR, SERVICE_PORT
from repro.sim.units import seconds
from repro.workloads.generators import ConstantRateGenerator

FLOOD = 10_000


def goodput(config, **host_kwargs):
    host = EndHost(config, **host_kwargs).start()
    ConstantRateGenerator(
        host.sim, host.nic, FLOOD, dst=HOST_ADDR, dst_port=SERVICE_PORT
    ).start()
    host.run_for(seconds(TRIAL_KWARGS["warmup_s"]))
    before = host.requests_served
    host.run_for(seconds(TRIAL_KWARGS["duration_s"]))
    return (host.requests_served - before) / TRIAL_KWARGS["duration_s"]


def run_matrix():
    return {
        "unmodified": goodput(variants.unmodified()),
        "polling": goodput(variants.polling(quota=10)),
        "polling + cycle limit 50%": goodput(
            variants.polling(quota=10, cycle_limit=0.5)
        ),
        "polling + socket feedback": goodput(
            variants.polling(quota=10), socket_feedback=True
        ),
    }


def test_server_goodput_under_flood(benchmark):
    rows = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    print()
    for label, value in rows.items():
        print("%-28s %8.0f req/s" % (label, value))
    benchmark.extra_info["goodput"] = rows

    assert rows["unmodified"] < 100
    assert rows["polling"] < 100
    assert rows["polling + cycle limit 50%"] > 2_500
    assert rows["polling + socket feedback"] > 2_500
    # Socket feedback needs no tuning fraction and slightly beats the
    # cycle limit here (it inhibits input exactly when the app backlog
    # is the bottleneck).
    assert rows["polling + socket feedback"] >= 0.9 * rows[
        "polling + cycle limit 50%"
    ]
