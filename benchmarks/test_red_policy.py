"""Drop-policy ablation: drop-tail vs RED on the output queue (§8).

"The policy was and remains 'drop-tail'; other policies might provide
better results [3]." This bench checks what RED does and does not buy
in the livelock setting:

* it does NOT change livelock behaviour — the paper's mechanisms govern
  *when* drops happen (early vs late), not *which* packet is chosen, and
  the collapse dynamics are identical under both policies;
* it DOES keep the standing output queue shorter in the one
  configuration that builds one (large quota under overload).
"""

from conftest import TRIAL_KWARGS

from repro.core import variants
from repro.experiments.harness import run_trial
from repro.experiments.topology import Router

OVERLOAD = 8_000


def run_pair():
    rows = {}
    for policy in ("droptail", "red"):
        config = variants.polling(quota=100).with_options(
            output_queue_policy=policy
        )
        router = Router(config)
        trial = run_trial(config, OVERLOAD, router=router, **TRIAL_KWARGS)
        rows[policy] = {
            "output": trial.output_rate_pps,
            "ifqueue_max_depth": router.driver_out.ifqueue.max_depth,
            "ifqueue_drops": router.driver_out.ifqueue.drop_count,
        }
    return rows


def test_red_vs_droptail(benchmark):
    rows = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    print()
    for policy, row in rows.items():
        print(
            "%-9s out=%7.0f  max ifqueue depth=%3d  drops=%d"
            % (policy, row["output"], row["ifqueue_max_depth"], row["ifqueue_drops"])
        )
    benchmark.extra_info["rows"] = rows

    droptail, red = rows["droptail"], rows["red"]
    # Same story at the throughput level (within 30%): drop policy does
    # not rescue a quota-100 kernel from its output-queue pathology.
    assert abs(red["output"] - droptail["output"]) < 0.3 * max(
        droptail["output"], 1
    )
    # But RED kept the standing queue visibly shorter than the hard
    # limit the drop-tail queue slams into.
    assert droptail["ifqueue_max_depth"] == 50
    assert red["ifqueue_max_depth"] < 50
