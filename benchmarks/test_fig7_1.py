"""Figure 7-1: user-mode CPU time under the cycle-limit mechanism.

Paper claims reproduced here (§7):

* with no input load the compute-bound user process gets ~94% of the CPU;
* with no effective limit (threshold 100%) the user process makes no
  measurable progress under overload — while the router keeps forwarding;
* lower thresholds reserve CPU for the user process, with "fairly stable
  behaviour as the input rate increases";
* "the user process does not get as much CPU time as the threshold
  setting would imply";
* the 50%/75% curves show initial dips (interrupt cycles below the
  batching threshold are not counted against the limit).
"""

from conftest import TRIAL_KWARGS, run_figure

from repro.experiments.figures import figure_7_1
from repro.experiments.results import format_table

RATES = (0, 1_000, 2_000, 4_000, 6_000, 8_000, 10_000)


def _share_at(series, rate):
    lookup = dict(series)
    key = min(lookup, key=lambda x: abs(x - rate))
    return lookup[key]


def test_figure_7_1(benchmark):
    result = run_figure(
        benchmark, figure_7_1, rates=RATES, **TRIAL_KWARGS
    )
    print()
    print(format_table(result))

    t25 = result.series["threshold 25 %"]
    t50 = result.series["threshold 50 %"]
    t75 = result.series["threshold 75 %"]
    t100 = result.series["threshold 100 %"]

    # ~94% available at zero load (system overhead only).
    for series in (t25, t50, t75, t100):
        zero_load = _share_at(series, 0)
        assert 90.0 <= zero_load <= 98.0, zero_load

    # No limit => user starvation under overload.
    assert _share_at(t100, 8_000) < 5.0

    # Thresholds order the user share monotonically under overload.
    assert _share_at(t25, 8_000) > _share_at(t50, 8_000) > _share_at(t75, 8_000)

    # The user gets less than the threshold implies (§7's discrepancy)...
    assert _share_at(t25, 8_000) < 75.0
    assert _share_at(t50, 8_000) < 50.0
    # ...but the mechanism really does reserve a substantial share.
    assert _share_at(t25, 8_000) > 50.0
    assert _share_at(t50, 8_000) > 25.0

    # Stability: share at 6k vs 10k input changes little once saturated.
    for series in (t25, t50, t75):
        assert abs(_share_at(series, 6_000) - _share_at(series, 10_000)) < 8.0

    # Initial dip on the 75% curve: share at low rate exceeds the
    # saturated value (uncounted interrupt dispatch cycles).
    assert _share_at(t75, 1_000) > _share_at(t75, 8_000)
