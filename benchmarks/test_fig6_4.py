"""Figure 6-4: modified kernel with screend.

Paper claims reproduced here (§6.6.1):

* the modified kernel *without* queue-state feedback performs about as
  badly as the unmodified kernel (the screening queue overflows; screend
  never runs);
* with feedback from the screening queue there is no livelock and
  throughput holds at its peak across the whole overload range.
"""

from conftest import BENCH_RATES, TRIAL_KWARGS, run_figure, series_peak, series_tail

from repro.experiments.figures import figure_6_4
from repro.experiments.results import format_table
from repro.metrics import is_livelock_free, livelock_onset


def test_figure_6_4(benchmark):
    result = run_figure(
        benchmark, figure_6_4, rates=BENCH_RATES, **TRIAL_KWARGS
    )
    print()
    print(format_table(result))

    unmodified = result.series["Unmodified"]
    no_feedback = result.series["Polling, no feedback"]
    feedback = result.series["Polling w/feedback"]

    # Unmodified and no-feedback both livelock under heavy overload.
    assert livelock_onset(unmodified) is not None
    assert livelock_onset(no_feedback) is not None
    assert series_tail(no_feedback) < 100
    assert series_tail(unmodified) < 100

    # Feedback: no livelock, flat at its peak.
    assert is_livelock_free(feedback)
    fb_peak = series_peak(feedback)
    assert series_tail(feedback) > 0.9 * fb_peak
    # Throughput comparable to the best the unmodified kernel ever does,
    # sustained at *every* overload point.
    assert fb_peak > 0.85 * series_peak(unmodified)
    worst_overload = min(y for x, y in feedback if x >= 4_000)
    assert worst_overload > 0.8 * fb_peak
