"""§5.3's two anti-preemption approaches — ablation benchmark.

"do (almost) everything at high IPL, or do (almost) nothing at high
IPL." Both eliminate in-kernel livelock; the difference is what happens
to everything *below* the network code. The high-IPL kernel masks user
processes (and needs separate rate control); the polling-thread kernel
runs at IPL 0 where the cycle limit can arbitrate.
"""

from conftest import TRIAL_KWARGS

from repro.core import variants
from repro.experiments.harness import run_trial

OVERLOAD = 12_000


def run_matrix():
    rows = {}
    for label, config in (
        ("high-IPL q=10", variants.high_ipl(quota=10)),
        ("polling q=10", variants.polling(quota=10)),
        ("polling + limit 50%", variants.polling(quota=10, cycle_limit=0.5)),
    ):
        trial = run_trial(
            config, OVERLOAD, with_compute=True, **TRIAL_KWARGS
        )
        rows[label] = (trial.output_rate_pps, trial.user_cpu_share)
    return rows


def test_high_ipl_vs_polling_thread(benchmark):
    rows = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    print()
    for label, (output, share) in rows.items():
        print("%-22s out=%7.0f pkt/s  user=%5.1f%%" % (label, output, 100 * share))
    benchmark.extra_info["matrix"] = {
        k: [v[0], v[1]] for k, v in rows.items()
    }

    high_out, high_share = rows["high-IPL q=10"]
    poll_out, poll_share = rows["polling q=10"]
    lim_out, lim_share = rows["polling + limit 50%"]

    # Both approaches forward at capacity under overload (no livelock).
    assert high_out > 4_000
    assert poll_out > 4_000
    assert abs(high_out - poll_out) < 0.15 * poll_out

    # High IPL starves user code, as does unlimited polling...
    assert high_share < 0.02
    assert poll_share < 0.02
    # ...and only the cycle limit restores user progress (at a
    # forwarding cost), which is why the paper's final design pairs the
    # IPL-0 polling thread with the §7 mechanism.
    assert lim_share > 0.25
    assert lim_out > 1_500
