"""Cost-model scaling sanity — extension benchmark.

The paper sizes its testbed deliberately: "We chose the slowest
available Alpha host, to make the livelock problem more evident," and
notes that "inefficient code tends to exacerbate receive livelock, by
lowering the MLFRR." This benchmark verifies the cost model behaves
coherently when scaled: a 2x-faster kernel path roughly doubles the
MLFRR and pushes the screend livelock point out proportionally, while
the livelock *shape* persists at every speed.
"""

from conftest import TRIAL_KWARGS

from repro.core import variants
from repro.experiments.harness import run_sweep, sweep_series
from repro.kernel.costs import DEFAULT_COSTS
from repro.metrics import estimate_mlfrr, peak_rate

RATES = (1_000, 2_000, 3_000, 4_000, 5_000, 6_000, 8_000, 10_000, 12_000)


def run_scaling():
    rows = {}
    for factor in (1.0, 0.5, 2.0):
        costs = DEFAULT_COSTS.scaled(factor)
        series = sweep_series(
            run_sweep(variants.unmodified(costs=costs), RATES, **TRIAL_KWARGS)
        )
        rows[factor] = series
    return rows


def test_mlfrr_scales_with_cpu_speed(benchmark):
    rows = benchmark.pedantic(run_scaling, rounds=1, iterations=1)
    print()
    peaks = {}
    for factor, series in sorted(rows.items()):
        peaks[factor] = peak_rate(series)[1]
        print(
            "cost x%.1f  peak=%7.0f  MLFRR=%7.0f"
            % (factor, peaks[factor], estimate_mlfrr(series))
        )
    benchmark.extra_info["peaks"] = {str(k): v for k, v in peaks.items()}

    # Halving per-packet costs (a 2x-faster kernel) raises the peak
    # substantially; doubling costs lowers it.
    assert peaks[0.5] > 1.5 * peaks[1.0]
    assert peaks[2.0] < 0.7 * peaks[1.0]

    # The slow kernel livelocks hardest within the measured range —
    # the paper's "more evident" rationale.
    slow_tail = max(rows[2.0])[1]
    fast_tail = max(rows[0.5])[1]
    assert slow_tail / peaks[2.0] < fast_tail / max(peaks[0.5], 1)
