"""Figure 6-6: effect of the packet-count quota, with screend.

Paper claims reproduced here (§6.6.2):

* with queue-state feedback active, *every* quota — even infinity — is
  protected from livelock (the screening queue bounds input work);
* small quotas cost a few per cent of peak throughput (polling overhead
  amortised over fewer packets);
* "tests both with and without screend suggest that a quota of between
  10 and 20 packets yields stable and near-optimum behaviour".
"""

from conftest import BENCH_RATES, TRIAL_KWARGS, run_figure, series_peak, series_tail

from repro.experiments.figures import figure_6_6
from repro.experiments.results import format_table
from repro.metrics import is_livelock_free


def test_figure_6_6(benchmark):
    result = run_figure(
        benchmark, figure_6_6, rates=BENCH_RATES, **TRIAL_KWARGS
    )
    print()
    print(format_table(result))

    q5 = result.series["quota = 5 packets"]
    q10 = result.series["quota = 10 packets"]
    q20 = result.series["quota = 20 packets"]
    q100 = result.series["quota = 100 packets"]
    qinf = result.series["quota = infinity"]

    # Feedback protects every quota setting from livelock.
    for series in (q5, q10, q20, q100, qinf):
        assert is_livelock_free(series)
        assert series_tail(series) > 0.85 * series_peak(series)

    # Small quota may shave a little off the peak, but only a little.
    assert series_peak(q5) >= 0.9 * series_peak(qinf)
    assert series_peak(q5) <= series_peak(qinf) * 1.02

    # All quotas land in the same band (feedback dominates behaviour).
    peaks = [series_peak(s) for s in (q5, q10, q20, q100, qinf)]
    assert max(peaks) - min(peaks) < 0.15 * max(peaks)
