"""Performance benchmarks for the sweep engine and the simulator core.

Asserts the PR's perf floors where the hardware allows it:

* the fused ``Simulator.run`` drain is >= 1.15x the pre-PR loop
  (events/sec on the raw scheduler);
* a warm result cache replays a figure 6-1 sweep >= 10x faster than the
  cold run;
* with >= 4 cores, ``jobs=4`` runs the sweep >= 2x faster than serial
  (skipped on smaller runners — process fan-out cannot beat serial on a
  single core).

``scripts/bench_simcore.py`` records the same measurements to
``BENCH_simcore.json`` for cross-PR tracking.
"""

import os
import sys
import tempfile
import time
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "scripts"))

from bench_simcore import bench_event_loop, bench_fig61_sweep  # noqa: E402

from repro.experiments.figures import figure_6_1  # noqa: E402

SWEEP_KWARGS = dict(rates=(1_000, 5_000, 12_000), duration_s=0.1, warmup_s=0.05)


def test_fused_run_loop_beats_pre_pr_loop():
    result = bench_event_loop(total_events=400_000)
    assert result["fused_vs_legacy_speedup"] >= 1.15, result


def test_warm_cache_at_least_10x_faster_than_cold():
    with tempfile.TemporaryDirectory() as cache_dir:
        start = time.perf_counter()
        cold = figure_6_1(cache=True, cache_dir=cache_dir, **SWEEP_KWARGS)
        cold_elapsed = time.perf_counter() - start
        start = time.perf_counter()
        warm = figure_6_1(cache=True, cache_dir=cache_dir, **SWEEP_KWARGS)
        warm_elapsed = time.perf_counter() - start
    assert warm.series == cold.series
    assert cold_elapsed >= 10 * warm_elapsed, (cold_elapsed, warm_elapsed)


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="parallel speedup floor requires a >= 4-core runner",
)
def test_parallel_sweep_at_least_2x_faster_on_4_cores():
    result = bench_fig61_sweep(jobs=4, smoke=False)
    assert result["parallel_speedup"] >= 2.0, result


def test_parallel_and_cached_sweeps_match_serial_exactly():
    serial = figure_6_1(**SWEEP_KWARGS)
    parallel = figure_6_1(jobs=2, **SWEEP_KWARGS)
    with tempfile.TemporaryDirectory() as cache_dir:
        cached = figure_6_1(cache=True, cache_dir=cache_dir, **SWEEP_KWARGS)
        warm = figure_6_1(cache=True, cache_dir=cache_dir, **SWEEP_KWARGS)
    assert serial.series == parallel.series == cached.series == warm.series
