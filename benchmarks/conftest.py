"""Shared benchmark configuration.

Each benchmark regenerates one figure (or ablation) of the paper,
asserts the *shape* the paper reports — who wins, where curves collapse,
where crossovers fall — and records the measured series in the
pytest-benchmark ``extra_info`` so that saved benchmark JSON doubles as
the reproduction record.

The simulation is deterministic, so every benchmark runs its workload
exactly once (``pedantic`` with one round); the benchmark timing then
reports the wall-clock cost of regenerating that figure.
"""

from __future__ import annotations

#: Trial timing used by all benchmarks: long enough for steady state,
#: short enough that the full suite regenerates every figure in minutes.
TRIAL_KWARGS = dict(duration_s=0.3, warmup_s=0.1)

#: Rate grid for the throughput figures (pkt/s).
BENCH_RATES = (1_000, 2_000, 3_000, 4_000, 5_000, 6_000, 8_000, 10_000, 12_000)


def run_figure(benchmark, figure_fn, **kwargs):
    """Run ``figure_fn`` once under the benchmark and attach its series."""
    result = benchmark.pedantic(
        lambda: figure_fn(**kwargs), rounds=1, iterations=1
    )
    benchmark.extra_info["figure"] = result.figure_id
    benchmark.extra_info["series"] = {
        label: [[float(x), float(y)] for x, y in points]
        for label, points in result.series.items()
    }
    return result


def series_peak(points):
    return max(y for _, y in points)


def series_tail(points):
    """Output at the highest measured input rate."""
    return max(points)[1]
