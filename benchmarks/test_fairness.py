"""Round-robin fairness across interfaces (§5.2, §6.4) — ablation.

"The polling thread passes the callback procedures a quota ... This
allows the thread to round-robin between multiple interfaces ... to
prevent a single input stream from monopolizing the CPU."

Setup: both of the router's Ethernets carry inbound overload
simultaneously (in0 -> out0 and out0 -> in0). With quota-based
round-robin, the two flows share the forwarding capacity about equally;
with no quota, whichever callback runs first hogs the thread.
"""

from conftest import TRIAL_KWARGS

from repro.core import variants
from repro.experiments.topology import DEST_HOST, Router, SOURCE_HOST
from repro.sim.units import seconds
from repro.workloads.generators import ConstantRateGenerator

RATE_EACH = 8_000  # per direction; total far above capacity


def run_bidirectional(quota):
    config = variants.polling(quota=quota)
    router = Router(config).start()
    ConstantRateGenerator(
        router.sim, router.nic_in, RATE_EACH, dst=DEST_HOST, flow="a->b"
    ).start()
    ConstantRateGenerator(
        router.sim, router.nic_out, RATE_EACH, dst=SOURCE_HOST, flow="b->a"
    ).start()
    router.run_for(seconds(TRIAL_KWARGS["warmup_s"]))
    out_fwd_before = router.nic_out.tx_completed.snapshot()
    out_rev_before = router.nic_in.tx_completed.snapshot()
    router.run_for(seconds(TRIAL_KWARGS["duration_s"]))
    forward = router.nic_out.tx_completed.snapshot() - out_fwd_before
    reverse = router.nic_in.tx_completed.snapshot() - out_rev_before
    return forward, reverse


def test_flooded_interface_cannot_starve_others(benchmark):
    """Three input interfaces, one flooding: §5.2's fairness claim in
    its sharpest form. The classic kernel silences the light flows; the
    polled kernel serves them in full."""
    from repro.core.quota import PollQuota
    from repro.experiments.multitopology import (
        MultiInputRouter,
        input_source_address,
    )

    def flow_rates(config, quota=None):
        router = MultiInputRouter(config, input_count=3, quota=quota).start()
        for index, rate in enumerate((12_000, 800, 800)):
            ConstantRateGenerator(
                router.sim,
                router.input_nics[index],
                rate,
                src=input_source_address(index),
                dst="10.2.0.2",
                flow="flow%d" % index,
                name="gen%d" % index,
            ).start()
        router.run_for(seconds(TRIAL_KWARGS["warmup_s"]))
        before = dict(router.delivered_by_flow())
        router.run_for(seconds(TRIAL_KWARGS["duration_s"]))
        after = router.delivered_by_flow()
        duration = TRIAL_KWARGS["duration_s"]
        return {
            flow: (after.get(flow, 0) - before.get(flow, 0)) / duration
            for flow in ("flow0", "flow1", "flow2")
        }

    def run_both():
        classic = flow_rates(variants.unmodified())
        polled = flow_rates(
            variants.polling(quota=10), quota=PollQuota(rx=10, tx=None)
        )
        return classic, polled

    classic, polled = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print()
    print("classic: %s" % classic)
    print("polled:  %s" % polled)
    benchmark.extra_info["classic"] = classic
    benchmark.extra_info["polled"] = polled
    assert classic["flow1"] + classic["flow2"] < 100  # starved
    assert polled["flow1"] > 650 and polled["flow2"] > 650  # served


def test_round_robin_fairness(benchmark):
    forward, reverse = benchmark.pedantic(
        lambda: run_bidirectional(10), rounds=1, iterations=1
    )
    print()
    print("quota=10: forward=%d reverse=%d" % (forward, reverse))
    benchmark.extra_info["forward"] = forward
    benchmark.extra_info["reverse"] = reverse

    total = forward + reverse
    assert total > 0
    # Both directions make real progress and share within 65/35.
    assert min(forward, reverse) > 0.35 * total

    # Without a quota, service becomes grossly unfair (and/or collapses).
    forward_nq, reverse_nq = run_bidirectional(None)
    print("no quota: forward=%d reverse=%d" % (forward_nq, reverse_nq))
    total_nq = forward_nq + reverse_nq
    assert total > 1.5 * total_nq or (
        total_nq > 0 and min(forward_nq, reverse_nq) < 0.2 * total_nq
    )
