"""Clocked interrupts vs hybrid polling (§8 related work) — ablation.

Traw & Smith's periodic polling: "it is hard to choose the proper
polling frequency: too high, and the system spends all its time polling;
too low, and the receive latency soars." The paper's hybrid — interrupts
only initiate polling — needs no such tuning.

Measured: low-load latency and overload throughput for three poll
periods and for the hybrid design.
"""

from conftest import TRIAL_KWARGS

from repro.core import variants
from repro.experiments.harness import run_trial
from repro.sim.units import NS_PER_MS

LOW_RATE = 500
OVERLOAD = 12_000
PERIODS_MS = (0.25, 1.0, 4.0)


def run_matrix():
    rows = {}
    for period_ms in PERIODS_MS:
        config = variants.clocked(poll_interval_ns=int(period_ms * NS_PER_MS))
        low = run_trial(config, LOW_RATE, **TRIAL_KWARGS)
        high = run_trial(config, OVERLOAD, **TRIAL_KWARGS)
        rows["clocked %.2fms" % period_ms] = (
            low.latency_us["median"],
            high.output_rate_pps,
        )
    hybrid_low = run_trial(variants.polling(quota=10), LOW_RATE, **TRIAL_KWARGS)
    hybrid_high = run_trial(variants.polling(quota=10), OVERLOAD, **TRIAL_KWARGS)
    rows["hybrid"] = (hybrid_low.latency_us["median"], hybrid_high.output_rate_pps)
    return rows


def test_clocked_interrupts(benchmark):
    rows = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    print()
    for label, (latency, throughput) in rows.items():
        print("%-16s latency %8.0f us   overload output %7.0f pkt/s"
              % (label, latency, throughput))
    benchmark.extra_info["matrix"] = rows

    lat_fast, thr_fast = rows["clocked 0.25ms"]
    lat_slow, thr_slow = rows["clocked 4.00ms"]
    lat_hybrid, thr_hybrid = rows["hybrid"]

    # The dilemma: longer periods add latency...
    assert lat_slow > lat_fast + 1_000
    # (a ~4ms period means ~2ms average wait just to be noticed)
    assert lat_slow > 1_500

    # The hybrid gets the best of both regimes: interrupt-grade latency
    # at low load, polling-grade throughput under overload.
    assert lat_hybrid < lat_fast
    assert thr_hybrid >= 0.95 * max(thr_fast, thr_slow)
