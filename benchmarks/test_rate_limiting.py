"""§5.1 interrupt-rate limiting — ablation benchmark.

"When the system is about to drop a received packet because an internal
queue is full, this strongly suggests that it should disable input
interrupts ... Interrupts may be re-enabled when internal buffer space
becomes available."

This is the cheapest of the paper's fixes: the classic kernel with one
feedback wire from ipintrq to the device interrupt-enable flags.
Compared here against the unmodified kernel and the full polling design
across the overload range.
"""

from conftest import TRIAL_KWARGS

from repro.core import variants
from repro.experiments.harness import run_trial

RATES = (4_000, 8_000, 12_000)


def run_matrix():
    rows = {}
    for label, config in (
        ("unmodified", variants.unmodified()),
        ("rate-limited", variants.unmodified(input_feedback=True)),
        ("polling q=10", variants.polling(quota=10)),
    ):
        rows[label] = [
            run_trial(config, rate, **TRIAL_KWARGS).output_rate_pps
            for rate in RATES
        ]
    return rows


def test_interrupt_rate_limiting(benchmark):
    rows = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    print()
    for label, outputs in rows.items():
        print("%-14s " % label + "  ".join("%7.0f" % o for o in outputs))
    benchmark.extra_info["rates"] = list(RATES)
    benchmark.extra_info["outputs"] = rows

    unmod = rows["unmodified"]
    limited = rows["rate-limited"]
    polled = rows["polling q=10"]

    # Rate limiting rescues overload throughput almost completely...
    assert limited[-1] > 2.0 * unmod[-1]
    assert min(limited) > 0.8 * max(limited)  # near-flat
    # ...but the full design is at least as good at every point.
    for a, b in zip(limited, polled):
        assert b >= 0.95 * a
