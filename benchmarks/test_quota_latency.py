"""Quota vs worst-case latency (§6.6.2) — ablation benchmark.

"processing more packets per callback [amortises] the cost of polling
more effectively, but increasing the quota could also increase
worst-case per-packet latency."

Measured: p99 router residence latency under bursty traffic at a rate
below the MLFRR, across quota settings. A large quota lets one
interface's input callback hold the polling thread while packets for
the output callback (and later arrivals) wait.
"""

from conftest import TRIAL_KWARGS

from repro.core import variants
from repro.experiments.harness import run_trial

RATE = 3_500  # below MLFRR: no drops, latency is the story
QUOTAS = (5, 20, 100)


def run_latency_sweep():
    stats = {}
    for quota in QUOTAS:
        trial = run_trial(
            variants.polling(quota=quota),
            RATE,
            workload="bursty",
            burst_size=32,
            **TRIAL_KWARGS,
        )
        stats[quota] = trial.latency_us
    return stats


def test_quota_vs_per_packet_latency(benchmark):
    stats = benchmark.pedantic(run_latency_sweep, rounds=1, iterations=1)
    print()
    for quota, latency in stats.items():
        print(
            "quota=%4d  mean %7.0f us  min %7.0f us  p99 %7.0f us"
            % (quota, latency["mean"], latency["min"], latency["p99"])
        )
    benchmark.extra_info["latency_us"] = stats

    # Mean per-packet latency grows monotonically with the quota: with a
    # small quota the thread alternates input and output service inside
    # a burst, so early packets leave while later ones are still being
    # received; with a big quota the whole burst is input-processed
    # before the first transmit descriptor is refilled.
    assert stats[5]["mean"] < stats[20]["mean"] < stats[100]["mean"]
    assert stats[100]["mean"] > 1.3 * stats[5]["mean"]
    # The luckiest packet is much luckier under a small quota too.
    assert stats[5]["min"] < 0.5 * stats[100]["min"]
    # The *worst* packet (the burst's tail) pays the burst's own
    # serialisation either way — p99 differs far less than the mean.
    assert stats[100]["p99"] < 1.5 * stats[5]["p99"]
