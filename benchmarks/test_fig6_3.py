"""Figure 6-3: modified kernel without screend.

Paper claims reproduced here (§6.5, §6.6):

* polling with a quota slightly improves the MLFRR over the unmodified
  kernel and holds throughput flat under overload (no livelock);
* polling with *no* quota drops almost to zero above the MLFRR —
  packets pile up at the output interface queue (transmit starvation);
* the modified kernel configured to act as unmodified performs slightly
  worse than the true unmodified kernel.
"""

from conftest import BENCH_RATES, TRIAL_KWARGS, run_figure, series_peak, series_tail

from repro.experiments.figures import figure_6_3
from repro.experiments.results import format_table
from repro.metrics import estimate_mlfrr, is_livelock_free


def test_figure_6_3(benchmark):
    result = run_figure(
        benchmark, figure_6_3, rates=BENCH_RATES, **TRIAL_KWARGS
    )
    print()
    print(format_table(result))

    unmodified = result.series["Unmodified"]
    no_polling = result.series["No polling"]
    quota5 = result.series["Polling (quota = 5)"]
    no_quota = result.series["Polling (no quota)"]

    # Quota=5 polling: livelock-free, flat under overload.
    assert is_livelock_free(quota5)
    peak5 = series_peak(quota5)
    assert series_tail(quota5) > 0.9 * peak5

    # ...and it (slightly) improves on the unmodified kernel's peak.
    unmod_peak = series_peak(unmodified)
    assert peak5 > unmod_peak
    assert peak5 < 1.35 * unmod_peak  # "slightly", not magically

    # No quota: collapses under overload (worse than even unmodified).
    assert series_tail(no_quota) < 0.1 * peak5
    assert series_tail(no_quota) < series_tail(unmodified)

    # Compat mode tracks the unmodified kernel but slightly worse.
    assert abs(estimate_mlfrr(no_polling) - estimate_mlfrr(unmodified)) <= 1_500
    assert series_peak(no_polling) <= series_peak(unmodified) * 1.05
