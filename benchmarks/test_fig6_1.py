"""Figure 6-1: forwarding performance of the unmodified kernel.

Paper claims reproduced here (§6.2):

* without screend the router peaks around 4,700 pkt/s and output then
  *decreases* with increasing offered load (livelock-prone);
* with screend, overload behaviour is poor above ~2,000 pkt/s and
  complete livelock sets in at about 6,000 pkt/s.
"""

from conftest import BENCH_RATES, TRIAL_KWARGS, run_figure, series_peak, series_tail

from repro.experiments.figures import figure_6_1
from repro.experiments.results import format_table
from repro.metrics import estimate_mlfrr, livelock_onset


def test_figure_6_1(benchmark):
    result = run_figure(
        benchmark, figure_6_1, rates=BENCH_RATES, **TRIAL_KWARGS
    )
    print()
    print(format_table(result))

    no_screend = result.series["Without screend"]
    with_screend = result.series["With screend"]

    # Without screend: peak in the paper's ballpark (~4700 pkt/s)...
    peak = series_peak(no_screend)
    assert 4_000 <= peak <= 5_500, peak
    # ...then throughput *falls* with offered load (the livelock signature)
    tail = series_tail(no_screend)
    assert tail < 0.6 * peak, (tail, peak)
    # but has not fully livelocked within the Ethernet-rate range.
    assert tail > 0, tail

    # With screend: peak near 2000 pkt/s...
    screend_peak = series_peak(with_screend)
    assert 1_400 <= screend_peak <= 2_400, screend_peak
    # ...and complete livelock by ~6000 pkt/s input.
    onset = livelock_onset(with_screend)
    assert onset is not None and onset <= 7_000, onset
    assert series_tail(with_screend) < 50

    # screend always reduces capacity (user-mode crossing per packet).
    assert estimate_mlfrr(with_screend) < estimate_mlfrr(no_screend)
