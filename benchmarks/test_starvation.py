"""Transmit starvation (§4.4 / §6.6) — ablation benchmark.

The no-quota polling kernel under overload is the paper's cleanest
starvation exhibit: the input callback monopolises the polling thread,
the output callback never runs, the transmitter idles behind a full
output queue, and fully-processed packets are dropped at the very last
queue ("the unmodified kernel does less work per discarded packet" —
so the no-quota modified kernel is *worse* than unmodified).
"""

from conftest import TRIAL_KWARGS

from repro.core import variants
from repro.experiments.harness import run_trial
from repro.experiments.topology import Router

OVERLOAD = 12_000


def run_starvation(quota):
    config = variants.polling(quota=quota)
    router = Router(config)
    trial = run_trial(config, OVERLOAD, router=router, **TRIAL_KWARGS)
    return trial, router


def test_transmit_starvation(benchmark):
    (starved, starved_router) = benchmark.pedantic(
        lambda: run_starvation(None), rounds=1, iterations=1
    )
    healthy, _ = run_starvation(10)
    unmodified = run_trial(variants.unmodified(), OVERLOAD, **TRIAL_KWARGS)

    print()
    print(
        "no quota: out=%.0f, quota=10: out=%.0f, unmodified: out=%.0f"
        % (
            starved.output_rate_pps,
            healthy.output_rate_pps,
            unmodified.output_rate_pps,
        )
    )

    # Starved: output collapses despite input being fully processed.
    assert starved.output_rate_pps < 100
    assert starved.counters["driver.in0.rx_processed"] > 1_000

    # The starvation signature: output queue full, transmitter idle.
    out_driver = starved_router.driver_out
    assert len(out_driver.ifqueue) == out_driver.ifqueue.limit
    assert starved_router.nic_out.tx_idle
    # Fully-processed packets dropped at the last queue = wasted work.
    assert out_driver.ifqueue.drop_count > 1_000

    # Worse than even the unmodified kernel (paper §6.6).
    assert starved.output_rate_pps < unmodified.output_rate_pps

    # The quota removes the starvation entirely.
    assert healthy.output_rate_pps > 4_000

    benchmark.extra_info["starved_output"] = starved.output_rate_pps
    benchmark.extra_info["healthy_output"] = healthy.output_rate_pps
