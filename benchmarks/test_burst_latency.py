"""Receive latency under bursts (§4.3) — ablation benchmark.

"If a burst of packets arrives too rapidly, the system will do
link-level processing of the entire burst before doing any higher-layer
processing of the first packet ... the latency to deliver the first
packet in a burst is increased almost by the time it takes to receive
the entire burst."

Measured: median router residence latency at a light average load,
delivered in bursts of increasing size, for the unmodified kernel.
"""

from conftest import TRIAL_KWARGS

from repro.core import variants
from repro.experiments.harness import run_trial

RATE = 500  # pkt/s average: light load, latency-dominated regime
BURSTS = (1, 8, 32)


def run_burst_sweep():
    medians = {}
    for burst in BURSTS:
        trial = run_trial(
            variants.unmodified(),
            RATE,
            workload="bursty",
            burst_size=burst,
            **TRIAL_KWARGS,
        )
        medians[burst] = trial.latency_us["median"]
    return medians


def test_burst_latency(benchmark):
    medians = benchmark.pedantic(run_burst_sweep, rounds=1, iterations=1)
    print()
    for burst, median in medians.items():
        print("burst=%3d  median latency %8.0f us" % (burst, median))
    benchmark.extra_info["median_latency_us"] = medians

    # Latency grows with burst size...
    assert medians[1] < medians[8] < medians[32]
    # ...and the big-burst latency is dominated by receiving the burst:
    # 32 packets take ~2150 us to arrive at wire speed, so the median
    # packet waits on the order of a milli-second, vs ~200-400 us alone.
    assert medians[32] > 3 * medians[1]
    assert medians[1] < 500
    assert medians[32] > 900
