"""Ethernet wire timing model.

The paper's testbed uses two 10 Mb/s Ethernets; the maximum packet rate
for minimum-size frames is about 14,880 packets/second (§6.2). On the
wire a minimum frame occupies 64 bytes plus 8 bytes preamble plus the
9.6 µs inter-frame gap: (72 * 8) bits / 10 Mb/s + 9.6 µs = 67.2 µs.

Only serialization time matters for the experiments, so the wire model is
a per-packet occupancy time used by the NIC transmitter and by paced
traffic generators.
"""

from __future__ import annotations

from ..sim.units import NS_PER_SEC

#: Bits on the wire for a minimum-size Ethernet frame (64B frame + 8B preamble).
MIN_FRAME_WIRE_BITS = (64 + 8) * 8

#: Inter-frame gap on 10 Mb/s Ethernet, in nanoseconds.
INTERFRAME_GAP_NS = 9_600

#: 10 Mb/s Ethernet bit time in nanoseconds.
BIT_TIME_10MBPS_NS = 100


def packet_time_ns(payload_bytes: int = 4, bandwidth_bps: int = 10_000_000) -> int:
    """Wire occupancy of a UDP/IP packet with ``payload_bytes`` of data.

    Headers: 14 B Ethernet + 20 B IP + 8 B UDP, padded to the 64-byte
    minimum frame, plus preamble and inter-frame gap.
    """
    frame_bytes = max(64, 14 + 20 + 8 + payload_bytes) + 8
    bits = frame_bytes * 8
    return int(round(bits * NS_PER_SEC / bandwidth_bps)) + INTERFRAME_GAP_NS


#: Wire time of a minimum-size frame on 10 Mb/s Ethernet (≈ 67.2 µs).
MIN_PACKET_TIME_NS = packet_time_ns(payload_bytes=4)

#: Maximum packet rate of 10 Mb/s Ethernet for minimum-size frames
#: (≈ 14,880 packets/second; the paper quotes the same number).
MAX_PACKET_RATE_10MBPS = NS_PER_SEC / MIN_PACKET_TIME_NS
