"""Ethernet wire timing model.

The paper's testbed uses two 10 Mb/s Ethernets; the maximum packet rate
for minimum-size frames is about 14,880 packets/second (§6.2). On the
wire a minimum frame occupies 64 bytes plus 8 bytes preamble plus the
9.6 µs inter-frame gap: (72 * 8) bits / 10 Mb/s + 9.6 µs = 67.2 µs.

Only serialization time matters for the experiments, so the wire model is
a per-packet occupancy time used by the NIC transmitter and by paced
traffic generators.
"""

from __future__ import annotations

from ..sim.units import NS_PER_SEC

#: Bits on the wire for a minimum-size Ethernet frame (64B frame + 8B preamble).
MIN_FRAME_WIRE_BITS = (64 + 8) * 8

#: Inter-frame gap on 10 Mb/s Ethernet, in nanoseconds.
INTERFRAME_GAP_NS = 9_600

#: 10 Mb/s Ethernet bit time in nanoseconds.
BIT_TIME_10MBPS_NS = 100


def packet_time_ns(payload_bytes: int = 4, bandwidth_bps: int = 10_000_000) -> int:
    """Wire occupancy of a UDP/IP packet with ``payload_bytes`` of data.

    Headers: 14 B Ethernet + 20 B IP + 8 B UDP, padded to the 64-byte
    minimum frame, plus preamble and inter-frame gap.
    """
    frame_bytes = max(64, 14 + 20 + 8 + payload_bytes) + 8
    bits = frame_bytes * 8
    return int(round(bits * NS_PER_SEC / bandwidth_bps)) + INTERFRAME_GAP_NS


#: Wire time of a minimum-size frame on 10 Mb/s Ethernet (≈ 67.2 µs).
MIN_PACKET_TIME_NS = packet_time_ns(payload_bytes=4)

#: Maximum packet rate of 10 Mb/s Ethernet for minimum-size frames
#: (≈ 14,880 packets/second; the paper quotes the same number).
MAX_PACKET_RATE_10MBPS = NS_PER_SEC / MIN_PACKET_TIME_NS


class Wire:
    """The segment between a sender and one NIC — the link-fault seam.

    Fault-free, :meth:`deliver` is a pass-through to
    ``nic.receive_from_wire`` with identical semantics (True = accepted,
    False = rejected and the caller keeps ownership). With a fault
    injector attached, frames can be lost in a brown-out window or held
    briefly and re-ordered; a frame the wire *holds* belongs to the wire,
    which returns it to ``pool`` itself if the NIC later rejects it.

    Traffic generators send through a wire only when one is passed in —
    the fault-free fast path keeps their direct NIC binding.
    """

    __slots__ = ("nic", "pool", "faults", "delivered", "returned")

    def __init__(self, nic, pool=None, faults=None) -> None:
        self.nic = nic
        self.pool = pool
        self.faults = faults
        #: Frames handed to the NIC / rejected frames recycled by the wire.
        self.delivered = 0
        self.returned = 0

    def deliver(self, packet) -> bool:
        """Offer one frame to the NIC through this wire. Returns False
        when the frame is rejected *and the caller still owns it*."""
        faults = self.faults
        if faults is not None:
            return faults.wire_deliver(self, packet)
        return self.nic.receive_from_wire(packet)

    def pass_through(self, packet) -> bool:
        """Deliver a caller-owned frame: on rejection the caller keeps
        ownership (mirrors ``receive_from_wire`` exactly)."""
        if self.nic.receive_from_wire(packet):
            self.delivered += 1
            return True
        return False

    def consume(self, packet) -> None:
        """Deliver a *wire-owned* frame (one the wire held for
        reordering, or took responsibility for): on rejection the wire
        recycles it, because the original sender already let go."""
        if self.nic.receive_from_wire(packet):
            self.delivered += 1
            return
        self.returned += 1
        pool = self.pool
        if pool is not None and pool.enabled:
            pool.release(packet)
