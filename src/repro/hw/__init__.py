"""Hardware models: CPU with IPL preemption, interrupt controller, NICs
with bounded descriptor rings, Ethernet wire timing, and the periodic
clock device."""

from .clock import ClockDevice
from .cpu import (
    CLASS_IDLE,
    CLASS_KERNEL,
    CLASS_USER,
    CPU,
    CpuTask,
    IPL_CLOCK,
    IPL_DEVICE,
    IPL_HIGH,
    IPL_NONE,
    IPL_SOFTNET,
    Spl,
)
from .interrupts import InterruptController, InterruptLine
from .link import (
    MAX_PACKET_RATE_10MBPS,
    MIN_PACKET_TIME_NS,
    packet_time_ns,
)
from .nic import NIC

__all__ = [
    "CLASS_IDLE",
    "CLASS_KERNEL",
    "CLASS_USER",
    "CPU",
    "ClockDevice",
    "CpuTask",
    "IPL_CLOCK",
    "IPL_DEVICE",
    "IPL_HIGH",
    "IPL_NONE",
    "IPL_SOFTNET",
    "InterruptController",
    "InterruptLine",
    "MAX_PACKET_RATE_10MBPS",
    "MIN_PACKET_TIME_NS",
    "NIC",
    "Spl",
    "packet_time_ns",
]
