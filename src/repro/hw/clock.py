"""Periodic clock interrupt device (the ``hardclock`` source).

The clock interrupts at the highest IPL — "clock interrupts typically
preempt device interrupt processing" (§5.1) — once per tick (1 ms by
default, matching the paper's "one clock tick, or about 1 msec"). The
kernel installs the handler body: timekeeping, callout processing and
scheduler bookkeeping all run from it.
"""

from __future__ import annotations

from typing import Optional

from ..sim.simulator import Simulator
from ..sim.units import NS_PER_MS
from .cpu import IPL_CLOCK
from .interrupts import HandlerFactory, InterruptController, InterruptLine


class ClockDevice:
    """Raises a clock interrupt every ``tick_ns`` nanoseconds."""

    def __init__(
        self,
        sim: Simulator,
        controller: InterruptController,
        handler_factory: HandlerFactory,
        tick_ns: int = NS_PER_MS,
        dispatch_cycles: int = 0,
        name: str = "clock",
    ) -> None:
        if tick_ns <= 0:
            raise ValueError("tick must be positive")
        self.sim = sim
        self.tick_ns = tick_ns
        self.ticks = 0
        self.line: InterruptLine = controller.line(
            name, IPL_CLOCK, handler_factory, dispatch_cycles=dispatch_cycles
        )
        self._started = False

    def start(self) -> None:
        """Begin ticking (first interrupt one tick from now)."""
        if self._started:
            raise RuntimeError("clock already started")
        self._started = True
        # One re-armed event for the lifetime of the run: the clock fires
        # once per tick for the whole simulation, so a per-tick allocation
        # would be the single largest source of event churn.
        self.sim.schedule_periodic(self.tick_ns, self._tick, label="clock-tick")

    def _tick(self) -> None:
        self.ticks += 1
        self.line.request()
