"""Periodic clock interrupt device (the ``hardclock`` source).

The clock interrupts at the highest IPL — "clock interrupts typically
preempt device interrupt processing" (§5.1) — once per tick (1 ms by
default, matching the paper's "one clock tick, or about 1 msec"). The
kernel installs the handler body: timekeeping, callout processing and
scheduler bookkeeping all run from it.
"""

from __future__ import annotations

from typing import Optional

from ..sim.simulator import Simulator
from ..sim.units import NS_PER_MS
from .cpu import IPL_CLOCK
from .interrupts import HandlerFactory, InterruptController, InterruptLine


class ClockDevice:
    """Raises a clock interrupt every ``tick_ns`` nanoseconds."""

    def __init__(
        self,
        sim: Simulator,
        controller: InterruptController,
        handler_factory: HandlerFactory,
        tick_ns: int = NS_PER_MS,
        dispatch_cycles: int = 0,
        name: str = "clock",
    ) -> None:
        if tick_ns <= 0:
            raise ValueError("tick must be positive")
        self.sim = sim
        self.tick_ns = tick_ns
        self.ticks = 0
        self.line: InterruptLine = controller.line(
            name, IPL_CLOCK, handler_factory, dispatch_cycles=dispatch_cycles
        )
        self._started = False
        #: Handle of the pending tick — a re-armed PeriodicEvent on the
        #: clean path, the next one-shot Event on the faulty path — so
        #: :meth:`stop` can cancel it instead of groping queue internals.
        self._timer = None
        #: Fault-injection hook (:class:`repro.faults.FaultInjector`);
        #: when set and armed for clock faults, tick intervals are drawn
        #: through it (jitter/drift) instead of being exactly periodic.
        self.faults = None

    def start(self) -> None:
        """Begin ticking (first interrupt one tick from now)."""
        if self._started:
            raise RuntimeError("clock already started")
        self._started = True
        if self.faults is not None:
            # Faulty timebase: each interval is drawn per tick, so the
            # re-armed periodic event cannot be used.
            self._arm_faulty_tick()
            return
        # One re-armed event for the lifetime of the run: the clock fires
        # once per tick for the whole simulation, so a per-tick allocation
        # would be the single largest source of event churn.
        self._timer = self.sim.schedule_periodic(
            self.tick_ns, self._tick, label="clock-tick"
        )

    def stop(self) -> None:
        """Stop ticking (idempotent). ``Simulator.cancel`` accepts both
        handle kinds, so the clean and faulty paths stop the same way.
        A stopped clock may be started again."""
        if self._timer is not None:
            self.sim.cancel(self._timer)
            self._timer = None
        self._started = False

    def _tick(self) -> None:
        self.ticks += 1
        self.line.request()

    def _arm_faulty_tick(self) -> None:
        faults = self.faults
        interval = (
            faults.next_tick_interval(self.tick_ns)
            if faults is not None
            else self.tick_ns
        )
        self._timer = self.sim.schedule(interval, self._faulty_tick, label="clock-tick")

    def _faulty_tick(self) -> None:
        self.ticks += 1
        self.line.request()
        self._arm_faulty_tick()
