"""Interrupt controller and interrupt lines.

An :class:`InterruptLine` models one device interrupt source with the
three pieces of state that matter for the paper's mechanisms:

* ``enabled`` — the device-level interrupt-enable flag. The modified
  drivers of §6.4 clear it in the interrupt handler and set it again only
  from the polling thread's interrupt-enable callback.
* ``requested`` — the device is asserting the line (it has events).
* ``in_service`` — a handler dispatched for this line has not returned.

Delivery requires all of: requested, enabled, not in service, and the
line's IPL strictly above the CPU's current effective IPL. Undeliverable
requests stay pending and are retried whenever any of those inputs
changes (enable, handler return, CPU IPL drop).

Each delivery consumes the request (edge semantics) and spawns a fresh
handler task at the line's IPL, with the configured dispatch cost charged
before the handler body runs — this is the "dispatching an interrupt is a
costly operation" of §4.1, and interrupt batching amortises exactly this
cost.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..sim.process import ProcessBody, Work
from ..trace.buffer import IRQ_DISPATCH, IRQ_REQUEST, IRQ_RETURN
from .cpu import CPU, CpuTask


HandlerFactory = Callable[[], ProcessBody]


class InterruptLine:
    """One interrupt source attached to an :class:`InterruptController`."""

    def __init__(
        self,
        controller: "InterruptController",
        name: str,
        ipl: int,
        handler_factory: HandlerFactory,
        dispatch_cycles: int = 0,
    ) -> None:
        self.controller = controller
        self.name = name
        self.ipl = ipl
        self.handler_factory = handler_factory
        self.dispatch_cycles = dispatch_cycles
        # Every dispatch charges the same cost, so one Work command is
        # shared across dispatches instead of allocated per interrupt.
        self._dispatch_work = Work(dispatch_cycles) if dispatch_cycles > 0 else None
        self.enabled = True
        self.requested = False
        self.in_service = False
        self.request_count = 0
        self.dispatch_count = 0
        self.suppressed_while_disabled = 0
        #: Fault-injection hook (:class:`repro.faults.FaultInjector`),
        #: bound by an armed injector; None on the fault-free fast path.
        self.faults = None
        #: Trace hook (:class:`repro.trace.TraceBuffer`), bound by
        #: ``Router.attach_trace``; None on the untraced fast path.
        self.trace = None

    # ------------------------------------------------------------------

    def request(self) -> None:
        """Assert the line (device has work). Idempotent while pending."""
        self.request_count += 1
        trace = self.trace
        if trace is not None:
            trace.record(IRQ_REQUEST, self.name)
        faults = self.faults
        if faults is not None:
            action = faults.on_irq_request(self)
            if action < 0:
                # Lost interrupt: the device asserted but the controller
                # never saw it. Nothing latches; a later assertion (the
                # next arrival, a stall-end kick) must re-raise.
                return
            if action > 0:
                # Duplicated interrupt: deliver once now, and latch a
                # second request that redelivers after the handler
                # returns (edge semantics make the extra assert visible
                # exactly then).
                self.request_count += 1
                self._assert_line()
        if not self.enabled:
            self.suppressed_while_disabled += 1
            self.requested = True
            return
        self.requested = True
        if not self.in_service:
            self.controller.try_deliver(self)

    def _assert_line(self) -> None:
        """One raw assertion, bypassing the fault hook (used for the
        duplicated-interrupt fault)."""
        if not self.enabled:
            self.suppressed_while_disabled += 1
            self.requested = True
            return
        self.requested = True
        if not self.in_service:
            self.controller.try_deliver(self)

    def enable(self) -> None:
        """Set the device interrupt-enable flag and deliver if pending."""
        if not self.enabled:
            self.enabled = True
            self.controller.try_deliver(self)

    def disable(self) -> None:
        """Clear the device interrupt-enable flag; requests latch silently."""
        self.enabled = False

    def acknowledge(self) -> None:
        """Consume a pending request without dispatching (drivers use this
        when a polled scan has already absorbed the events)."""
        self.requested = False

    def __repr__(self) -> str:
        flags = "".join(
            flag
            for flag, on in (
                ("E", self.enabled),
                ("R", self.requested),
                ("S", self.in_service),
            )
            if on
        )
        return "InterruptLine(%s, ipl=%d, %s)" % (self.name, self.ipl, flags or "-")


class InterruptController:
    """Routes interrupt requests to handler tasks on a CPU."""

    def __init__(self, cpu: CPU) -> None:
        self.cpu = cpu
        self.lines: List[InterruptLine] = []
        cpu.ipl_observers.append(self._on_ipl_change)

    def line(
        self,
        name: str,
        ipl: int,
        handler_factory: HandlerFactory,
        dispatch_cycles: int = 0,
    ) -> InterruptLine:
        """Create and register a new interrupt line."""
        created = InterruptLine(self, name, ipl, handler_factory, dispatch_cycles)
        self.lines.append(created)
        return created

    # ------------------------------------------------------------------

    def try_deliver(self, line: InterruptLine) -> bool:
        """Dispatch a handler for ``line`` if delivery conditions hold."""
        if not (line.requested and line.enabled and not line.in_service):
            return False
        current = self.cpu._current
        if line.ipl <= (current._eff_ipl if current is not None else 0):
            return False
        line.requested = False
        line.in_service = True
        line.dispatch_count += 1
        trace = line.trace
        if trace is not None:
            trace.record(IRQ_DISPATCH, line.name, line.ipl)
        task = self.cpu.task(
            self._handler_body(line), name="irq:" + line.name, ipl=line.ipl
        )
        task.on_exit(lambda _proc, _line=line: self._handler_done(_line))
        task.start()
        return True

    def _handler_body(self, line: InterruptLine) -> ProcessBody:
        if line._dispatch_work is not None:
            yield line._dispatch_work
        handler = line.handler_factory()
        if handler is not None:
            # ``yield from`` lets CPython resume the handler frame
            # directly on every Work completion. CPU tasks are only ever
            # resumed with None, so delegation is observably identical
            # to the explicit trampoline loop.
            yield from handler

    def _handler_done(self, line: InterruptLine) -> None:
        line.in_service = False
        trace = line.trace
        if trace is not None:
            trace.record(IRQ_RETURN, line.name)
        # The device may have re-asserted during service (e.g. packets
        # arrived after the handler's last ring scan).
        self.try_deliver(line)
        self._on_ipl_change(self.cpu.current_ipl)

    def _on_ipl_change(self, ipl: int) -> None:
        for line in self.lines:
            # Inline the cheap disqualifiers; try_deliver re-checks them.
            if (
                line.ipl > ipl
                and line.requested
                and line.enabled
                and not line.in_service
            ):
                self.try_deliver(line)

    def stats(self) -> Dict[str, Dict[str, int]]:
        return {
            line.name: {
                "requests": line.request_count,
                "dispatches": line.dispatch_count,
                "suppressed_while_disabled": line.suppressed_while_disabled,
            }
            for line in self.lines
        }
