"""Preemptive CPU model with interrupt priority levels (IPLs).

This models the scheduling substrate the paper's argument rests on
(§4.1): code runs at an *interrupt priority level*; an interrupt whose
IPL exceeds the IPL of the currently running code preempts it
immediately, and tasks at the same or lower IPL wait. Threads (kernel
threads, user processes, the idle loop) run at IPL 0 and are ordered by a
priority class plus FIFO order, giving the usual UNIX picture:

    clock interrupts  >  device interrupts  >  software interrupts
        >  kernel threads  >  user processes  >  idle

Execution is modelled as generator-based tasks (:class:`CpuTask`) that
yield :class:`~repro.sim.process.Work` commands. The CPU charges the
cycles as simulated time, suspending the task's progress whenever a
higher-priority task becomes runnable. Work is conserved across
preemption: a preempted chunk resumes where it stopped.

The CPU also exposes a fine-grained cycle counter
(:meth:`CPU.read_cycle_counter`), the analogue of the Alpha PCC register
that the paper's cycle-limit mechanism reads (§7).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..sim.errors import ProcessError
from ..sim.process import Command, Process, ProcessBody, Work
from ..sim.simulator import Simulator
from ..sim.units import cycles_to_ns, ns_to_cycles
from ..trace.buffer import CPU_IDLE, CPU_RUN

# ----------------------------------------------------------------------
# Interrupt priority levels. Higher value = higher priority. The values
# mirror the BSD spl ordering used in the paper: SPLCLOCK > SPLIMP
# (device) > SPLNET (software network interrupt) > SPL0 (threads).
# ----------------------------------------------------------------------
IPL_NONE = 0
IPL_SOFTNET = 1
IPL_DEVICE = 3
IPL_CLOCK = 5
IPL_HIGH = 7

#: Priority classes for IPL-0 tasks (threads). Higher runs first.
CLASS_INTERRUPT = 3  # implicit class of interrupt contexts (unused for threads)
CLASS_KERNEL = 2
CLASS_USER = 1
CLASS_IDLE = 0


class Spl(Command):
    """Set the yielding task's software priority level (BSD ``splx``).

    The task's effective IPL becomes ``max(base_ipl, level)``. Lowering
    the level lets pending interrupts in. Yielding ``Spl`` consumes no
    simulated time.
    """

    __slots__ = ("level",)

    def __init__(self, level: int) -> None:
        self.level = level

    def __repr__(self) -> str:
        return "Spl(%d)" % self.level


class CpuTask(Process):
    """A process whose :class:`Work` is executed by a :class:`CPU`.

    ``ipl`` is the base interrupt priority (0 for threads), and
    ``priority_class`` orders IPL-0 tasks (kernel > user > idle).
    """

    def __init__(
        self,
        cpu: "CPU",
        body: ProcessBody,
        name: str,
        ipl: int = IPL_NONE,
        priority_class: int = CLASS_USER,
    ) -> None:
        super().__init__(cpu.sim, body, name=name)
        self.cpu = cpu
        self.base_ipl = ipl
        self.spl_level = 0
        self.priority_class = priority_class
        self.cycles_used = 0
        self._ready_seq = 0  # FIFO order among equal-priority tasks
        # The dispatcher compares tasks on every reschedule, so the
        # effective IPL and the sort key are cached and maintained at
        # their (rare) change points instead of recomputed per pick.
        self._eff_ipl = ipl
        self._key = (ipl, priority_class, 0)
        self._work_label = "work:" + name

    @property
    def effective_ipl(self) -> int:
        return self._eff_ipl

    def _refresh_key(self) -> None:
        self._eff_ipl = (
            self.base_ipl if self.base_ipl >= self.spl_level else self.spl_level
        )
        self._key = (self._eff_ipl, self.priority_class, -self._ready_seq)

    def runnable_key(self):
        """Sort key maximised by the dispatcher."""
        return self._key

    def kill(self) -> None:
        """Terminate the task, withdrawing any queued CPU work."""
        self.cpu.remove_task(self)
        super().kill()

    def _dispatch(self, command: Command) -> None:
        if type(command) is Work:
            self.cpu.add_work(self, command.cycles)
        elif isinstance(command, Spl):
            old = self._eff_ipl
            self.spl_level = command.level
            self._refresh_key()
            self.cpu.on_task_ipl_changed(self, old)
            self.deliver(None)
        elif isinstance(command, Work):
            self.cpu.add_work(self, command.cycles)
        else:
            super()._dispatch(command)


class CPU:
    """A single CPU executing :class:`CpuTask` work under IPL preemption."""

    def __init__(
        self,
        sim: Simulator,
        hz: int = 150_000_000,
        context_switch_cycles: int = 0,
        name: str = "cpu0",
        index: int = 0,
    ) -> None:
        self.sim = sim
        self.hz = hz
        self.name = name
        #: Core index on a multi-core machine. All cores share one
        #: calendar-queue simulator; at equal timestamps events fire in
        #: scheduling order, and the kernel constructs and starts cores
        #: in index order, so the effective same-instant tie-break is
        #: the core index (DESIGN.md §14).
        self.index = index
        self.context_switch_cycles = context_switch_cycles
        # Tasks with pending work, mapped to remaining nanoseconds.
        self._remaining: Dict[CpuTask, int] = {}
        self._current: Optional[CpuTask] = None
        self._completion = None  # pending completion Event for _current
        self._chunk_started: int = 0
        self._seq = 0
        self._last_thread: Optional[CpuTask] = None
        self.busy_ns = 0
        self.switches = 0
        self.preemptions = 0
        #: Hook invoked with the new effective IPL whenever it may have
        #: dropped; the interrupt controller uses it to deliver pending
        #: interrupts. Installed by :class:`repro.hw.interrupts.InterruptController`.
        self.ipl_observers: List[Callable[[int], None]] = []
        #: Hooks invoked as ``observer(task, elapsed_ns)`` whenever a
        #: task is charged CPU time (on chunk completion and on
        #: preemption). Used by :class:`repro.metrics.cpuaccount.CpuAccountant`.
        self.account_observers: List[Callable[["CpuTask", int], None]] = []
        #: Trace hook (:class:`repro.trace.TraceBuffer`), bound by
        #: ``Router.attach_trace``; None on the untraced fast path. The
        #: dispatcher records context switches; CPU-time accounting goes
        #: through :attr:`account_observers` (zero cost when empty).
        self.trace = None

    # ------------------------------------------------------------------
    # Task construction helpers
    # ------------------------------------------------------------------

    def task(
        self,
        body: ProcessBody,
        name: str,
        ipl: int = IPL_NONE,
        priority_class: int = CLASS_USER,
    ) -> CpuTask:
        """Create (but do not start) a task bound to this CPU."""
        return CpuTask(self, body, name=name, ipl=ipl, priority_class=priority_class)

    def spawn(
        self,
        body: ProcessBody,
        name: str,
        ipl: int = IPL_NONE,
        priority_class: int = CLASS_USER,
    ) -> CpuTask:
        """Create and immediately start a task bound to this CPU."""
        return self.task(body, name, ipl=ipl, priority_class=priority_class).start()

    # ------------------------------------------------------------------
    # Clocks and counters
    # ------------------------------------------------------------------

    def read_cycle_counter(self) -> int:
        """The free-running cycle counter (Alpha PCC analogue)."""
        return ns_to_cycles(self.sim.now, self.hz)

    @property
    def current_task(self) -> Optional[CpuTask]:
        return self._current

    @property
    def last_thread(self) -> Optional[CpuTask]:
        """The IPL-0 thread that ran most recently (it is the thread an
        interrupt handler has preempted — what ``hardclock`` samples)."""
        return self._last_thread

    @property
    def current_ipl(self) -> int:
        return self._current._eff_ipl if self._current is not None else IPL_NONE

    @property
    def runnable_count(self) -> int:
        return len(self._remaining)

    # ------------------------------------------------------------------
    # Work management (engine interface, called from CpuTask._dispatch)
    # ------------------------------------------------------------------

    def add_work(self, task: CpuTask, cycles: int) -> None:
        """Queue ``cycles`` of work for ``task`` and reschedule."""
        ns = cycles_to_ns(cycles, self.hz)
        remaining = self._remaining
        if task in remaining:
            remaining[task] += ns
        else:
            self._seq += 1
            task._ready_seq = self._seq
            task._refresh_key()
            remaining[task] = ns
        self._reschedule()

    def requeue_behind(self, task: CpuTask) -> None:
        """Move a runnable task to the back of its priority class (used by
        the kernel scheduler for round-robin quantum rotation)."""
        if task in self._remaining:
            self._seq += 1
            task._ready_seq = self._seq
            task._refresh_key()
            self._reschedule()

    def on_task_ipl_changed(self, task: CpuTask, old_ipl: int) -> None:
        """React to an spl change of a (possibly running) task."""
        self._reschedule()
        if task._eff_ipl < old_ipl:
            self._notify_ipl()

    def remove_task(self, task: CpuTask) -> None:
        """Forget a killed task's pending work."""
        if task is self._current:
            self._stop_current(account=True)
        self._remaining.pop(task, None)
        self._reschedule()

    # ------------------------------------------------------------------
    # Dispatcher
    # ------------------------------------------------------------------

    def _pick(self) -> Optional[CpuTask]:
        best: Optional[CpuTask] = None
        best_key = None
        for task in self._remaining:
            key = task._key
            if best_key is None or key > best_key:
                best, best_key = task, key
        return best

    def _stop_current(self, account: bool) -> None:
        """Halt the running chunk, saving unfinished work."""
        task = self._current
        if task is None:
            return
        if self._completion is not None:
            self.sim.cancel(self._completion)
            self._completion = None
        if account:
            elapsed = self.sim.now - self._chunk_started
            if elapsed > 0:
                if task in self._remaining:
                    self._remaining[task] = max(0, self._remaining[task] - elapsed)
                task.cycles_used += ns_to_cycles(elapsed, self.hz)
                self.busy_ns += elapsed
                for observer in self.account_observers:
                    observer(task, elapsed)
        self._current = None

    def _reschedule(self) -> None:
        best = self._pick()
        if best is self._current:
            return
        if self._current is not None:
            self.preemptions += 1
            self._stop_current(account=True)
        if best is None:
            trace = self.trace
            if trace is not None:
                trace.record(CPU_IDLE, self.name)
            self._notify_ipl()
            return
        # Charge a context-switch penalty when control moves between
        # different IPL-0 threads (interrupt entry/exit costs are part of
        # the interrupt dispatch cost instead).
        if best._eff_ipl == IPL_NONE:
            if (
                self.context_switch_cycles > 0
                and self._last_thread is not best
                and self._last_thread is not None
            ):
                self._remaining[best] += cycles_to_ns(
                    self.context_switch_cycles, self.hz
                )
                self.switches += 1
            self._last_thread = best
        self._current = best
        self._chunk_started = self.sim.now
        trace = self.trace
        if trace is not None:
            trace.record(CPU_RUN, best.name, best._eff_ipl)
        remaining = self._remaining[best]
        self._completion = self.sim.schedule(
            remaining, self._complete, best, label=best._work_label
        )

    def _complete(self, task: CpuTask) -> None:
        if task is not self._current:  # pragma: no cover - defensive
            raise ProcessError("completion for non-current task %s" % task.name)
        self._completion = None
        elapsed = self.sim.now - self._chunk_started
        task.cycles_used += ns_to_cycles(elapsed, self.hz)
        self.busy_ns += elapsed
        if elapsed > 0:
            for observer in self.account_observers:
                observer(task, elapsed)
        self._current = None
        del self._remaining[task]
        was_ipl = task._eff_ipl
        # Resume the task's generator; it may queue more work (for itself
        # or, via side effects, for others) before we pick the next task.
        task.deliver(None)
        self._reschedule()
        current = self._current
        if was_ipl > (current._eff_ipl if current is not None else IPL_NONE):
            self._notify_ipl()

    def _notify_ipl(self) -> None:
        ipl = self.current_ipl
        for observer in self.ipl_observers:
            observer(ipl)

    # ------------------------------------------------------------------

    def utilization(self, since_ns: int, now_ns: Optional[int] = None) -> float:
        """Fraction of wall time busy since ``since_ns`` (coarse; callers
        should snapshot ``busy_ns`` themselves for windowed measures)."""
        now = self.sim.now if now_ns is None else now_ns
        window = now - since_ns
        if window <= 0:
            return 0.0
        return min(1.0, self.busy_ns / window)

    def __repr__(self) -> str:
        running = self._current.name if self._current else "idle"
        return "CPU(%s, running=%s, ipl=%d)" % (self.name, running, self.current_ipl)
