"""Network interface model with bounded RX/TX descriptor rings.

The NIC is the boundary where the paper's "drop early" argument lives
(§5.1, §6.4): packets that overflow the RX ring are dropped **before**
the host has invested any CPU cycles, while packets dropped later (at
ipintrq, the screening queue, or the output queue) waste everything spent
on them so far. The model therefore tracks overflow drops explicitly.

RX side
    The wire delivers packets into a bounded ring. Every arrival asserts
    the RX interrupt line; if the driver has disabled the line (the
    modified kernels do, §6.4), packets simply accumulate — "the
    interface's input buffer will soak up packets for a while".

TX side
    The driver occupies descriptor slots with :meth:`tx_enqueue`. The
    transmitter serialises one packet at a time at wire speed, marks its
    slot *done* and asserts the TX interrupt line — but the slot is only
    freed when the driver calls :meth:`tx_reclaim`. A driver that never
    gets to reclaim (transmit starvation, §4.4) idles the transmitter
    with a full ring even though packets are queued upstream.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, List, Optional

from ..sim.probes import ProbeRegistry
from ..sim.simulator import Simulator
from .interrupts import InterruptLine
from .link import MIN_PACKET_TIME_NS


class _TxSlot:
    __slots__ = ("packet", "done")

    def __init__(self, packet: Any) -> None:
        self.packet = packet
        self.done = False


class NIC:
    """One network interface with RX and TX rings."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        probes: ProbeRegistry,
        rx_ring_capacity: int = 64,
        tx_ring_capacity: int = 32,
        tx_packet_time_ns: int = MIN_PACKET_TIME_NS,
    ) -> None:
        if rx_ring_capacity <= 0 or tx_ring_capacity <= 0:
            raise ValueError("ring capacities must be positive")
        self.sim = sim
        self.name = name
        self.probes = probes
        self.rx_ring_capacity = rx_ring_capacity
        self.tx_ring_capacity = tx_ring_capacity
        self.tx_packet_time_ns = tx_packet_time_ns

        self._rx_ring: Deque[Any] = deque()
        self._tx_slots: List[_TxSlot] = []
        self._tx_busy = False

        #: Attached by the driver / kernel after construction.
        self.rx_line: Optional[InterruptLine] = None
        self.tx_line: Optional[InterruptLine] = None
        #: Invoked with each packet as its transmission completes; the
        #: experiment topology uses it to count "Opkts" and deliver to the
        #: destination. May be None for an unconnected interface.
        self.on_transmit: Optional[Callable[[Any], None]] = None

        self.rx_accepted = probes.counter("nic.%s.rx_accepted" % name)
        self.rx_overflow_drops = probes.counter("nic.%s.rx_overflow_drops" % name)
        self.tx_completed = probes.counter("nic.%s.tx_completed" % name)

    # ------------------------------------------------------------------
    # RX side (wire -> host)
    # ------------------------------------------------------------------

    def receive_from_wire(self, packet: Any) -> bool:
        """Deliver one packet from the wire. Returns False on overflow."""
        if len(self._rx_ring) >= self.rx_ring_capacity:
            self.rx_overflow_drops.increment()
            return False
        if hasattr(packet, "mark_nic_arrival"):
            packet.mark_nic_arrival(self.sim.now)
        self._rx_ring.append(packet)
        self.rx_accepted.increment()
        if self.rx_line is not None:
            self.rx_line.request()
        return True

    def rx_pending(self) -> int:
        """Packets waiting in the RX ring."""
        return len(self._rx_ring)

    def rx_pull(self) -> Optional[Any]:
        """Remove and return the oldest received packet, or None."""
        if not self._rx_ring:
            return None
        return self._rx_ring.popleft()

    # ------------------------------------------------------------------
    # TX side (host -> wire)
    # ------------------------------------------------------------------

    def tx_free_slots(self) -> int:
        return self.tx_ring_capacity - len(self._tx_slots)

    def tx_done_slots(self) -> int:
        return sum(1 for slot in self._tx_slots if slot.done)

    def tx_enqueue(self, packet: Any) -> bool:
        """Occupy a descriptor slot with ``packet``; False if ring full."""
        if len(self._tx_slots) >= self.tx_ring_capacity:
            return False
        self._tx_slots.append(_TxSlot(packet))
        self._kick_transmitter()
        return True

    def tx_reclaim(self) -> int:
        """Free all *done* descriptor slots; returns how many were freed.

        Only the driver calls this; until it does, completed slots keep
        occupying the ring (the root of transmit starvation, §4.4).
        """
        before = len(self._tx_slots)
        self._tx_slots = [slot for slot in self._tx_slots if not slot.done]
        return before - len(self._tx_slots)

    def _kick_transmitter(self) -> None:
        if self._tx_busy:
            return
        pending = next((slot for slot in self._tx_slots if not slot.done), None)
        if pending is None:
            return
        self._tx_busy = True
        self.sim.schedule(
            self.tx_packet_time_ns,
            self._transmit_complete,
            pending,
            label="tx:" + self.name,
        )

    def _transmit_complete(self, slot: _TxSlot) -> None:
        slot.done = True
        self._tx_busy = False
        self.tx_completed.increment()
        packet = slot.packet
        if hasattr(packet, "mark_transmitted"):
            packet.mark_transmitted(self.sim.now)
        if self.on_transmit is not None:
            self.on_transmit(packet)
        if self.tx_line is not None:
            self.tx_line.request()
        self._kick_transmitter()

    @property
    def tx_idle(self) -> bool:
        return not self._tx_busy

    def __repr__(self) -> str:
        return "NIC(%s, rx=%d/%d, tx=%d/%d)" % (
            self.name,
            len(self._rx_ring),
            self.rx_ring_capacity,
            len(self._tx_slots),
            self.tx_ring_capacity,
        )
