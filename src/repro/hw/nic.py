"""Network interface model with bounded RX/TX descriptor rings.

The NIC is the boundary where the paper's "drop early" argument lives
(§5.1, §6.4): packets that overflow the RX ring are dropped **before**
the host has invested any CPU cycles, while packets dropped later (at
ipintrq, the screening queue, or the output queue) waste everything spent
on them so far. The model therefore tracks overflow drops explicitly.

RX side
    The wire delivers packets into a bounded ring. Every arrival asserts
    the RX interrupt line; if the driver has disabled the line (the
    modified kernels do, §6.4), packets simply accumulate — "the
    interface's input buffer will soak up packets for a while".

TX side
    The driver occupies descriptor slots with :meth:`tx_enqueue`. The
    transmitter serialises one packet at a time at wire speed, marks its
    slot *done* and asserts the TX interrupt line — but the slot is only
    freed when the driver calls :meth:`tx_reclaim`. A driver that never
    gets to reclaim (transmit starvation, §4.4) idles the transmitter
    with a full ring even though packets are queued upstream.

Hot-path notes (every simulated packet crosses this module twice):

* the single transmitter completes descriptors strictly in FIFO order,
  so *done* slots are always a prefix of the ring — ``tx_done_slots`` is
  an integer read and ``tx_reclaim`` pops that prefix, instead of the
  historical scan / rebuild of a slot list per call;
* packet capability dispatch (``mark_nic_arrival`` / ``mark_transmitted``)
  is resolved by attempting the call and catching ``AttributeError``
  once for foreign objects, instead of a ``hasattr`` test per packet;
* counter bumps and ring operations are bound to instance locals at
  construction time.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, List, Optional

from ..sim.probes import ProbeRegistry
from ..sim.simulator import Simulator
from ..trace.buffer import RX_ACCEPT, RX_OVERFLOW, TX_COMPLETE, TX_RECLAIM
from .interrupts import InterruptLine
from .link import MIN_PACKET_TIME_NS


class NIC:
    """One network interface with RX and TX rings."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        probes: ProbeRegistry,
        rx_ring_capacity: int = 64,
        tx_ring_capacity: int = 32,
        tx_packet_time_ns: int = MIN_PACKET_TIME_NS,
    ) -> None:
        if rx_ring_capacity <= 0 or tx_ring_capacity <= 0:
            raise ValueError("ring capacities must be positive")
        self.sim = sim
        self.name = name
        self.probes = probes
        self.rx_ring_capacity = rx_ring_capacity
        self.tx_ring_capacity = tx_ring_capacity
        self.tx_packet_time_ns = tx_packet_time_ns

        self._rx_ring: Deque[Any] = deque()
        #: TX descriptor ring: FIFO of enqueued packets. The transmitter
        #: completes them in order, so the first ``_tx_done`` entries are
        #: always exactly the completed-but-unreclaimed descriptors.
        self._tx_ring: Deque[Any] = deque()
        self._tx_done = 0
        self._tx_busy = False

        #: Attached by the driver / kernel after construction (via
        #: :meth:`attach_lines`). On a multi-core machine the lines may
        #: live on any core's interrupt controller — the NIC only ever
        #: calls ``request()``, which is core-agnostic.
        self.rx_line: Optional[InterruptLine] = None
        self.tx_line: Optional[InterruptLine] = None
        #: Fault-injection hook (:class:`repro.faults.FaultInjector`),
        #: set by an armed injector; None on the fault-free fast path.
        self.faults = None
        #: Trace hook (:class:`repro.trace.TraceBuffer`), bound by
        #: ``Router.attach_trace``; None on the untraced fast path.
        self.trace = None
        #: Invoked with each packet as its transmission completes; the
        #: experiment topology uses it to count "Opkts" and deliver to the
        #: destination. May be None for an unconnected interface.
        self.on_transmit: Optional[Callable[[Any], None]] = None

        self.rx_accepted = probes.counter("nic.%s.rx_accepted" % name)
        self.rx_overflow_drops = probes.counter("nic.%s.rx_overflow_drops" % name)
        self.tx_completed = probes.counter("nic.%s.tx_completed" % name)

        # Per-packet hot-path bindings.
        self._rx_append = self._rx_ring.append
        self._rx_popleft = self._rx_ring.popleft
        self._rx_accepted_inc = self.rx_accepted.increment
        self._rx_overflow_inc = self.rx_overflow_drops.increment
        self._tx_completed_inc = self.tx_completed.increment

    def attach_lines(
        self,
        rx_line: Optional[InterruptLine],
        tx_line: Optional[InterruptLine],
    ) -> None:
        """Bind the device's interrupt lines (the driver creates them,
        possibly on a steered core's controller)."""
        self.rx_line = rx_line
        self.tx_line = tx_line

    # ------------------------------------------------------------------
    # RX side (wire -> host)
    # ------------------------------------------------------------------

    def receive_from_wire(self, packet: Any) -> bool:
        """Deliver one packet from the wire. Returns False on overflow
        (or when an armed fault plan loses the frame)."""
        faults = self.faults
        if faults is not None and not faults.on_wire_frame(self, packet):
            return False  # frame lost before the ring; sender still owns it
        if len(self._rx_ring) >= self.rx_ring_capacity:
            self._rx_overflow_inc()
            trace = self.trace
            if trace is not None:
                trace.packet_drop(RX_OVERFLOW, self.name, packet)
            return False
        try:
            packet.mark_nic_arrival(self.sim.now)
        except AttributeError:
            pass  # foreign payload without lifecycle marks (tests)
        self._rx_append(packet)
        self._rx_accepted_inc()
        trace = self.trace
        if trace is not None:
            trace.record(RX_ACCEPT, self.name)
        rx_line = self.rx_line
        if rx_line is not None:
            rx_line.request()
        return True

    def rx_pending(self) -> int:
        """Packets waiting in the RX ring (0 during a DMA stall window:
        descriptors the DMA engine has not completed are invisible)."""
        faults = self.faults
        if faults is not None and faults.rx_stalled():
            return 0
        return len(self._rx_ring)

    def rx_pull(self) -> Optional[Any]:
        """Remove and return the oldest received packet, or None."""
        if self._rx_ring:
            faults = self.faults
            if faults is not None and faults.rx_stalled():
                return None  # DMA stall: descriptors not ready yet
            return self._rx_popleft()
        return None

    def rx_pull_many(self, limit: Optional[int] = None) -> List[Any]:
        """Remove and return up to ``limit`` oldest received packets
        (all pending when ``limit`` is None) in FIFO order.

        One call replaces ``limit`` ``rx_pull`` round-trips for the
        batching drivers. Note the visible semantic: the ring frees all
        the returned descriptors *now*, at a single simulated instant,
        where repeated ``rx_pull`` calls interleaved with processing
        free them one at a time — under overload that admits arrivals
        an incremental drain would have overflow-dropped. Batch pulling
        is therefore opt-in on the driver side
        (``KernelConfig.rx_batch_pull``).
        """
        ring = self._rx_ring
        count = len(ring)
        if count:
            faults = self.faults
            if faults is not None and faults.rx_stalled():
                return []  # DMA stall: descriptors not ready yet
        if limit is not None and limit < count:
            count = limit
        popleft = self._rx_popleft
        return [popleft() for _ in range(count)]

    # ------------------------------------------------------------------
    # TX side (host -> wire)
    # ------------------------------------------------------------------

    def tx_free_slots(self) -> int:
        return self.tx_ring_capacity - len(self._tx_ring)

    def tx_done_slots(self) -> int:
        return self._tx_done

    def tx_enqueue(self, packet: Any) -> bool:
        """Occupy a descriptor slot with ``packet``; False if ring full."""
        ring = self._tx_ring
        if len(ring) >= self.tx_ring_capacity:
            return False
        ring.append(packet)
        if not self._tx_busy:
            self._kick_transmitter()
        return True

    def tx_reclaim(self) -> int:
        """Free all *done* descriptor slots; returns how many were freed.

        Only the driver calls this; until it does, completed slots keep
        occupying the ring (the root of transmit starvation, §4.4).
        """
        freed = self._tx_done
        if freed:
            popleft = self._tx_ring.popleft
            for _ in range(freed):
                popleft()
            self._tx_done = 0
            trace = self.trace
            if trace is not None:
                trace.record(TX_RECLAIM, self.name, freed)
        return freed

    def _kick_transmitter(self) -> None:
        if self._tx_busy:
            return
        ring = self._tx_ring
        done = self._tx_done
        if done >= len(ring):
            return
        self._tx_busy = True
        delay = self.tx_packet_time_ns
        faults = self.faults
        if faults is not None:
            delay += faults.tx_extra_delay(self)
        self.sim.schedule(
            delay,
            self._transmit_complete,
            ring[done],
            label="tx:" + self.name,
        )

    def _transmit_complete(self, packet: Any) -> None:
        # ``packet`` is _tx_ring[_tx_done]: the descriptor that was the
        # first not-done slot when the transmitter started on it, and
        # still is — completions are FIFO and reclaim only removes the
        # done prefix before it.
        self._tx_done += 1
        self._tx_busy = False
        self._tx_completed_inc()
        trace = self.trace
        if trace is not None:
            trace.record(TX_COMPLETE, self.name)
        try:
            packet.mark_transmitted(self.sim.now)
        except AttributeError:
            pass  # foreign payload without lifecycle marks (tests)
        if self.on_transmit is not None:
            self.on_transmit(packet)
        if self.tx_line is not None:
            self.tx_line.request()
        self._kick_transmitter()

    @property
    def tx_idle(self) -> bool:
        return not self._tx_busy

    # ------------------------------------------------------------------
    # Teardown (abort path only — never runs during a live simulation)
    # ------------------------------------------------------------------

    def drain(self) -> List[Any]:
        """Remove and return every packet still held by the interface
        (RX ring plus *not-yet-completed* TX descriptors), bypassing any
        stall window. Completed-but-unreclaimed TX slots are excluded:
        their packets already went through ``on_transmit`` and left the
        ownership of this interface.

        Only the teardown path calls this, after the simulator has
        stopped for good: it invalidates the in-flight transmit event,
        so the simulation must not be resumed afterwards.
        """
        drained = list(self._rx_ring)
        drained.extend(list(self._tx_ring)[self._tx_done:])
        self._rx_ring.clear()
        self._tx_ring.clear()
        self._tx_done = 0
        self._tx_busy = False
        return drained

    def __repr__(self) -> str:
        return "NIC(%s, rx=%d/%d, tx=%d/%d)" % (
            self.name,
            len(self._rx_ring),
            self.rx_ring_capacity,
            len(self._tx_ring),
            self.tx_ring_capacity,
        )
