"""Machine topology: core counts, roles, and IRQ steering policy.

The paper's router was a uniprocessor; :class:`MachineSpec` describes
the multi-core generalization. It is a frozen, validated, hashable
value object nested inside :class:`repro.experiments.spec.TrialSpec`
(the default ``MachineSpec()`` is the paper's single-core machine, and
trials that never mention a machine keep their exact pre-SMP cache
fingerprints).

Core roles
----------

Core 0 is always the **housekeeping** core: it takes the clock
interrupt, runs every kernel thread and user process that is not
explicitly pinned elsewhere, and is the whole machine when
``cores == 1``. With more cores:

* ``isolate_polling=False`` — cores 1..N-1 are **isolated** IRQ-serving
  cores: device interrupt lines are steered onto them (shielding the
  housekeeping core, where the packet-processing threads live, from
  dispatch and stub costs), and they run nothing else.
* ``isolate_polling=True`` — up to two cores (1, and 2 when present)
  take the **polling** role: the polled/hybrid drivers pin one polling
  daemon per polling core and partition their devices across them, so
  per-packet work itself runs in parallel. Remaining cores stay
  isolated IRQ targets; when none remain, device IRQs fall back to the
  housekeeping core (never onto a dedicated polling core).

IRQ steering
------------

:class:`IRQSteering` maps interrupt-line names to target cores. Policy
``affinity`` assigns lines round-robin in creation order (static
affinity, like manually distributed ``/proc/irq/*/smp_affinity``);
``rss`` hashes the line name with a salt drawn from the kernel's named
RNG streams (RSS-style flow hashing — deterministic and replayable,
because the salt comes from the ``"steering"`` stream and is drawn only
on multi-core machines).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

from ..sim.randomness import derive_seed

STEERING_AFFINITY = "affinity"
STEERING_RSS = "rss"
STEERING_POLICIES = (STEERING_AFFINITY, STEERING_RSS)

ROLE_HOUSEKEEPING = "housekeeping"
ROLE_POLLING = "polling"
ROLE_ISOLATED = "isolated"

#: Per-core Perfetto track ids are carved out of a small fixed range in
#: the exporter; eight cores is far beyond any experiment in the repo.
MAX_CORES = 8

#: How many dedicated polling cores ``isolate_polling`` may claim — one
#: per router device (the topology has two NICs).
MAX_POLLING_CORES = 2


@dataclass(frozen=True)
class MachineSpec:
    """Frozen description of the simulated machine's core topology."""

    cores: int = 1
    steering: str = STEERING_AFFINITY
    isolate_polling: bool = False
    #: Upper bound of the hybrid (NAPI-style) driver's adaptive
    #: interrupt-coalescing timer, microseconds; 0 disables coalescing.
    coalesce_us: float = 0.0

    def __post_init__(self) -> None:
        if not isinstance(self.cores, int) or isinstance(self.cores, bool):
            raise TypeError("cores must be an int, got %r" % (self.cores,))
        if not 1 <= self.cores <= MAX_CORES:
            raise ValueError(
                "cores must be in [1, %d], got %d" % (MAX_CORES, self.cores)
            )
        if self.steering not in STEERING_POLICIES:
            raise ValueError(
                "steering must be one of %r, got %r"
                % (STEERING_POLICIES, self.steering)
            )
        if not isinstance(self.isolate_polling, bool):
            raise TypeError(
                "isolate_polling must be a bool, got %r"
                % (self.isolate_polling,)
            )
        coalesce = self.coalesce_us
        if isinstance(coalesce, bool) or not isinstance(coalesce, (int, float)):
            raise TypeError(
                "coalesce_us must be a number, got %r" % (coalesce,)
            )
        if coalesce < 0:
            raise ValueError("coalesce_us must be >= 0, got %r" % (coalesce,))

    # ------------------------------------------------------------------
    # Derived topology
    # ------------------------------------------------------------------

    def roles(self) -> Tuple[str, ...]:
        """Role of each core, by core index."""
        if self.cores == 1:
            return (ROLE_HOUSEKEEPING,)
        out = [ROLE_HOUSEKEEPING]
        polling = (
            min(MAX_POLLING_CORES, self.cores - 1) if self.isolate_polling else 0
        )
        out.extend([ROLE_POLLING] * polling)
        out.extend([ROLE_ISOLATED] * (self.cores - 1 - polling))
        return tuple(out)

    def polling_cores(self) -> Tuple[int, ...]:
        """Cores the polling daemons are pinned to (core 0 when none
        are dedicated)."""
        dedicated = tuple(
            index
            for index, role in enumerate(self.roles())
            if role == ROLE_POLLING
        )
        return dedicated if dedicated else (0,)

    def irq_cores(self) -> Tuple[int, ...]:
        """Eligible steering targets for device interrupt lines."""
        roles = self.roles()
        isolated = tuple(
            index for index, role in enumerate(roles) if role == ROLE_ISOLATED
        )
        if isolated:
            return isolated
        return tuple(
            index
            for index, role in enumerate(roles)
            if role == ROLE_HOUSEKEEPING
        )

    @property
    def coalesce_ns(self) -> int:
        return int(round(self.coalesce_us * 1_000))

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "cores": self.cores,
            "steering": self.steering,
            "isolate_polling": self.isolate_polling,
            "coalesce_us": self.coalesce_us,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "MachineSpec":
        return cls(**data)

    def replace(self, **changes) -> "MachineSpec":
        return replace(self, **changes)


#: The paper's machine: one core, nothing to steer.
SINGLE_CORE = MachineSpec()


class IRQSteering:
    """Maps interrupt-line names to cores under a :class:`MachineSpec`.

    Assignments are sticky (a line keeps its core for the life of the
    kernel) and recorded in :attr:`assignments` for tests, traces, and
    the fault-matrix report.
    """

    def __init__(self, machine: MachineSpec, salt: int = 0) -> None:
        self.machine = machine
        self.targets = machine.irq_cores()
        self.salt = salt
        self.assignments: Dict[str, int] = {}
        self._next = 0

    def core_for(self, name: str) -> int:
        """Target core for interrupt line ``name`` (idempotent)."""
        core = self.assignments.get(name)
        if core is None:
            targets = self.targets
            if self.machine.steering == STEERING_RSS:
                core = targets[derive_seed(self.salt, name) % len(targets)]
            else:
                core = targets[self._next % len(targets)]
                self._next += 1
            self.assignments[name] = core
        return core
