"""Adversarial traffic: livelock as the attack vector.

The paper's generators are polite — paced, Poisson, bursty — but its
core claim is about *hostile* input rates: "a host may be subject to
congestive collapse ... even as the result of a deliberate attack"
(§1). These generators model the two canonical hostile arrival
processes, plus their combination with legitimate background traffic:

* :class:`SynFloodGenerator` — a SYN-flood/DDoS source: a Poisson
  aggregate of many spoofed short flows, with a dialable peak intensity
  and ramp / sustain / stop phases, so one trial can cover onset,
  steady-state overload and the recovery edge;
* :class:`FlashCrowdGenerator` — a flash crowd: many concurrent users
  whose per-request popularity follows a Zipf law, arriving in on/off
  waves (the "everyone reloads the same page" shape);
* :class:`CompositeGenerator` — an attack layered over legitimate
  background traffic, so goodput for the *legit* flows can be measured
  separately from raw forwarding throughput.

Determinism contract: every stochastic decision (spoofed addresses,
Zipf draws, inter-arrival gaps, on/off phase lengths) comes from the
``random.Random`` stream handed in by the caller — in the harness, a
named :class:`~repro.sim.randomness.RandomStreams` stream — so trials
with adversarial workloads are exactly as reproducible as the polite
ones.
"""

from __future__ import annotations

import bisect
import random
from typing import Optional

from ..sim.units import NS_PER_SEC
from .generators import TrafficGenerator


class SynFloodGenerator(TrafficGenerator):
    """Spoofed-source flood with ramp / sustain / stop phases.

    The aggregate arrival process is Poisson at the phase's current
    rate: during the first ``ramp_s`` seconds the rate climbs linearly
    from ``floor_fraction * rate_pps`` to ``rate_pps``; it then sustains
    at ``rate_pps`` for ``sustain_s`` seconds (None = until the trial
    ends or :meth:`stop` is called); after the sustain window the source
    goes quiet on its own (``finished`` becomes True) — modelling an
    attack that stops, which is what recovery measurements need.

    Every packet carries a source address spoofed uniformly from
    ``spoof_hosts`` host numbers within the source /16 — many short
    flows, no two-way state.
    """

    def __init__(
        self,
        sim,
        nic,
        rate_pps: float,
        rng: random.Random,
        ramp_s: float = 0.0,
        sustain_s: Optional[float] = None,
        floor_fraction: float = 0.1,
        spoof_hosts: int = 4096,
        **kwargs,
    ) -> None:
        kwargs.setdefault("flow", "synflood")
        kwargs.setdefault("name", "synflood")
        kwargs.setdefault("dst_port", 80)
        super().__init__(sim, nic, **kwargs)
        if rate_pps <= 0:
            raise ValueError("rate must be positive")
        if rng is None:
            raise ValueError("a SYN flood needs an rng stream (spoofing)")
        if ramp_s < 0:
            raise ValueError("ramp_s must be non-negative")
        if sustain_s is not None and sustain_s < 0:
            raise ValueError("sustain_s must be non-negative")
        if not 0.0 < floor_fraction <= 1.0:
            raise ValueError("floor_fraction must be in (0, 1]")
        if spoof_hosts <= 0:
            raise ValueError("spoof_hosts must be positive")
        self.rate_pps = rate_pps
        self.rng = rng
        self.ramp_ns = int(ramp_s * NS_PER_SEC)
        self.sustain_ns = (
            None if sustain_s is None else int(sustain_s * NS_PER_SEC)
        )
        self.floor_fraction = floor_fraction
        self.spoof_hosts = spoof_hosts
        #: Host-number base for spoofed sources: the configured ``src``
        #: address's /16, so the flood looks like it comes from inside
        #: the source network (no reverse route needed).
        self._spoof_base = self.src & 0xFFFF0000
        self._t0 = 0
        #: True once the sustain window has elapsed and the flood went
        #: quiet on its own (distinct from :attr:`stopped`).
        self.finished = False

    # ------------------------------------------------------------------

    def _current_rate(self, t_ns: int) -> float:
        """The flood's target rate ``t_ns`` after start (0 = over)."""
        elapsed = t_ns - self._t0
        if self.ramp_ns > 0 and elapsed < self.ramp_ns:
            floor = self.rate_pps * self.floor_fraction
            return floor + (self.rate_pps - floor) * elapsed / self.ramp_ns
        if self.sustain_ns is not None and elapsed >= (
            self.ramp_ns + self.sustain_ns
        ):
            return 0.0
        return self.rate_pps

    def _next_gap(self, rate: float) -> int:
        gap = int(self.rng.expovariate(1.0) * (NS_PER_SEC / rate))
        return max(self.min_interval_ns, gap)

    def _schedule_first(self) -> None:
        self._t0 = self.sim.now
        rate = self._current_rate(self.sim.now)
        if rate <= 0.0:
            self.finished = True
            return
        self._pending = self.sim.schedule(
            self._next_gap(rate), self._tick, label="sleep:" + self.name
        )

    def _tick(self) -> None:
        # One spoofed short flow per packet: randomize the source before
        # the shared emission path reads it.
        self.src = self._spoof_base | self.rng.randrange(self.spoof_hosts)
        self._emit()
        rate = self._current_rate(self.sim.now)
        if rate <= 0.0:
            self._pending = None
            self.finished = True
            return
        self._pending = self.sim.schedule(
            self._next_gap(rate), self._tick, label="sleep:" + self.name
        )


class FlashCrowdGenerator(TrafficGenerator):
    """Zipf-popularity on/off flows over many concurrent users.

    ``num_users`` independent users share one aggregate arrival process:
    while the crowd is *on*, packets arrive Poisson at ``rate_pps`` and
    each packet belongs to a user drawn from a Zipf(``zipf_exponent``)
    popularity law (user 0 the most popular); the crowd then goes *off*
    for an exponentially distributed lull. On/off wave lengths have
    means ``mean_on_s`` / ``mean_off_s``. Each packet's flow label and
    destination port identify its user, so per-flow treatment is
    observable downstream.
    """

    def __init__(
        self,
        sim,
        nic,
        rate_pps: float,
        rng: random.Random,
        num_users: int = 64,
        zipf_exponent: float = 1.1,
        mean_on_s: float = 0.02,
        mean_off_s: float = 0.01,
        **kwargs,
    ) -> None:
        kwargs.setdefault("flow", "flashcrowd")
        kwargs.setdefault("name", "flashcrowd")
        super().__init__(sim, nic, **kwargs)
        if rate_pps <= 0:
            raise ValueError("rate must be positive")
        if rng is None:
            raise ValueError("a flash crowd needs an rng stream")
        if num_users <= 0:
            raise ValueError("num_users must be positive")
        if zipf_exponent <= 0:
            raise ValueError("zipf_exponent must be positive")
        if mean_on_s <= 0 or mean_off_s < 0:
            raise ValueError("on/off means must be positive / non-negative")
        self.rate_pps = rate_pps
        self.rng = rng
        self.num_users = num_users
        self.zipf_exponent = zipf_exponent
        self.mean_on_ns = mean_on_s * NS_PER_SEC
        self.mean_off_ns = mean_off_s * NS_PER_SEC
        self.mean_interval_ns = NS_PER_SEC / rate_pps
        # Zipf popularity CDF over users (rank r gets weight 1/(r+1)^s).
        cdf = []
        total = 0.0
        for rank in range(num_users):
            total += 1.0 / ((rank + 1) ** zipf_exponent)
            cdf.append(total)
        self._zipf_cdf = cdf
        self._zipf_total = total
        self._phase_end_ns = 0

    # ------------------------------------------------------------------

    def _pick_user(self) -> int:
        point = self.rng.random() * self._zipf_total
        return min(
            bisect.bisect_left(self._zipf_cdf, point), self.num_users - 1
        )

    def _next_gap(self) -> int:
        gap = int(self.rng.expovariate(1.0) * self.mean_interval_ns)
        return max(self.min_interval_ns, gap)

    def _draw_phase(self, mean_ns: float) -> int:
        if mean_ns <= 0:
            return 0
        return max(1, int(self.rng.expovariate(1.0) * mean_ns))

    def _schedule_first(self) -> None:
        self._phase_end_ns = self.sim.now + self._draw_phase(self.mean_on_ns)
        self._pending = self.sim.schedule(
            self._next_gap(), self._tick, label="sleep:" + self.name
        )

    def _tick(self) -> None:
        user = self._pick_user()
        self.flow = "user%d" % user
        self.dst_port = 1024 + user
        self._emit()
        gap = self._next_gap()
        if self.sim.now + gap >= self._phase_end_ns:
            # The on-wave ends before the next arrival would land: go
            # quiet for an off-lull, then start the next wave.
            lull = self._draw_phase(self.mean_off_ns)
            delay = max(0, self._phase_end_ns - self.sim.now) + lull
            self._pending = self.sim.schedule(
                max(1, delay), self._resume, label="sleep:" + self.name
            )
            return
        self._pending = self.sim.schedule(
            gap, self._tick, label="sleep:" + self.name
        )

    def _resume(self) -> None:
        self._phase_end_ns = self.sim.now + self._draw_phase(self.mean_on_ns)
        self._pending = self.sim.schedule(
            self._next_gap(), self._tick, label="sleep:" + self.name
        )


class CompositeGenerator(TrafficGenerator):
    """An attack layered over legitimate background traffic.

    Wraps two already-constructed (not started) generators and presents
    the combined source through the normal
    :class:`~repro.workloads.generators.TrafficGenerator` lifecycle:
    ``start``/``stop`` fan out to both children, ``sent`` sums theirs,
    and the trace hook propagates. The children keep their own flow
    labels, so legit and attack packets stay distinguishable end to end.
    """

    def __init__(
        self,
        sim,
        background: TrafficGenerator,
        attack: TrafficGenerator,
        name: str = "composite",
    ) -> None:
        # Deliberately not calling TrafficGenerator.__init__: the
        # composite emits nothing itself, so it carries only lifecycle
        # state and delegates the data path entirely to its children.
        self.sim = sim
        self.name = name
        self.background = background
        self.attack = attack
        self.children = (background, attack)
        self.started = False
        self.stopped = False
        self._trace = None

    @property
    def sent(self) -> int:
        return sum(child.sent for child in self.children)

    @property
    def trace(self):
        return self._trace

    @trace.setter
    def trace(self, buffer) -> None:
        self._trace = buffer
        for child in self.children:
            child.trace = buffer

    def start(self) -> "CompositeGenerator":
        if self.stopped:
            raise RuntimeError(
                "generator %s was stopped and cannot be restarted; "
                "create a new generator instead" % self.name
            )
        if self.started:
            raise RuntimeError("generator %s already started" % self.name)
        self.started = True
        for child in self.children:
            child.start()
        return self

    def stop(self) -> None:
        self.stopped = True
        for child in self.children:
            child.stop()

    def _schedule_first(self) -> None:  # pragma: no cover - never armed
        raise NotImplementedError("composite generators do not self-emit")
