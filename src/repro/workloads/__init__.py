"""Traffic workloads (the off-CPU source host)."""

from .generators import (
    BurstyGenerator,
    ConstantRateGenerator,
    PoissonGenerator,
    TrafficGenerator,
)

__all__ = [
    "BurstyGenerator",
    "ConstantRateGenerator",
    "PoissonGenerator",
    "TrafficGenerator",
]
