"""Traffic workloads (the off-CPU source host)."""

from .adversarial import (
    CompositeGenerator,
    FlashCrowdGenerator,
    SynFloodGenerator,
)
from .generators import (
    BurstyGenerator,
    ConstantRateGenerator,
    PoissonGenerator,
    TrafficGenerator,
)

__all__ = [
    "BurstyGenerator",
    "CompositeGenerator",
    "ConstantRateGenerator",
    "FlashCrowdGenerator",
    "PoissonGenerator",
    "SynFloodGenerator",
    "TrafficGenerator",
]
