"""Traffic generators: the off-CPU source host.

The paper's source host is a separate machine whose only visible effect
is the arrival process at the router's input interface, so generators
are environment processes that inject packets directly into a NIC's RX
ring — no router CPU is consumed until the interrupt fires.

Three arrival processes cover the experiments and the burst analyses:

* :class:`ConstantRateGenerator` — paced stream at a target rate (the
  paper's generator, "averaged over several seconds"), with optional
  per-packet jitter ("short-term rates varied somewhat from the mean");
* :class:`PoissonGenerator` — memoryless arrivals at a mean rate;
* :class:`BurstyGenerator` — on/off bursts at wire speed (§4.3's
  "transient overload from short-term bursty arrivals").

Rates are silently capped at the wire's maximum packet rate: a 10 Mb/s
Ethernet cannot deliver more than ~14,880 minimum-size packets/second no
matter what the source does.

Generators are *callback-driven*: each one re-arms a single simulator
callback per emission instead of trampolining a generator coroutine
through ``Process.deliver`` / ``_body.send`` per packet. The callback
structure mirrors the old coroutine wake-for-wake — RNG draws happen at
the same instants, every ``schedule`` call happens at the same instant,
and each firing performs the same number of ``schedule`` calls — so
event sequence numbers, arrival timestamps, and therefore entire trials
are bit-identical to the coroutine implementation (enforced by the
golden determinism tests).
"""

from __future__ import annotations

import random
from typing import Optional

from .._fastcore import packetpath
from ..hw.link import MIN_PACKET_TIME_NS, packet_time_ns
from ..hw.nic import NIC
from ..net.addresses import parse_ip
from ..net.packet import Packet, PacketPool
from ..sim.events import Event
from ..sim.simulator import Simulator
from ..sim.units import NS_PER_SEC
from ..trace.buffer import PKT_INJECT


class TrafficGenerator:
    """Base generator: addressing, pacing floor, counters, lifecycle.

    Lifecycle: ``start()`` arms the first emission callback; ``stop()``
    cancels the pending callback and *retires* the generator — a stopped
    generator cannot be restarted (its arrival process has a hole in it
    that no restart semantics could make reproducible), and a second
    ``start()`` says so explicitly.
    """

    def __init__(
        self,
        sim: Simulator,
        nic: NIC,
        src: str = "10.1.0.2",
        dst: str = "10.2.0.2",
        dst_port: int = 9,
        payload_bytes: int = 4,
        flow: str = "default",
        name: str = "traffic",
        pool: Optional[PacketPool] = None,
        wire=None,
    ) -> None:
        self.sim = sim
        self.nic = nic
        self.wire = wire
        self.src = parse_ip(src)
        self.dst = parse_ip(dst)
        self.dst_port = dst_port
        self.payload_bytes = payload_bytes
        self.flow = flow
        self.name = name
        self.pool = pool
        #: Minimum spacing between packets: wire serialisation time.
        self.min_interval_ns = packet_time_ns(payload_bytes)
        self.sent = 0
        self.started = False
        self.stopped = False
        #: Trace hook (:class:`repro.trace.TraceBuffer`), set by the
        #: trial harness when tracing is armed; None on the fast path.
        self.trace = None
        self._pending: Optional[Event] = None
        # Hot-path bindings: one emission touches these every packet.
        # A wire is only interposed when link faults are armed; the
        # fault-free fast path keeps the direct NIC binding.
        if wire is not None:
            self._receive_from_wire = wire.deliver
        else:
            self._receive_from_wire = nic.receive_from_wire

    def start(self) -> "TrafficGenerator":
        if self.stopped:
            raise RuntimeError(
                "generator %s was stopped and cannot be restarted; "
                "create a new generator instead" % self.name
            )
        if self.started:
            raise RuntimeError("generator %s already started" % self.name)
        self.started = True
        # Compiled tick bodies attach here, after the harness has had
        # its chance to arm traces/wires and only when the target NIC
        # runs the compiled packet pipeline (no-op otherwise).
        packetpath.bind_generator(self)
        self._schedule_first()
        return self

    def stop(self) -> None:
        """Halt emission permanently (idempotent, ok before start)."""
        self.stopped = True
        if self._pending is not None:
            self.sim.cancel(self._pending)
            self._pending = None

    def _emit(self) -> Packet:
        trace = self.trace
        if trace is not None:
            trace.record(PKT_INJECT, self.name, self.sent)
        pool = self.pool
        if pool is not None:
            packet = pool.acquire(
                self.src,
                self.dst,
                dst_port=self.dst_port,
                payload_bytes=self.payload_bytes,
                created_ns=self.sim.now,
                flow=self.flow,
            )
            if not self._receive_from_wire(packet):
                # RX-ring overflow: the packet never entered the system,
                # so ownership is still ours — recycle it immediately.
                pool.release(packet)
        else:
            packet = Packet(
                src=self.src,
                dst=self.dst,
                dst_port=self.dst_port,
                payload_bytes=self.payload_bytes,
                created_ns=self.sim.now,
                flow=self.flow,
            )
            self._receive_from_wire(packet)
        self.sent += 1
        return packet

    def _schedule_first(self) -> None:
        raise NotImplementedError


class ConstantRateGenerator(TrafficGenerator):
    """Paced stream at ``rate_pps``, optionally jittered.

    ``jitter_fraction`` perturbs each gap uniformly by ±fraction (mean
    preserved), modelling the paper's "not a precisely paced stream".
    """

    def __init__(
        self,
        sim: Simulator,
        nic: NIC,
        rate_pps: float,
        jitter_fraction: float = 0.0,
        rng: Optional[random.Random] = None,
        **kwargs,
    ) -> None:
        super().__init__(sim, nic, **kwargs)
        if rate_pps <= 0:
            raise ValueError("rate must be positive")
        if not 0.0 <= jitter_fraction < 1.0:
            raise ValueError("jitter fraction must be in [0, 1)")
        if jitter_fraction > 0.0 and rng is None:
            raise ValueError("jittered generator needs an rng stream")
        self.rate_pps = rate_pps
        self.jitter_fraction = jitter_fraction
        self.rng = rng
        self.interval_ns = max(
            self.min_interval_ns, int(round(NS_PER_SEC / rate_pps))
        )

    def _next_gap(self) -> int:
        gap = self.interval_ns
        if self.jitter_fraction > 0.0:
            spread = self.jitter_fraction
            gap = int(gap * self.rng.uniform(1.0 - spread, 1.0 + spread))
            gap = max(self.min_interval_ns, gap)
        return gap

    def _schedule_first(self) -> None:
        self._pending = self.sim.schedule(
            self._next_gap(), self._tick, label="sleep:" + self.name
        )

    def _tick(self) -> None:
        self._emit()
        self._pending = self.sim.schedule(
            self._next_gap(), self._tick, label="sleep:" + self.name
        )


class PoissonGenerator(TrafficGenerator):
    """Poisson arrivals at mean ``rate_pps`` (floored at wire spacing)."""

    def __init__(
        self,
        sim: Simulator,
        nic: NIC,
        rate_pps: float,
        rng: random.Random,
        **kwargs,
    ) -> None:
        super().__init__(sim, nic, **kwargs)
        if rate_pps <= 0:
            raise ValueError("rate must be positive")
        self.rate_pps = rate_pps
        self.rng = rng
        self.mean_interval_ns = NS_PER_SEC / rate_pps

    def _next_gap(self) -> int:
        gap = int(self.rng.expovariate(1.0) * self.mean_interval_ns)
        return max(self.min_interval_ns, gap)

    def _schedule_first(self) -> None:
        self._pending = self.sim.schedule(
            self._next_gap(), self._tick, label="sleep:" + self.name
        )

    def _tick(self) -> None:
        self._emit()
        self._pending = self.sim.schedule(
            self._next_gap(), self._tick, label="sleep:" + self.name
        )


class BurstyGenerator(TrafficGenerator):
    """On/off bursts: ``burst_size`` packets back-to-back at wire speed,
    then a gap sized so the long-run average is ``rate_pps``.

    The callback chain preserves the coroutine's exact wake structure:
    emissions are one callback per packet at wire spacing, and a non-zero
    inter-burst gap is its own intermediate callback (the coroutine's
    ``Sleep(gap)`` wake-up, which emitted nothing) so that every event
    keeps its original fire time *and* scheduling instant.
    """

    def __init__(
        self,
        sim: Simulator,
        nic: NIC,
        rate_pps: float,
        burst_size: int = 32,
        rng: Optional[random.Random] = None,
        **kwargs,
    ) -> None:
        super().__init__(sim, nic, **kwargs)
        if rate_pps <= 0:
            raise ValueError("rate must be positive")
        if burst_size <= 0:
            raise ValueError("burst size must be positive")
        self.rate_pps = rate_pps
        self.burst_size = burst_size
        self.rng = rng
        burst_span_ns = burst_size * self.min_interval_ns
        period_ns = burst_size * NS_PER_SEC / rate_pps
        self.gap_ns = max(0, int(period_ns - burst_span_ns))
        self._burst_position = 0

    def _schedule_first(self) -> None:
        self._burst_position = 0
        self._arm_emit()

    def _arm_emit(self) -> None:
        self._pending = self.sim.schedule(
            self.min_interval_ns, self._tick, label="sleep:" + self.name
        )

    def _tick(self) -> None:
        self._emit()
        self._burst_position += 1
        if self._burst_position < self.burst_size:
            self._arm_emit()
            return
        # Burst over: compute the inter-burst gap (RNG draw at the same
        # instant the coroutine drew it, i.e. right after the last
        # emission of the burst).
        self._burst_position = 0
        gap = self.gap_ns
        if self.rng is not None and gap > 0:
            gap = int(gap * self.rng.uniform(0.5, 1.5))
        if gap > 0:
            self._pending = self.sim.schedule(
                gap, self._gap_over, label="sleep:" + self.name
            )
        else:
            self._arm_emit()

    def _gap_over(self) -> None:
        self._arm_emit()
