"""The fault-injection runtime: one armed :class:`FaultInjector` per trial.

The injector owns all mutable fault state — private RNG streams, the
open/closed state of stall and brown-out windows, the held re-ordered
frame — and exposes tiny decision hooks that the hardware models consult
from their hot paths. Every hook site is guarded by a ``faults is None``
check, so a disarmed run performs no draws, schedules no events, and
executes the exact PR-2 instruction stream.

Counter conventions: every injected fault increments a ``faults.*``
probe, so fault activity shows up in ``TrialResult.counters`` next to
the queues and NICs it perturbed.
"""

from __future__ import annotations

from typing import Any, List, Optional

from ..sim.errors import FaultError
from ..sim.randomness import RandomStreams
from .plan import FaultPlan

#: Fault decisions returned by :meth:`FaultInjector.on_irq_request`.
IRQ_PASS = 0
IRQ_DROP = -1
IRQ_DUPLICATE = 1


class FaultInjector:
    """Runtime state for one armed :class:`FaultPlan`.

    Build it with the topology's probe registry, then :meth:`arm` it into
    a router **before** ``router.start()``. All randomness is drawn from
    streams derived from ``plan.seed``, independent of the trial seed.
    """

    def __init__(self, plan: FaultPlan, sim, probes) -> None:
        plan.validate()
        self.plan = plan
        self.sim = sim
        self.probes = probes
        self.armed = False
        self._streams = RandomStreams(plan.seed)
        self._irq_rng = self._streams.stream("faults.irq")
        self._frame_rng = self._streams.stream("faults.frame")
        self._tx_rng = self._streams.stream("faults.tx")
        self._stall_rng = self._streams.stream("faults.stall")
        self._wire_rng = self._streams.stream("faults.wire")
        self._clock_rng = self._streams.stream("faults.clock")
        self._spurious_rng = self._streams.stream("faults.spurious")

        counter = probes.counter
        self.rx_irq_lost = counter("faults.rx_irq_lost")
        self.rx_irq_duplicated = counter("faults.rx_irq_duplicated")
        self.spurious_irqs = counter("faults.spurious_irqs")
        self.frame_drops = counter("faults.frame_drops")
        self.frames_corrupted = counter("faults.frames_corrupted")
        self.tx_spikes = counter("faults.tx_spikes")
        self.rx_stall_windows = counter("faults.rx_stall_windows")
        self.brownouts = counter("faults.brownouts")
        self.wire_drops = counter("faults.wire_drops")
        self.frames_reordered = counter("faults.frames_reordered")

        self._rx_stalled = False
        self._browned_out = False
        self._held_frame: Optional[Any] = None
        self._held_wire = None
        self._nics: List[Any] = []
        self._router = None
        self._events: List[Any] = []

    # ------------------------------------------------------------------
    # Arming / disarming
    # ------------------------------------------------------------------

    def arm(self, router) -> "FaultInjector":
        """Attach the hooks to ``router``'s hardware. Must run before the
        router starts (the clock reads its fault source at start)."""
        if self.armed:
            raise FaultError("fault injector already armed")
        if router._started:
            raise FaultError("cannot arm faults into a started router")
        self.armed = True
        self._router = router
        plan = self.plan
        self._nics = [router.nic_in, router.nic_out]
        for nic in self._nics:
            nic.faults = self
        if plan.clock_armed:
            router.kernel.clock.faults = self
        if plan.rx_stall_mean_interval_ns > 0:
            self._schedule_stall_start()
        if plan.brownout_mean_interval_ns > 0:
            self._schedule_brownout_start()
        if plan.spurious_rx_irq_rate_pps > 0:
            self._schedule_spurious()
        return self

    def bind_lines(self) -> None:
        """Attach the interrupt-fault hook to the RX lines. Called by
        ``Router.start()`` once the drivers have created their lines."""
        if not self.armed:
            return
        plan = self.plan
        if not (plan.rx_irq_drop_prob or plan.rx_irq_duplicate_prob):
            return
        for line in self._rx_lines():
            if line is not None:
                line.faults = self

    def disarm(self) -> None:
        """Detach every hook and flush in-flight fault state. Used by the
        teardown path so draining cannot be blocked by an open stall or
        brown-out window."""
        if not self.armed:
            return
        self.armed = False
        for event in self._events:
            self.sim.cancel(event)
        self._events = []
        self.flush_wire()
        self._rx_stalled = False
        self._browned_out = False
        for nic in self._nics:
            nic.faults = None
            if len(nic._rx_ring) and nic.rx_line is not None:
                nic.rx_line.request()
        router = self._router
        if router is not None and router.kernel.clock.faults is self:
            router.kernel.clock.faults = None
        for line in self._rx_lines():
            if line is not None and line.faults is self:
                line.faults = None

    def _rx_lines(self):
        router = self._router
        if router is None:
            return []
        return [nic.rx_line for nic in self._nics]

    def summary(self) -> dict:
        """Injected-fault counts, keyed without the ``faults.`` prefix."""
        return {
            name[len("faults."):]: value
            for name, value in self.probes.dump().items()
            if name.startswith("faults.") and value > 0
        }

    # ------------------------------------------------------------------
    # Interrupt-line hook (repro.hw.interrupts)
    # ------------------------------------------------------------------

    def on_irq_request(self, line) -> int:
        """Fault decision for one RX interrupt assertion."""
        plan = self.plan
        if plan.rx_irq_drop_prob and self._irq_rng.random() < plan.rx_irq_drop_prob:
            self.rx_irq_lost.increment()
            return IRQ_DROP
        if (
            plan.rx_irq_duplicate_prob
            and self._irq_rng.random() < plan.rx_irq_duplicate_prob
        ):
            self.rx_irq_duplicated.increment()
            return IRQ_DUPLICATE
        return IRQ_PASS

    def _schedule_spurious(self) -> None:
        gap = self._spurious_rng.expovariate(
            self.plan.spurious_rx_irq_rate_pps
        )
        event = self.sim.schedule(
            max(1, int(gap * 1e9)), self._fire_spurious, label="faults:spurious"
        )
        self._events.append(event)

    def _fire_spurious(self) -> None:
        if not self.armed:
            return
        router = self._router
        line = router.nic_in.rx_line if router is not None else None
        if line is not None:
            self.spurious_irqs.increment()
            # A genuine spurious assert: the handler will find nothing.
            line.request()
        self._schedule_spurious()

    # ------------------------------------------------------------------
    # NIC hooks (repro.hw.nic)
    # ------------------------------------------------------------------

    def on_wire_frame(self, nic, packet) -> bool:
        """Frame-integrity decision as a frame reaches ``nic``. Returns
        False when the frame is lost (caller rejects it, ownership stays
        with the sender)."""
        plan = self.plan
        if plan.frame_drop_prob and self._frame_rng.random() < plan.frame_drop_prob:
            self.frame_drops.increment()
            return False
        if (
            plan.frame_corrupt_prob
            and self._frame_rng.random() < plan.frame_corrupt_prob
        ):
            self.frames_corrupted.increment()
            try:
                packet.mark_corrupted()
            except AttributeError:
                pass  # foreign payload without lifecycle marks (tests)
        return True

    def rx_stalled(self) -> bool:
        """True while a DMA stall window hides the RX ring from the host."""
        return self._rx_stalled

    def tx_extra_delay(self, nic) -> int:
        """Extra transmit-complete latency for the next transmission."""
        plan = self.plan
        if plan.tx_spike_prob and self._tx_rng.random() < plan.tx_spike_prob:
            self.tx_spikes.increment()
            return plan.tx_spike_extra_ns
        return 0

    def _schedule_stall_start(self) -> None:
        gap = self._stall_rng.expovariate(
            1.0 / self.plan.rx_stall_mean_interval_ns
        )
        event = self.sim.schedule(
            max(1, int(gap)), self._stall_start, label="faults:stall"
        )
        self._events.append(event)

    def _stall_start(self) -> None:
        if not self.armed:
            return
        self._rx_stalled = True
        self.rx_stall_windows.increment()
        event = self.sim.schedule(
            self.plan.rx_stall_duration_ns, self._stall_end, label="faults:stall"
        )
        self._events.append(event)

    def _stall_end(self) -> None:
        self._rx_stalled = False
        if not self.armed:
            return
        # The DMA engine catches up: the backlog becomes visible and the
        # device re-asserts for it.
        for nic in self._nics:
            if len(nic._rx_ring) and nic.rx_line is not None:
                nic.rx_line.request()
        self._schedule_stall_start()

    # ------------------------------------------------------------------
    # Wire hooks (repro.hw.link)
    # ------------------------------------------------------------------

    def wire_deliver(self, wire, packet) -> bool:
        """Deliver ``packet`` through a faulty wire. Returns False when
        the frame is lost *now* and ownership stays with the caller; a
        True return means the wire took responsibility (possibly holding
        the frame briefly for reordering)."""
        if self._browned_out:
            self.wire_drops.increment()
            return False
        plan = self.plan
        held = self._held_frame
        if held is not None:
            # Deliver the newcomer first, then the held frame: a pairwise
            # swap on the wire. The wire takes ownership of both (the
            # caller sees True), so rejections recycle through the wire.
            self._held_frame = None
            self.frames_reordered.increment()
            wire.consume(packet)
            wire.consume(held)
            return True
        if plan.reorder_prob and self._wire_rng.random() < plan.reorder_prob:
            self._held_frame = packet
            self._held_wire = wire
            return True
        return wire.pass_through(packet)

    def flush_wire(self) -> None:
        """Deliver any held (reordered) frame immediately."""
        held, wire = self._held_frame, self._held_wire
        self._held_frame = None
        if held is not None and wire is not None:
            wire.consume(held)

    def _schedule_brownout_start(self) -> None:
        gap = self._wire_rng.expovariate(
            1.0 / self.plan.brownout_mean_interval_ns
        )
        event = self.sim.schedule(
            max(1, int(gap)), self._brownout_start, label="faults:brownout"
        )
        self._events.append(event)

    def _brownout_start(self) -> None:
        if not self.armed:
            return
        self._browned_out = True
        self.brownouts.increment()
        event = self.sim.schedule(
            self.plan.brownout_duration_ns, self._brownout_end, label="faults:brownout"
        )
        self._events.append(event)

    def _brownout_end(self) -> None:
        self._browned_out = False
        if self.armed:
            self._schedule_brownout_start()

    # ------------------------------------------------------------------
    # Clock hooks (repro.hw.clock)
    # ------------------------------------------------------------------

    def next_tick_interval(self, base_ns: int) -> int:
        """The (jittered, drifted) interval before the next clock tick."""
        plan = self.plan
        interval = base_ns * (1.0 + plan.tick_drift_fraction)
        jitter = plan.tick_jitter_fraction
        if jitter:
            interval *= self._clock_rng.uniform(1.0 - jitter, 1.0 + jitter)
        return max(1, int(interval))

    def __repr__(self) -> str:
        return "FaultInjector(%s, %s)" % (
            "armed" if self.armed else "disarmed",
            self.plan,
        )
