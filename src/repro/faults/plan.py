"""Fault plans: the serialisable description of what to break, when.

A :class:`FaultPlan` is pure data — probabilities, window geometries and
a seed — with no runtime state, so it can be hashed into the trial
fingerprint, pickled across worker processes, written to JSON, and
compared for equality. All defaults are inert: ``FaultPlan()`` describes
a fault-free run and :meth:`FaultPlan.any_armed` is False for it.

Determinism contract: every stochastic decision the injector makes is
drawn from named :class:`~repro.sim.randomness.RandomStreams` derived
from ``plan.seed`` — never from the trial's own streams — so arming a
plan does not perturb the traffic generators' draws, and the same plan
always breaks the same packets at the same instants.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, fields, replace
from typing import Dict

from ..sim.errors import FaultError


@dataclass(frozen=True)
class FaultPlan:
    """Description of one deterministic fault-injection scenario."""

    #: Root seed for the injector's private random streams.
    seed: int = 0

    # ------------------------------------------------------------------
    # NIC interrupt faults (repro.hw.interrupts hooks)
    # ------------------------------------------------------------------
    #: Probability that an RX interrupt assertion is lost (the device
    #: raised the line but the controller never saw it; packets sit in
    #: the ring until a later arrival re-asserts).
    rx_irq_drop_prob: float = 0.0
    #: Probability that an RX interrupt assertion is duplicated (the
    #: second assert latches and redelivers after the handler returns).
    rx_irq_duplicate_prob: float = 0.0
    #: Mean rate of spurious RX interrupts (assertions with no packet
    #: behind them), as a Poisson process. 0 disables.
    spurious_rx_irq_rate_pps: float = 0.0

    # ------------------------------------------------------------------
    # RX descriptor / DMA stalls (repro.hw.nic hooks)
    # ------------------------------------------------------------------
    #: Mean interval between DMA stall windows (exponential); 0 disables.
    rx_stall_mean_interval_ns: int = 0
    #: Length of each stall window. While stalled, received descriptors
    #: are invisible to the host (``rx_pull`` returns nothing); the
    #: backlog becomes visible, and the RX line re-asserts, at stall end.
    rx_stall_duration_ns: int = 0

    # ------------------------------------------------------------------
    # Transmit-complete delay spikes (repro.hw.nic hooks)
    # ------------------------------------------------------------------
    #: Probability that one transmission takes ``tx_spike_extra_ns``
    #: longer than wire time (PHY retraining, pause frames, ...).
    tx_spike_prob: float = 0.0
    tx_spike_extra_ns: int = 0

    # ------------------------------------------------------------------
    # Frame integrity (repro.hw.nic hooks)
    # ------------------------------------------------------------------
    #: Probability a frame is lost before the RX ring sees it.
    frame_drop_prob: float = 0.0
    #: Probability a frame arrives corrupted; it is accepted by the NIC
    #: (our model's CRC covers only the link header) and dropped by IP
    #: input after header validation — late enough to waste CPU on it.
    frame_corrupt_prob: float = 0.0

    # ------------------------------------------------------------------
    # Link faults (repro.hw.link hooks)
    # ------------------------------------------------------------------
    #: Mean interval between link brown-outs (exponential); 0 disables.
    brownout_mean_interval_ns: int = 0
    #: Length of each brown-out: frames offered while the link is browned
    #: out are lost on the wire.
    brownout_duration_ns: int = 0
    #: Probability a frame is held on the wire and delivered immediately
    #: after its successor (pairwise reordering burst).
    reorder_prob: float = 0.0

    # ------------------------------------------------------------------
    # Clock faults (repro.hw.clock hooks)
    # ------------------------------------------------------------------
    #: Uniform per-tick jitter: each tick interval is scaled by a factor
    #: in [1 - j, 1 + j].
    tick_jitter_fraction: float = 0.0
    #: Constant multiplicative drift of the tick interval (positive =
    #: slow clock, negative = fast clock).
    tick_drift_fraction: float = 0.0

    # ------------------------------------------------------------------

    _PROBS = (
        "rx_irq_drop_prob",
        "rx_irq_duplicate_prob",
        "tx_spike_prob",
        "frame_drop_prob",
        "frame_corrupt_prob",
        "reorder_prob",
    )

    def validate(self) -> None:
        """Raise :class:`~repro.sim.errors.FaultError` on a malformed plan."""
        for name in self._PROBS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise FaultError("%s must be in [0, 1], got %r" % (name, value))
        for name in (
            "rx_stall_mean_interval_ns",
            "rx_stall_duration_ns",
            "tx_spike_extra_ns",
            "brownout_mean_interval_ns",
            "brownout_duration_ns",
        ):
            if getattr(self, name) < 0:
                raise FaultError("%s must be non-negative" % name)
        if self.rx_stall_mean_interval_ns > 0 and self.rx_stall_duration_ns <= 0:
            raise FaultError("rx stall windows need a positive duration")
        if self.brownout_mean_interval_ns > 0 and self.brownout_duration_ns <= 0:
            raise FaultError("brown-out windows need a positive duration")
        if not 0.0 <= self.tick_jitter_fraction < 1.0:
            raise FaultError("tick_jitter_fraction must be in [0, 1)")
        if not -0.5 <= self.tick_drift_fraction <= 0.5:
            raise FaultError("tick_drift_fraction must be in [-0.5, 0.5]")
        if self.tx_spike_prob > 0.0 and self.tx_spike_extra_ns <= 0:
            raise FaultError("tx spikes need a positive tx_spike_extra_ns")

    def any_armed(self) -> bool:
        """True if this plan injects anything at all."""
        return any(
            getattr(self, f.name)
            for f in fields(self)
            if f.name != "seed"
        )

    @property
    def clock_armed(self) -> bool:
        return bool(self.tick_jitter_fraction or self.tick_drift_fraction)

    @property
    def wire_armed(self) -> bool:
        return bool(self.brownout_mean_interval_ns or self.reorder_prob)

    # ------------------------------------------------------------------
    # Serialisation (CLI fault-plan files; the fingerprint uses repr)
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultPlan":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise FaultError("unknown FaultPlan fields: %s" % sorted(unknown))
        plan = cls(**data)
        plan.validate()
        return plan

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, blob: str) -> "FaultPlan":
        try:
            data = json.loads(blob)
        except ValueError as exc:
            raise FaultError("unparseable fault plan: %s" % exc) from None
        if not isinstance(data, dict):
            raise FaultError("fault plan JSON must be an object")
        return cls.from_dict(data)

    def with_options(self, **changes) -> "FaultPlan":
        updated = replace(self, **changes)
        updated.validate()
        return updated


#: Canned scenarios used by the CI fault matrix and the ``faultmatrix``
#: CLI command. Three plans, together covering every injection site.
CANNED_PLANS: Dict[str, FaultPlan] = {
    # A NIC losing its mind: lost/duplicated interrupts, damaged frames.
    "lossy-nic": FaultPlan(
        seed=101,
        rx_irq_drop_prob=0.10,
        rx_irq_duplicate_prob=0.05,
        frame_drop_prob=0.05,
        frame_corrupt_prob=0.02,
    ),
    # Stuck DMA plus a congested link: stall windows, slow transmits,
    # brown-outs.
    "stalled-dma": FaultPlan(
        seed=202,
        rx_stall_mean_interval_ns=20_000_000,
        rx_stall_duration_ns=2_000_000,
        tx_spike_prob=0.01,
        tx_spike_extra_ns=500_000,
        brownout_mean_interval_ns=50_000_000,
        brownout_duration_ns=5_000_000,
    ),
    # A flaky timebase and a noisy bus: jittered/drifting ticks,
    # spurious interrupts, reordered frames.
    "flaky-clock": FaultPlan(
        seed=303,
        tick_jitter_fraction=0.30,
        tick_drift_fraction=0.05,
        spurious_rx_irq_rate_pps=500.0,
        reorder_prob=0.05,
    ),
}


def canned_plan(name: str) -> FaultPlan:
    """Look up a canned plan by name; raises FaultError on unknown names."""
    try:
        return CANNED_PLANS[name]
    except KeyError:
        raise FaultError(
            "unknown canned fault plan %r (have: %s)"
            % (name, ", ".join(sorted(CANNED_PLANS)))
        ) from None
