"""Deterministic fault injection at the hardware seams.

The paper's thesis is that a kernel must keep making forward progress
under hostile *input*; this subsystem lets the reproduction be tested
under hostile *conditions* as well: lost, spurious and duplicated RX
interrupts, stuck DMA (RX descriptor stall windows), transmit-complete
delay spikes, corrupt and dropped frames, link brown-outs, frame
reordering, and clock-tick jitter/drift.

Two pieces:

* :class:`FaultPlan` — the *description* of the faults: a frozen,
  seeded, serialisable dataclass. Plans enter the trial fingerprint, so
  the sweep engine's result cache stays correct, and two runs of the
  same (config, rate, seed, plan) are byte-identical.
* :class:`FaultInjector` — the *runtime*: built from a plan, armed into
  a router before ``start()``. It attaches itself to the hook points in
  :mod:`repro.hw.nic`, :mod:`repro.hw.interrupts`, :mod:`repro.hw.link`
  and :mod:`repro.hw.clock`; with no injector armed every hook is a
  ``None`` check and the PR-2 fast path is untouched.
"""

from .plan import CANNED_PLANS, FaultPlan, canned_plan
from .inject import FaultInjector

__all__ = [
    "CANNED_PLANS",
    "FaultInjector",
    "FaultPlan",
    "canned_plan",
]
