"""Windowed time-series aggregation over a trace record stream.

:class:`Timeline` folds the raw :class:`~repro.trace.buffer.TraceBuffer`
stream into fixed windows of simulated time — the per-window series the
paper's figures are secretly made of: input and output packet counts,
drops by site, CPU nanoseconds by IPL, quota exhaustions, and
feedback/cycle-limit state flips. The aggregator is fed incrementally
(record by record, before ring overwrite), so its numbers are exact over
the whole trial even when the ring only retains the tail.

Window-edge semantics (shared with ``ProbeRegistry.dump()``): a record
with timestamp ``t`` lands in window ``t // window_ns``, i.e. windows
are half-open intervals ``[k*w, (k+1)*w)``; a counter snapshot taken at
time ``T`` — a probe dump, or a :meth:`mark` — therefore agrees with the
sum of all windows strictly before ``T`` plus the partial window
containing it. CPU accounting chunks are attributed to the window in
which the chunk *ends* (the record's timestamp), so a chunk spanning an
edge is not split.

The harness drops two marks on every traced trial — ``measure_start``
at the warmup boundary and ``measure_end`` at the end of the measurement
window — and the difference of their cumulative totals reconciles with
the TrialResult scalars (``delivered``, ``generated``) and, after
``Router.teardown()``, with the pool's packet accounting.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .buffer import (
    CPU_ACCOUNT,
    CYCLE_LIMIT,
    CYCLE_RESET,
    FEEDBACK_TIMEOUT,
    INPUT_ALLOW,
    INPUT_INHIBIT,
    IRQ_DISPATCH,
    MITIGATE_DOWN,
    MITIGATE_UP,
    PKT_DELIVER,
    PKT_INJECT,
    Q_DROP,
    QUOTA_EXHAUST,
    RX_OVERFLOW,
)

#: Per-window integer counter keys, in serialization order.
_WINDOW_COUNTS = (
    "inject",
    "deliver",
    "rx_overflow",
    "queue_drops",
    "quota_exhausted",
    "inhibits",
    "allows",
    "irq_dispatch",
)


def _new_window() -> Dict:
    window = dict.fromkeys(_WINDOW_COUNTS, 0)
    window["latency_ns_sum"] = 0
    window["drops"] = {}
    window["cpu_ns"] = {}
    return window


class Timeline:
    """Per-window aggregates of a trace stream.

    ``window_ns`` is typically the watchdog window
    (``config.watchdog_window_ticks * config.clock_tick_ns``) so the
    timeline lines up with watchdog verdict windows.
    """

    def __init__(self, window_ns: int) -> None:
        if window_ns <= 0:
            raise ValueError("timeline window must be positive")
        self.window_ns = window_ns
        self._windows: Dict[int, Dict] = {}
        self._current: Optional[Dict] = None
        self._current_index = -1
        self.totals = _new_window()
        self.marks: Dict[str, Dict] = {}
        self._site_names: List[str] = []

    def _bind_sites(self, site_names: List[str]) -> None:
        """Share the buffer's live site-id table (called by
        ``TraceBuffer.attach_timeline``)."""
        self._site_names = site_names

    # ------------------------------------------------------------------
    # Feed path (armed trials only)
    # ------------------------------------------------------------------

    def feed(self, rec) -> None:
        """Fold one ``(t_ns, kind, site_id, a, b)`` record in."""
        t, kind, sid, a, _b = rec
        index = t // self.window_ns
        if index != self._current_index:
            window = self._windows.get(index)
            if window is None:
                window = _new_window()
                self._windows[index] = window
            self._current = window
            self._current_index = index
        window = self._current
        totals = self.totals
        if kind == PKT_INJECT:
            window["inject"] += 1
            totals["inject"] += 1
        elif kind == PKT_DELIVER:
            window["deliver"] += 1
            window["latency_ns_sum"] += a
            totals["deliver"] += 1
            totals["latency_ns_sum"] += a
        elif kind == CPU_ACCOUNT:
            ipl = str(rec[4])
            cpu = window["cpu_ns"]
            cpu[ipl] = cpu.get(ipl, 0) + a
            cpu = totals["cpu_ns"]
            cpu[ipl] = cpu.get(ipl, 0) + a
        elif kind == IRQ_DISPATCH:
            window["irq_dispatch"] += 1
            totals["irq_dispatch"] += 1
        elif kind == Q_DROP:
            site = self._site_names[sid]
            window["queue_drops"] += 1
            totals["queue_drops"] += 1
            drops = window["drops"]
            drops[site] = drops.get(site, 0) + 1
            drops = totals["drops"]
            drops[site] = drops.get(site, 0) + 1
        elif kind == RX_OVERFLOW:
            site = self._site_names[sid]
            window["rx_overflow"] += 1
            totals["rx_overflow"] += 1
            drops = window["drops"]
            drops[site] = drops.get(site, 0) + 1
            drops = totals["drops"]
            drops[site] = drops.get(site, 0) + 1
        elif kind == QUOTA_EXHAUST:
            window["quota_exhausted"] += 1
            totals["quota_exhausted"] += 1
        elif kind in (INPUT_INHIBIT, CYCLE_LIMIT, MITIGATE_UP):
            # Mitigation escalations fold into the inhibit series: both
            # are the kernel throttling its own input side.
            window["inhibits"] += 1
            totals["inhibits"] += 1
        elif kind in (INPUT_ALLOW, FEEDBACK_TIMEOUT, CYCLE_RESET, MITIGATE_DOWN):
            window["allows"] += 1
            totals["allows"] += 1
        # Remaining kinds (cpu_run, rx_accept, q_enqueue, ...) shape the
        # raw stream but have no windowed series.

    def mark(self, name: str, t_ns: int) -> None:
        """Snapshot cumulative totals at an instant (warmup boundary,
        measurement end). Snapshot-vs-window agreement is the documented
        edge semantics above."""
        totals = self.totals
        snapshot = {key: totals[key] for key in _WINDOW_COUNTS}
        snapshot["latency_ns_sum"] = totals["latency_ns_sum"]
        snapshot["drops"] = dict(totals["drops"])
        snapshot["cpu_ns"] = dict(totals["cpu_ns"])
        self.marks[name] = {"t_ns": t_ns, "totals": snapshot}

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------

    @property
    def window_count(self) -> int:
        return len(self._windows)

    def windows(self) -> List[Dict]:
        """Window dicts in time order, each with ``index``/``start_ns``."""
        out = []
        for index in sorted(self._windows):
            window = dict(self._windows[index])
            window["index"] = index
            window["start_ns"] = index * self.window_ns
            out.append(window)
        return out

    def to_dict(self) -> Dict:
        """JSON-safe form stored on ``TrialResult.timeline`` and carried
        through the wire format and the result cache."""
        return {
            "window_ns": self.window_ns,
            "windows": self.windows(),
            "totals": {
                key: (dict(value) if isinstance(value, dict) else value)
                for key, value in self.totals.items()
            },
            "marks": {
                name: {"t_ns": mark["t_ns"], "totals": dict(mark["totals"])}
                for name, mark in self.marks.items()
            },
        }

    def __repr__(self) -> str:
        return "Timeline(window_ns=%d, windows=%d)" % (
            self.window_ns,
            len(self._windows),
        )
