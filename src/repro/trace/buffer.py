"""Bounded ring buffer of scheduling-level trace records.

The paper's argument is a *scheduling narrative*: which interrupt
preempted whom, when the polling quota ran out, where a packet died.
:class:`TraceBuffer` captures that narrative as a stream of small typed
records emitted from the load-bearing seams of the simulation — IRQ
request/dispatch/return, CPU dispatch and accounting, NIC ring
accept/overflow, queue enqueue/drop, quota exhaustion, input
inhibit/allow flips, and packet inject/deliver lifecycle events.

Cost model (the same discipline as the fault seams, ``repro.faults``):

* **Disarmed** (the default): every instrumented component carries a
  ``trace`` attribute that is ``None``; each hook is a single attribute
  load plus an ``is None`` test. ``scripts/bench_trace.py`` freezes the
  hook-free hot path in-script and gates the disarmed overhead.
* **Armed**: one preallocated Python list of ``capacity`` slots, reused
  as a ring — tracing a trial never grows memory with trial length.
  Each record is a 5-tuple ``(t_ns, kind, site_id, a, b)``; site names
  (queue/line/interface names, inhibit reasons, task names) are interned
  to small integers on first use.

Tracing schedules **no simulator events** and draws **no randomness**,
so a traced trial's event stream — and therefore every TrialResult
field except ``timeline`` — is bit-identical to the untraced run.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

#: Default ring capacity (records). 64k records cover roughly the last
#: half-second of a saturated 12k-pps trial; older records are
#: overwritten, which is the point — the interesting part of a livelock
#: is its most recent history.
DEFAULT_CAPACITY = 65_536

# ---------------------------------------------------------------------------
# Record kinds. Small ints, stable across a session; names via KIND_NAMES.
# ---------------------------------------------------------------------------

IRQ_REQUEST = 1  #: device raised its interrupt line      (site=line)
IRQ_DISPATCH = 2  #: controller started the handler       (site=line, a=ipl)
IRQ_RETURN = 3  #: handler completed                      (site=line)
CPU_RUN = 4  #: dispatcher installed a new task           (site=task, a=eff ipl)
CPU_IDLE = 5  #: dispatcher found nothing runnable
CPU_ACCOUNT = 6  #: task charged for a chunk               (site=task, a=ns, b=ipl)
RX_ACCEPT = 7  #: frame accepted into the RX ring          (site=nic)
RX_OVERFLOW = 8  #: frame dropped at a full RX ring        (site=nic, a=age, b=born)
TX_COMPLETE = 9  #: frame left on the output wire          (site=nic)
TX_RECLAIM = 10  #: driver released TX descriptors         (site=nic, a=count)
Q_ENQUEUE = 11  #: packet queued                           (site=queue, a=depth)
Q_DROP = 12  #: packet dropped at a full queue             (site=queue, a=age, b=born)
QUOTA_EXHAUST = 13  #: rx service ended with backlog       (site=driver, a=handled, b=pending)
INPUT_INHIBIT = 14  #: input processing inhibited          (site=reason)
INPUT_ALLOW = 15  #: input processing re-enabled           (site=reason)
FEEDBACK_TIMEOUT = 16  #: feedback failsafe re-enabled input (site=reason)
CYCLE_LIMIT = 17  #: cycle limiter crossed its threshold   (site=reason, a=used)
CYCLE_RESET = 18  #: cycle limiter window reset            (site=reason)
PKT_INJECT = 19  #: generator emitted a packet             (site=generator, a=seq)
PKT_DELIVER = 20  #: packet transmitted on the output wire (site=nic, a=latency, b=born)
MITIGATE_UP = 21  #: mitigation controller escalated       (site=controller, a=level)
MITIGATE_DOWN = 22  #: mitigation controller de-escalated  (site=controller, a=level)

#: kind -> human-readable name (exporters, CSV, watchdog excerpts).
KIND_NAMES = {
    IRQ_REQUEST: "irq_request",
    IRQ_DISPATCH: "irq_dispatch",
    IRQ_RETURN: "irq_return",
    CPU_RUN: "cpu_run",
    CPU_IDLE: "cpu_idle",
    CPU_ACCOUNT: "cpu_account",
    RX_ACCEPT: "rx_accept",
    RX_OVERFLOW: "rx_overflow",
    TX_COMPLETE: "tx_complete",
    TX_RECLAIM: "tx_reclaim",
    Q_ENQUEUE: "q_enqueue",
    Q_DROP: "q_drop",
    QUOTA_EXHAUST: "quota_exhaust",
    INPUT_INHIBIT: "input_inhibit",
    INPUT_ALLOW: "input_allow",
    FEEDBACK_TIMEOUT: "feedback_timeout",
    CYCLE_LIMIT: "cycle_limit",
    CYCLE_RESET: "cycle_reset",
    PKT_INJECT: "pkt_inject",
    PKT_DELIVER: "pkt_deliver",
    MITIGATE_UP: "mitigate_up",
    MITIGATE_DOWN: "mitigate_down",
}


class TraceBuffer:
    """Preallocated ring of ``(t_ns, kind, site_id, a, b)`` records.

    The buffer is bound to a simulator clock (``bind``) when the router
    attaches it; components then call :meth:`record` from their hooks.
    An optional :class:`~repro.trace.timeline.Timeline` attached via
    :meth:`attach_timeline` is fed every record *before* ring overwrite,
    so windowed aggregates stay exact over the whole trial even when the
    ring only retains the tail.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY, sim=None) -> None:
        if capacity <= 0:
            raise ValueError("trace capacity must be positive")
        self.capacity = capacity
        self._ring: List[Optional[Tuple[int, int, int, int, int]]] = (
            [None] * capacity
        )
        self._next = 0
        #: Total records ever emitted (``recorded - capacity`` of them
        #: have been overwritten once this exceeds ``capacity``).
        self.recorded = 0
        self._sites = {}
        self._site_names: List[str] = []
        self._sim = sim
        self._timeline = None

    # ------------------------------------------------------------------

    def bind(self, sim) -> "TraceBuffer":
        """Bind the simulator whose clock timestamps the records."""
        if self._sim is not None and self._sim is not sim:
            raise RuntimeError("trace buffer already bound to a simulator")
        self._sim = sim
        return self

    def attach_timeline(self, timeline) -> "TraceBuffer":
        """Feed every subsequent record to ``timeline`` as well."""
        timeline._bind_sites(self._site_names)
        self._timeline = timeline
        return self

    @property
    def timeline(self):
        return self._timeline

    # ------------------------------------------------------------------
    # Hot path (armed only — disarmed components never reach here)
    # ------------------------------------------------------------------

    def record(self, kind: int, site: str, a: int = 0, b: int = 0) -> None:
        """Append one record; overwrites the oldest once full."""
        sites = self._sites
        sid = sites.get(site)
        if sid is None:
            sid = len(sites)
            sites[site] = sid
            self._site_names.append(site)
        rec = (self._sim.now, kind, sid, a, b)
        index = self._next
        self._ring[index] = rec
        index += 1
        self._next = 0 if index == self.capacity else index
        self.recorded += 1
        timeline = self._timeline
        if timeline is not None:
            timeline.feed(rec)

    def packet_drop(self, kind: int, site: str, packet) -> None:
        """Record a drop, linking packet age (latency-to-drop) when the
        dropped item carries lifecycle timestamps."""
        born = getattr(packet, "created_ns", None)
        if born is None:
            self.record(kind, site)
        else:
            self.record(kind, site, self._sim.now - born, born)

    def packet_deliver(self, site: str, packet) -> None:
        """Record a delivery with its wire-to-wire latency."""
        born = packet.created_ns
        self.record(PKT_DELIVER, site, self._sim.now - born, born)

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return min(self.recorded, self.capacity)

    @property
    def overwritten(self) -> int:
        """Records lost to ring wrap-around."""
        return max(0, self.recorded - self.capacity)

    def site_name(self, sid: int) -> str:
        return self._site_names[sid]

    @property
    def site_names(self) -> List[str]:
        """Interned site names, indexed by site id."""
        return list(self._site_names)

    def records(self) -> List[Tuple[int, int, int, int, int]]:
        """Retained records in chronological order (oldest first)."""
        if self.recorded <= self.capacity:
            return self._ring[: self._next]
        return self._ring[self._next :] + self._ring[: self._next]

    def tail(self, n: int) -> List[Tuple[int, int, int, int, int]]:
        """The most recent ``n`` retained records, chronological."""
        records = self.records()
        return records[-n:] if n < len(records) else records

    def export_tail(self, n: int) -> List[List]:
        """JSON-safe tail: ``[t_ns, kind_name, site, a, b]`` rows. Used
        by the watchdog to embed an onset excerpt in its verdict."""
        names = self._site_names
        return [
            [t, KIND_NAMES.get(kind, str(kind)), names[sid], a, b]
            for t, kind, sid, a, b in self.tail(n)
        ]

    def __repr__(self) -> str:
        return "TraceBuffer(recorded=%d, capacity=%d, sites=%d)" % (
            self.recorded,
            self.capacity,
            len(self._site_names),
        )
