"""Scheduling-level tracing and time-series telemetry.

``TraceBuffer`` collects typed records from the simulation's scheduling
seams (near-zero cost when disarmed — see :mod:`repro.trace.buffer`),
``Timeline`` folds them into per-window series, and the exporters write
Chrome/Perfetto ``trace_event`` JSON or CSV. Arm tracing with
``run_trial(..., trace=True)`` (timeline on the result) or by passing a
``TraceBuffer`` instance (full record stream, in-process), or from the
command line: ``python -m repro.cli trace --variant unmodified --rate
12000 -o livelock.json``.
"""

from .buffer import (
    DEFAULT_CAPACITY,
    KIND_NAMES,
    TraceBuffer,
)
from .export import (
    perfetto_json,
    timeline_to_csv,
    to_perfetto,
    trace_to_csv,
    write_perfetto,
)
from .timeline import Timeline

__all__ = [
    "DEFAULT_CAPACITY",
    "KIND_NAMES",
    "TraceBuffer",
    "Timeline",
    "to_perfetto",
    "perfetto_json",
    "write_perfetto",
    "trace_to_csv",
    "timeline_to_csv",
]
