"""Trace exporters: Chrome/Perfetto ``trace_event`` JSON and plain CSV.

The Perfetto exporter emits the legacy Chrome JSON trace format (a
``{"traceEvents": [...]}`` object), which both ``chrome://tracing`` and
https://ui.perfetto.dev load directly:

* one thread track per interrupt line — ``X`` (complete) events spanning
  dispatch→return;
* one CPU track — ``X`` events for every accounted execution chunk,
  named by task, with the effective IPL in ``args``;
* one packet-lifecycle track — instant events for injects, drops (with
  age and drop site), and deliveries (with latency);
* counter tracks (``ph: "C"``) from an attached
  :class:`~repro.trace.timeline.Timeline`: input/output pps and drop
  rate per window.

Timestamps are microseconds (the format's unit); the simulation's
nanosecond clock divides by 1e3.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from .buffer import (
    CPU_ACCOUNT,
    CYCLE_LIMIT,
    CYCLE_RESET,
    FEEDBACK_TIMEOUT,
    INPUT_ALLOW,
    INPUT_INHIBIT,
    IRQ_DISPATCH,
    IRQ_RETURN,
    KIND_NAMES,
    MITIGATE_DOWN,
    MITIGATE_UP,
    PKT_DELIVER,
    PKT_INJECT,
    Q_DROP,
    QUOTA_EXHAUST,
    RX_OVERFLOW,
    TraceBuffer,
)

_PID = 1
_TID_CPU = 1
_TID_PACKETS = 2
_TID_CONTROL = 3
#: Extra cores' CPU tracks occupy [_TID_CPU_BASE, _TID_IRQ_BASE): core N
#: (N >= 1) maps to tid ``_TID_CPU_BASE + N - 1``, which stays below the
#: IRQ block for every N < MAX_CORES (repro.hw.machine caps cores at 8).
_TID_CPU_BASE = 8
_TID_IRQ_BASE = 16

NS_PER_US = 1_000.0


def _cpu_site(name: str) -> tuple:
    """Map an accounted-chunk site name to ``(tid, display_name)``.

    Extra cores record under a ``cpuN/`` prefix (see
    ``Router.attach_trace``); the prefix selects a per-core track and is
    stripped from the event name. Bare names — everything a single-core
    trial emits — keep the original CPU track, so cores=1 traces are
    byte-identical to pre-SMP output.
    """
    if name.startswith("cpu"):
        head, sep, rest = name.partition("/")
        if sep and head[3:].isdigit():
            core = int(head[3:])
            if core >= 1:
                return (_TID_CPU_BASE + core - 1, rest)
    return (_TID_CPU, name)


def _thread_meta(tid: int, name: str) -> Dict:
    return {
        "ph": "M",
        "name": "thread_name",
        "pid": _PID,
        "tid": tid,
        "args": {"name": name},
    }


def to_perfetto(buffer: TraceBuffer, timeline=None) -> Dict:
    """Build a Chrome/Perfetto trace dict from the retained records.

    ``timeline`` (a :class:`Timeline` or its ``to_dict()`` form) adds
    pps/drop counter tracks; when omitted, the buffer's attached
    timeline is used if present.
    """
    if timeline is None:
        timeline = buffer.timeline
    names = buffer.site_names
    events: List[Dict] = [
        _thread_meta(_TID_CPU, "CPU (accounted chunks)"),
        _thread_meta(_TID_PACKETS, "packet lifecycle"),
        _thread_meta(_TID_CONTROL, "input control"),
    ]
    irq_tids: Dict[int, int] = {}
    irq_open: Dict[int, float] = {}
    cpu_sites: Dict[int, tuple] = {}
    seen_core_tids = set()
    for t, kind, sid, a, b in buffer.records():
        ts = t / NS_PER_US
        if kind == CPU_ACCOUNT:
            site = cpu_sites.get(sid)
            if site is None:
                site = _cpu_site(names[sid])
                cpu_sites[sid] = site
            tid, name = site
            if tid != _TID_CPU and tid not in seen_core_tids:
                seen_core_tids.add(tid)
                core = tid - _TID_CPU_BASE + 1
                events.append(
                    _thread_meta(tid, "cpu%d (accounted chunks)" % core)
                )
            events.append(
                {
                    "ph": "X",
                    "name": name,
                    "cat": "cpu",
                    "pid": _PID,
                    "tid": tid,
                    "ts": (t - a) / NS_PER_US,
                    "dur": a / NS_PER_US,
                    "args": {"ipl": b},
                }
            )
        elif kind == IRQ_DISPATCH:
            tid = irq_tids.get(sid)
            if tid is None:
                tid = _TID_IRQ_BASE + len(irq_tids)
                irq_tids[sid] = tid
                events.append(_thread_meta(tid, "irq %s" % names[sid]))
            irq_open[sid] = ts
        elif kind == IRQ_RETURN:
            start = irq_open.pop(sid, None)
            if start is not None:
                events.append(
                    {
                        "ph": "X",
                        "name": names[sid],
                        "cat": "irq",
                        "pid": _PID,
                        "tid": irq_tids[sid],
                        "ts": start,
                        "dur": ts - start,
                    }
                )
        elif kind in (PKT_INJECT, PKT_DELIVER, Q_DROP, RX_OVERFLOW):
            args = {"site": names[sid]}
            if kind == PKT_DELIVER:
                args["latency_us"] = a / NS_PER_US
            elif kind in (Q_DROP, RX_OVERFLOW):
                args["age_us"] = a / NS_PER_US
            events.append(
                {
                    "ph": "i",
                    "s": "t",
                    "name": KIND_NAMES[kind],
                    "cat": "packet",
                    "pid": _PID,
                    "tid": _TID_PACKETS,
                    "ts": ts,
                    "args": args,
                }
            )
        elif kind in (
            INPUT_INHIBIT,
            INPUT_ALLOW,
            QUOTA_EXHAUST,
            FEEDBACK_TIMEOUT,
            CYCLE_LIMIT,
            CYCLE_RESET,
            MITIGATE_UP,
            MITIGATE_DOWN,
        ):
            args = {"site": names[sid]}
            if kind in (MITIGATE_UP, MITIGATE_DOWN):
                args["level"] = a
            events.append(
                {
                    "ph": "i",
                    "s": "t",
                    "name": KIND_NAMES[kind],
                    "cat": "control",
                    "pid": _PID,
                    "tid": _TID_CONTROL,
                    "ts": ts,
                    "args": args,
                }
            )
    # Dangling dispatches (handler still running at trace end) close at
    # the last timestamp so the span is visible rather than silently lost.
    if irq_open:
        records = buffer.records()
        end_ts = records[-1][0] / NS_PER_US if records else 0.0
        for sid, start in irq_open.items():
            events.append(
                {
                    "ph": "X",
                    "name": names[sid],
                    "cat": "irq",
                    "pid": _PID,
                    "tid": irq_tids[sid],
                    "ts": start,
                    "dur": max(0.0, end_ts - start),
                }
            )
    events.extend(_counter_events(timeline))
    events.extend(_mark_events(timeline))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "recorded": buffer.recorded,
            "overwritten": buffer.overwritten,
        },
    }


def _counter_events(timeline) -> List[Dict]:
    data = _timeline_dict(timeline)
    if data is None:
        return []
    window_ns = data["window_ns"]
    window_s = window_ns / 1e9
    events = []
    for window in data["windows"]:
        ts = window["start_ns"] / NS_PER_US
        events.append(
            {
                "ph": "C",
                "name": "pps",
                "pid": _PID,
                "ts": ts,
                "args": {
                    "input": window["inject"] / window_s,
                    "output": window["deliver"] / window_s,
                },
            }
        )
        events.append(
            {
                "ph": "C",
                "name": "drops/s",
                "pid": _PID,
                "ts": ts,
                "args": {
                    "dropped": (
                        window["queue_drops"] + window["rx_overflow"]
                    )
                    / window_s
                },
            }
        )
    return events


def _mark_events(timeline) -> List[Dict]:
    """Timeline marks (phase boundaries: ``measure_start``,
    ``attack_start``, ``recovered``, ...) as global instant events."""
    data = _timeline_dict(timeline)
    if data is None:
        return []
    events = []
    for name, mark in data.get("marks", {}).items():
        events.append(
            {
                "ph": "i",
                "s": "g",
                "name": name,
                "cat": "mark",
                "pid": _PID,
                "ts": mark["t_ns"] / NS_PER_US,
            }
        )
    return events


def _timeline_dict(timeline) -> Optional[Dict]:
    if timeline is None:
        return None
    if isinstance(timeline, dict):
        return timeline
    return timeline.to_dict()


def perfetto_json(buffer: TraceBuffer, timeline=None, indent=None) -> str:
    """Perfetto trace as a JSON string."""
    return json.dumps(to_perfetto(buffer, timeline), indent=indent)


def write_perfetto(path, buffer: TraceBuffer, timeline=None) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(perfetto_json(buffer, timeline))


# ---------------------------------------------------------------------------
# CSV
# ---------------------------------------------------------------------------


def trace_to_csv(buffer: TraceBuffer) -> str:
    """Raw record stream as CSV: ``t_ns,kind,site,a,b`` rows."""
    names = buffer.site_names
    lines = ["t_ns,kind,site,a,b"]
    for t, kind, sid, a, b in buffer.records():
        lines.append(
            "%d,%s,%s,%d,%d"
            % (t, KIND_NAMES.get(kind, str(kind)), names[sid], a, b)
        )
    return "\n".join(lines) + "\n"


#: Column order of :func:`timeline_to_csv`.
TIMELINE_CSV_COLUMNS = (
    "index",
    "start_ns",
    "input_pps",
    "output_pps",
    "inject",
    "deliver",
    "rx_overflow",
    "queue_drops",
    "quota_exhausted",
    "inhibits",
    "allows",
    "irq_dispatch",
    "latency_ns_sum",
)


def timeline_to_csv(timeline) -> str:
    """Per-window time series as CSV (one row per window)."""
    data = _timeline_dict(timeline)
    if data is None:
        raise ValueError("no timeline to export")
    window_s = data["window_ns"] / 1e9
    lines = [",".join(TIMELINE_CSV_COLUMNS)]
    for window in data["windows"]:
        row = dict(window)
        row["input_pps"] = row["inject"] / window_s
        row["output_pps"] = row["deliver"] / window_s
        lines.append(
            ",".join(_format_cell(row[col]) for col in TIMELINE_CSV_COLUMNS)
        )
    return "\n".join(lines) + "\n"


def _format_cell(value) -> str:
    if isinstance(value, float):
        return "%.3f" % value
    return str(value)
