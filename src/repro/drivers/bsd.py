"""Classic interrupt-driven driver (4.2BSD / stock Digital UNIX, fig 6-2).

Receive path: the RX interrupt handler runs at device IPL, drains the
ring with **interrupt batching** ("the interrupt handler attempts to
process as many packets as possible before returning", §4.1), charges
the per-packet device-level cost, and enqueues each packet on the shared
``ipintrq``. Higher-layer processing is then posted either as a SPLNET
software interrupt (4.2BSD) or by waking the ``netisr`` kernel thread
(Digital UNIX) — both run *below* device IPL, which is exactly why input
overload starves them into receive livelock (§6.3).

Transmit path: the IP layer's output hook appends to the bounded
``ifqueue``; the TX interrupt handler (normally at the same device IPL)
releases completed descriptors and refills the ring. A configuration
knob lowers the TX IPL to reproduce the transmit starvation of §4.4.
"""

from __future__ import annotations

from typing import Optional

from ..hw.cpu import IPL_DEVICE, IPL_SOFTNET
from ..hw.nic import NIC
from ..kernel.config import IP_LAYER_SOFTIRQ, IP_LAYER_THREAD
from ..kernel.kernel import Kernel
from ..kernel.queues import PacketQueue
from ..net.ip import IPLayer
from ..net.packet import Packet
from ..sim.process import WaitSignal, Work
from ..sim.signals import Signal
from .base import Driver


class ClassicIPInput:
    """The shared IP input stage: ``ipintrq`` plus the context draining it.

    One instance serves all interfaces (BSD has a single ipintrq). Mode
    ``softirq`` drains from a SPLNET software interrupt; mode ``thread``
    drains from a separately scheduled kernel thread at IPL 0.
    """

    def __init__(self, kernel: Kernel, ip_layer: IPLayer) -> None:
        self.kernel = kernel
        self.ip = ip_layer
        self.costs = kernel.costs
        self.mode = kernel.config.ip_layer_mode
        config = kernel.config
        #: §5.1 interrupt-rate limiting: with feedback enabled, a full
        #: ipintrq disables every interface's input interrupts; they are
        #: re-enabled when the queue drains to its low watermark
        #: ("interrupts may be re-enabled when internal buffer space
        #: becomes available").
        self.input_feedback = config.classic_input_feedback
        watermarks = {}
        if self.input_feedback:
            watermarks = dict(
                high_watermark=config.ipintrq_limit,
                low_watermark=max(
                    1, int(config.ipintrq_limit * config.ipintrq_low_fraction)
                ),
            )
        self.ipintrq = PacketQueue(
            "ipintrq", config.ipintrq_limit, kernel.probes, **watermarks
        )
        if self.input_feedback:
            self.ipintrq.on_high.append(self._inhibit_all_input)
            self.ipintrq.on_low.append(self._resume_all_input)
        self.drivers: list = []
        #: Packet dequeued from ipintrq but still inside the suspended
        #: softirq/netisr frame; read by the teardown path (no leaks on
        #: mid-flight abort).
        self.in_flight = None
        self.input_inhibits = kernel.probes.counter("ipintrq.input_inhibits")
        self._softnet_line = None
        self._netisr_signal: Optional[Signal] = None
        self._thread = None

    def attach(self) -> None:
        if self.mode == IP_LAYER_SOFTIRQ:
            self._softnet_line = self.kernel.interrupts.line(
                "softnet",
                IPL_SOFTNET,
                self._softirq_body,
                dispatch_cycles=self.costs.softirq_post,
            )
        elif self.mode == IP_LAYER_THREAD:
            self._netisr_signal = Signal(self.kernel.sim, "netisr")
            self._thread = self.kernel.kernel_thread(
                self._netisr_body(), "netisr"
            )
        else:  # pragma: no cover - config.validate rejects this
            raise ValueError("unknown ip layer mode %r" % self.mode)

    def register_driver(self, driver: "BsdDriver") -> None:
        """Interfaces whose input interrupts the feedback controls."""
        self.drivers.append(driver)

    def _inhibit_all_input(self, _queue: PacketQueue) -> None:
        for driver in self.drivers:
            if driver.rx_line is not None and driver.rx_line.enabled:
                self.input_inhibits.increment()
                driver.rx_line.disable()

    def _resume_all_input(self, _queue: PacketQueue) -> None:
        for driver in self.drivers:
            if driver.rx_line is not None and not driver.rx_line.enabled:
                driver.rx_line.enable()
                if driver.nic.rx_pending() > 0:
                    driver.rx_line.request()

    # ------------------------------------------------------------------
    # Producer side (called from RX interrupt handlers at device IPL)
    # ------------------------------------------------------------------

    def enqueue(self, packet: Packet) -> bool:
        """Queue a packet for IP processing; returns False if dropped."""
        accepted = self.ipintrq.enqueue(packet)
        if accepted:
            self.post()
        return accepted

    def post(self) -> None:
        """Request IP-layer processing (softirq raise or thread wakeup)."""
        if self._softnet_line is not None:
            self._softnet_line.request()
        elif self._netisr_signal is not None:
            self._netisr_signal.fire()

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------

    def _softirq_body(self):
        """SPLNET handler: drain ipintrq completely, then return."""
        dequeue_work = Work(self.costs.ipintrq_dequeue)
        acknowledge = self._softnet_line.acknowledge
        ipintrq_dequeue = self.ipintrq.dequeue
        input_packet = self.ip.input_packet
        while True:
            acknowledge()
            packet = ipintrq_dequeue()
            if packet is None:
                return
            self.in_flight = packet
            yield dequeue_work
            yield from input_packet(packet)
            self.in_flight = None

    def _netisr_body(self):
        """netisr kernel thread: drain ipintrq, sleep when empty."""
        dequeue_work = Work(self.costs.ipintrq_dequeue)
        ipintrq_dequeue = self.ipintrq.dequeue
        input_packet = self.ip.input_packet
        while True:
            packet = ipintrq_dequeue()
            if packet is None:
                yield WaitSignal(self._netisr_signal)
                continue
            self.in_flight = packet
            yield dequeue_work
            yield from input_packet(packet)
            self.in_flight = None


class BsdDriver(Driver):
    """Interrupt-driven driver for one interface (the unmodified kernel)."""

    def __init__(
        self,
        kernel: Kernel,
        nic: NIC,
        ip_layer: IPLayer,
        ip_input: ClassicIPInput,
        name: str,
        tx_ipl: int = IPL_DEVICE,
        extra_rx_cycles: int = 0,
    ) -> None:
        super().__init__(kernel, nic, ip_layer, name, tx_ipl=tx_ipl)
        self.ip_input = ip_input
        #: Extra per-packet RX cost; used by the "modified kernel acting
        #: as unmodified" configuration of fig 6-3 (compat overhead).
        self.extra_rx_cycles = extra_rx_cycles
        self.rx_line = None
        self.tx_line = None

    def attach(self) -> None:
        self.ip_input.register_driver(self)
        self.rx_line = self.kernel.irq_line(
            "%s.rx" % self.name,
            IPL_DEVICE,
            self._rx_handler,
            dispatch_cycles=self.costs.interrupt_dispatch,
        )
        self.tx_line = self.kernel.irq_line(
            "%s.tx" % self.name,
            self.tx_ipl,
            self._tx_handler,
            dispatch_cycles=self.costs.interrupt_dispatch,
        )
        self.nic.attach_lines(self.rx_line, self.tx_line)

    # ------------------------------------------------------------------
    # RX interrupt handler (device IPL, with batching)
    # ------------------------------------------------------------------

    def _rx_handler(self):
        per_packet_work = Work(
            self.costs.rx_device_per_packet + self.extra_rx_cycles
        )
        softirq_post_work = Work(self.costs.softirq_post)
        rx_line = self.rx_line
        rx_pull = self.nic.rx_pull
        rx_processed_inc = self.rx_packets_processed.increment
        ip_enqueue = self.ip_input.enqueue
        while True:
            # §5.1 rate limiting: if feedback disabled our input
            # interrupts mid-batch, stop pulling — the RX ring buffers
            # ("additional incoming packets may accumulate there").
            if not rx_line.enabled:
                return
            # Consume the pending request before the emptiness check so a
            # packet arriving after the check re-raises the interrupt.
            rx_line.acknowledge()
            packet = rx_pull()
            if packet is None:
                return
            self.in_flight = packet
            yield per_packet_work
            rx_processed_inc()
            accepted = ip_enqueue(packet)
            self.in_flight = None
            if accepted:
                yield softirq_post_work
            # If ipintrq was full the packet is dropped *after* the
            # device-level work was spent on it — the wasted work at the
            # heart of §4.2 (the queue's drop counter records it).

    # ------------------------------------------------------------------
    # TX path
    # ------------------------------------------------------------------

    def output(self, packet: Packet) -> None:
        """IP output hook: append to ifqueue and kick the transmitter."""
        accepted = self.ifqueue.enqueue(packet)
        if accepted and self.nic.tx_idle and self.nic.tx_done_slots() == 0:
            # Transmitter idle with nothing awaiting reclaim: emulate the
            # if_start() call by raising the TX service interrupt.
            self.tx_line.request()

    def _tx_handler(self):
        while True:
            self.tx_line.acknowledge()
            moved = yield from self._tx_service(quota=None)
            if (
                self.nic.tx_done_slots() == 0
                and (self.ifqueue.empty or self.nic.tx_free_slots() == 0)
            ):
                return
            if moved == 0 and self.nic.tx_done_slots() == 0:
                return
