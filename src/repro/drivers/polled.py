"""Modified driver: interrupts only initiate polling (§6.4).

The interrupt handler "does almost no work at all. Instead, it simply
schedules the polling thread (if it has not already been scheduled),
recording its need for packet processing, and then returns from the
interrupt. It does not set the device's interrupt-enable flag."

The driver's real work happens in the callbacks the polling thread
invokes:

* :meth:`rx_callback` — pull packets from the RX ring and run IP input
  processing **to completion** (forwarding to the output queue, or
  delivery to the screening queue), up to the quota;
* :meth:`tx_callback` — release completed TX descriptors and refill the
  ring from the ifqueue, up to the quota;
* :meth:`enable_interrupts` — the interrupt-enable callback, invoked
  only "once all the packets pending at an interface have been handled".
"""

from __future__ import annotations

from typing import Optional

from ..hw.cpu import IPL_DEVICE
from ..hw.nic import NIC
from ..kernel.kernel import Kernel
from ..net.ip import IPLayer
from ..net.packet import Packet
from ..sim.process import Work
from ..trace.buffer import QUOTA_EXHAUST
from .base import Driver


class PolledDriver(Driver):
    """Interface driver registered with the polling system."""

    def __init__(
        self,
        kernel: Kernel,
        nic: NIC,
        ip_layer: IPLayer,
        name: str,
        tx_ipl: int = IPL_DEVICE,
    ) -> None:
        super().__init__(kernel, nic, ip_layer, name, tx_ipl=tx_ipl)
        self.rx_service_needed = False
        self.tx_service_needed = False
        self.polling = None  # set by PollingSystem.register
        self.rx_line = None
        self.tx_line = None
        self.rx_callback_runs = kernel.probes.counter(
            "driver.%s.rx_callback_runs" % name
        )
        self.tx_callback_runs = kernel.probes.counter(
            "driver.%s.tx_callback_runs" % name
        )

    def attach(self) -> None:
        if self.polling is None:
            raise RuntimeError(
                "polled driver %s not registered with a polling system" % self.name
            )
        self.rx_line = self.kernel.irq_line(
            "%s.rx" % self.name,
            IPL_DEVICE,
            self._rx_stub,
            dispatch_cycles=self.costs.interrupt_dispatch,
        )
        self.tx_line = self.kernel.irq_line(
            "%s.tx" % self.name,
            self.tx_ipl,
            self._tx_stub,
            dispatch_cycles=self.costs.interrupt_dispatch,
        )
        self.nic.attach_lines(self.rx_line, self.tx_line)

    # ------------------------------------------------------------------
    # Stub interrupt handlers (device IPL; "almost no work at all")
    # ------------------------------------------------------------------

    def _rx_stub(self):
        yield Work(self.costs.polled_stub_handler)
        self.rx_line.disable()
        self.rx_service_needed = True
        self.polling.wake()

    def _tx_stub(self):
        yield Work(self.costs.polled_stub_handler)
        self.tx_line.disable()
        self.tx_service_needed = True
        self.polling.wake()

    # ------------------------------------------------------------------
    # Service-needed predicates (checked by the polling thread)
    # ------------------------------------------------------------------

    def rx_pending(self) -> bool:
        return self.rx_service_needed or self.nic.rx_pending() > 0

    def tx_pending(self) -> bool:
        return (
            self.tx_service_needed
            or self.nic.tx_done_slots() > 0
            or (not self.ifqueue.empty and self.nic.tx_free_slots() > 0)
        )

    # ------------------------------------------------------------------
    # Polling callbacks
    # ------------------------------------------------------------------

    def rx_callback(self, quota: Optional[int]):
        """Process up to ``quota`` received packets to completion.

        Always pulls one descriptor at a time (never ``rx_pull_many``):
        the feedback / cycle-limit check between packets must be able to
        stop the drain with the backlog still *in the ring*, where it
        either soaks or overflow-drops for free.
        """
        self.rx_callback_runs.increment()
        self.rx_service_needed = False
        polling = self.polling
        rx_pull = self.nic.rx_pull
        per_packet_work = Work(self.costs.polled_rx_per_packet)
        rx_processed_inc = self.rx_packets_processed.increment
        input_packet = self.ip.input_packet
        handled = 0
        while quota is None or handled < quota:
            if polling is not None and not polling.input_allowed:
                # Feedback or the cycle limit inhibited input mid-callback:
                # stop immediately ("inhibit further input processing").
                break
            packet = rx_pull()
            if packet is None:
                break
            self.in_flight = packet
            yield per_packet_work
            rx_processed_inc()
            # Processed as far as possible in one go: IP input runs here,
            # in the polling thread — no ipintrq, no software interrupt.
            yield from input_packet(packet)
            self.in_flight = None
            handled += 1
        pending = self.nic.rx_pending()
        if pending > 0:
            # Quota exhausted with backlog: ask to be polled again.
            self.rx_service_needed = True
            trace = self.trace
            if trace is not None:
                trace.record(QUOTA_EXHAUST, self.name, handled, pending)
        return handled

    def tx_callback(self, quota: Optional[int]):
        """Release done descriptors and refill the ring (quota-bounded)."""
        self.tx_callback_runs.increment()
        self.tx_service_needed = False
        moved = yield from self._tx_service(quota)
        if self.nic.tx_done_slots() > 0 or (
            not self.ifqueue.empty and self.nic.tx_free_slots() > 0
        ):
            self.tx_service_needed = True
        return moved

    def enable_interrupts(self, rx_allowed: bool = True) -> None:
        """Interrupt-enable callback (§6.4). When input processing is
        inhibited by feedback or the cycle limit, RX interrupts stay off."""
        if rx_allowed:
            self.rx_line.enable()
            if self.nic.rx_pending() > 0:
                # Events arrived between our last scan and re-enabling.
                self.rx_line.request()
        self.tx_line.enable()
        if self.nic.tx_done_slots() > 0:
            self.tx_line.request()

    # ------------------------------------------------------------------
    # IP output hook
    # ------------------------------------------------------------------

    def output(self, packet: Packet) -> None:
        accepted = self.ifqueue.enqueue(packet)
        if accepted and self.nic.tx_idle and self.nic.tx_done_slots() == 0:
            # Kick the polling thread only when the transmitter is fully
            # quiescent; otherwise the TX-complete interrupt (or an
            # already-scheduled poll) will pick the packet up — waking on
            # every enqueue would preempt the producer once per packet.
            self.tx_service_needed = True
            self.polling.wake()
