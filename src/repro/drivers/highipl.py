"""High-IPL driver: "do (almost) everything at high IPL" (§5.3).

The paper's *first* approach to avoiding preemption: "we can modify the
4.2BSD design by eliminating the software interrupt, polling interfaces
for events, and processing received packets to completion at device
IPL. Because higher-level processing occurs at device IPL, it cannot be
preempted by another packet arrival, and so we guarantee that livelock
does not occur within the kernel's protocol stack. We still need to use
a rate-control mechanism to ensure progress by user-level applications."

The interrupt handler therefore round-robins receive and transmit
service (with a quota, for output fairness) and runs IP forwarding to
completion — all at device IPL. In-kernel forwarding becomes
livelock-free, but *everything* below device IPL (user processes, even
the netisr-style threads of other subsystems) is masked while packets
flow, which is exactly why the paper ultimately prefers the second
approach (the polling thread at IPL 0, :mod:`repro.drivers.polled`).
"""

from __future__ import annotations

from typing import Optional

from ..hw.cpu import IPL_DEVICE
from ..hw.nic import NIC
from ..kernel.kernel import Kernel
from ..net.ip import IPLayer
from ..net.packet import Packet
from ..sim.process import Work
from ..trace.buffer import QUOTA_EXHAUST
from .base import Driver


class HighIplDriver(Driver):
    """Processes packets to completion inside the interrupt handler."""

    def __init__(
        self,
        kernel: Kernel,
        nic: NIC,
        ip_layer: IPLayer,
        name: str,
        quota: Optional[int] = 10,
    ) -> None:
        super().__init__(kernel, nic, ip_layer, name, tx_ipl=IPL_DEVICE)
        self.quota = quota
        self.rx_line = None
        self.tx_line = None
        self.service_rounds = kernel.probes.counter(
            "driver.%s.highipl_rounds" % name
        )

    def attach(self) -> None:
        self.rx_line = self.kernel.irq_line(
            "%s.rx" % self.name,
            IPL_DEVICE,
            self._service_handler,
            dispatch_cycles=self.costs.interrupt_dispatch,
        )
        self.tx_line = self.kernel.irq_line(
            "%s.tx" % self.name,
            IPL_DEVICE,
            self._service_handler,
            dispatch_cycles=self.costs.interrupt_dispatch,
        )
        self.nic.attach_lines(self.rx_line, self.tx_line)

    # ------------------------------------------------------------------

    def _service_handler(self):
        """One handler serves both directions, alternating under the
        quota, until no work remains — all at device IPL."""
        batch_pull = self.kernel.config.rx_batch_pull
        per_packet_work = Work(self.costs.polled_rx_per_packet)
        rx_processed_inc = self.rx_packets_processed.increment
        input_packet = self.ip.input_packet
        while True:
            self.rx_line.acknowledge()
            self.tx_line.acknowledge()
            self.service_rounds.increment()
            handled = 0
            if batch_pull:
                # The pulled batch lives only in this frame, so expose it
                # (oldest last, consumed by pop) for mid-flight teardown.
                batch = self.nic.rx_pull_many(self.quota)
                batch.reverse()
                self.in_flight = batch
                while batch:
                    packet = batch[-1]
                    yield per_packet_work
                    rx_processed_inc()
                    yield from input_packet(packet)
                    batch.pop()
                    handled += 1
                self.in_flight = None
            else:
                rx_pull = self.nic.rx_pull
                while self.quota is None or handled < self.quota:
                    packet = rx_pull()
                    if packet is None:
                        break
                    self.in_flight = packet
                    yield per_packet_work
                    rx_processed_inc()
                    yield from input_packet(packet)
                    self.in_flight = None
                    handled += 1
            trace = self.trace
            if trace is not None and handled:
                pending = self.nic.rx_pending()
                if pending > 0:
                    trace.record(QUOTA_EXHAUST, self.name, handled, pending)
            moved = yield from self._tx_service(self.quota)
            if handled == 0 and moved == 0:
                return

    # ------------------------------------------------------------------

    def output(self, packet: Packet) -> None:
        accepted = self.ifqueue.enqueue(packet)
        if accepted and self.nic.tx_idle and self.nic.tx_done_slots() == 0:
            self.tx_line.request()
