"""Common driver structure shared by the classic and modified drivers.

A driver binds one NIC to the kernel: it owns the interface's output
queue (``ifqueue`` in fig 6-2), its RX/TX interrupt lines, and the entry
points the IP layer uses to emit packets on that interface.
"""

from __future__ import annotations

from typing import Optional

from ..hw.cpu import IPL_DEVICE
from ..hw.nic import NIC
from ..kernel.kernel import Kernel
from ..kernel.queues import PacketQueue, REDQueue
from ..net.ip import IPLayer
from ..net.packet import Packet
from ..sim.process import Work


class Driver:
    """Base class: interface naming, ifqueue, and shared bookkeeping."""

    def __init__(
        self,
        kernel: Kernel,
        nic: NIC,
        ip_layer: IPLayer,
        name: str,
        tx_ipl: int = IPL_DEVICE,
    ) -> None:
        self.kernel = kernel
        self.nic = nic
        self.ip = ip_layer
        self.name = name
        self.tx_ipl = tx_ipl
        self.costs = kernel.costs
        config = kernel.config
        if config.output_queue_policy == "red":
            self.ifqueue: PacketQueue = REDQueue(
                "%s.ifqueue" % name,
                config.ifqueue_limit,
                kernel.streams.stream("red:%s" % name),
                kernel.probes,
                min_fraction=config.red_min_fraction,
                max_fraction=config.red_max_fraction,
                max_probability=config.red_max_probability,
                weight=config.red_weight,
            )
        else:
            self.ifqueue = PacketQueue(
                "%s.ifqueue" % name, config.ifqueue_limit, kernel.probes
            )
        #: The packet currently held by this driver's suspended receive
        #: frame (pulled from the ring, not yet handed to a queue). The
        #: teardown path reads it so a mid-flight abort cannot leak a
        #: pooled packet inside a generator frame.
        self.in_flight = None
        #: Trace hook (:class:`repro.trace.TraceBuffer`), bound by
        #: ``Router.attach_trace``; None on the untraced fast path.
        self.trace = None
        self.rx_packets_processed = kernel.probes.counter(
            "driver.%s.rx_processed" % name
        )
        self.tx_packets_started = kernel.probes.counter(
            "driver.%s.tx_started" % name
        )
        # Shared per-packet Work commands for the TX service loop (the
        # CPU model only reads ``.cycles``, so reuse is safe).
        self._tx_start_work = Work(self.costs.tx_start_per_packet)

    # ------------------------------------------------------------------

    def attach(self) -> None:
        """Create interrupt lines / threads and register with the kernel.

        Subclasses implement; must be called exactly once after the
        router wiring is complete.
        """
        raise NotImplementedError

    def output(self, packet: Packet) -> None:
        """IP-layer output hook: queue ``packet`` for transmission on
        this interface. Subclasses arrange for the TX path to run."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared TX service path (generator: charges CPU as it works)
    # ------------------------------------------------------------------

    def _tx_service(self, quota: Optional[int] = None):
        """Release completed TX descriptors, then move up to ``quota``
        packets from the ifqueue into free descriptors. Returns the
        number of packets newly handed to the hardware.

        This is the work whose starvation the paper describes in §4.4:
        if this code never runs, completed descriptors are never
        released and the transmitter idles with a full ring.
        """
        done = self.nic.tx_done_slots()
        if done:
            yield Work(self.costs.tx_reclaim_per_packet * done)
            self.nic.tx_reclaim()
        moved = 0
        while (
            (quota is None or moved < quota)
            and self.nic.tx_free_slots() > 0
            and not self.ifqueue.empty
        ):
            yield self._tx_start_work
            packet = self.ifqueue.dequeue()
            if packet is None:  # pragma: no cover - guarded by loop condition
                break
            self.nic.tx_enqueue(packet)
            self.tx_packets_started.increment()
            moved += 1
        return moved

    def __repr__(self) -> str:
        return "%s(%s)" % (type(self).__name__, self.name)
