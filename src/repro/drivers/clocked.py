"""Clocked-interrupt driver: pure periodic polling (related work, §8).

Traw & Smith's "clocked interrupts" poll the interface at a fixed period
with no per-packet interrupts at all. The paper points out the dilemma:
"too high, and the system spends all its time polling; too low, and the
receive latency soars." This driver exists to reproduce that trade-off
as an ablation against the hybrid interrupt-initiated polling design.

The implementation reuses the polled driver's callbacks but drives them
from a periodic kernel thread instead of the interrupt-initiated polling
thread. Interrupt lines are created but permanently disabled.
"""

from __future__ import annotations

from typing import Optional

from ..hw.cpu import IPL_DEVICE
from ..hw.nic import NIC
from ..kernel.kernel import Kernel
from ..net.ip import IPLayer
from ..net.packet import Packet
from ..sim.process import Sleep, Work
from ..trace.buffer import QUOTA_EXHAUST
from .base import Driver


class ClockedPollingDriver(Driver):
    """Polls the NIC every ``poll_interval_ns`` from a kernel thread."""

    def __init__(
        self,
        kernel: Kernel,
        nic: NIC,
        ip_layer: IPLayer,
        name: str,
        poll_interval_ns: int,
        quota: Optional[int] = None,
    ) -> None:
        if poll_interval_ns <= 0:
            raise ValueError("poll interval must be positive")
        super().__init__(kernel, nic, ip_layer, name, tx_ipl=IPL_DEVICE)
        self.poll_interval_ns = poll_interval_ns
        self.quota = quota
        self.thread = None
        #: Set by :meth:`set_poll_interval`; the poll loop rebinds its
        #: prebound Sleep at the top of the next round when this is True.
        self._interval_dirty = False
        self.polls = kernel.probes.counter("driver.%s.clocked_polls" % name)
        self.idle_polls = kernel.probes.counter("driver.%s.clocked_idle_polls" % name)

    def attach(self) -> None:
        self.thread = self.kernel.kernel_thread(
            self._poll_body(), "clockedpoll:%s" % self.name
        )

    def set_poll_interval(self, interval_ns: int) -> None:
        """Change the poll period; takes effect from the next round.

        The mitigation controller's actuator for the clocked driver: the
        poll loop prebinds its Sleep object, so a period change is a
        dirty-flag handoff rather than a per-round attribute read.
        """
        if interval_ns <= 0:
            raise ValueError("poll interval must be positive")
        if interval_ns != self.poll_interval_ns:
            self.poll_interval_ns = interval_ns
            self._interval_dirty = True

    def _poll_body(self):
        costs = self.costs
        batch_pull = self.kernel.config.rx_batch_pull
        rx_pull = self.nic.rx_pull
        rx_processed_inc = self.rx_packets_processed.increment
        input_packet = self.ip.input_packet
        sleep_period = Sleep(self.poll_interval_ns)
        poll_work = Work(costs.poll_loop_overhead + costs.poll_device_check)
        per_packet_work = Work(costs.polled_rx_per_packet)
        while True:
            if self._interval_dirty:
                self._interval_dirty = False
                sleep_period = Sleep(self.poll_interval_ns)
            yield sleep_period
            self.polls.increment()
            # Fixed cost of waking up and inspecting the device, paid on
            # every period whether or not anything arrived — the polling
            # overhead side of the dilemma.
            yield poll_work
            worked = False
            handled = 0
            if batch_pull:
                # The pulled batch lives only in this frame, so expose it
                # (oldest last, consumed by pop) for mid-flight teardown.
                batch = self.nic.rx_pull_many(self.quota)
                batch.reverse()
                self.in_flight = batch
                while batch:
                    packet = batch[-1]
                    yield per_packet_work
                    rx_processed_inc()
                    yield from input_packet(packet)
                    batch.pop()
                    handled += 1
                    worked = True
                self.in_flight = None
            else:
                while self.quota is None or handled < self.quota:
                    packet = rx_pull()
                    if packet is None:
                        break
                    self.in_flight = packet
                    yield per_packet_work
                    rx_processed_inc()
                    yield from input_packet(packet)
                    self.in_flight = None
                    handled += 1
                    worked = True
            trace = self.trace
            if trace is not None and handled:
                pending = self.nic.rx_pending()
                if pending > 0:
                    trace.record(QUOTA_EXHAUST, self.name, handled, pending)
            moved = yield from self._tx_service(self.quota)
            if moved:
                worked = True
            if not worked:
                self.idle_polls.increment()

    def output(self, packet: Packet) -> None:
        # Output waits for the next poll period too — no kick, by design.
        self.ifqueue.enqueue(packet)
