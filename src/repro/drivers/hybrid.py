"""NAPI-style hybrid driver: interrupt-arm → poll-drain → re-arm.

A middle point on the driver axis between the pure-interrupt classic
driver and the central polling system of §6.4, modelled on Linux NAPI:

* each interface owns a *per-device* softirq-like kernel thread (no
  shared polling daemon, no shared quota accounting);
* the RX/TX interrupt handlers are stubs — disable the line, mark the
  service need, schedule the thread ("almost no work at all");
* the thread drains the device in quota-bounded passes until no work
  remains, processing received packets to completion (IP input runs in
  the thread, no ipintrq), then re-enables interrupts;
* an **adaptive interrupt-coalescing timer** (cf. *Sorting Reordered
  Packets with Interrupt Coalescing*, PAPERS.md) delays the start of a
  drain after the scheduling interrupt: under sustained load the delay
  grows (batching more packets per interrupt, amortising dispatch
  cost), and it decays back toward zero when polls start coming up
  light — so an idle interface keeps interrupt-level latency.

The timer bound comes from :class:`repro.hw.machine.MachineSpec`
(``coalesce_us``); with the default 0 the driver is pure
schedule-on-interrupt NAPI. All adaptation is integer arithmetic on
deterministic inputs, so trials replay exactly.
"""

from __future__ import annotations

from typing import Optional

from ..hw.cpu import IPL_DEVICE
from ..hw.nic import NIC
from ..kernel.kernel import Kernel
from ..net.ip import IPLayer
from ..net.packet import Packet
from ..sim.process import Sleep, WaitSignal, Work
from ..sim.signals import Signal
from ..trace.buffer import QUOTA_EXHAUST
from .base import Driver

#: Floor of the adaptive timer once it is non-zero; growth starts here
#: and halving below it snaps to 0 (coalescing fully off).
MIN_COALESCE_NS = 1_000  # 1 µs


class HybridDriver(Driver):
    """Per-device NAPI context: stub IRQs plus a drain thread."""

    def __init__(
        self,
        kernel: Kernel,
        nic: NIC,
        ip_layer: IPLayer,
        name: str,
        tx_ipl: int = IPL_DEVICE,
        quota: Optional[int] = 10,
        coalesce_max_ns: int = 0,
        core: int = 0,
    ) -> None:
        super().__init__(kernel, nic, ip_layer, name, tx_ipl=tx_ipl)
        if quota is not None and quota <= 0:
            raise ValueError("hybrid quota must be positive or None")
        if coalesce_max_ns < 0:
            raise ValueError("coalesce_max_ns must be >= 0")
        self.quota = quota
        self.coalesce_max_ns = coalesce_max_ns
        #: Current adaptive delay between the scheduling interrupt and
        #: the drain; starts latency-first at 0.
        self.coalesce_ns = 0
        self.core = core
        self.rx_line = None
        self.tx_line = None
        self.thread = None
        self._signal = Signal(kernel.sim, "napi:%s" % name)
        self._scheduled = False
        self.rx_service_needed = False
        self.tx_service_needed = False
        probes = kernel.probes
        self.napi_polls = probes.counter("driver.%s.napi_polls" % name)
        self.napi_schedules = probes.counter("driver.%s.napi_schedules" % name)
        self.coalesce_grows = probes.counter("driver.%s.coalesce_grows" % name)
        self.coalesce_decays = probes.counter("driver.%s.coalesce_decays" % name)

    # ------------------------------------------------------------------

    def attach(self) -> None:
        self.rx_line = self.kernel.irq_line(
            "%s.rx" % self.name,
            IPL_DEVICE,
            self._rx_stub,
            dispatch_cycles=self.costs.interrupt_dispatch,
        )
        self.tx_line = self.kernel.irq_line(
            "%s.tx" % self.name,
            self.tx_ipl,
            self._tx_stub,
            dispatch_cycles=self.costs.interrupt_dispatch,
        )
        self.nic.attach_lines(self.rx_line, self.tx_line)
        self.thread = self.kernel.kernel_thread(
            self._napi_body(), "napi:%s" % self.name, core=self.core
        )

    # ------------------------------------------------------------------
    # Stub interrupt handlers (device IPL)
    # ------------------------------------------------------------------

    def _rx_stub(self):
        yield Work(self.costs.polled_stub_handler)
        self.rx_line.disable()
        self.rx_service_needed = True
        self._schedule()

    def _tx_stub(self):
        yield Work(self.costs.polled_stub_handler)
        self.tx_line.disable()
        self.tx_service_needed = True
        self._schedule()

    def _schedule(self) -> None:
        if not self._scheduled:
            self._scheduled = True
            self.napi_schedules.increment()
            self._signal.fire()

    # ------------------------------------------------------------------
    # The NAPI thread
    # ------------------------------------------------------------------

    def _napi_body(self):
        poll_work = Work(
            self.costs.poll_loop_overhead + self.costs.poll_device_check
        )
        per_packet_work = Work(self.costs.polled_rx_per_packet)
        quota = self.quota
        input_packet = self.ip.input_packet
        nic = self.nic
        while True:
            if not self._scheduled:
                yield WaitSignal(self._signal)
            self._scheduled = False
            if self.coalesce_ns > 0:
                # Hold off the drain so further arrivals share this pass.
                yield Sleep(self.coalesce_ns)
            drained = 0
            while True:
                self.napi_polls.increment()
                yield poll_work
                self.rx_service_needed = False
                handled = 0
                while quota is None or handled < quota:
                    packet = nic.rx_pull()
                    if packet is None:
                        break
                    self.in_flight = packet
                    yield per_packet_work
                    self.rx_packets_processed.increment()
                    yield from input_packet(packet)
                    self.in_flight = None
                    handled += 1
                if handled and nic.rx_pending() > 0:
                    trace = self.trace
                    if trace is not None:
                        trace.record(
                            QUOTA_EXHAUST, self.name, handled, nic.rx_pending()
                        )
                self.tx_service_needed = False
                yield from self._tx_service(quota)
                drained += handled
                # Adapt once per poll pass, not once per drain: under
                # sustained overload the drain loop never goes idle, so
                # a post-loop adaptation would never run at all.
                self._adapt(drained, handled)
                if not (
                    nic.rx_pending() > 0
                    or nic.tx_done_slots() > 0
                    or (not self.ifqueue.empty and nic.tx_free_slots() > 0)
                ):
                    break
            # Work complete: re-arm the interrupt lines (NAPI "complete").
            self.rx_line.enable()
            if nic.rx_pending() > 0:
                self.rx_line.request()
            self.tx_line.enable()
            if nic.tx_done_slots() > 0:
                self.tx_line.request()

    def _adapt(self, drained: int, handled: int = None) -> None:
        """Grow the coalescing delay under sustained load, decay it when
        drains come up light. Deterministic integer arithmetic only.

        ``drained`` is the cumulative count for the current drain and
        drives growth (sustained pressure); ``handled`` is the last poll
        pass alone and drives decay (a light pass means the device went
        quiet). Callers without a per-pass figure may omit ``handled``.
        """
        if handled is None:
            handled = drained
        limit = self.coalesce_max_ns
        if limit == 0:
            return
        quota = self.quota if self.quota is not None else 16
        if handled < quota // 2 and self.coalesce_ns:
            shrunk = self.coalesce_ns // 2
            if shrunk < MIN_COALESCE_NS:
                shrunk = 0
            self.coalesce_ns = shrunk
            self.coalesce_decays.increment()
        elif drained >= quota * 2:
            grown = self.coalesce_ns * 2 if self.coalesce_ns else MIN_COALESCE_NS
            grown = min(limit, grown)
            if grown != self.coalesce_ns:
                self.coalesce_ns = grown
                self.coalesce_grows.increment()

    # ------------------------------------------------------------------
    # IP output hook
    # ------------------------------------------------------------------

    def output(self, packet: Packet) -> None:
        accepted = self.ifqueue.enqueue(packet)
        if accepted and self.nic.tx_idle and self.nic.tx_done_slots() == 0:
            # Transmitter fully quiescent: nothing will interrupt us into
            # a TX service pass, so schedule one.
            self.tx_service_needed = True
            self._schedule()
