"""Device drivers: classic interrupt-driven (BSD), modified polled
(the paper's contribution), clocked periodic polling (related work),
and the NAPI-style hybrid (interrupt-arm → poll-drain → re-arm)."""

from .base import Driver
from .bsd import BsdDriver, ClassicIPInput
from .clocked import ClockedPollingDriver
from .highipl import HighIplDriver
from .hybrid import HybridDriver
from .polled import PolledDriver

__all__ = [
    "BsdDriver",
    "ClassicIPInput",
    "ClockedPollingDriver",
    "Driver",
    "HighIplDriver",
    "HybridDriver",
    "PolledDriver",
]
