"""Device drivers: classic interrupt-driven (BSD), modified polled
(the paper's contribution), and clocked periodic polling (related work)."""

from .base import Driver
from .bsd import BsdDriver, ClassicIPInput
from .clocked import ClockedPollingDriver
from .highipl import HighIplDriver
from .polled import PolledDriver

__all__ = [
    "BsdDriver",
    "ClassicIPInput",
    "ClockedPollingDriver",
    "Driver",
    "HighIplDriver",
    "PolledDriver",
]
