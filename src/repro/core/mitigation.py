"""Closed-loop overload mitigation: adaptive quota / duty / period.

The paper's defenses are *static*: a quota chosen at boot (§6.6.2), a
feedback watermark pair (§6.6.1), a cycle-limit fraction (§7). This
controller closes the loop, in the spirit of §6's feedback discipline
extended along the adaptive-coalescing axis of the related work: it
watches the same per-window progress signals the livelock watchdog
samples — arrivals, deliveries, useful-work fraction, queue occupancy —
and moves the *existing* actuators with hysteresis:

* the polling system's RX quota (clamped toward a floor, halving per
  escalation level, restored exactly on recovery);
* the polling duty cycle, via one-window input-inhibit pulses through
  :meth:`~repro.core.polling.PollingSystem.inhibit_input` — the lever
  that breaks an in-progress unbounded (``quota=None``) drain, because
  the polled RX callback re-checks ``input_allowed`` per packet;
* the clocked driver's quota (read live per packet) and poll period
  (via :meth:`~repro.drivers.clocked.ClockedPollingDriver
  .set_poll_interval`).

Hysteresis: ``trip_windows`` consecutive *pressure* windows (useful-work
fraction below ``low_fraction``) escalate one level; ``clear_windows``
consecutive *relief* windows (fraction at/above ``high_fraction`` — or
no arrivals at all — with the input queues drained below the low
watermark) de-escalate one level. Level 0 is bit-exact restoration of
the configured actuator values, so recovery is provable: after the
attack ends the controller walks back to level 0 and the kernel is in
its original configuration.

Cost discipline (same as faults, trace, watchdog): the controller is
**opt-in** (``KernelConfig.mitigation_enabled``). Disarmed, no object is
constructed and no event is scheduled — trials are bit-identical to a
build without this module; the only hot-path residue anywhere is the
clocked driver's one-bool period-dirty check per poll *round*. Armed, it
schedules one periodic sampling event per window, which perturbs event
sequence numbers exactly like the watchdog does — which is why it is a
separate axis, not a default.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..trace.buffer import MITIGATE_DOWN, MITIGATE_UP
from .quota import PollQuota

#: Inhibit-reason string the controller registers with the polling
#: system (shares the reason-set protocol with feedback and cyclelimit).
MITIGATION_REASON = "mitigation"


class MitigationController:
    """Watches window progress signals and adapts the overload levers."""

    def __init__(
        self,
        kernel,
        config,
        nic_in,
        delivered,
        polling=None,
        clocked_drivers: Sequence = (),
        queues: Sequence = (),
    ) -> None:
        if polling is None and not clocked_drivers:
            raise ValueError(
                "mitigation controller needs an actuator: a polling "
                "system or at least one clocked driver"
            )
        self.kernel = kernel
        self.config = config
        self.nic_in = nic_in
        self.delivered = delivered
        self.polling = polling
        self.clocked_drivers = tuple(clocked_drivers)
        self.queues = tuple(queues)
        self.period_ns = config.mitigation_period_ticks * config.clock_tick_ns

        # Baseline actuator values, restored exactly at level 0.
        self._base_quota: Optional[PollQuota] = (
            polling.quota if polling is not None else None
        )
        self._base_clocked = tuple(
            (driver, driver.quota, driver.poll_interval_ns)
            for driver in self.clocked_drivers
        )

        self.level = 0
        self.max_level_reached = 0
        self._pressure = 0
        self._relief = 0
        self._inhibited = False
        self._last_arrived = 0
        self._last_delivered = 0
        self._event = None
        #: Trace hook, bound by ``Router.attach_trace``; None disarmed.
        self.trace = None

        probes = kernel.probes
        self.samples = probes.counter("mitigation.samples")
        self.escalations = probes.counter("mitigation.escalations")
        self.deescalations = probes.counter("mitigation.deescalations")
        self.inhibit_pulses = probes.counter("mitigation.inhibit_pulses")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "MitigationController":
        if self._event is not None:
            raise RuntimeError("mitigation controller already started")
        self._last_arrived = self._arrived_total()
        self._last_delivered = self.delivered.value
        self._event = self.kernel.sim.schedule_periodic(
            self.period_ns, self._sample, label="mitigation"
        )
        return self

    def stop(self) -> None:
        if self._event is not None:
            self.kernel.sim.cancel(self._event)
            self._event = None
        if self._inhibited:
            self.polling.allow_input(MITIGATION_REASON)
            self._inhibited = False

    # ------------------------------------------------------------------
    # Signals
    # ------------------------------------------------------------------

    def _arrived_total(self) -> int:
        return self.nic_in.rx_accepted.value + self.nic_in.rx_overflow_drops.value

    def _occupancy(self) -> float:
        """Worst-case input backlog fraction across ring and queues."""
        worst = self.nic_in.rx_pending() / self.nic_in.rx_ring_capacity
        for queue in self.queues:
            fraction = len(queue) / queue.limit
            if fraction > worst:
                worst = fraction
        return worst

    # ------------------------------------------------------------------
    # The control loop (one call per window)
    # ------------------------------------------------------------------

    def _sample(self) -> None:
        self.samples.increment()
        config = self.config
        arrived_total = self._arrived_total()
        delivered_total = self.delivered.value
        arrived = arrived_total - self._last_arrived
        delivered = delivered_total - self._last_delivered
        self._last_arrived = arrived_total
        self._last_delivered = delivered_total
        occupancy = self._occupancy()

        was_inhibited = self._inhibited
        if was_inhibited:
            # Inhibit pulses last exactly one window: while input is
            # inhibited nothing drains the RX ring, so an occupancy-
            # conditioned release could never fire.
            self.polling.allow_input(MITIGATION_REASON)
            self._inhibited = False

        pressure_window = False
        if was_inhibited:
            # Our own shedding distorts the useful-work fraction; treat
            # the window as neutral evidence.
            pass
        elif arrived == 0 or delivered >= arrived * config.mitigation_high_fraction:
            if occupancy <= config.mitigation_queue_low_fraction:
                self._relief += 1
                self._pressure = 0
        elif delivered < arrived * config.mitigation_low_fraction:
            pressure_window = True
            self._pressure += 1
            self._relief = 0
        else:
            self._pressure = 0
            self._relief = 0

        escalated = False
        if (
            self._pressure >= config.mitigation_trip_windows
            and self.level < config.mitigation_max_level
        ):
            self._pressure = 0
            self._set_level(self.level + 1)
            escalated = True
        elif self._relief >= config.mitigation_clear_windows and self.level > 0:
            self._relief = 0
            self._set_level(self.level - 1)

        # Duty-cycle actuator: shed one window of input on every
        # escalation (this is also what interrupts an in-progress
        # unbounded drain, without which a quota change could never take
        # effect), and while escalated whenever the input side is both
        # saturated *and* still failing to make progress — occupancy
        # alone must not keep pulsing, or post-attack background traffic
        # topping up the ring would hold the duty cycle down forever and
        # the backlog could never drain. Never re-inhibit in the window
        # that just released a pulse — a pulse must be followed by at
        # least one open window, or input would stay off for good.
        if (
            self.polling is not None
            and not was_inhibited
            and self.level > 0
            and (
                escalated
                or (
                    pressure_window
                    and occupancy >= config.mitigation_queue_high_fraction
                )
            )
        ):
            self.polling.inhibit_input(MITIGATION_REASON)
            self._inhibited = True
            self.inhibit_pulses.increment()

    # ------------------------------------------------------------------
    # Actuation
    # ------------------------------------------------------------------

    def _rx_quota_for_level(self, level: int, base_rx: Optional[int]) -> Optional[int]:
        if level == 0:
            return base_rx
        config = self.config
        start = config.mitigation_quota_cap
        if base_rx is not None and base_rx < start:
            start = base_rx
        return max(config.mitigation_min_quota, start >> (level - 1))

    def _set_level(self, level: int) -> None:
        going_up = level > self.level
        self.level = level
        if level > self.max_level_reached:
            self.max_level_reached = level
        if going_up:
            self.escalations.increment()
        else:
            self.deescalations.increment()
        config = self.config

        if self.polling is not None:
            base = self._base_quota
            if level == 0:
                self.polling.quota = base
            else:
                self.polling.quota = PollQuota(
                    rx=self._rx_quota_for_level(level, base.rx), tx=base.tx
                )
        for driver, base_quota, base_interval in self._base_clocked:
            driver.quota = self._rx_quota_for_level(level, base_quota)
            scale = min(1 << level, config.mitigation_max_interval_scale)
            driver.set_poll_interval(base_interval * scale if level else base_interval)

        trace = self.trace
        if trace is not None:
            trace.record(
                MITIGATE_UP if going_up else MITIGATE_DOWN,
                MITIGATION_REASON,
                level,
            )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    @property
    def restored(self) -> bool:
        """True when every actuator is back at its configured value."""
        return self.level == 0 and not self._inhibited

    def report(self) -> dict:
        return {
            "level": self.level,
            "max_level_reached": self.max_level_reached,
            "samples": self.samples.value,
            "escalations": self.escalations.value,
            "deescalations": self.deescalations.value,
            "inhibit_pulses": self.inhibit_pulses.value,
            "restored": self.restored,
        }

    def __repr__(self) -> str:
        return "MitigationController(level=%d, samples=%d)" % (
            self.level,
            self.samples.value,
        )
