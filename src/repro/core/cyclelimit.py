"""CPU cycle limit on packet processing (§7).

Guarantees progress for user-level code: the polling thread reads the
fine-grained cycle counter around each polling pass and adds the delta to
a running total; when the total exceeds a configured fraction of the
cycles in an accounting period (10 ms — the scheduler quantum), input
handling is inhibited for the rest of the period. A timer clears the
total at each period boundary and re-enables input; the idle thread also
re-enables input and clears the total (an idle CPU is definitionally not
starving anyone).

Deliberate paper-faithful quirks:

* interrupt dispatch cycles are *not* counted (they occur outside the
  polling loop) — responsible for the initial dips in fig 7-1;
* output processing continues while input is inhibited, and its cycles
  *are* counted — part of why the user process receives less CPU than
  the threshold implies (§7).
"""

from __future__ import annotations

from typing import Optional

from ..kernel.kernel import Kernel
from ..sim.units import NS_PER_SEC
from ..trace.buffer import CYCLE_LIMIT, CYCLE_RESET


class CycleLimiter:
    """Bounds packet-processing cycles per period to a fraction."""

    REASON = "cyclelimit"

    def __init__(
        self,
        kernel: Kernel,
        fraction: float,
        period_ticks: Optional[int] = None,
    ) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1], got %r" % fraction)
        self.kernel = kernel
        self.fraction = fraction
        self.period_ticks = (
            period_ticks
            if period_ticks is not None
            else kernel.config.cycle_limit_period_ticks
        )
        period_ns = self.period_ticks * kernel.config.clock_tick_ns
        self.period_cycles = int(kernel.costs.cpu_hz * period_ns / NS_PER_SEC)
        self.threshold_cycles = int(self.period_cycles * fraction)
        self.used_cycles = 0
        self.polling = None
        self.inhibitions = kernel.probes.counter("cyclelimit.inhibitions")
        self.resets = kernel.probes.counter("cyclelimit.resets")
        #: Trace hook (:class:`repro.trace.TraceBuffer`), bound by
        #: ``Router.attach_trace``; None on the untraced fast path.
        self.trace = None
        kernel.on_tick.append(self._on_tick)
        kernel.on_idle.append(self._on_idle)

    def attach(self, polling) -> None:
        """Bind the limiter to the polling system it controls."""
        self.polling = polling

    @property
    def inhibited(self) -> bool:
        return (
            self.polling is not None
            and self.REASON in self.polling._inhibit_reasons
        )

    # ------------------------------------------------------------------
    # Charging (called by the polling thread after each pass)
    # ------------------------------------------------------------------

    def charge(self, cycles: int) -> None:
        """Add one polling pass's measured cycles; inhibit if over limit.

        "if this total is above a threshold, input handling is
        immediately inhibited" (§7).
        """
        if cycles < 0:
            raise ValueError("cannot charge negative cycles")
        self.used_cycles += cycles
        if (
            self.used_cycles > self.threshold_cycles
            and self.polling is not None
            and not self.inhibited
        ):
            self.inhibitions.increment()
            trace = self.trace
            if trace is not None:
                trace.record(CYCLE_LIMIT, self.REASON, self.used_cycles)
            self.polling.inhibit_input(self.REASON)

    # ------------------------------------------------------------------
    # Period boundaries and idle
    # ------------------------------------------------------------------

    def _on_tick(self, tick: int) -> None:
        if tick % self.period_ticks == 0:
            self._reset()

    def _on_idle(self) -> None:
        # "Execution of the system's idle thread also re-enables input
        # interrupts and clears the running total."
        if self.used_cycles or self.inhibited:
            self._reset()

    def _reset(self) -> None:
        trace = self.trace
        if trace is not None and (self.used_cycles or self.inhibited):
            trace.record(CYCLE_RESET, self.REASON, self.used_cycles)
        self.used_cycles = 0
        self.resets.increment()
        if self.polling is not None:
            self.polling.allow_input(self.REASON)
