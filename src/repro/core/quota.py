"""Packet-count quotas for polling callbacks (§6.6.2).

The polling thread passes each callback "a quota on the number of packets
they are allowed to handle"; once a callback uses its quota it must
return, letting the thread round-robin between interfaces and between
input and output work. The paper finds 10–20 near-optimal and shows that
no quota at all reintroduces livelock (fig 6-3, 6-5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

#: Sentinel accepted wherever a quota is expected: no limit (fig 6-3/6-5
#: "quota = infinity").
UNLIMITED = None


@dataclass(frozen=True)
class PollQuota:
    """Per-callback packet quotas.

    ``rx`` bounds packets a received-packet callback may process per poll
    round; ``tx`` bounds packets moved to the transmit ring per round.
    The paper uses a single knob for both; the split is exposed for the
    ablation benches. ``None`` means unlimited.
    """

    rx: Optional[int] = 10
    tx: Optional[int] = 10

    def __post_init__(self) -> None:
        for name, value in (("rx", self.rx), ("tx", self.tx)):
            if value is not None and value <= 0:
                raise ValueError("%s quota must be positive or None" % name)

    @classmethod
    def of(cls, quota: Union[None, int, "PollQuota"]) -> "PollQuota":
        """Coerce an int / None / PollQuota into a PollQuota."""
        if isinstance(quota, PollQuota):
            return quota
        return cls(rx=quota, tx=quota)

    @property
    def unlimited(self) -> bool:
        return self.rx is None and self.tx is None

    def describe(self) -> str:
        def fmt(value: Optional[int]) -> str:
            return "inf" if value is None else str(value)

        if self.rx == self.tx:
            return "quota=%s" % fmt(self.rx)
        return "quota=rx:%s/tx:%s" % (fmt(self.rx), fmt(self.tx))
