"""The paper's contribution: interrupt-initiated polling with quotas,
queue-state feedback, and CPU cycle limits (§5–§7)."""

from .cyclelimit import CycleLimiter
from .feedback import QueueStateFeedback
from .mitigation import MitigationController
from .polling import PollingSystem
from .quota import UNLIMITED, PollQuota
from .variants import (
    CLOCKED,
    HIGH_IPL,
    MODIFIED_NO_POLLING,
    POLLING,
    UNMODIFIED,
    clocked,
    describe,
    high_ipl,
    modified_no_polling,
    polling,
    unmodified,
)

__all__ = [
    "CLOCKED",
    "CycleLimiter",
    "HIGH_IPL",
    "MODIFIED_NO_POLLING",
    "MitigationController",
    "POLLING",
    "PollQuota",
    "PollingSystem",
    "QueueStateFeedback",
    "UNLIMITED",
    "UNMODIFIED",
    "clocked",
    "describe",
    "high_ipl",
    "modified_no_polling",
    "polling",
    "unmodified",
]
