"""The polling thread — the heart of the modified kernel (§6.4).

Design, following the paper §5.2/§6.4 ("do almost nothing at high IPL"):

* interrupts are used **only to initiate polling**: the device's stub
  handler records a service need, leaves the device's interrupt-enable
  flag clear, and schedules the polling thread if it is not already
  scheduled;
* the polling thread runs at IPL 0 as a kernel thread, checks every
  registered device's flags, and invokes received-packet and
  transmit-complete callbacks with a packet-count quota;
* callbacks process packets **to completion** (no ipintrq);
* round-robin over devices, and over input vs output work on each
  device, provides fairness;
* only when no work is pending does the thread invoke each driver's
  interrupt-enable callback and sleep.

Input processing can be *inhibited* by external controllers — the
queue-state feedback of §6.6.1 and the CPU cycle limit of §7 — via
:meth:`PollingSystem.inhibit_input` / :meth:`PollingSystem.allow_input`.
While inhibited, received-packet callbacks are skipped and RX interrupts
stay disabled; output processing continues (the paper's cycle limit
"inhibits packet input processing but not output processing").
"""

from __future__ import annotations

from typing import List, Optional, Set, Union

from ..kernel.kernel import Kernel
from ..sim.process import WaitSignal, Work
from ..sim.signals import Signal
from ..trace.buffer import INPUT_ALLOW, INPUT_INHIBIT
from .quota import PollQuota


class PollingSystem:
    """Registry of polled devices plus the polling thread itself."""

    def __init__(
        self,
        kernel: Kernel,
        quota: Union[None, int, PollQuota] = 10,
        cycle_limiter=None,
        name: str = "netpoll",
        core: int = 0,
    ) -> None:
        self.kernel = kernel
        self.costs = kernel.costs
        self.quota = PollQuota.of(quota)
        self.cycle_limiter = cycle_limiter
        #: Thread/signal name and the core the daemon is pinned to. On a
        #: single-core machine the defaults reproduce the pre-SMP system
        #: exactly; multi-core routers may run one system per polling
        #: core with the devices partitioned across them.
        self.name = name
        self.core = core
        self.devices: List = []
        self._signal = Signal(kernel.sim, name)
        self._wake_pending = False
        self._rr_index = 0
        self._inhibit_reasons: Set[str] = set()
        self.thread = None
        probes = kernel.probes
        self.poll_rounds = probes.counter("poll.rounds")
        self.wakeups = probes.counter("poll.wakeups")
        self.inhibit_events = probes.counter("poll.input_inhibits")
        #: Trace hook (:class:`repro.trace.TraceBuffer`), bound by
        #: ``Router.attach_trace``; None on the untraced fast path.
        self.trace = None
        if cycle_limiter is not None:
            cycle_limiter.attach(self)

    # ------------------------------------------------------------------
    # Registration and lifecycle
    # ------------------------------------------------------------------

    def register(self, driver) -> None:
        """Register a polled driver ("At boot time, the modified interface
        drivers register themselves with the polling system", §6.4)."""
        self.devices.append(driver)
        driver.polling = self

    def start(self) -> None:
        if self.thread is not None:
            raise RuntimeError("polling system already started")
        if not self.devices:
            raise RuntimeError("no polled devices registered")
        self.thread = self.kernel.kernel_thread(
            self._body(), self.name, core=self.core
        )

    # ------------------------------------------------------------------
    # Wake-up and inhibition interfaces
    # ------------------------------------------------------------------

    def wake(self) -> None:
        """Schedule the polling thread if it is not already scheduled."""
        if not self._wake_pending:
            self._wake_pending = True
            self.wakeups.increment()
            self._signal.fire()

    @property
    def input_allowed(self) -> bool:
        return not self._inhibit_reasons

    def inhibit_input(self, reason: str) -> None:
        """Stop input processing (and keep RX interrupts off) until every
        inhibitor calls :meth:`allow_input` with its reason."""
        if reason not in self._inhibit_reasons:
            self._inhibit_reasons.add(reason)
            self.inhibit_events.increment()
            trace = self.trace
            if trace is not None:
                trace.record(INPUT_INHIBIT, reason)

    def allow_input(self, reason: str) -> None:
        """Withdraw one inhibition reason; wakes the thread when input
        becomes allowed again and receive work may be pending."""
        if reason in self._inhibit_reasons:
            self._inhibit_reasons.remove(reason)
            trace = self.trace
            if trace is not None:
                trace.record(INPUT_ALLOW, reason)
            if not self._inhibit_reasons:
                self.wake()

    # ------------------------------------------------------------------
    # The polling thread
    # ------------------------------------------------------------------

    def _body(self):
        cpu = self.kernel.cpu
        while True:
            while True:
                yield Work(self.costs.poll_loop_overhead)
                if self.cycle_limiter is not None:
                    yield Work(self.costs.cycle_accounting)
                    pass_start = cpu.read_cycle_counter()
                self.poll_rounds.increment()
                any_work = False
                count = len(self.devices)
                for offset in range(count):
                    driver = self.devices[(self._rr_index + offset) % count]
                    yield Work(self.costs.poll_device_check)
                    if self.input_allowed and driver.rx_pending():
                        handled = yield from driver.rx_callback(self.quota.rx)
                        if handled:
                            any_work = True
                    if driver.tx_pending():
                        handled = yield from driver.tx_callback(self.quota.tx)
                        if handled:
                            any_work = True
                self._rr_index = (self._rr_index + 1) % max(1, count)
                if self.cycle_limiter is not None:
                    yield Work(self.costs.cycle_accounting)
                    self.cycle_limiter.charge(
                        cpu.read_cycle_counter() - pass_start
                    )
                if not any_work:
                    break
            # No work pending anywhere: re-enable interrupts so the next
            # packet event interrupts us, then sleep.
            for driver in self.devices:
                driver.enable_interrupts(rx_allowed=self.input_allowed)
            if self._wake_pending:
                self._wake_pending = False
                continue
            yield WaitSignal(self._signal)
            self._wake_pending = False
