"""Queue-state feedback (§6.6.1).

When the screening queue fills to its high watermark (75 % by default),
further input processing — and input interrupts — are inhibited until
either the queue drains to its low watermark (25 %) or a timeout expires
("arbitrarily chosen as one clock tick, or about 1 msec ... in case the
screend program is hung, so that packets for other consumers are not
dropped indefinitely").

The same mechanism may be attached to any :class:`PacketQueue`
("the same queue-state feedback technique could be applied to other
queues in the system", §6.6.1), which the ablation benches exploit.
"""

from __future__ import annotations

from typing import Optional

from ..kernel.callouts import Callout
from ..kernel.kernel import Kernel
from ..kernel.queues import PacketQueue
from ..trace.buffer import FEEDBACK_TIMEOUT
from .polling import PollingSystem


class QueueStateFeedback:
    """Inhibit input processing based on one queue's occupancy."""

    def __init__(
        self,
        kernel: Kernel,
        polling: PollingSystem,
        queue: PacketQueue,
        timeout_ticks: Optional[int] = 1,
        reason: Optional[str] = None,
    ) -> None:
        if queue.high_watermark is None or queue.low_watermark is None:
            raise ValueError(
                "feedback queue %r needs high and low watermarks" % queue.name
            )
        self.kernel = kernel
        self.polling = polling
        self.queue = queue
        self.timeout_ticks = timeout_ticks
        self.reason = reason if reason is not None else "feedback:%s" % queue.name
        self._timeout_callout: Optional[Callout] = None
        self._dequeues_at_inhibit = 0
        self.inhibits = kernel.probes.counter("feedback.%s.inhibits" % queue.name)
        self.timeouts = kernel.probes.counter("feedback.%s.timeouts" % queue.name)
        #: Trace hook (:class:`repro.trace.TraceBuffer`), bound by
        #: ``Router.attach_trace``. Inhibit/allow flips are traced inside
        #: the polling system; this hook records only the failsafe
        #: timeout firing against a hung consumer.
        self.trace = None
        queue.on_high.append(self._on_high)
        queue.on_low.append(self._on_low)

    @property
    def inhibited(self) -> bool:
        return self.reason in self.polling._inhibit_reasons

    # ------------------------------------------------------------------

    def _on_high(self, queue: PacketQueue) -> None:
        # Level-triggered: the queue re-fires on every congested enqueue,
        # so bail out if we are already inhibiting.
        if self.inhibited:
            return
        self.inhibits.increment()
        self.polling.inhibit_input(self.reason)
        if self.timeout_ticks is not None:
            self._disarm_timeout()
            self._dequeues_at_inhibit = self.queue.dequeue_count
            self._timeout_callout = self.kernel.callout(
                self.timeout_ticks, self._on_timeout
            )

    def _on_low(self, queue: PacketQueue) -> None:
        self._disarm_timeout()
        self.polling.allow_input(self.reason)

    def _on_timeout(self) -> None:
        """Failsafe: re-enable input if the consumer looks hung.

        The timeout exists "in case the screend program is hung, so that
        packets for other consumers are not dropped indefinitely". A
        consumer that *is* draining the queue will reach the low
        watermark on its own; re-enabling input mid-drain would only
        steal the CPU back from it. So the timeout checks for progress:
        no dequeues since inhibition -> consumer hung -> re-enable input;
        otherwise re-arm and keep waiting for the low watermark.
        """
        self._timeout_callout = None
        if not self.inhibited:
            return
        if self.queue.dequeue_count == self._dequeues_at_inhibit:
            self.timeouts.increment()
            trace = self.trace
            if trace is not None:
                trace.record(FEEDBACK_TIMEOUT, self.reason)
            self.polling.allow_input(self.reason)
            return
        self._dequeues_at_inhibit = self.queue.dequeue_count
        self._timeout_callout = self.kernel.callout(
            self.timeout_ticks, self._on_timeout
        )

    def _disarm_timeout(self) -> None:
        if self._timeout_callout is not None:
            self._timeout_callout.cancel()
            self._timeout_callout = None
