"""Named kernel variants — the configurations measured in the paper.

Each factory returns a :class:`~repro.kernel.config.KernelConfig`; the
experiment topology builds the matching kernel. Variant names appear in
figure legends, so they mirror the paper's marks:

* ``unmodified``            — stock kernel (filled circles);
* ``modified_no_polling``   — modified kernel acting as unmodified
  (open circles, fig 6-3: "performs slightly worse");
* ``polling``               — the full modified kernel, with quota,
  optional queue-state feedback and optional cycle limit;
* ``clocked``               — periodic polling baseline from related work.
"""

from __future__ import annotations

from typing import Optional, Union

from ..kernel.config import IP_LAYER_THREAD, KernelConfig
from ..kernel.costs import CostModel
from .quota import PollQuota

#: Variant-name constants used in figure legends and result tables.
UNMODIFIED = "unmodified"
MODIFIED_NO_POLLING = "modified_no_polling"
POLLING = "polling"
CLOCKED = "clocked"
HIGH_IPL = "high_ipl"
HYBRID = "hybrid"


def unmodified(
    screend: bool = False,
    ip_layer_mode: str = IP_LAYER_THREAD,
    input_feedback: bool = False,
    costs: Optional[CostModel] = None,
) -> KernelConfig:
    """The stock interrupt-driven kernel (fig 6-1).

    ``input_feedback`` adds §5.1 interrupt-rate limiting to the classic
    kernel: input interrupts are disabled when ipintrq fills and
    re-enabled when it drains — the cheapest of the paper's fixes.
    """
    config = KernelConfig(
        ip_layer_mode=ip_layer_mode,
        screend_enabled=screend,
        classic_input_feedback=input_feedback,
    )
    if costs is not None:
        config = config.with_options(costs=costs)
    config.validate()
    return config


def high_ipl(
    quota: Optional[int] = 10,
    screend: bool = False,
    costs: Optional[CostModel] = None,
) -> KernelConfig:
    """§5.3's first approach: process to completion at device IPL."""
    config = KernelConfig(
        use_high_ipl=True,
        poll_quota=quota,
        screend_enabled=screend,
    )
    if costs is not None:
        config = config.with_options(costs=costs)
    config.validate()
    return config


def modified_no_polling(
    screend: bool = False,
    ip_layer_mode: str = IP_LAYER_THREAD,
    costs: Optional[CostModel] = None,
) -> KernelConfig:
    """The modified kernel configured to act as if unmodified (fig 6-3,
    open circles): classic path plus a small per-packet compat overhead."""
    config = KernelConfig(
        ip_layer_mode=ip_layer_mode,
        use_polling=True,
        emulate_unmodified=True,
        screend_enabled=screend,
    )
    if costs is not None:
        config = config.with_options(costs=costs)
    config.validate()
    return config


def polling(
    quota: Union[None, int, PollQuota] = 10,
    screend: bool = False,
    feedback: Optional[bool] = None,
    cycle_limit: Optional[float] = None,
    mitigate: bool = False,
    costs: Optional[CostModel] = None,
) -> KernelConfig:
    """The paper's modified kernel (§6.4).

    ``feedback`` defaults to following ``screend`` — the paper only
    attaches queue-state feedback to the screening queue. ``cycle_limit``
    is the §7 threshold fraction (None disables the mechanism).
    ``mitigate`` arms the closed-loop overload controller
    (:mod:`repro.core.mitigation`) on top of the static defenses.
    """
    quota = PollQuota.of(quota)
    if feedback is None:
        feedback = screend
    config = KernelConfig(
        use_polling=True,
        poll_quota=quota.rx,
        screend_enabled=screend,
        feedback_enabled=feedback,
        cycle_limit_fraction=cycle_limit,
        mitigation_enabled=mitigate,
    )
    if costs is not None:
        config = config.with_options(costs=costs)
    config.validate()
    return config


def clocked(
    poll_interval_ns: int = 1_000_000,
    quota: Optional[int] = None,
    screend: bool = False,
    mitigate: bool = False,
    costs: Optional[CostModel] = None,
) -> KernelConfig:
    """Pure periodic polling (Traw & Smith clocked interrupts, §8).

    ``mitigate`` arms the closed-loop overload controller, which adapts
    this driver's quota and poll period under attack.
    """
    config = KernelConfig(
        use_clocked_polling=True,
        clocked_poll_interval_ns=poll_interval_ns,
        poll_quota=quota,
        screend_enabled=screend,
        mitigation_enabled=mitigate,
    )
    if costs is not None:
        config = config.with_options(costs=costs)
    config.validate()
    return config


def hybrid(
    quota: Optional[int] = 10,
    screend: bool = False,
    costs: Optional[CostModel] = None,
) -> KernelConfig:
    """NAPI-style hybrid driver: per-device interrupt-arm → poll-drain
    → re-arm threads. The adaptive coalescing timer bound is a
    *machine* property (``MachineSpec.coalesce_us``), not a kernel one:
    the same kernel build runs with whatever timer the NIC offers."""
    config = KernelConfig(
        use_hybrid=True,
        poll_quota=quota,
        screend_enabled=screend,
    )
    if costs is not None:
        config = config.with_options(costs=costs)
    config.validate()
    return config


def describe(config: KernelConfig) -> str:
    """Human-readable variant label for a configuration."""
    if config.use_clocked_polling:
        label = "clocked(%.1f ms" % (config.clocked_poll_interval_ns / 1e6)
        if config.mitigation_enabled:
            label += ", mitigate"
        label += ")"
    elif config.use_high_ipl:
        quota = "inf" if config.poll_quota is None else str(config.poll_quota)
        label = "high_ipl(quota=%s)" % quota
    elif config.use_hybrid:
        quota = "inf" if config.poll_quota is None else str(config.poll_quota)
        label = "hybrid(quota=%s)" % quota
    elif config.emulate_unmodified:
        label = MODIFIED_NO_POLLING
    elif config.use_polling:
        quota = "inf" if config.poll_quota is None else str(config.poll_quota)
        label = "polling(quota=%s" % quota
        if config.feedback_enabled:
            label += ", feedback"
        if config.cycle_limit_fraction is not None:
            label += ", limit=%d%%" % round(config.cycle_limit_fraction * 100)
        if config.mitigation_enabled:
            label += ", mitigate"
        label += ")"
    else:
        label = UNMODIFIED
        if config.classic_input_feedback:
            label += "(input feedback)"
    if config.screend_enabled:
        label += " + screend"
    return label
