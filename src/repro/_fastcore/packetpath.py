"""Compiled packet fast path: bind C entry points onto live objects.

The C extension exposes ``pp_bind(kind, owner, sim, extras)`` which
creates a ``PyCFunction`` closed over the owning object and the
:class:`FastCore` simulator and stores it in the owner's instance
``__dict__``. ``PyCFunction`` objects have no ``__get__``, so instance
lookup returns them as-is, shadowing the class method exactly; deleting
the instance attribute makes the Python method visible again. All
mutable state stays in the Python objects, so C and Python execution
can interleave freely and remain bit-identical.

Escape seams (ISSUE 9 / DESIGN.md §13): the fast path is only installed
on the ``fast-c`` backend and is torn back out — by
:func:`uninstall` — the moment a trace buffer, fault injector, or
passive monitor attaches. Entry points that can outlive the teardown
(pending completion events, per-task ``deliver`` bindings) delegate to
the Python methods whenever ``trace`` is armed on their object, so a
late ``attach_trace`` still observes every event. The sanitizer forces
the pure backend one layer up and never sees any of this.

Everything here degrades to a no-op when the C extension is absent or
the simulator is not the compiled flavour.
"""

from __future__ import annotations

try:  # pragma: no cover - exercised only when the extension is built
    from . import _corec as _c
except ImportError:  # pragma: no cover
    _c = None

_PP_STATE = "_pp_state"


def _fastcore_type():
    if _c is None or not hasattr(_c, "pp_bind"):
        return None
    return getattr(_c, "FastCore", None)


def available(sim) -> bool:
    """True when the compiled packet path can bind to ``sim``."""
    fc = _fastcore_type()
    return fc is not None and type(sim) is fc


#: Bind kinds whose instance-attribute name differs from the kind suffix.
_ATTR_OVERRIDES = {
    "queue.enqueue_red": "enqueue",
    "driver.output_kick_irq": "output",
    "driver.output_kick_poll": "output",
    "driver.output_plain": "output",
    "gen.tick_constant": "_tick",
    "gen.tick_poisson": "_tick",
    "gen.tick_bursty": "_tick",
    "gen.gap_over": "_gap_over",
}

#: The NIC methods ported to C, bound per interface.
_NIC_KINDS = (
    "nic.receive_from_wire",
    "nic.rx_pull",
    "nic.rx_pull_many",
    "nic.rx_pending",
    "nic.tx_free_slots",
    "nic.tx_done_slots",
    "nic.tx_enqueue",
    "nic.tx_reclaim",
    "nic._transmit_complete",
)


def _bind(state, kind, owner, sim, extras=None):
    _c.pp_bind(kind, owner, sim, extras)
    attr = _ATTR_OVERRIDES.get(kind) or kind.rsplit(".", 1)[1]
    state["bound"].append((owner, attr))


def install(router) -> bool:
    """Bind the compiled CPU engine at the end of ``Router.__init__``.

    Tasks created afterwards (all kernel threads, driver IRQ handlers,
    softnet/netisr, apps — they are spawned in ``Router.start``) go
    through the wrapped ``cpu.task`` and get a compiled ``deliver``.
    """
    sim = router.sim
    if not available(sim):
        return False
    if len(router.kernel.cpus) > 1:
        # The compiled engine models exactly one CPU; multi-core
        # machines fall back to the pure-Python bodies mid-install
        # (bit-identical — the calendar-queue core itself is
        # core-agnostic and stays compiled).
        return False
    state = {"bound": [], "restore": [], "dict_restore": []}
    cpu = router.kernel.cpu
    try:
        # Capture the original bound method before shadowing it.
        _bind(state, "cpu.task", cpu, sim, (cpu.task,))
        _bind(state, "cpu.add_work", cpu, sim)
        _bind(state, "cpu.requeue_behind", cpu, sim)
        _bind(state, "cpu.on_task_ipl_changed", cpu, sim)
        _bind(state, "cpu.remove_task", cpu, sim)
        _bind(state, "cpu._complete", cpu, sim)
        # The idle task is the only task alive this early; everything
        # else is spawned during start() via the wrapped cpu.task.
        idle = getattr(router.kernel, "idle_task", None)
        if idle is not None:
            _bind(state, "task.deliver", idle, sim)
    except Exception:
        router.__dict__[_PP_STATE] = state
        uninstall(router)
        raise
    router.__dict__[_PP_STATE] = state
    return True


def install_started(router) -> bool:
    """Bind the per-packet pipeline at the end of ``Router.start``.

    Gated on no armed faults (``arm_faults`` runs before ``start`` and
    already uninstalled the engine bindings in that case).
    """
    state = router.__dict__.get(_PP_STATE)
    if state is None or router.faults is not None or router.trace is not None:
        return False
    sim = router.sim
    if not available(sim):
        return False
    from ..drivers.bsd import BsdDriver
    from ..drivers.clocked import ClockedPollingDriver
    from ..drivers.highipl import HighIplDriver
    from ..drivers.polled import PolledDriver
    from ..kernel.queues import PacketQueue, REDQueue

    def bind_queue(q):
        # Exact-type gate: a subclass may override the ported bodies.
        t = type(q)
        if t is REDQueue:
            _bind(state, "queue.enqueue_red", q, sim)
        elif t is PacketQueue:
            _bind(state, "queue.enqueue", q, sim)
        else:
            return
        _bind(state, "queue.dequeue", q, sim)

    try:
        for nic in (router.nic_in, router.nic_out):
            for kind in _NIC_KINDS:
                _bind(state, kind, nic, sim)
        for drv in (router.driver_in, router.driver_out):
            bind_queue(drv.ifqueue)
            t = type(drv)
            if t is BsdDriver or t is HighIplDriver:
                okind = "driver.output_kick_irq"
            elif t is PolledDriver:
                okind = "driver.output_kick_poll"
            elif t is ClockedPollingDriver:
                okind = "driver.output_plain"
            else:
                okind = None
            if okind is not None:
                _bind(state, okind, drv, sim)
                # ip.outputs captured the Python bound method back in
                # Router.__init__; repoint it at the compiled entry and
                # remember the original for uninstall.
                outputs = router.ip.outputs
                if drv.name in outputs:
                    state["dict_restore"].append(
                        (outputs, drv.name, outputs[drv.name])
                    )
                    outputs[drv.name] = drv.output
        if router.ip_input is not None:
            bind_queue(router.ip_input.ipintrq)
            _bind(state, "ipinput.enqueue", router.ip_input, sim)
        if router.screen_queue is not None:
            bind_queue(router.screen_queue)
        _bind(state, "ip._dispatch", router.ip, sim)
        # Interrupt lines exist only after the drivers attached in
        # Router.start — which is why this runs at the end of start().
        for line in router.kernel.interrupts.lines:
            _bind(state, "line.request", line, sim)
        # Compiled IRQ dispatch: protos let try_deliver build the
        # handler task and run its body as a C state machine. Lines
        # without a proto (softnet, clock) fall back to the Python
        # try_deliver from inside the C binding.
        ctrl = router.kernel.interrupts
        cpu = router.kernel.cpu
        _bind(state, "ctrl.try_deliver", ctrl, sim)
        _bind(state, "ctrl._on_ipl_change", ctrl, sim)
        # The controller registered its bound _on_ipl_change as an IPL
        # observer at construction; repoint that slot at the compiled
        # entry (the restore list replays ``obs[i] = original``).
        observers = cpu.ipl_observers
        for i, cb in enumerate(observers):
            if (
                getattr(cb, "__self__", None) is ctrl
                and getattr(cb, "__func__", None)
                is type(ctrl)._on_ipl_change
            ):
                state["dict_restore"].append((observers, i, cb))
                observers[i] = ctrl.__dict__["_on_ipl_change"]
                break
        for drv in (router.driver_in, router.driver_out):
            t = type(drv)
            if t is BsdDriver:
                protos = (("bsd_rx", drv.rx_line), ("bsd_tx", drv.tx_line))
            elif t is HighIplDriver:
                protos = (
                    ("highipl", drv.rx_line),
                    ("highipl", drv.tx_line),
                )
            elif t is PolledDriver:
                protos = (
                    ("polled_rx", drv.rx_line),
                    ("polled_tx", drv.tx_line),
                )
            else:
                protos = ()
            for irq_kind, line in protos:
                _c.pp_irq_proto(irq_kind, line, drv, sim)
                state["bound"].append((line, "_pp_irq"))
        clock_line = router.kernel.clock.line
        _c.pp_irq_proto("clock", clock_line, router.kernel, sim)
        state["bound"].append((clock_line, "_pp_irq"))
        for nic, kind in (
            (router.nic_out, "router._on_output_transmit"),
            (router.nic_in, "router._on_input_transmit"),
        ):
            fn = _c.pp_bind(kind, router, sim)
            state["restore"].append((nic, "on_transmit", nic.on_transmit))
            nic.on_transmit = fn
    except Exception:
        uninstall(router)
        raise
    return True


def bind_generator(gen) -> bool:
    """Hook for ``TrafficGenerator.start``: compiled tick bodies attach
    only when the generator feeds an installed NIC directly (no faulty
    wire in between, no armed trace, pooled allocation)."""
    fc = _fastcore_type()
    if fc is None or type(gen.sim) is not fc:
        return False
    if gen.wire is not None or gen.trace is not None or gen.pool is None:
        return False
    nic = gen.nic
    # The compiled rx entry in the NIC's instance dict doubles as the
    # "packet pipeline is installed" marker; it is removed by uninstall.
    if nic is None or "receive_from_wire" not in nic.__dict__:
        return False
    from ..workloads.generators import (
        BurstyGenerator,
        ConstantRateGenerator,
        PoissonGenerator,
    )

    t = type(gen)
    if t is ConstantRateGenerator:
        kind = "gen.tick_constant"
    elif t is PoissonGenerator:
        kind = "gen.tick_poisson"
    elif t is BurstyGenerator:
        kind = "gen.tick_bursty"
    else:
        return False
    _c.pp_bind(kind, gen, gen.sim)
    if t is BurstyGenerator:
        _c.pp_bind("gen.gap_over", gen, gen.sim)
    return True


def uninstall(router) -> None:
    """Remove every binding; the Python class methods take over.

    Safe to call repeatedly or when :func:`install` never ran. Residual
    C entry points held by in-flight events delegate to Python when a
    trace is armed, so teardown-then-attach_trace stays exact.
    """
    state = router.__dict__.pop(_PP_STATE, None)
    if state is None:
        return
    for obj, attr in reversed(state["bound"]):
        try:
            delattr(obj, attr)
        except AttributeError:
            pass
    for obj, attr, value in reversed(state["restore"]):
        setattr(obj, attr, value)
    for dct, key, value in reversed(state.get("dict_restore", ())):
        dct[key] = value
