"""Compiled fast core for the simulator hot path (opt-in backend).

Resolution order, best available wins:

1. ``repro._fastcore._corec`` — the hand-written C extension
   (``backend_name == "fast-c"``), built by ``scripts/build_fastcore.py``
   or the optional ``setup.py`` extension build;
2. :mod:`repro._fastcore.core` compiled by mypyc (``fast-mypyc``);
3. :mod:`repro._fastcore.core` interpreted (``fast-py``).

All three are bit-identical to the pure backend (same firing order,
same RNG draw order, same ``TrialResult`` bytes); the flavour only
changes speed. ``FASTCORE_KIND`` names what this process resolved, and
``FASTCORE_ERROR`` keeps the import error when the C extension was
absent or failed to load (for diagnostics — an absent extension is not
an error, it is the no-toolchain install working as designed).

Selection between ``pure`` and ``fast`` happens one layer up, in
:mod:`repro.sim.backend`.
"""

from __future__ import annotations

FASTCORE_ERROR = None

try:  # pragma: no cover - exercised only when the extension is built
    from ._corec import FastCore

    FASTCORE_KIND = "fast-c"
except ImportError as exc:
    FASTCORE_ERROR = exc
    from .core import FastCore

    FASTCORE_KIND = FastCore.backend_name

__all__ = ["FastCore", "FASTCORE_KIND", "FASTCORE_ERROR"]
