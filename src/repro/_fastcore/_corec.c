/* _corec.c — the compiled simulator fast core ("fast-c" backend).
 *
 * A C port of repro.sim.simulator.Simulator's hot path: the two-level
 * calendar queue (timing wheel + current-slot heap + overflow heap),
 * the event-slab freelist, periodic re-arm, tombstone cancellation with
 * amortised compaction, and the drain loop.
 *
 * The contract is bit-identity with the pure-python core: same firing
 * order (time, then scheduling seq), same RNG draw order (callbacks run
 * in the same sequence), same counter values at every callback boundary
 * for everything a trial can observe (pending, heap_size — the keys the
 * watchdog samples), and therefore byte-identical TrialResults. The
 * algorithm below is a line-for-line port of the python one; where the
 * python comments explain *why*, this file only notes where C forces a
 * different *how*:
 *
 *   - triples are C structs {time, seq, ev}, not tuples, and the heaps
 *     are plain arrays with (time, seq) comparison. Pop order for a
 *     binary min-heap is fully determined by the keys (seq is unique),
 *     so heap-layout differences between heapq and this code cannot
 *     change the firing order;
 *   - the slab's getrefcount(ev) == 2 gate (local + getrefcount arg)
 *     becomes Py_REFCNT(ev) == 1 on the popped triple's sole reference
 *     — the same "scheduler is the only owner" test;
 *   - the drain is the *scalar* loop. The batch drain exists to
 *     amortise interpreter overhead across a chunk of pops; compiled
 *     code has no interpreter overhead to amortise, and the scalar
 *     loop's per-boundary counter evolution is what the batch loop is
 *     defined to imitate (see repro/sim/_drain.py);
 *   - callbacks can reenter schedule()/cancel() (and cancel can
 *     compact, which reallocates every array), so the loop re-reads
 *     self->cur after every callback and never caches array pointers
 *     across one.
 *
 * set_sanitize_hook raises: the sanitizer rescans python-visible queue
 * internals that this core does not expose. run_trial() routes
 * sanitized runs to the pure backend before the simulator is built.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>
#include <stdint.h>
#include <math.h>
#include <time.h>

#define WHEEL_SHIFT 16
#define WHEEL_SLOTS 256
#define OCC_WORDS (WHEEL_SLOTS / 64)
#define WHEEL_HORIZON ((long long)WHEEL_SLOTS << WHEEL_SHIFT)
#define COMPACT_MIN_HEAP 64
#define SLAB_MAX_FREE 4096

/* Event states; the python core's interned strings are kept for the
 * .state attribute so handles look identical from client code. */
enum { ST_PENDING = 0, ST_FIRED = 1, ST_CANCELLED = 2 };

static PyObject *ClockError;
static PyObject *SchedulingError;
static PyObject *state_strings[3]; /* "pending", "fired", "cancelled" */

typedef struct CPeriodic CPeriodic;

typedef struct {
    PyObject_HEAD
    long long time;
    long long seq;
    PyObject *callback; /* strong */
    PyObject *args;     /* strong, always a tuple */
    PyObject *label;    /* strong, str or NULL (exposed as None) */
    CPeriodic *periodic; /* strong; non-NULL on periodic-timer events */
    int state;
} CEvent;

typedef struct {
    long long time;
    long long seq;
    CEvent *ev; /* strong */
} Triple;

typedef struct {
    Triple *a;
    Py_ssize_t len;
    Py_ssize_t cap;
} TList;

typedef struct {
    PyObject_HEAD
    long long now_ns;
    long long seq;
    long long fired;
    long long cancelled;
    long long tombstones;
    long long compactions;
    int running;
    int cursor; /* -1 .. WHEEL_SLOTS-1 */
    long long wheel_base;
    long long wheel_count;
    uint64_t occ[OCC_WORDS];
    TList cur;      /* heap */
    TList overflow; /* heap */
    TList wheel[WHEEL_SLOTS]; /* append-ordered buckets */
    /* slab freelist (LIFO, like the python EventSlab) */
    CEvent **free_list;
    Py_ssize_t nfree;
    long long slab_allocated;
    long long slab_reused;
    long long slab_high_water;
} FastCoreObject;

struct CPeriodic {
    PyObject_HEAD
    FastCoreObject *sim; /* strong */
    CEvent *event;       /* strong */
    long long interval_ns;
    long long fires;
    int active;
};

static PyTypeObject CEvent_Type;
static PyTypeObject CPeriodic_Type;
static PyTypeObject FastCore_Type;

/* ------------------------------------------------------------------ */
/* Triple lists and heaps                                             */
/* ------------------------------------------------------------------ */

static int
tl_reserve(TList *l, Py_ssize_t need)
{
    Py_ssize_t cap;
    Triple *a;
    if (need <= l->cap)
        return 0;
    cap = l->cap ? l->cap : 8;
    while (cap < need)
        cap *= 2;
    a = (Triple *)PyMem_Realloc(l->a, (size_t)cap * sizeof(Triple));
    if (a == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    l->a = a;
    l->cap = cap;
    return 0;
}

static int
tl_append(TList *l, Triple t) /* steals t.ev */
{
    if (tl_reserve(l, l->len + 1) < 0) {
        Py_DECREF(t.ev);
        return -1;
    }
    l->a[l->len++] = t;
    return 0;
}

static inline int
triple_lt(const Triple *x, const Triple *y)
{
    if (x->time != y->time)
        return x->time < y->time;
    return x->seq < y->seq;
}

static void
heap_sift_toward_root(TList *h, Py_ssize_t pos)
{
    Triple item = h->a[pos];
    while (pos > 0) {
        Py_ssize_t parent = (pos - 1) >> 1;
        if (!triple_lt(&item, &h->a[parent]))
            break;
        h->a[pos] = h->a[parent];
        pos = parent;
    }
    h->a[pos] = item;
}

static void
heap_sift_toward_leaves(TList *h, Py_ssize_t pos)
{
    Py_ssize_t n = h->len;
    Triple item = h->a[pos];
    for (;;) {
        Py_ssize_t child = 2 * pos + 1;
        if (child >= n)
            break;
        if (child + 1 < n && triple_lt(&h->a[child + 1], &h->a[child]))
            child += 1;
        if (!triple_lt(&h->a[child], &item))
            break;
        h->a[pos] = h->a[child];
        pos = child;
    }
    h->a[pos] = item;
}

static int
heap_push(TList *h, Triple t) /* steals t.ev */
{
    if (tl_append(h, t) < 0)
        return -1;
    heap_sift_toward_root(h, h->len - 1);
    return 0;
}

static Triple
heap_pop(TList *h) /* caller owns the returned ev ref; precondition len > 0 */
{
    Triple top = h->a[0];
    h->len -= 1;
    if (h->len > 0) {
        h->a[0] = h->a[h->len];
        heap_sift_toward_leaves(h, 0);
    }
    return top;
}

static void
heapify(TList *h)
{
    Py_ssize_t i;
    for (i = h->len / 2 - 1; i >= 0; i--)
        heap_sift_toward_leaves(h, i);
}

/* ------------------------------------------------------------------ */
/* Occupancy bitmap                                                   */
/* ------------------------------------------------------------------ */

static inline void
occ_set(FastCoreObject *s, int idx)
{
    s->occ[idx >> 6] |= (uint64_t)1 << (idx & 63);
}

static inline void
occ_clear(FastCoreObject *s, int idx)
{
    s->occ[idx >> 6] &= ~((uint64_t)1 << (idx & 63));
}

static int
occ_next(FastCoreObject *s, int from) /* lowest set bit >= from, or -1 */
{
    int w;
    uint64_t word;
    if (from >= WHEEL_SLOTS)
        return -1;
    if (from < 0)
        from = 0;
    w = from >> 6;
    word = s->occ[w] & (~(uint64_t)0 << (from & 63));
    for (;;) {
        if (word)
            return (w << 6) + __builtin_ctzll(word);
        if (++w >= OCC_WORDS)
            return -1;
        word = s->occ[w];
    }
}

static int
occ_popcount(FastCoreObject *s)
{
    int w, n = 0;
    for (w = 0; w < OCC_WORDS; w++)
        n += __builtin_popcountll(s->occ[w]);
    return n;
}

/* ------------------------------------------------------------------ */
/* CEvent                                                             */
/* ------------------------------------------------------------------ */

static CEvent *
cevent_alloc(void)
{
    CEvent *ev = PyObject_GC_New(CEvent, &CEvent_Type);
    if (ev == NULL)
        return NULL;
    ev->time = 0;
    ev->seq = 0;
    ev->callback = NULL;
    ev->args = NULL;
    ev->label = NULL;
    ev->periodic = NULL;
    ev->state = ST_PENDING;
    PyObject_GC_Track((PyObject *)ev);
    return ev;
}

static int
cevent_traverse(CEvent *self, visitproc visit, void *arg)
{
    Py_VISIT(self->callback);
    Py_VISIT(self->args);
    Py_VISIT(self->label);
    Py_VISIT((PyObject *)self->periodic);
    return 0;
}

static int
cevent_clear(CEvent *self)
{
    Py_CLEAR(self->callback);
    Py_CLEAR(self->args);
    Py_CLEAR(self->label);
    Py_CLEAR(self->periodic);
    return 0;
}

static void
cevent_dealloc(CEvent *self)
{
    PyObject_GC_UnTrack((PyObject *)self);
    cevent_clear(self);
    PyObject_GC_Del(self);
}

static PyObject *
cevent_get_state(CEvent *self, void *closure)
{
    PyObject *s = state_strings[self->state];
    Py_INCREF(s);
    return s;
}

static PyObject *
cevent_get_pending(CEvent *self, void *closure)
{
    return PyBool_FromLong(self->state == ST_PENDING);
}

static PyObject *
cevent_get_cancelled(CEvent *self, void *closure)
{
    return PyBool_FromLong(self->state == ST_CANCELLED);
}

static PyObject *
cevent_get_label(CEvent *self, void *closure)
{
    PyObject *l = self->label ? self->label : Py_None;
    Py_INCREF(l);
    return l;
}

static PyObject *
cevent_get_callback(CEvent *self, void *closure)
{
    PyObject *cb = self->callback ? self->callback : Py_None;
    Py_INCREF(cb);
    return cb;
}

static PyObject *
cevent_get_args(CEvent *self, void *closure)
{
    PyObject *a = self->args ? self->args : Py_None;
    Py_INCREF(a);
    return a;
}

static PyObject *
cevent_repr(CEvent *self)
{
    const char *name = "callback";
    PyObject *nameobj = NULL;
    PyObject *out;
    if (self->label && PyUnicode_Check(self->label)) {
        nameobj = self->label;
        Py_INCREF(nameobj);
    } else if (self->callback) {
        nameobj = PyObject_GetAttrString(self->callback, "__name__");
        if (nameobj == NULL)
            PyErr_Clear();
    }
    if (nameobj && PyUnicode_Check(nameobj))
        name = PyUnicode_AsUTF8(nameobj);
    out = PyUnicode_FromFormat("Event(t=%lld, seq=%lld, %s, %U)",
                               self->time, self->seq, name ? name : "callback",
                               state_strings[self->state]);
    Py_XDECREF(nameobj);
    return out;
}

static PyMemberDef cevent_members[] = {
    {"time", T_LONGLONG, offsetof(CEvent, time), READONLY, NULL},
    {"seq", T_LONGLONG, offsetof(CEvent, seq), READONLY, NULL},
    {NULL},
};

static PyGetSetDef cevent_getset[] = {
    {"state", (getter)cevent_get_state, NULL, NULL, NULL},
    {"pending", (getter)cevent_get_pending, NULL, NULL, NULL},
    {"cancelled", (getter)cevent_get_cancelled, NULL, NULL, NULL},
    {"label", (getter)cevent_get_label, NULL, NULL, NULL},
    {"callback", (getter)cevent_get_callback, NULL, NULL, NULL},
    {"args", (getter)cevent_get_args, NULL, NULL, NULL},
    {NULL},
};

static PyTypeObject CEvent_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._fastcore._corec.Event",
    .tp_basicsize = sizeof(CEvent),
    .tp_dealloc = (destructor)cevent_dealloc,
    .tp_repr = (reprfunc)cevent_repr,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_traverse = (traverseproc)cevent_traverse,
    .tp_clear = (inquiry)cevent_clear,
    .tp_members = cevent_members,
    .tp_getset = cevent_getset,
    .tp_doc = "Opaque scheduled-event handle (compiled core).",
};

/* ------------------------------------------------------------------ */
/* Slab freelist                                                      */
/* ------------------------------------------------------------------ */

/* The python gate is getrefcount(ev) == 2: the drain's local plus the
 * getrefcount argument, i.e. "nothing but the scheduler still holds
 * it". Here the caller owns exactly one reference (the popped
 * triple's), so the gate is Py_REFCNT == 1. Steals the reference
 * either way: into the freelist, or dropped to the GC. */
static void
retire_event(FastCoreObject *self, CEvent *ev)
{
    if (Py_REFCNT((PyObject *)ev) == 1 && ev->periodic == NULL &&
        self->nfree < SLAB_MAX_FREE) {
        Py_ssize_t n = self->nfree;
        self->free_list[n] = ev; /* keep the reference */
        self->nfree = n + 1;
        if (n >= self->slab_high_water)
            self->slab_high_water = n + 1;
        return;
    }
    Py_DECREF(ev);
}

/* Returns a new reference; mirrors the inlined slab acquire in
 * Simulator.schedule (LIFO reuse, counters bumped the same way). */
static CEvent *
acquire_event(FastCoreObject *self, long long time, long long seq,
              PyObject *callback, PyObject *args /* stolen */,
              PyObject *label /* borrowed or NULL */)
{
    CEvent *ev;
    if (self->nfree > 0) {
        ev = self->free_list[--self->nfree];
        self->slab_reused += 1;
        Py_INCREF(callback);
        Py_XSETREF(ev->callback, callback);
        Py_XSETREF(ev->args, args);
        Py_XINCREF(label);
        Py_XSETREF(ev->label, label);
    } else {
        self->slab_allocated += 1;
        ev = cevent_alloc();
        if (ev == NULL) {
            Py_DECREF(args);
            return NULL;
        }
        Py_INCREF(callback);
        ev->callback = callback;
        ev->args = args;
        Py_XINCREF(label);
        ev->label = label;
    }
    ev->time = time;
    ev->seq = seq;
    ev->state = ST_PENDING;
    return ev;
}

/* ------------------------------------------------------------------ */
/* Queue insert / cancel / compact                                    */
/* ------------------------------------------------------------------ */

/* The three-way dispatch from Simulator.schedule: at/behind the cursor
 * -> current-slot heap; inside the wheel window -> bucket append;
 * beyond the horizon -> overflow heap. Steals the ev reference. */
static int
insert_event(FastCoreObject *self, long long time, long long seq, CEvent *ev)
{
    long long idx = (time - self->wheel_base) >> WHEEL_SHIFT;
    Triple t = {time, seq, ev};
    if (idx <= (long long)self->cursor)
        return heap_push(&self->cur, t);
    if (idx < WHEEL_SLOTS) {
        if (tl_append(&self->wheel[idx], t) < 0)
            return -1;
        occ_set(self, (int)idx);
        self->wheel_count += 1;
        return 0;
    }
    return heap_push(&self->overflow, t);
}

static void
tl_filter_cancelled(TList *l)
{
    Py_ssize_t i, w = 0;
    for (i = 0; i < l->len; i++) {
        Triple t = l->a[i];
        if (t.ev->state == ST_CANCELLED)
            Py_DECREF(t.ev); /* dropped to the GC, not the slab */
        else
            l->a[w++] = t;
    }
    l->len = w;
}

static void
compact(FastCoreObject *self)
{
    int idx;
    long long count = 0;
    tl_filter_cancelled(&self->cur);
    heapify(&self->cur);
    tl_filter_cancelled(&self->overflow);
    heapify(&self->overflow);
    memset(self->occ, 0, sizeof(self->occ));
    for (idx = 0; idx < WHEEL_SLOTS; idx++) {
        TList *bucket = &self->wheel[idx];
        if (bucket->len) {
            tl_filter_cancelled(bucket);
            if (bucket->len) {
                occ_set(self, idx);
                count += bucket->len;
            }
        }
    }
    self->wheel_count = count;
    self->tombstones = 0;
    self->compactions += 1;
}

/* Shared by FastCore.cancel and CPeriodic.cancel: tombstone the event
 * and run the amortised compaction trigger (four int ops, same
 * threshold arithmetic as the python core). */
static void
cancel_event(FastCoreObject *self, CEvent *ev)
{
    long long tombs, total;
    ev->state = ST_CANCELLED;
    self->cancelled += 1;
    tombs = self->tombstones + 1;
    self->tombstones = tombs;
    total = self->seq - self->fired - self->cancelled + tombs;
    if (total >= COMPACT_MIN_HEAP && tombs * 2 > total)
        compact(self);
}

/* ------------------------------------------------------------------ */
/* Queue traversal                                                    */
/* ------------------------------------------------------------------ */

/* Port of Simulator._advance: load the next populated bucket whose
 * window starts at or before the deadline into the (empty) current
 * heap. Returns 1 loaded, 0 nothing runnable, -1 on error. */
static int
advance(FastCoreObject *self, long long deadline, int has_deadline)
{
    for (;;) {
        long long base = self->wheel_base;
        int idx = occ_next(self, self->cursor + 1);
        while (idx >= 0) {
            TList *bucket = &self->wheel[idx];
            TList tmp;
            if (bucket->len == 0) {
                /* Stale bit (compaction emptied the bucket). */
                occ_clear(self, idx);
                idx = occ_next(self, idx + 1);
                continue;
            }
            if (has_deadline &&
                base + ((long long)idx << WHEEL_SHIFT) > deadline)
                return 0;
            /* Zero-copy load: swap the bucket's array with the drained
             * (empty) current heap's, so the load allocates nothing and
             * the bucket inherits the spent array for reuse. */
            self->wheel_count -= bucket->len;
            occ_clear(self, idx);
            self->cursor = idx;
            tmp = self->cur;
            self->cur = *bucket;
            *bucket = tmp;
            heapify(&self->cur);
            return 1;
        }
        /* Wheel window exhausted: jump to the overflow's first event. */
        while (self->overflow.len &&
               self->overflow.a[0].ev->state == ST_CANCELLED) {
            Triple t = heap_pop(&self->overflow);
            self->tombstones -= 1;
            retire_event(self, t.ev);
        }
        if (self->overflow.len == 0)
            return 0;
        {
            long long t_min = self->overflow.a[0].time;
            long long limit, count = 0;
            if (has_deadline && t_min > deadline)
                return 0;
            base = (t_min >> WHEEL_SHIFT) << WHEEL_SHIFT;
            self->wheel_base = base;
            self->cursor = -1;
            limit = base + WHEEL_HORIZON;
            memset(self->occ, 0, sizeof(self->occ));
            while (self->overflow.len && self->overflow.a[0].time < limit) {
                Triple t = heap_pop(&self->overflow);
                long long idx2;
                if (t.ev->state == ST_CANCELLED) {
                    self->tombstones -= 1;
                    retire_event(self, t.ev);
                    continue;
                }
                idx2 = (t.time - base) >> WHEEL_SHIFT;
                if (tl_append(&self->wheel[idx2], t) < 0)
                    return -1;
                occ_set(self, (int)idx2);
                count += 1;
            }
            /* The wheel was provably empty before the refill. */
            self->wheel_count = count;
        }
        /* Loop: rescan the refilled window from slot 0. */
    }
}

/* ------------------------------------------------------------------ */
/* Firing                                                             */
/* ------------------------------------------------------------------ */

/* --profile wall-clock buckets. Enabled per-process by the CLI via
 * profile_buckets(True); when off (the default) the drain loop pays
 * nothing. The split is by callback kind at the firing boundary:
 * PyCFunction callbacks are compiled packet-path entries, everything
 * else is interpreter work. A python callback that re-enters compiled
 * entries is charged to the python bucket — these are coarse
 * "where does the wall clock go" counters, not a call graph. */
static int prof_enabled = 0;
static double prof_run_s = 0.0;
static double prof_py_s = 0.0;
static long long prof_py_calls = 0;

static double
prof_now(void)
{
    struct timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return (double)ts.tv_sec + ts.tv_nsec * 1e-9;
}

static PyObject *
fire_call(PyObject *callback, PyObject *args)
{
    double t0;
    PyObject *res;
    if (!prof_enabled || PyCFunction_Check(callback))
        return PyObject_Call(callback, args, NULL);
    t0 = prof_now();
    res = PyObject_Call(callback, args, NULL);
    prof_py_s += prof_now() - t0;
    prof_py_calls += 1;
    return res;
}

/* Fire one popped triple. Owns (and consumes) the ev reference.
 * The periodic branch is the C equivalent of the python fire()
 * closure: fires++ before the callback, re-arm consumes a fresh seq
 * *after* the callback — identical counter evolution at every
 * callback boundary. Returns 0, or -1 with an exception set. */
static int
fire_event(FastCoreObject *self, CEvent *ev)
{
    PyObject *res;
    CPeriodic *p = ev->periodic;
    if (p != NULL) {
        p->fires += 1;
        res = fire_call(ev->callback, ev->args);
        if (res == NULL) {
            Py_DECREF(ev);
            return -1;
        }
        Py_DECREF(res);
        if (p->active) {
            long long time = ev->time + p->interval_ns;
            long long seq = self->seq;
            self->seq = seq + 1;
            ev->time = time;
            ev->seq = seq;
            ev->state = ST_PENDING;
            return insert_event(self, time, seq, ev); /* ref moves back in */
        }
        retire_event(self, ev); /* handle still holds it: goes to the GC */
        return 0;
    }
    res = fire_call(ev->callback, ev->args);
    if (res == NULL) {
        Py_DECREF(ev);
        return -1;
    }
    Py_DECREF(res);
    retire_event(self, ev);
    return 0;
}

static void
raise_clock_error(long long time, long long now)
{
    PyErr_Format(ClockError, "event at t=%lld behind clock t=%lld", time, now);
}

/* Port of the generated drain_plain loop (repro/sim/_drain.py). */
static int
drain(FastCoreObject *self, long long deadline, int has_deadline)
{
    for (;;) {
        while (self->cur.len) {
            Triple head = self->cur.a[0];
            CEvent *ev = head.ev;
            if (ev->state == ST_CANCELLED) {
                heap_pop(&self->cur);
                self->tombstones -= 1;
                retire_event(self, ev);
                continue;
            }
            if (has_deadline && head.time > deadline)
                return 0;
            if (head.time < self->now_ns) {
                raise_clock_error(head.time, self->now_ns);
                return -1;
            }
            heap_pop(&self->cur);
            self->now_ns = head.time;
            ev->state = ST_FIRED;
            self->fired += 1;
            if (fire_event(self, ev) < 0)
                return -1;
            /* The callback may have scheduled, cancelled, compacted —
             * self->cur is re-read at the top of the loop. */
        }
        {
            int adv = advance(self, deadline, has_deadline);
            if (adv < 0)
                return -1;
            if (adv == 0)
                return 0;
        }
    }
}

/* ------------------------------------------------------------------ */
/* CPeriodic                                                          */
/* ------------------------------------------------------------------ */

static int
cperiodic_traverse(CPeriodic *self, visitproc visit, void *arg)
{
    Py_VISIT((PyObject *)self->sim);
    Py_VISIT((PyObject *)self->event);
    return 0;
}

static int
cperiodic_clear(CPeriodic *self)
{
    Py_CLEAR(self->sim);
    Py_CLEAR(self->event);
    return 0;
}

static void
cperiodic_dealloc(CPeriodic *self)
{
    PyObject_GC_UnTrack((PyObject *)self);
    cperiodic_clear(self);
    PyObject_GC_Del(self);
}

static PyObject *
cperiodic_cancel(CPeriodic *self, PyObject *noargs)
{
    CEvent *ev;
    if (!self->active)
        Py_RETURN_FALSE;
    self->active = 0;
    ev = self->event;
    if (ev != NULL && ev->state == ST_PENDING && self->sim != NULL)
        cancel_event(self->sim, ev);
    Py_RETURN_TRUE;
}

static PyObject *
cperiodic_get_active(CPeriodic *self, void *closure)
{
    return PyBool_FromLong(self->active);
}

static PyObject *
cperiodic_repr(CPeriodic *self)
{
    return PyUnicode_FromFormat("PeriodicEvent(every %lld ns, fires=%lld, %s)",
                                self->interval_ns, self->fires,
                                self->active ? "active" : "cancelled");
}

static PyMemberDef cperiodic_members[] = {
    {"interval_ns", T_LONGLONG, offsetof(CPeriodic, interval_ns), READONLY, NULL},
    {"fires", T_LONGLONG, offsetof(CPeriodic, fires), READONLY, NULL},
    {NULL},
};

static PyGetSetDef cperiodic_getset[] = {
    {"active", (getter)cperiodic_get_active, NULL, NULL, NULL},
    {NULL},
};

static PyMethodDef cperiodic_methods[] = {
    {"cancel", (PyCFunction)cperiodic_cancel, METH_NOARGS,
     "Stop the timer. Safe from inside its own callback."},
    {NULL},
};

static PyTypeObject CPeriodic_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._fastcore._corec.PeriodicEvent",
    .tp_basicsize = sizeof(CPeriodic),
    .tp_dealloc = (destructor)cperiodic_dealloc,
    .tp_repr = (reprfunc)cperiodic_repr,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_traverse = (traverseproc)cperiodic_traverse,
    .tp_clear = (inquiry)cperiodic_clear,
    .tp_members = cperiodic_members,
    .tp_getset = cperiodic_getset,
    .tp_methods = cperiodic_methods,
    .tp_doc = "Recurring-timer handle (compiled core).",
};

/* ------------------------------------------------------------------ */
/* FastCore                                                           */
/* ------------------------------------------------------------------ */

static PyObject *
fastcore_new(PyTypeObject *type, PyObject *args, PyObject *kwargs)
{
    FastCoreObject *self;
    if ((args && PyTuple_GET_SIZE(args)) || (kwargs && PyDict_GET_SIZE(kwargs))) {
        PyErr_SetString(PyExc_TypeError, "FastCore() takes no arguments");
        return NULL;
    }
    self = (FastCoreObject *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    self->cursor = -1;
    self->free_list =
        (CEvent **)PyMem_Calloc(SLAB_MAX_FREE, sizeof(CEvent *));
    if (self->free_list == NULL) {
        Py_DECREF(self);
        return PyErr_NoMemory();
    }
    return (PyObject *)self;
}

static int
fastcore_traverse(FastCoreObject *self, visitproc visit, void *arg)
{
    Py_ssize_t i;
    int b;
    for (i = 0; i < self->cur.len; i++)
        Py_VISIT((PyObject *)self->cur.a[i].ev);
    for (i = 0; i < self->overflow.len; i++)
        Py_VISIT((PyObject *)self->overflow.a[i].ev);
    for (b = 0; b < WHEEL_SLOTS; b++) {
        TList *bucket = &self->wheel[b];
        for (i = 0; i < bucket->len; i++)
            Py_VISIT((PyObject *)bucket->a[i].ev);
    }
    for (i = 0; i < self->nfree; i++)
        Py_VISIT((PyObject *)self->free_list[i]);
    return 0;
}

static void
tl_drop(TList *l)
{
    Py_ssize_t i;
    for (i = 0; i < l->len; i++)
        Py_DECREF(l->a[i].ev);
    l->len = 0;
    PyMem_Free(l->a);
    l->a = NULL;
    l->cap = 0;
}

static int
fastcore_clear_impl(FastCoreObject *self)
{
    int b;
    Py_ssize_t i;
    tl_drop(&self->cur);
    tl_drop(&self->overflow);
    for (b = 0; b < WHEEL_SLOTS; b++)
        tl_drop(&self->wheel[b]);
    memset(self->occ, 0, sizeof(self->occ));
    self->wheel_count = 0;
    if (self->free_list != NULL) {
        for (i = 0; i < self->nfree; i++)
            Py_DECREF(self->free_list[i]);
        self->nfree = 0;
    }
    return 0;
}

static void
fastcore_dealloc(FastCoreObject *self)
{
    PyObject_GC_UnTrack((PyObject *)self);
    fastcore_clear_impl(self);
    PyMem_Free(self->free_list);
    self->free_list = NULL;
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static int
as_ns(PyObject *obj, long long *out)
{
    long long v = PyLong_AsLongLong(obj);
    if (v == -1 && PyErr_Occurred())
        return -1;
    *out = v;
    return 0;
}

/* Shared kwnames handling for the fastcall schedule entry points:
 * only 'label' is accepted; returns 0 and writes the borrowed value
 * (NULL when absent or None). */
static int
parse_label_kw(PyObject *kwnames, PyObject *const *kwvalues,
               const char *fname, PyObject **label_out)
{
    *label_out = NULL;
    if (kwnames == NULL)
        return 0;
    {
        Py_ssize_t nkw = PyTuple_GET_SIZE(kwnames);
        Py_ssize_t i;
        for (i = 0; i < nkw; i++) {
            PyObject *name = PyTuple_GET_ITEM(kwnames, i);
            if (PyUnicode_CompareWithASCIIString(name, "label") == 0) {
                *label_out = kwvalues[i];
            } else {
                PyErr_Format(PyExc_TypeError,
                             "%s() accepts only the 'label' keyword", fname);
                return -1;
            }
        }
    }
    if (*label_out == Py_None)
        *label_out = NULL;
    return 0;
}

static PyObject *
args_tuple_from(PyObject *const *items, Py_ssize_t n)
{
    PyObject *tup = PyTuple_New(n);
    Py_ssize_t i;
    if (tup == NULL)
        return NULL;
    for (i = 0; i < n; i++) {
        PyObject *item = items[i];
        Py_INCREF(item);
        PyTuple_SET_ITEM(tup, i, item);
    }
    return tup;
}

static PyObject *
schedule_common(FastCoreObject *self, long long delay, PyObject *callback,
                PyObject *cb_args /* stolen */, PyObject *label)
{
    long long time = self->now_ns + delay;
    long long seq = self->seq;
    CEvent *ev;
    self->seq = seq + 1;
    ev = acquire_event(self, time, seq, callback, cb_args, label);
    if (ev == NULL)
        return NULL;
    Py_INCREF(ev); /* one ref for the queue, one for the caller */
    if (insert_event(self, time, seq, ev) < 0) {
        Py_DECREF(ev);
        return NULL;
    }
    return (PyObject *)ev;
}

/* schedule(delay, callback, *args, label=None) */
static PyObject *
fastcore_schedule(FastCoreObject *self, PyObject *const *args, Py_ssize_t n,
                  PyObject *kwnames)
{
    long long delay;
    PyObject *cb_args, *label;
    if (n < 2) {
        PyErr_SetString(PyExc_TypeError,
                        "schedule() requires (delay, callback, ...)");
        return NULL;
    }
    if (parse_label_kw(kwnames, args + n, "schedule", &label) < 0)
        return NULL;
    if (as_ns(args[0], &delay) < 0)
        return NULL;
    if (delay < 0) {
        PyErr_Format(SchedulingError,
                     "cannot schedule into the past (delay=%lld)", delay);
        return NULL;
    }
    cb_args = args_tuple_from(args + 2, n - 2);
    if (cb_args == NULL)
        return NULL;
    return schedule_common(self, delay, args[1], cb_args, label);
}

/* schedule_at(time, callback, *args, label=None) */
static PyObject *
fastcore_schedule_at(FastCoreObject *self, PyObject *const *args,
                     Py_ssize_t n, PyObject *kwnames)
{
    long long time;
    PyObject *cb_args, *label;
    if (n < 2) {
        PyErr_SetString(PyExc_TypeError,
                        "schedule_at() requires (time, callback, ...)");
        return NULL;
    }
    if (parse_label_kw(kwnames, args + n, "schedule_at", &label) < 0)
        return NULL;
    if (as_ns(args[0], &time) < 0)
        return NULL;
    if (time < self->now_ns) {
        PyErr_Format(SchedulingError,
                     "cannot schedule at t=%lld, now is t=%lld", time,
                     self->now_ns);
        return NULL;
    }
    cb_args = args_tuple_from(args + 2, n - 2);
    if (cb_args == NULL)
        return NULL;
    return schedule_common(self, time - self->now_ns, args[1], cb_args, label);
}

/* schedule_periodic(interval_ns, callback, *args, label=None,
 *                   first_delay=None) */
static PyObject *
fastcore_schedule_periodic(FastCoreObject *self, PyObject *args,
                           PyObject *kwargs)
{
    Py_ssize_t n = PyTuple_GET_SIZE(args);
    long long interval, delay, time, seq;
    PyObject *callback, *cb_args, *label = NULL, *first_delay = NULL;
    CPeriodic *handle;
    CEvent *ev;
    if (n < 2) {
        PyErr_SetString(
            PyExc_TypeError,
            "schedule_periodic() requires (interval_ns, callback, ...)");
        return NULL;
    }
    if (kwargs != NULL && PyDict_GET_SIZE(kwargs)) {
        Py_ssize_t seen = 0;
        label = PyDict_GetItemString(kwargs, "label");
        if (label != NULL)
            seen++;
        first_delay = PyDict_GetItemString(kwargs, "first_delay");
        if (first_delay != NULL)
            seen++;
        if (seen != PyDict_GET_SIZE(kwargs)) {
            PyErr_SetString(PyExc_TypeError,
                            "schedule_periodic() accepts only the 'label' "
                            "and 'first_delay' keywords");
            return NULL;
        }
        if (label == Py_None)
            label = NULL;
        if (first_delay == Py_None)
            first_delay = NULL;
    }
    if (as_ns(PyTuple_GET_ITEM(args, 0), &interval) < 0)
        return NULL;
    if (interval <= 0) {
        PyErr_Format(SchedulingError,
                     "periodic interval must be positive, got %lld", interval);
        return NULL;
    }
    delay = interval;
    if (first_delay != NULL) {
        if (as_ns(first_delay, &delay) < 0)
            return NULL;
        if (delay < 0) {
            PyErr_Format(SchedulingError,
                         "cannot schedule into the past (first_delay=%lld)",
                         delay);
            return NULL;
        }
    }
    callback = PyTuple_GET_ITEM(args, 1);
    cb_args = PyTuple_GetSlice(args, 2, n);
    if (cb_args == NULL)
        return NULL;
    handle = PyObject_GC_New(CPeriodic, &CPeriodic_Type);
    if (handle == NULL) {
        Py_DECREF(cb_args);
        return NULL;
    }
    Py_INCREF(self);
    handle->sim = self;
    handle->event = NULL;
    handle->interval_ns = interval;
    handle->fires = 0;
    handle->active = 1;
    PyObject_GC_Track((PyObject *)handle);
    /* First arm goes through the same schedule path (seq consumed here,
     * slab acquire counted here) as the python core's self.schedule. */
    time = self->now_ns + delay;
    seq = self->seq;
    self->seq = seq + 1;
    ev = acquire_event(self, time, seq, callback, cb_args, label);
    if (ev == NULL) {
        Py_DECREF(handle);
        return NULL;
    }
    Py_INCREF(handle);
    ev->periodic = handle;
    Py_INCREF(ev);
    handle->event = ev;
    if (insert_event(self, time, seq, ev) < 0) {
        Py_DECREF(handle);
        return NULL;
    }
    return (PyObject *)handle;
}

static PyObject *
fastcore_cancel(FastCoreObject *self, PyObject *handle)
{
    if (Py_TYPE(handle) == &CPeriodic_Type)
        return cperiodic_cancel((CPeriodic *)handle, NULL);
    if (Py_TYPE(handle) == &CEvent_Type) {
        CEvent *ev = (CEvent *)handle;
        if (ev->state != ST_PENDING)
            Py_RETURN_FALSE;
        cancel_event(self, ev);
        Py_RETURN_TRUE;
    }
    PyErr_Format(PyExc_TypeError,
                 "cancel() expects an Event or PeriodicEvent handle from "
                 "this simulator, got %.100s", Py_TYPE(handle)->tp_name);
    return NULL;
}

static PyObject *
fastcore_run(FastCoreObject *self, PyObject *args)
{
    PyObject *until_obj = Py_None;
    long long deadline = 0;
    int has_deadline = 0, rc;
    if (!PyArg_ParseTuple(args, "|O:run", &until_obj))
        return NULL;
    if (until_obj != Py_None) {
        if (as_ns(until_obj, &deadline) < 0)
            return NULL;
        if (deadline < self->now_ns) {
            PyErr_Format(SchedulingError,
                         "deadline t=%lld is in the past (now t=%lld)",
                         deadline, self->now_ns);
            return NULL;
        }
        has_deadline = 1;
    }
    self->running = 1;
    if (prof_enabled) {
        double t0 = prof_now();
        rc = drain(self, deadline, has_deadline);
        prof_run_s += prof_now() - t0;
    }
    else {
        rc = drain(self, deadline, has_deadline);
    }
    self->running = 0;
    if (rc < 0)
        return NULL;
    if (has_deadline && deadline > self->now_ns)
        self->now_ns = deadline;
    return PyLong_FromLongLong(self->now_ns);
}

static PyObject *
fastcore_run_for(FastCoreObject *self, PyObject *arg)
{
    long long duration;
    PyObject *until, *tuple, *out;
    if (as_ns(arg, &duration) < 0)
        return NULL;
    until = PyLong_FromLongLong(self->now_ns + duration);
    if (until == NULL)
        return NULL;
    tuple = PyTuple_Pack(1, until);
    Py_DECREF(until);
    if (tuple == NULL)
        return NULL;
    out = fastcore_run(self, tuple);
    Py_DECREF(tuple);
    return out;
}

static PyObject *
fastcore_step(FastCoreObject *self, PyObject *noargs)
{
    for (;;) {
        while (self->cur.len) {
            Triple head = self->cur.a[0];
            CEvent *ev = head.ev;
            if (ev->state == ST_CANCELLED) {
                heap_pop(&self->cur);
                self->tombstones -= 1;
                retire_event(self, ev);
                continue;
            }
            if (head.time < self->now_ns) {
                raise_clock_error(head.time, self->now_ns);
                return NULL;
            }
            heap_pop(&self->cur);
            self->now_ns = head.time;
            ev->state = ST_FIRED;
            self->fired += 1;
            if (fire_event(self, ev) < 0)
                return NULL;
            Py_RETURN_TRUE;
        }
        {
            int adv = advance(self, 0, 0);
            if (adv < 0)
                return NULL;
            if (adv == 0)
                Py_RETURN_FALSE;
        }
    }
}

static PyObject *
fastcore_peek_time(FastCoreObject *self, PyObject *noargs)
{
    int idx;
    while (self->cur.len) {
        Triple head = self->cur.a[0];
        if (head.ev->state != ST_CANCELLED)
            return PyLong_FromLongLong(head.time);
        heap_pop(&self->cur);
        self->tombstones -= 1;
        retire_event(self, head.ev);
    }
    idx = occ_next(self, self->cursor + 1);
    while (idx >= 0) {
        TList *bucket = &self->wheel[idx];
        Py_ssize_t i;
        long long best = 0;
        int found = 0;
        for (i = 0; i < bucket->len; i++) {
            Triple *t = &bucket->a[i];
            if (t->ev->state != ST_CANCELLED && (!found || t->time < best)) {
                best = t->time;
                found = 1;
            }
        }
        if (found)
            return PyLong_FromLongLong(best);
        idx = occ_next(self, idx + 1);
    }
    while (self->overflow.len) {
        Triple head = self->overflow.a[0];
        if (head.ev->state != ST_CANCELLED)
            return PyLong_FromLongLong(head.time);
        heap_pop(&self->overflow);
        self->tombstones -= 1;
        retire_event(self, head.ev);
    }
    Py_RETURN_NONE;
}

static PyObject *
fastcore_set_sanitize_hook(FastCoreObject *self, PyObject *args)
{
    PyErr_SetString(
        PyExc_NotImplementedError,
        "the compiled fast core has no sanitized drain loop; sanitized "
        "runs use backend='pure' (run_trial falls back automatically)");
    return NULL;
}

static PyObject *
fastcore_clear_sanitize_hook(FastCoreObject *self, PyObject *noargs)
{
    Py_RETURN_NONE;
}

static PyObject *
fastcore_get_now(FastCoreObject *self, void *closure)
{
    return PyLong_FromLongLong(self->now_ns);
}

static PyObject *
fastcore_get_running(FastCoreObject *self, void *closure)
{
    return PyBool_FromLong(self->running);
}

static int
dict_set_ll(PyObject *d, const char *key, long long value)
{
    PyObject *v = PyLong_FromLongLong(value);
    int rc;
    if (v == NULL)
        return -1;
    rc = PyDict_SetItemString(d, key, v);
    Py_DECREF(v);
    return rc;
}

static PyObject *
fastcore_get_stats(FastCoreObject *self, void *closure)
{
    PyObject *d = PyDict_New();
    PyObject *backend;
    if (d == NULL)
        return NULL;
    backend = PyUnicode_FromString("fast-c");
    if (backend == NULL ||
        PyDict_SetItemString(d, "backend", backend) < 0) {
        Py_XDECREF(backend);
        Py_DECREF(d);
        return NULL;
    }
    Py_DECREF(backend);
    if (dict_set_ll(d, "scheduled", self->seq) < 0 ||
        dict_set_ll(d, "fired", self->fired) < 0 ||
        dict_set_ll(d, "cancelled", self->cancelled) < 0 ||
        dict_set_ll(d, "pending",
                    self->seq - self->fired - self->cancelled) < 0 ||
        dict_set_ll(d, "heap_size",
                    (long long)self->cur.len + self->wheel_count +
                        (long long)self->overflow.len) < 0 ||
        dict_set_ll(d, "compactions", self->compactions) < 0 ||
        dict_set_ll(d, "wheel_occupancy", occ_popcount(self)) < 0 ||
        dict_set_ll(d, "wheel_events", self->wheel_count) < 0 ||
        dict_set_ll(d, "current_bucket", (long long)self->cur.len) < 0 ||
        dict_set_ll(d, "overflow_size", (long long)self->overflow.len) < 0 ||
        dict_set_ll(d, "slab_allocated", self->slab_allocated) < 0 ||
        dict_set_ll(d, "slab_reused", self->slab_reused) < 0 ||
        dict_set_ll(d, "slab_recycled",
                    self->slab_reused + (long long)self->nfree) < 0 ||
        dict_set_ll(d, "slab_free", (long long)self->nfree) < 0 ||
        dict_set_ll(d, "slab_high_water", self->slab_high_water) < 0) {
        Py_DECREF(d);
        return NULL;
    }
    if (prof_enabled) {
        /* Process-wide since profile_buckets(True): the CLI enables
         * them around one command, which may run many simulators. */
        PyObject *v;
        int rc;
        v = PyFloat_FromDouble(prof_run_s);
        rc = v == NULL ? -1 : PyDict_SetItemString(d, "profile_run_s", v);
        Py_XDECREF(v);
        if (rc == 0) {
            v = PyFloat_FromDouble(prof_py_s);
            rc = v == NULL
                     ? -1
                     : PyDict_SetItemString(d, "profile_python_callback_s", v);
            Py_XDECREF(v);
        }
        if (rc == 0) {
            v = PyFloat_FromDouble(prof_run_s - prof_py_s);
            rc = v == NULL
                     ? -1
                     : PyDict_SetItemString(d, "profile_compiled_s", v);
            Py_XDECREF(v);
        }
        if (rc == 0)
            rc = dict_set_ll(d, "profile_python_callback_calls",
                             prof_py_calls);
        if (rc < 0) {
            Py_DECREF(d);
            return NULL;
        }
    }
    return d;
}

static PyObject *
corec_profile_buckets(PyObject *mod, PyObject *arg)
{
    int enable = PyObject_IsTrue(arg);
    if (enable < 0)
        return NULL;
    prof_enabled = enable;
    prof_run_s = 0.0;
    prof_py_s = 0.0;
    prof_py_calls = 0;
    Py_RETURN_NONE;
}

static PyObject *
corec_profile_snapshot(PyObject *mod, PyObject *noargs)
{
    return Py_BuildValue(
        "{s:i,s:d,s:d,s:d,s:L}", "enabled", prof_enabled, "run_s", prof_run_s,
        "python_callback_s", prof_py_s, "compiled_s", prof_run_s - prof_py_s,
        "python_callback_calls", prof_py_calls);
}

static PyObject *
fastcore_repr(FastCoreObject *self)
{
    return PyUnicode_FromFormat(
        "FastCore(backend=fast-c, now=%lld ns, pending=%lld, "
        "wheel=%d slots/%lld events, overflow=%zd, slab_hw=%lld)",
        self->now_ns, self->seq - self->fired - self->cancelled,
        occ_popcount(self), self->wheel_count, self->overflow.len,
        self->slab_high_water);
}

/* ================================================================== */
/* Packet fast path                                                   */
/* ================================================================== */
/* Compiled transliteration of the steady-state per-packet pipeline:
 * the CPU engine (hw/cpu.py + sim/process.py deliver loop), NIC ring
 * ops (hw/nic.py), kernel queues incl. RED (kernel/queues.py), the
 * traffic generators, IP forwarding and the driver output hooks.
 *
 * Architecture: each hot Python *method* is transliterated to a C
 * function and bound as an *instance attribute* of the existing Python
 * object (PyCFunction has no __get__, so the instance-dict lookup
 * returns it ready to call). All mutable state stays canonical in the
 * Python objects — instance __dict__ for normal classes, slot storage
 * for __slots__ classes — so compiled and interpreted code can
 * interleave freely and results are bit-identical by construction.
 *
 * Observable seams escape to Python: repro._fastcore.packetpath only
 * installs these bindings on a clean router (no faults armed), and
 * *uninstalls* them when a trace buffer, fault injector or app is
 * attached. Residual C entry points that can outlive an uninstall
 * (pending completion events, per-task deliver bindings) check the
 * relevant trace hook and delegate to the Python method when armed. */

#include <structmember.h>

/* Interned attribute keys, filled by pp_init_symbols(). */
#define PP_KEYS(X) \
    X(sim) X(hz) X(name) X(context_switch_cycles) X(_remaining) \
    X(_current) X(_completion) X(_chunk_started) X(_seq) X(_last_thread) \
    X(busy_ns) X(switches) X(preemptions) X(ipl_observers) \
    X(account_observers) X(trace) X(_complete) X(task) X(deliver) \
    X(cpu) X(base_ipl) X(spl_level) X(priority_class) X(cycles_used) \
    X(_ready_seq) X(_eff_ipl) X(_key) X(_work_label) X(state) X(_body) \
    X(_waiting_on) X(_exit_callbacks) X(exception) X(add_waiter) \
    X(_rx_ring) X(_tx_ring) X(_tx_done) X(_tx_busy) X(rx_line) \
    X(tx_line) X(faults) X(on_transmit) X(rx_ring_capacity) \
    X(tx_ring_capacity) X(tx_packet_time_ns) X(_rx_append) X(_rx_popleft) \
    X(rx_accepted) X(rx_overflow_drops) X(tx_completed) X(request) \
    X(_transmit_complete) X(_kick_transmitter) X(_items) X(limit) \
    X(high_watermark) X(low_watermark) X(on_high) X(on_low) \
    X(enqueue_count) X(dequeue_count) X(drop_count) X(max_depth) \
    X(_enqueued) X(_dequeued) X(_dropped) X(average) X(weight) \
    X(min_threshold) X(max_threshold) X(max_probability) X(early_drops) \
    X(_since_last_drop) X(_rng) X(random) X(enqueue) X(dequeue) \
    X(started) X(stopped) X(sent) X(_pending) X(_tick) X(_emit) \
    X(pool) X(src) X(dst) X(dst_port) X(payload_bytes) X(flow) \
    X(min_interval_ns) X(interval_ns) X(jitter_fraction) X(rng) \
    X(mean_interval_ns) X(burst_size) X(gap_ns) X(_burst_position) \
    X(_receive_from_wire) X(_gap_over) X(nic) X(wire) \
    X(routing) X(arp) X(outputs) X(taps) X(screen_path) X(udp) \
    X(local_addresses) X(forwarded) X(local_delivered) X(no_route_drops) \
    X(arp_failure_drops) X(lookups) X(misses) X(failures) X(_routes) \
    X(_entries) X(ifqueue) X(tx_service_needed) X(polling) X(wake) \
    X(ipintrq) X(softnet_line) X(netisr_signal) X(fire) \
    X(delivered) X(latency) X(packet_pool) X(nic_out) X(_samples_ns) \
    X(_observed) X(_recording) X(sample_cap) X(enabled) X(requested) \
    X(in_service) X(request_count) X(dispatch_count) \
    X(suppressed_while_disabled) X(controller) X(ipl) X(try_deliver) \
    X(observe) X(tx_idle) \
    X(_softnet_line) X(_netisr_signal) X(mark_dropped) X(mark_transmitted) \
    X(_pp_irq) X(lines) X(_on_ipl_change) X(_dispatch_work) X(in_flight) \
    X(quota) X(service_rounds) X(rx_packets_processed) \
    X(tx_packets_started) X(extra_rx_cycles) X(rx_service_needed) \
    X(costs) X(kernel) X(config) X(rx_batch_pull) X(_tx_start_work) \
    X(_forward_work) X(ip) X(ip_input) X(_dispatch) X(rx_pull) \
    X(rx_pull_many) X(rx_pending) X(tx_reclaim) X(tx_enqueue) \
    X(tx_free_slots) X(rx_device_per_packet) X(softirq_post) \
    X(tx_reclaim_per_packet) X(polled_rx_per_packet) X(polled_stub_handler) \
    X(ticks) X(on_tick) X(callout_table) X(due) X(func) X(executed) \
    X(clock_tick) X(callout_run) X(quantum_ticks) X(requeue_behind)

enum {
#define PP_ENUM(n) PPK_##n,
    PP_KEYS(PP_ENUM)
#undef PP_ENUM
    PPK_COUNT
};

static PyObject *pp_keys[PPK_COUNT];

/* Runtime symbols resolved from the repro package on first bind. */
static struct {
    int ready;
    PyObject *Work, *Spl, *Sleep, *WaitSignal;       /* command types */
    PyObject *ProcessError;
    PyObject *st_new, *st_alive, *st_done, *st_failed; /* process states */
    PyObject *cpu_reschedule, *cpu_complete;   /* unbound CPU methods */
    PyObject *nic_receive, *nic_txcomplete;    /* unbound NIC methods */
    PyObject *nic_rx_pull, *nic_rx_pull_many, *nic_rx_pending;
    PyObject *nic_tx_reclaim;
    PyObject *pq_enqueue, *pq_dequeue, *red_enqueue; /* queue methods */
    PyObject *line_request;     /* unbound InterruptLine.request */
    PyObject *ip_dispatch;      /* unbound IPLayer._dispatch */
    PyObject *router_out_transmit, *router_in_transmit;
    PyObject *gen_ticks[3];     /* unbound _tick: constant/poisson/bursty */
    PyObject *gen_gap_over;     /* unbound BurstyGenerator._gap_over */
    PyObject *lat_observe;      /* unbound LatencyRecorder.observe */
    PyObject *Packet;           /* exact packet type */
    PyObject *packet_ids;       /* net.packet._packet_ids (count object) */
    PyObject *CpuTask;          /* hw.cpu.CpuTask type */
    PyObject *ctrl_try_deliver; /* unbound InterruptController methods */
    PyObject *ctrl_handler_done;
    PyObject *quota_exhaust;    /* trace.buffer.QUOTA_EXHAUST constant */
    PyObject *empty_tuple;
    PyObject *deque_append, *deque_popleft;  /* unbound deque methods */
    PyObject *s_no_route, *s_arp_failure;    /* interned drop labels */
    Py_ssize_t off_work_cycles, off_spl_level, off_sleep_ns, off_wait_signal;
    Py_ssize_t off_counter_value;                      /* Counter.value */
    Py_ssize_t off_pk[14];      /* Packet slots, declaration order */
    Py_ssize_t off_pool_enabled, off_pool_max_free, off_pool_allocated,
        off_pool_reused, off_pool_released, off_pool_free;
    Py_ssize_t off_route_network, off_route_prefix, off_route_interface;
} pps;

/* Packet slot indexes (declaration order in net/packet.py). */
enum {
    PK_packet_id, PK_src, PK_dst, PK_src_port, PK_dst_port, PK_protocol,
    PK_payload_bytes, PK_created_ns, PK_nic_arrival_ns, PK_transmitted_ns,
    PK_dropped_at, PK_corrupted, PK_flow, PK__pooled
};

/* ---------------- attribute access helpers ------------------------ */

/* Borrowed instance-dict read; NULL without error when absent. */
static inline PyObject *
gd(PyObject *obj, int key)
{
    PyObject **dp = _PyObject_GetDictPtr(obj);
    if (dp != NULL && *dp != NULL)
        return PyDict_GetItemWithError(*dp, pp_keys[key]);
    return NULL;
}

static inline int
sd(PyObject *obj, int key, PyObject *value)
{
    PyObject **dp = _PyObject_GetDictPtr(obj);
    if (dp == NULL) {
        PyErr_SetString(PyExc_TypeError, "packetpath: object has no dict");
        return -1;
    }
    if (*dp == NULL) {
        *dp = PyDict_New();
        if (*dp == NULL)
            return -1;
    }
    return PyDict_SetItem(*dp, pp_keys[key], value);
}

static int
gll(PyObject *obj, int key, long long *out)
{
    PyObject *v = gd(obj, key);
    if (v == NULL) {
        if (!PyErr_Occurred())
            PyErr_Format(PyExc_AttributeError, "packetpath: missing %U",
                         pp_keys[key]);
        return -1;
    }
    *out = PyLong_AsLongLong(v);
    if (*out == -1 && PyErr_Occurred())
        return -1;
    return 0;
}

static int
sll(PyObject *obj, int key, long long value)
{
    PyObject *v = PyLong_FromLongLong(value);
    int rc;
    if (v == NULL)
        return -1;
    rc = sd(obj, key, v);
    Py_DECREF(v);
    return rc;
}

/* Slot (T_OBJECT_EX member) access for __slots__ classes. */
static inline PyObject *  /* borrowed; NULL when unset (no error) */
slot_get(PyObject *obj, Py_ssize_t offset)
{
    return *(PyObject **)((char *)obj + offset);
}

static inline void
slot_set(PyObject *obj, Py_ssize_t offset, PyObject *value) /* steals */
{
    PyObject **addr = (PyObject **)((char *)obj + offset);
    PyObject *old = *addr;
    *addr = value;
    Py_XDECREF(old);
}

static Py_ssize_t
slot_offset(PyObject *type, const char *name)
{
    PyObject *descr = PyObject_GetAttrString(type, name);
    Py_ssize_t off;
    if (descr == NULL)
        return -1;
    if (Py_TYPE(descr) != &PyMemberDescr_Type) {
        Py_DECREF(descr);
        PyErr_Format(PyExc_TypeError,
                     "packetpath: %s is not a slot member", name);
        return -1;
    }
    off = ((PyMemberDescrObject *)descr)->d_member->offset;
    Py_DECREF(descr);
    return off;
}

/* Counter.increment(amount) inlined: value += amount (amount >= 0 at
 * every fast-path call site, so the negative-amount guard in
 * sim/probes.py cannot fire). counter may be Py_None (null probes). */
static int
counter_inc(PyObject *counter, long long amount)
{
    PyObject *cur, *next;
    long long v;
    if (counter == Py_None)
        return 0;
    cur = slot_get(counter, pps.off_counter_value);
    if (cur == NULL) {
        PyErr_SetString(PyExc_AttributeError, "counter value unset");
        return -1;
    }
    v = PyLong_AsLongLong(cur);
    if (v == -1 && PyErr_Occurred())
        return -1;
    next = PyLong_FromLongLong(v + amount);
    if (next == NULL)
        return -1;
    slot_set(counter, pps.off_counter_value, next);
    return 0;
}

/* Exact ports of repro.sim.units (all-integer arithmetic). */
static inline long long
pp_cycles_to_ns(long long cycles, long long hz)
{
    __int128 t;
    long long ns;
    if (cycles <= 0)
        return 0;
    t = (__int128)cycles * 1000000000LL + hz / 2;
    ns = (long long)(t / hz);
    return ns >= 1 ? ns : 1;
}

static inline long long
pp_ns_to_cycles(long long ns, long long hz)
{
    if (ns <= 0)
        return 0;
    return (long long)(((__int128)ns * hz + 500000000LL) / 1000000000LL);
}

/* ---------------- bound-method context ---------------------------- */

typedef struct {
    PyObject_HEAD
    PyObject *owner;   /* the object whose method this binding replaces */
    FastCoreObject *sim;
    PyObject *a, *b, *c;  /* family-specific extras (may be NULL) */
} PPCtx;

static PyTypeObject PPCtx_Type;

static int
ppctx_traverse(PPCtx *self, visitproc visit, void *arg)
{
    Py_VISIT(self->owner);
    Py_VISIT((PyObject *)self->sim);
    Py_VISIT(self->a);
    Py_VISIT(self->b);
    Py_VISIT(self->c);
    return 0;
}

static int
ppctx_clear(PPCtx *self)
{
    Py_CLEAR(self->owner);
    Py_CLEAR(self->sim);
    Py_CLEAR(self->a);
    Py_CLEAR(self->b);
    Py_CLEAR(self->c);
    return 0;
}

static void
ppctx_dealloc(PPCtx *self)
{
    PyObject_GC_UnTrack(self);
    ppctx_clear(self);
    PyObject_GC_Del(self);
}

static PyTypeObject PPCtx_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._fastcore._corec._PPCtx",
    .tp_basicsize = sizeof(PPCtx),
    .tp_dealloc = (destructor)ppctx_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_traverse = (traverseproc)ppctx_traverse,
    .tp_clear = (inquiry)ppctx_clear,
};

static PPCtx *
ppctx_new(PyObject *owner, FastCoreObject *sim)
{
    PPCtx *ctx = PyObject_GC_New(PPCtx, &PPCtx_Type);
    if (ctx == NULL)
        return NULL;
    Py_INCREF(owner);
    ctx->owner = owner;
    Py_INCREF(sim);
    ctx->sim = sim;
    ctx->a = ctx->b = ctx->c = NULL;
    PyObject_GC_Track(ctx);
    return ctx;
}

/* ---- Compiled IRQ dispatch: per-line proto + handler state machine --
 *
 * A PPIrq proto is cached on an InterruptLine's instance dict
 * (``line._pp_irq``) by packetpath.install_started. The compiled
 * try_deliver uses it to build the handler CpuTask without entering the
 * interpreter; the task's body is a PPGen — a C state machine that
 * replays the driver's handler generator (including the _handler_body
 * prelude) step for step. Rare branches (taps, screend, corrupted
 * frames) fall back to pumping the real Python ``ip.input_packet``
 * generator, so behaviour stays bit-identical. */

/* Handler kinds (which state machine a PPGen runs). */
enum {
    PPIRQ_BSD_RX,     /* BsdDriver._rx_handler */
    PPIRQ_BSD_TX,     /* BsdDriver._tx_handler */
    PPIRQ_HIGHIPL,    /* HighIplDriver._service_handler (both lines) */
    PPIRQ_POLLED_RX,  /* PolledDriver._rx_stub */
    PPIRQ_POLLED_TX,  /* PolledDriver._tx_stub */
    PPIRQ_CLOCK,      /* Kernel._clock_handler */
};

typedef struct {
    PyObject_HEAD
    int kind;
    long long ipl;       /* line.ipl, frozen at proto creation */
    PyObject *line;      /* the InterruptLine */
    PyObject *owner;     /* the driver owning the handler */
    PyObject *cpu;       /* controller.cpu */
    FastCoreObject *sim;
    PyObject *name;       /* "irq:<line.name>" */
    PyObject *work_label; /* "work:irq:<line.name>" */
    PyObject *key;        /* initial task _key tuple (ipl, CLASS_USER, 0) */
    PyObject *done_cb;    /* exit callback implementing _handler_done */
} PPIrq;

typedef struct {
    PyObject_HEAD
    PPIrq *proto;
    PyObject *sub;    /* active Python sub-generator (yield-from) */
    PyObject *packet; /* in-flight packet (owned mirror of in_flight) */
    PyObject *batch;  /* high-IPL pulled batch (owned mirror) */
    PyObject *work;   /* reusable Work command (identity unobservable) */
    long long c1, c2; /* frozen per-dispatch costs (captured like Python) */
    long long handled, moved, tsq;
    int state, ip_cont, ts_ret;
    int tsq_none, batch_pull, captured, closed;
} PPGenObject;

static PyTypeObject PPIrq_Type;
static PyTypeObject PPGen_Type;

/* Generator-send compatibility: PyIter_Send exists from 3.10 on. */
#if PY_VERSION_HEX < 0x030A0000
typedef enum { PYGEN_RETURN = 0, PYGEN_ERROR = -1, PYGEN_NEXT = 1 } PySendResult;
static PySendResult
PyIter_Send(PyObject *gen, PyObject *value, PyObject **result)
{
    PyObject *res = PyObject_CallMethod(gen, "send", "O", value);
    if (res != NULL) {
        *result = res;
        return PYGEN_NEXT;
    }
    if (PyErr_ExceptionMatches(PyExc_StopIteration)) {
        PyErr_Clear();
        *result = Py_None;
        Py_INCREF(Py_None);
        return PYGEN_RETURN;
    }
    *result = NULL;
    return PYGEN_ERROR;
}
#endif

static PySendResult ppgen_send(PPGenObject *g, PyObject *value,
                               PyObject **pres);

/* ---------------- symbol initialisation --------------------------- */

static PyObject *
pp_import_attr(const char *module, const char *attr)
{
    PyObject *mod = PyImport_ImportModule(module);
    PyObject *obj;
    if (mod == NULL)
        return NULL;
    obj = PyObject_GetAttrString(mod, attr);
    Py_DECREF(mod);
    return obj;
}

static int
pp_init_symbols(void)
{
    static const char *key_names[PPK_COUNT] = {
#define PP_NAME(n) #n,
        PP_KEYS(PP_NAME)
#undef PP_NAME
    };
    PyObject *mod, *tmp;
    int i;
    if (pps.ready)
        return 0;
    for (i = 0; i < PPK_COUNT; i++) {
        pp_keys[i] = PyUnicode_InternFromString(key_names[i]);
        if (pp_keys[i] == NULL)
            return -1;
    }
    if (PyType_Ready(&PPCtx_Type) < 0)
        return -1;

    mod = PyImport_ImportModule("repro.sim.process");
    if (mod == NULL)
        return -1;
    pps.Work = PyObject_GetAttrString(mod, "Work");
    pps.Sleep = PyObject_GetAttrString(mod, "Sleep");
    pps.WaitSignal = PyObject_GetAttrString(mod, "WaitSignal");
    pps.st_new = PyObject_GetAttrString(mod, "NEW");
    pps.st_alive = PyObject_GetAttrString(mod, "ALIVE");
    pps.st_done = PyObject_GetAttrString(mod, "DONE");
    pps.st_failed = PyObject_GetAttrString(mod, "FAILED");
    Py_DECREF(mod);
    if (pps.Work == NULL || pps.Sleep == NULL || pps.WaitSignal == NULL ||
        pps.st_new == NULL || pps.st_alive == NULL || pps.st_done == NULL ||
        pps.st_failed == NULL)
        return -1;
    pps.ProcessError = pp_import_attr("repro.sim.errors", "ProcessError");
    if (pps.ProcessError == NULL)
        return -1;
    pps.Spl = pp_import_attr("repro.hw.cpu", "Spl");
    if (pps.Spl == NULL)
        return -1;
    tmp = pp_import_attr("repro.hw.cpu", "CPU");
    if (tmp == NULL)
        return -1;
    pps.cpu_reschedule = PyObject_GetAttrString(tmp, "_reschedule");
    pps.cpu_complete = PyObject_GetAttrString(tmp, "_complete");
    Py_DECREF(tmp);
    if (pps.cpu_reschedule == NULL || pps.cpu_complete == NULL)
        return -1;
    pps.off_work_cycles = slot_offset(pps.Work, "cycles");
    pps.off_spl_level = slot_offset(pps.Spl, "level");
    pps.off_sleep_ns = slot_offset(pps.Sleep, "ns");
    pps.off_wait_signal = slot_offset(pps.WaitSignal, "signal");
    if (pps.off_work_cycles < 0 || pps.off_spl_level < 0 ||
        pps.off_sleep_ns < 0 || pps.off_wait_signal < 0)
        return -1;
    tmp = pp_import_attr("repro.sim.probes", "Counter");
    if (tmp == NULL)
        return -1;
    pps.off_counter_value = slot_offset(tmp, "value");
    Py_DECREF(tmp);
    if (pps.off_counter_value < 0)
        return -1;

    /* --- packet-path symbols (NIC / queues / net / workloads) ------ */
    tmp = pp_import_attr("repro.hw.nic", "NIC");
    if (tmp == NULL)
        return -1;
    pps.nic_receive = PyObject_GetAttrString(tmp, "receive_from_wire");
    pps.nic_rx_pull = PyObject_GetAttrString(tmp, "rx_pull");
    pps.nic_rx_pull_many = PyObject_GetAttrString(tmp, "rx_pull_many");
    pps.nic_rx_pending = PyObject_GetAttrString(tmp, "rx_pending");
    pps.nic_tx_reclaim = PyObject_GetAttrString(tmp, "tx_reclaim");
    pps.nic_txcomplete = PyObject_GetAttrString(tmp, "_transmit_complete");
    Py_DECREF(tmp);
    if (pps.nic_receive == NULL || pps.nic_rx_pull == NULL ||
        pps.nic_rx_pull_many == NULL || pps.nic_rx_pending == NULL ||
        pps.nic_tx_reclaim == NULL || pps.nic_txcomplete == NULL)
        return -1;
    tmp = pp_import_attr("repro.kernel.queues", "PacketQueue");
    if (tmp == NULL)
        return -1;
    pps.pq_enqueue = PyObject_GetAttrString(tmp, "enqueue");
    pps.pq_dequeue = PyObject_GetAttrString(tmp, "dequeue");
    Py_DECREF(tmp);
    if (pps.pq_enqueue == NULL || pps.pq_dequeue == NULL)
        return -1;
    pps.red_enqueue = pp_import_attr("repro.kernel.queues", "REDQueue");
    if (pps.red_enqueue == NULL)
        return -1;
    tmp = pps.red_enqueue;
    pps.red_enqueue = PyObject_GetAttrString(tmp, "enqueue");
    Py_DECREF(tmp);
    if (pps.red_enqueue == NULL)
        return -1;
    tmp = pp_import_attr("repro.hw.interrupts", "InterruptLine");
    if (tmp == NULL)
        return -1;
    pps.line_request = PyObject_GetAttrString(tmp, "request");
    Py_DECREF(tmp);
    if (pps.line_request == NULL)
        return -1;
    tmp = pp_import_attr("repro.net.ip", "IPLayer");
    if (tmp == NULL)
        return -1;
    pps.ip_dispatch = PyObject_GetAttrString(tmp, "_dispatch");
    Py_DECREF(tmp);
    if (pps.ip_dispatch == NULL)
        return -1;
    tmp = pp_import_attr("repro.experiments.topology", "Router");
    if (tmp == NULL)
        return -1;
    pps.router_out_transmit = PyObject_GetAttrString(tmp, "_on_output_transmit");
    pps.router_in_transmit = PyObject_GetAttrString(tmp, "_on_input_transmit");
    Py_DECREF(tmp);
    if (pps.router_out_transmit == NULL || pps.router_in_transmit == NULL)
        return -1;
    tmp = pp_import_attr("repro.metrics.latency", "LatencyRecorder");
    if (tmp == NULL)
        return -1;
    pps.lat_observe = PyObject_GetAttrString(tmp, "observe");
    Py_DECREF(tmp);
    if (pps.lat_observe == NULL)
        return -1;
    {
        static const char *gen_names[3] = {
            "ConstantRateGenerator", "PoissonGenerator", "BurstyGenerator"
        };
        for (i = 0; i < 3; i++) {
            tmp = pp_import_attr("repro.workloads.generators", gen_names[i]);
            if (tmp == NULL)
                return -1;
            pps.gen_ticks[i] = PyObject_GetAttrString(tmp, "_tick");
            if (i == 2)
                pps.gen_gap_over = PyObject_GetAttrString(tmp, "_gap_over");
            Py_DECREF(tmp);
            if (pps.gen_ticks[i] == NULL)
                return -1;
        }
        if (pps.gen_gap_over == NULL)
            return -1;
    }
    pps.Packet = pp_import_attr("repro.net.packet", "Packet");
    if (pps.Packet == NULL)
        return -1;
    pps.packet_ids = pp_import_attr("repro.net.packet", "_packet_ids");
    if (pps.packet_ids == NULL)
        return -1;
    {
        static const char *pk_names[14] = {
            "packet_id", "src", "dst", "src_port", "dst_port", "protocol",
            "payload_bytes", "created_ns", "nic_arrival_ns",
            "transmitted_ns", "dropped_at", "corrupted", "flow", "_pooled"
        };
        for (i = 0; i < 14; i++) {
            pps.off_pk[i] = slot_offset(pps.Packet, pk_names[i]);
            if (pps.off_pk[i] < 0)
                return -1;
        }
    }
    tmp = pp_import_attr("repro.net.packet", "PacketPool");
    if (tmp == NULL)
        return -1;
    pps.off_pool_enabled = slot_offset(tmp, "enabled");
    pps.off_pool_max_free = slot_offset(tmp, "max_free");
    pps.off_pool_allocated = slot_offset(tmp, "allocated");
    pps.off_pool_reused = slot_offset(tmp, "reused");
    pps.off_pool_released = slot_offset(tmp, "released");
    pps.off_pool_free = slot_offset(tmp, "_free");
    Py_DECREF(tmp);
    if (pps.off_pool_enabled < 0 || pps.off_pool_max_free < 0 ||
        pps.off_pool_allocated < 0 || pps.off_pool_reused < 0 ||
        pps.off_pool_released < 0 || pps.off_pool_free < 0)
        return -1;
    tmp = pp_import_attr("repro.net.routing", "Route");
    if (tmp == NULL)
        return -1;
    pps.off_route_network = slot_offset(tmp, "network");
    pps.off_route_prefix = slot_offset(tmp, "prefix_len");
    pps.off_route_interface = slot_offset(tmp, "interface");
    Py_DECREF(tmp);
    if (pps.off_route_network < 0 || pps.off_route_prefix < 0 ||
        pps.off_route_interface < 0)
        return -1;
    tmp = pp_import_attr("collections", "deque");
    if (tmp == NULL)
        return -1;
    pps.deque_append = PyObject_GetAttrString(tmp, "append");
    pps.deque_popleft = PyObject_GetAttrString(tmp, "popleft");
    Py_DECREF(tmp);
    if (pps.deque_append == NULL || pps.deque_popleft == NULL)
        return -1;
    pps.s_no_route = PyUnicode_InternFromString("ip.no_route");
    pps.s_arp_failure = PyUnicode_InternFromString("ip.arp_failure");
    if (pps.s_no_route == NULL || pps.s_arp_failure == NULL)
        return -1;

    /* --- IRQ dispatch symbols ------------------------------------- */
    if (PyType_Ready(&PPIrq_Type) < 0 || PyType_Ready(&PPGen_Type) < 0)
        return -1;
    pps.CpuTask = pp_import_attr("repro.hw.cpu", "CpuTask");
    if (pps.CpuTask == NULL)
        return -1;
    tmp = pp_import_attr("repro.hw.interrupts", "InterruptController");
    if (tmp == NULL)
        return -1;
    pps.ctrl_try_deliver = PyObject_GetAttrString(tmp, "try_deliver");
    pps.ctrl_handler_done = PyObject_GetAttrString(tmp, "_handler_done");
    Py_DECREF(tmp);
    if (pps.ctrl_try_deliver == NULL || pps.ctrl_handler_done == NULL)
        return -1;
    pps.quota_exhaust = pp_import_attr("repro.trace.buffer", "QUOTA_EXHAUST");
    if (pps.quota_exhaust == NULL)
        return -1;
    pps.empty_tuple = PyTuple_New(0);
    if (pps.empty_tuple == NULL)
        return -1;

    pps.ready = 1;
    return 0;
}

/* ---------------- CPU engine (hw/cpu.py, sim/process.py) ---------- */

static PyObject *pp_deliver_impl(PPCtx *ctx, PyObject *value);

/* state comparison: identity first (states are assigned from the
 * module constants), value equality as a safety net. */
static int
pp_state_is(PyObject *state, PyObject *expected)
{
    if (state == expected)
        return 1;
    return PyObject_RichCompareBool(state, expected, Py_EQ) == 1;
}

/* Process._finish: swap the exit-callback list for a fresh one, then
 * run the detached callbacks in order. */
static int
pp_finish(PyObject *proc)
{
    PyObject *cbs = gd(proc, PPK__exit_callbacks);
    PyObject *fresh;
    Py_ssize_t i;
    if (cbs == NULL || !PyList_Check(cbs)) {
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_AttributeError,
                            "packetpath: _exit_callbacks missing");
        return -1;
    }
    Py_INCREF(cbs);
    fresh = PyList_New(0);
    if (fresh == NULL || sd(proc, PPK__exit_callbacks, fresh) < 0) {
        Py_XDECREF(fresh);
        Py_DECREF(cbs);
        return -1;
    }
    Py_DECREF(fresh);
    for (i = 0; i < PyList_GET_SIZE(cbs); i++) {
        PyObject *cb = PyList_GET_ITEM(cbs, i);
        PyObject *res;
        Py_INCREF(cb);
        res = PyObject_CallOneArg(cb, proc);
        Py_DECREF(cb);
        if (res == NULL) {
            Py_DECREF(cbs);
            return -1;
        }
        Py_DECREF(res);
    }
    Py_DECREF(cbs);
    return 0;
}

/* CpuTask._refresh_key */
static int
pp_refresh_key(PyObject *task)
{
    long long base, spl, pc, rseq, eff;
    PyObject *key;
    if (gll(task, PPK_base_ipl, &base) < 0 ||
        gll(task, PPK_spl_level, &spl) < 0 ||
        gll(task, PPK_priority_class, &pc) < 0 ||
        gll(task, PPK__ready_seq, &rseq) < 0)
        return -1;
    eff = base >= spl ? base : spl;
    if (sll(task, PPK__eff_ipl, eff) < 0)
        return -1;
    key = Py_BuildValue("(LLL)", eff, pc, -rseq);
    if (key == NULL)
        return -1;
    if (sd(task, PPK__key, key) < 0) {
        Py_DECREF(key);
        return -1;
    }
    Py_DECREF(key);
    return 0;
}

/* CPU._pick: first-max wins over insertion order; the _key tuples are
 * int 3-tuples, so an unpacked lexicographic long-long compare is
 * equivalent to Python's tuple >. Returns a borrowed task or NULL
 * (none runnable, or error with the exception set). */
static PyObject *
pp_pick(PyObject *remaining)
{
    PyObject *task, *val, *best = NULL;
    long long b0 = 0, b1 = 0, b2 = 0;
    Py_ssize_t pos = 0;
    while (PyDict_Next(remaining, &pos, &task, &val)) {
        PyObject *kt = gd(task, PPK__key);
        long long k0, k1, k2;
        if (kt == NULL || !PyTuple_Check(kt) || PyTuple_GET_SIZE(kt) != 3) {
            if (!PyErr_Occurred())
                PyErr_SetString(PyExc_AttributeError,
                                "packetpath: task _key missing");
            return NULL;
        }
        k0 = PyLong_AsLongLong(PyTuple_GET_ITEM(kt, 0));
        k1 = PyLong_AsLongLong(PyTuple_GET_ITEM(kt, 1));
        k2 = PyLong_AsLongLong(PyTuple_GET_ITEM(kt, 2));
        if (PyErr_Occurred())
            return NULL;
        if (best == NULL || k0 > b0 ||
            (k0 == b0 && (k1 > b1 || (k1 == b1 && k2 > b2)))) {
            best = task;
            b0 = k0;
            b1 = k1;
            b2 = k2;
        }
    }
    return best;
}

/* CPU._notify_ipl */
static int
pp_notify_ipl(PyObject *cpu)
{
    PyObject *current = gd(cpu, PPK__current);
    PyObject *obs, *iplobj;
    long long ipl = 0;
    Py_ssize_t i;
    if (current != NULL && current != Py_None) {
        if (gll(current, PPK__eff_ipl, &ipl) < 0)
            return -1;
    }
    obs = gd(cpu, PPK_ipl_observers);
    if (obs == NULL || !PyList_Check(obs)) {
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_AttributeError,
                            "packetpath: ipl_observers missing");
        return -1;
    }
    Py_INCREF(obs);
    iplobj = PyLong_FromLongLong(ipl);
    if (iplobj == NULL) {
        Py_DECREF(obs);
        return -1;
    }
    for (i = 0; i < PyList_GET_SIZE(obs); i++) {
        PyObject *cb = PyList_GET_ITEM(obs, i);
        PyObject *res;
        Py_INCREF(cb);
        res = PyObject_CallOneArg(cb, iplobj);
        Py_DECREF(cb);
        if (res == NULL) {
            Py_DECREF(iplobj);
            Py_DECREF(obs);
            return -1;
        }
        Py_DECREF(res);
    }
    Py_DECREF(iplobj);
    Py_DECREF(obs);
    return 0;
}

/* CPU._stop_current(account) */
static int
pp_stop_current(PyObject *cpu, FastCoreObject *sim, int account)
{
    PyObject *task = gd(cpu, PPK__current);
    PyObject *comp;
    if (task == NULL) {
        if (PyErr_Occurred())
            return -1;
        PyErr_SetString(PyExc_AttributeError, "packetpath: _current missing");
        return -1;
    }
    if (task == Py_None)
        return 0;
    Py_INCREF(task);
    comp = gd(cpu, PPK__completion);
    if (comp != NULL && comp != Py_None) {
        if (Py_TYPE(comp) == &CEvent_Type) {
            if (((CEvent *)comp)->state == ST_PENDING)
                cancel_event(sim, (CEvent *)comp);
        } else {
            PyObject *res = PyObject_CallMethod((PyObject *)sim, "cancel",
                                                "O", comp);
            if (res == NULL)
                goto fail;
            Py_DECREF(res);
        }
        if (sd(cpu, PPK__completion, Py_None) < 0)
            goto fail;
    }
    if (account) {
        long long chunk, elapsed;
        if (gll(cpu, PPK__chunk_started, &chunk) < 0)
            goto fail;
        elapsed = sim->now_ns - chunk;
        if (elapsed > 0) {
            PyObject *remaining = gd(cpu, PPK__remaining);
            PyObject *cur, *obs, *elobj;
            long long hz, used, busy;
            Py_ssize_t i;
            if (remaining == NULL || !PyDict_Check(remaining))
                goto fail_attr;
            cur = PyDict_GetItemWithError(remaining, task);
            if (cur != NULL) {
                long long r = PyLong_AsLongLong(cur);
                PyObject *upd;
                if (r == -1 && PyErr_Occurred())
                    goto fail;
                r -= elapsed;
                if (r < 0)
                    r = 0;
                upd = PyLong_FromLongLong(r);
                if (upd == NULL ||
                    PyDict_SetItem(remaining, task, upd) < 0) {
                    Py_XDECREF(upd);
                    goto fail;
                }
                Py_DECREF(upd);
            } else if (PyErr_Occurred()) {
                goto fail;
            }
            if (gll(cpu, PPK_hz, &hz) < 0 ||
                gll(task, PPK_cycles_used, &used) < 0 ||
                gll(cpu, PPK_busy_ns, &busy) < 0)
                goto fail;
            if (sll(task, PPK_cycles_used,
                    used + pp_ns_to_cycles(elapsed, hz)) < 0 ||
                sll(cpu, PPK_busy_ns, busy + elapsed) < 0)
                goto fail;
            obs = gd(cpu, PPK_account_observers);
            if (obs == NULL || !PyList_Check(obs))
                goto fail_attr;
            Py_INCREF(obs);
            elobj = PyLong_FromLongLong(elapsed);
            if (elobj == NULL) {
                Py_DECREF(obs);
                goto fail;
            }
            for (i = 0; i < PyList_GET_SIZE(obs); i++) {
                PyObject *cb = PyList_GET_ITEM(obs, i);
                PyObject *res;
                Py_INCREF(cb);
                res = PyObject_CallFunctionObjArgs(cb, task, elobj, NULL);
                Py_DECREF(cb);
                if (res == NULL) {
                    Py_DECREF(elobj);
                    Py_DECREF(obs);
                    goto fail;
                }
                Py_DECREF(res);
            }
            Py_DECREF(elobj);
            Py_DECREF(obs);
        }
    }
    if (sd(cpu, PPK__current, Py_None) < 0)
        goto fail;
    Py_DECREF(task);
    return 0;
fail_attr:
    if (!PyErr_Occurred())
        PyErr_SetString(PyExc_AttributeError,
                        "packetpath: CPU attribute missing");
fail:
    Py_DECREF(task);
    return -1;
}

/* CPU._reschedule. When a trace buffer is armed the Python method runs
 * instead (it records CPU_RUN/CPU_IDLE); behaviour is identical. */
static int
pp_reschedule(PyObject *cpu, FastCoreObject *sim)
{
    PyObject *trace = gd(cpu, PPK_trace);
    PyObject *remaining, *best, *current, *curt, *complete_fn, *cb_args;
    PyObject *label, *remobj, *ev;
    long long eff, hz, remns;
    int complete_owned = 0;
    if (trace == NULL) {
        if (PyErr_Occurred())
            return -1;
        PyErr_SetString(PyExc_AttributeError, "packetpath: trace missing");
        return -1;
    }
    if (trace != Py_None) {
        PyObject *res = PyObject_CallOneArg(pps.cpu_reschedule, cpu);
        if (res == NULL)
            return -1;
        Py_DECREF(res);
        return 0;
    }
    remaining = gd(cpu, PPK__remaining);
    if (remaining == NULL || !PyDict_Check(remaining)) {
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_AttributeError,
                            "packetpath: _remaining missing");
        return -1;
    }
    best = pp_pick(remaining);
    if (best == NULL && PyErr_Occurred())
        return -1;
    current = gd(cpu, PPK__current);
    if (current == NULL) {
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_AttributeError,
                            "packetpath: _current missing");
        return -1;
    }
    curt = (current == Py_None) ? NULL : current;
    if (best == curt)
        return 0;
    Py_XINCREF(best);
    if (curt != NULL) {
        long long pre;
        if (gll(cpu, PPK_preemptions, &pre) < 0 ||
            sll(cpu, PPK_preemptions, pre + 1) < 0 ||
            pp_stop_current(cpu, sim, 1) < 0) {
            Py_XDECREF(best);
            return -1;
        }
    }
    if (best == NULL)
        return pp_notify_ipl(cpu);
    if (gll(best, PPK__eff_ipl, &eff) < 0 || gll(cpu, PPK_hz, &hz) < 0)
        goto fail;
    if (eff == 0) {
        long long csc;
        PyObject *last;
        if (gll(cpu, PPK_context_switch_cycles, &csc) < 0)
            goto fail;
        last = gd(cpu, PPK__last_thread);
        if (last == NULL)
            goto fail;
        if (csc > 0 && last != best && last != Py_None) {
            long long r, sw;
            PyObject *upd;
            remaining = gd(cpu, PPK__remaining);
            remobj = PyDict_GetItemWithError(remaining, best);
            if (remobj == NULL)
                goto fail_key;
            r = PyLong_AsLongLong(remobj);
            if (r == -1 && PyErr_Occurred())
                goto fail;
            upd = PyLong_FromLongLong(r + pp_cycles_to_ns(csc, hz));
            if (upd == NULL || PyDict_SetItem(remaining, best, upd) < 0) {
                Py_XDECREF(upd);
                goto fail;
            }
            Py_DECREF(upd);
            if (gll(cpu, PPK_switches, &sw) < 0 ||
                sll(cpu, PPK_switches, sw + 1) < 0)
                goto fail;
        }
        if (sd(cpu, PPK__last_thread, best) < 0)
            goto fail;
    }
    if (sd(cpu, PPK__current, best) < 0 ||
        sll(cpu, PPK__chunk_started, sim->now_ns) < 0)
        goto fail;
    remaining = gd(cpu, PPK__remaining);
    remobj = PyDict_GetItemWithError(remaining, best);
    if (remobj == NULL)
        goto fail_key;
    remns = PyLong_AsLongLong(remobj);
    if (remns == -1 && PyErr_Occurred())
        goto fail;
    complete_fn = gd(cpu, PPK__complete);
    if (complete_fn == NULL) {
        if (PyErr_Occurred())
            goto fail;
        complete_fn = PyObject_GetAttr(cpu, pp_keys[PPK__complete]);
        if (complete_fn == NULL)
            goto fail;
        complete_owned = 1;
    }
    label = gd(best, PPK__work_label);
    if (label == NULL && PyErr_Occurred())
        goto fail_complete;
    cb_args = PyTuple_Pack(1, best);
    if (cb_args == NULL)
        goto fail_complete;
    ev = schedule_common(sim, remns, complete_fn, cb_args, label);
    if (ev == NULL)
        goto fail_complete;
    if (complete_owned)
        Py_DECREF(complete_fn);
    if (sd(cpu, PPK__completion, ev) < 0) {
        Py_DECREF(ev);
        goto fail;
    }
    Py_DECREF(ev);
    Py_DECREF(best);
    return 0;
fail_key:
    if (!PyErr_Occurred())
        PyErr_SetObject(PyExc_KeyError, best);
    goto fail;
fail_complete:
    if (complete_owned)
        Py_DECREF(complete_fn);
fail:
    Py_XDECREF(best);
    return -1;
}

/* CPU.add_work */
static int
pp_add_work(PyObject *cpu, FastCoreObject *sim, PyObject *task,
            long long cycles)
{
    PyObject *remaining, *cur;
    long long hz, ns;
    if (gll(cpu, PPK_hz, &hz) < 0)
        return -1;
    ns = pp_cycles_to_ns(cycles, hz);
    remaining = gd(cpu, PPK__remaining);
    if (remaining == NULL || !PyDict_Check(remaining)) {
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_AttributeError,
                            "packetpath: _remaining missing");
        return -1;
    }
    cur = PyDict_GetItemWithError(remaining, task);
    if (cur != NULL) {
        long long r = PyLong_AsLongLong(cur);
        PyObject *upd;
        if (r == -1 && PyErr_Occurred())
            return -1;
        upd = PyLong_FromLongLong(r + ns);
        if (upd == NULL || PyDict_SetItem(remaining, task, upd) < 0) {
            Py_XDECREF(upd);
            return -1;
        }
        Py_DECREF(upd);
    } else {
        long long seq;
        PyObject *nsobj;
        if (PyErr_Occurred())
            return -1;
        if (gll(cpu, PPK__seq, &seq) < 0 ||
            sll(cpu, PPK__seq, seq + 1) < 0 ||
            sll(task, PPK__ready_seq, seq + 1) < 0 ||
            pp_refresh_key(task) < 0)
            return -1;
        nsobj = PyLong_FromLongLong(ns);
        if (nsobj == NULL || PyDict_SetItem(remaining, task, nsobj) < 0) {
            Py_XDECREF(nsobj);
            return -1;
        }
        Py_DECREF(nsobj);
    }
    return pp_reschedule(cpu, sim);
}

/* Process.deliver + CpuTask._dispatch fused: resume the generator body
 * with PyIter_Send and dispatch its commands without re-entering the
 * interpreter for the common Work/Spl/Sleep/WaitSignal cases. The Spl
 * branch loops (Python recurses through deliver) and re-checks the
 * lifecycle state at the top, exactly like the recursive call would. */
static PyObject *
pp_deliver_impl(PPCtx *ctx, PyObject *value)
{
    PyObject *task = ctx->owner;
    FastCoreObject *sim = ctx->sim;
    for (;;) {
        PyObject *state, *body, *command;
        PySendResult sr;
        state = gd(task, PPK_state);
        if (state == NULL) {
            if (!PyErr_Occurred())
                PyErr_SetString(PyExc_AttributeError,
                                "packetpath: process state missing");
            return NULL;
        }
        if (pp_state_is(state, pps.st_new)) {
            if (sd(task, PPK_state, pps.st_alive) < 0)
                return NULL;
        } else if (!pp_state_is(state, pps.st_alive)) {
            /* A stale wake-up for a process killed meanwhile. */
            Py_RETURN_NONE;
        }
        if (sd(task, PPK__waiting_on, Py_None) < 0)
            return NULL;
        body = gd(task, PPK__body);
        if (body == NULL) {
            if (!PyErr_Occurred())
                PyErr_SetString(PyExc_AttributeError,
                                "packetpath: process body missing");
            return NULL;
        }
        Py_INCREF(body);
        if (Py_TYPE(body) == &PPGen_Type)
            sr = ppgen_send((PPGenObject *)body, value, &command);
        else
            sr = PyIter_Send(body, value, &command);
        Py_DECREF(body);
        if (sr == PYGEN_RETURN) {
            Py_XDECREF(command);
            if (sd(task, PPK_state, pps.st_done) < 0 ||
                pp_finish(task) < 0)
                return NULL;
            Py_RETURN_NONE;
        }
        if (sr == PYGEN_ERROR) {
            PyObject *t, *v, *tb, *name, *msg, *perr;
            PyErr_Fetch(&t, &v, &tb);
            PyErr_NormalizeException(&t, &v, &tb);
            if (tb != NULL)
                PyException_SetTraceback(v, tb);
            if (sd(task, PPK_state, pps.st_failed) < 0 ||
                sd(task, PPK_exception, v ? v : Py_None) < 0 ||
                pp_finish(task) < 0) {
                /* _finish (or the stores) raised during exception
                 * handling: chain the original as __context__. */
                PyObject *nt, *nv, *ntb;
                PyErr_Fetch(&nt, &nv, &ntb);
                PyErr_NormalizeException(&nt, &nv, &ntb);
                if (nv != NULL && v != NULL) {
                    Py_INCREF(v);
                    PyException_SetContext(nv, v);
                }
                PyErr_Restore(nt, nv, ntb);
                Py_XDECREF(t);
                Py_XDECREF(v);
                Py_XDECREF(tb);
                return NULL;
            }
            name = gd(task, PPK_name);
            msg = PyUnicode_FromFormat("process %U failed at t=%lld ns",
                                       name ? name : Py_None, sim->now_ns);
            if (msg == NULL)
                goto err_cleanup;
            perr = PyObject_CallOneArg(pps.ProcessError, msg);
            Py_DECREF(msg);
            if (perr == NULL)
                goto err_cleanup;
            if (v != NULL) {
                Py_INCREF(v);
                PyException_SetCause(perr, v);
                Py_INCREF(v);
                PyException_SetContext(perr, v);
            }
            PyErr_SetObject(pps.ProcessError, perr);
            Py_DECREF(perr);
        err_cleanup:
            Py_XDECREF(t);
            Py_XDECREF(v);
            Py_XDECREF(tb);
            return NULL;
        }
        /* PYGEN_NEXT: dispatch the command. */
        if (Py_TYPE(command) == (PyTypeObject *)pps.Work) {
            PyObject *cycobj = slot_get(command, pps.off_work_cycles);
            PyObject *cpu;
            long long cycles;
            if (cycobj == NULL) {
                Py_DECREF(command);
                PyErr_SetString(PyExc_AttributeError, "Work cycles unset");
                return NULL;
            }
            cycles = PyLong_AsLongLong(cycobj);
            Py_DECREF(command);
            if (cycles == -1 && PyErr_Occurred())
                return NULL;
            cpu = gd(task, PPK_cpu);
            if (cpu == NULL) {
                if (!PyErr_Occurred())
                    PyErr_SetString(PyExc_AttributeError,
                                    "packetpath: task cpu missing");
                return NULL;
            }
            if (pp_add_work(cpu, sim, task, cycles) < 0)
                return NULL;
            Py_RETURN_NONE;
        }
        if (Py_TYPE(command) == (PyTypeObject *)pps.Spl) {
            PyObject *level = slot_get(command, pps.off_spl_level);
            PyObject *cpu;
            long long old_eff, new_eff;
            if (level == NULL) {
                Py_DECREF(command);
                PyErr_SetString(PyExc_AttributeError, "Spl level unset");
                return NULL;
            }
            if (gll(task, PPK__eff_ipl, &old_eff) < 0 ||
                sd(task, PPK_spl_level, level) < 0) {
                Py_DECREF(command);
                return NULL;
            }
            Py_DECREF(command);
            if (pp_refresh_key(task) < 0)
                return NULL;
            cpu = gd(task, PPK_cpu);
            if (cpu == NULL) {
                if (!PyErr_Occurred())
                    PyErr_SetString(PyExc_AttributeError,
                                    "packetpath: task cpu missing");
                return NULL;
            }
            /* CPU.on_task_ipl_changed(task, old) */
            if (pp_reschedule(cpu, sim) < 0 ||
                gll(task, PPK__eff_ipl, &new_eff) < 0)
                return NULL;
            if (new_eff < old_eff && pp_notify_ipl(cpu) < 0)
                return NULL;
            /* self.deliver(None): loop, re-checking the state. */
            value = Py_None;
            continue;
        }
        if (Py_TYPE(command) == (PyTypeObject *)pps.Sleep) {
            PyObject *nsobj = slot_get(command, pps.off_sleep_ns);
            PyObject *dfn, *cb_args, *ev;
            long long ns;
            int dfn_owned = 0;
            if (nsobj == NULL) {
                Py_DECREF(command);
                PyErr_SetString(PyExc_AttributeError, "Sleep ns unset");
                return NULL;
            }
            ns = PyLong_AsLongLong(nsobj);
            Py_DECREF(command);
            if (ns == -1 && PyErr_Occurred())
                return NULL;
            if (ctx->b == NULL) {
                PyObject *name = gd(task, PPK_name);
                ctx->b = PyUnicode_FromFormat("sleep:%U",
                                              name ? name : Py_None);
                if (ctx->b == NULL)
                    return NULL;
            }
            dfn = gd(task, PPK_deliver);
            if (dfn == NULL) {
                if (PyErr_Occurred())
                    return NULL;
                dfn = PyObject_GetAttr(task, pp_keys[PPK_deliver]);
                if (dfn == NULL)
                    return NULL;
                dfn_owned = 1;
            }
            cb_args = PyTuple_Pack(1, Py_None);
            if (cb_args == NULL) {
                if (dfn_owned)
                    Py_DECREF(dfn);
                return NULL;
            }
            ev = schedule_common(sim, ns, dfn, cb_args, ctx->b);
            if (dfn_owned)
                Py_DECREF(dfn);
            if (ev == NULL)
                return NULL;
            Py_DECREF(ev);
            Py_RETURN_NONE;
        }
        if (Py_TYPE(command) == (PyTypeObject *)pps.WaitSignal) {
            PyObject *signal = slot_get(command, pps.off_wait_signal);
            PyObject *m, *res;
            if (signal == NULL) {
                Py_DECREF(command);
                PyErr_SetString(PyExc_AttributeError,
                                "WaitSignal signal unset");
                return NULL;
            }
            Py_INCREF(signal);
            Py_DECREF(command);
            if (sd(task, PPK__waiting_on, signal) < 0) {
                Py_DECREF(signal);
                return NULL;
            }
            m = PyObject_GetAttr(signal, pp_keys[PPK_add_waiter]);
            Py_DECREF(signal);
            if (m == NULL)
                return NULL;
            res = PyObject_CallOneArg(m, task);
            Py_DECREF(m);
            if (res == NULL)
                return NULL;
            Py_DECREF(res);
            Py_RETURN_NONE;
        }
        /* Uncommon command: fall back to the Python dispatcher, with
         * the ProcessError catch from Process.deliver. */
        {
            PyObject *m = PyObject_GetAttrString(task, "_dispatch");
            PyObject *res;
            if (m == NULL) {
                Py_DECREF(command);
                return NULL;
            }
            res = PyObject_CallOneArg(m, command);
            Py_DECREF(m);
            Py_DECREF(command);
            if (res == NULL) {
                if (PyErr_ExceptionMatches(pps.ProcessError)) {
                    PyObject *t, *v, *tb;
                    PyErr_Fetch(&t, &v, &tb);
                    if (sd(task, PPK_state, pps.st_failed) < 0 ||
                        pp_finish(task) < 0) {
                        PyObject *nt, *nv, *ntb;
                        PyErr_Fetch(&nt, &nv, &ntb);
                        PyErr_NormalizeException(&nt, &nv, &ntb);
                        PyErr_NormalizeException(&t, &v, &tb);
                        if (nv != NULL && v != NULL) {
                            Py_INCREF(v);
                            PyException_SetContext(nv, v);
                        }
                        PyErr_Restore(nt, nv, ntb);
                        Py_XDECREF(t);
                        Py_XDECREF(v);
                        Py_XDECREF(tb);
                        return NULL;
                    }
                    PyErr_Restore(t, v, tb);
                }
                return NULL;
            }
            Py_DECREF(res);
            Py_RETURN_NONE;
        }
    }
}

/* CPU._complete: the completion callback armed by pp_reschedule. */
static PyObject *
pp_complete_impl(PPCtx *ctx, PyObject *task)
{
    PyObject *cpu = ctx->owner;
    FastCoreObject *sim = ctx->sim;
    PyObject *current, *remaining, *dfn, *trace;
    long long chunk, elapsed, hz, used, busy, was_ipl, cur_eff;
    trace = gd(cpu, PPK_trace);
    if (trace != NULL && trace != Py_None) {
        /* Traced CPU: run the Python method (identical behaviour; its
         * _reschedule records the context-switch events). */
        return PyObject_CallFunctionObjArgs(pps.cpu_complete, cpu, task,
                                            NULL);
    }
    if (trace == NULL && PyErr_Occurred())
        return NULL;
    current = gd(cpu, PPK__current);
    if (current == NULL && PyErr_Occurred())
        return NULL;
    if (task != current) {
        PyObject *name = gd(task, PPK_name);
        PyErr_Format(pps.ProcessError, "completion for non-current task %U",
                     name ? name : Py_None);
        return NULL;
    }
    if (sd(cpu, PPK__completion, Py_None) < 0 ||
        gll(cpu, PPK__chunk_started, &chunk) < 0 ||
        gll(cpu, PPK_hz, &hz) < 0 ||
        gll(task, PPK_cycles_used, &used) < 0 ||
        gll(cpu, PPK_busy_ns, &busy) < 0)
        return NULL;
    elapsed = sim->now_ns - chunk;
    if (sll(task, PPK_cycles_used, used + pp_ns_to_cycles(elapsed, hz)) < 0 ||
        sll(cpu, PPK_busy_ns, busy + elapsed) < 0)
        return NULL;
    if (elapsed > 0) {
        PyObject *obs = gd(cpu, PPK_account_observers);
        PyObject *elobj;
        Py_ssize_t i;
        if (obs == NULL || !PyList_Check(obs)) {
            if (!PyErr_Occurred())
                PyErr_SetString(PyExc_AttributeError,
                                "packetpath: account_observers missing");
            return NULL;
        }
        Py_INCREF(obs);
        elobj = PyLong_FromLongLong(elapsed);
        if (elobj == NULL) {
            Py_DECREF(obs);
            return NULL;
        }
        for (i = 0; i < PyList_GET_SIZE(obs); i++) {
            PyObject *cb = PyList_GET_ITEM(obs, i);
            PyObject *res;
            Py_INCREF(cb);
            res = PyObject_CallFunctionObjArgs(cb, task, elobj, NULL);
            Py_DECREF(cb);
            if (res == NULL) {
                Py_DECREF(elobj);
                Py_DECREF(obs);
                return NULL;
            }
            Py_DECREF(res);
        }
        Py_DECREF(elobj);
        Py_DECREF(obs);
    }
    if (sd(cpu, PPK__current, Py_None) < 0)
        return NULL;
    remaining = gd(cpu, PPK__remaining);
    if (remaining == NULL || !PyDict_Check(remaining)) {
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_AttributeError,
                            "packetpath: _remaining missing");
        return NULL;
    }
    if (PyDict_DelItem(remaining, task) < 0)
        return NULL;
    if (gll(task, PPK__eff_ipl, &was_ipl) < 0)
        return NULL;
    /* task.deliver(None) */
    dfn = gd(task, PPK_deliver);
    if (dfn != NULL && Py_TYPE(dfn) == &PyCFunction_Type &&
        PyCFunction_GET_SELF(dfn) != NULL &&
        Py_TYPE(PyCFunction_GET_SELF(dfn)) == &PPCtx_Type) {
        PyObject *res =
            pp_deliver_impl((PPCtx *)PyCFunction_GET_SELF(dfn), Py_None);
        if (res == NULL)
            return NULL;
        Py_DECREF(res);
    } else {
        PyObject *bound, *res;
        if (dfn == NULL && PyErr_Occurred())
            return NULL;
        bound = PyObject_GetAttr(task, pp_keys[PPK_deliver]);
        if (bound == NULL)
            return NULL;
        res = PyObject_CallOneArg(bound, Py_None);
        Py_DECREF(bound);
        if (res == NULL)
            return NULL;
        Py_DECREF(res);
    }
    if (pp_reschedule(cpu, sim) < 0)
        return NULL;
    current = gd(cpu, PPK__current);
    if (current == NULL && PyErr_Occurred())
        return NULL;
    cur_eff = 0;
    if (current != NULL && current != Py_None) {
        if (gll(current, PPK__eff_ipl, &cur_eff) < 0)
            return NULL;
    }
    if (was_ipl > cur_eff && pp_notify_ipl(cpu) < 0)
        return NULL;
    Py_RETURN_NONE;
}

/* ---- Instance-attribute entry points --------------------------------
 * Each is a PyCFunction whose m_self is a PPCtx carrying the owning
 * Python object and the FastCore simulator. PyCFunctions have no
 * __get__, so storing one in an instance __dict__ shadows the class
 * method exactly; deleting the instance attribute restores it. */

static PyObject *
ppf_task_deliver(PyObject *self, PyObject *value)
{
    return pp_deliver_impl((PPCtx *)self, value);
}

static PyMethodDef def_task_deliver = {
    "deliver", (PyCFunction)ppf_task_deliver, METH_O, NULL};

static int
pp_bind_deliver(PyObject *task, FastCoreObject *sim)
{
    PPCtx *ctx = ppctx_new(task, sim);
    PyObject *fn;
    if (ctx == NULL)
        return -1;
    fn = PyCFunction_New(&def_task_deliver, (PyObject *)ctx);
    Py_DECREF(ctx);
    if (fn == NULL)
        return -1;
    if (sd(task, PPK_deliver, fn) < 0) {
        Py_DECREF(fn);
        return -1;
    }
    Py_DECREF(fn);
    return 0;
}

static PyObject *
ppf_cpu_add_work(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    PPCtx *ctx = (PPCtx *)self;
    long long cycles;
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError, "add_work expects (task, cycles)");
        return NULL;
    }
    cycles = PyLong_AsLongLong(args[1]);
    if (cycles == -1 && PyErr_Occurred())
        return NULL;
    if (pp_add_work(ctx->owner, ctx->sim, args[0], cycles) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
ppf_cpu_requeue(PyObject *self, PyObject *task)
{
    PPCtx *ctx = (PPCtx *)self;
    PyObject *cpu = ctx->owner;
    PyObject *remaining = gd(cpu, PPK__remaining);
    long long seq;
    int has;
    if (remaining == NULL || !PyDict_Check(remaining)) {
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_AttributeError,
                            "packetpath: _remaining missing");
        return NULL;
    }
    has = PyDict_Contains(remaining, task);
    if (has < 0)
        return NULL;
    if (!has)
        Py_RETURN_NONE;
    if (gll(cpu, PPK__seq, &seq) < 0 ||
        sll(cpu, PPK__seq, seq + 1) < 0 ||
        sll(task, PPK__ready_seq, seq + 1) < 0 ||
        pp_refresh_key(task) < 0 ||
        pp_reschedule(cpu, ctx->sim) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
ppf_cpu_ipl_changed(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    PPCtx *ctx = (PPCtx *)self;
    long long old_ipl, eff;
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError,
                        "on_task_ipl_changed expects (task, old_ipl)");
        return NULL;
    }
    old_ipl = PyLong_AsLongLong(args[1]);
    if (old_ipl == -1 && PyErr_Occurred())
        return NULL;
    if (pp_reschedule(ctx->owner, ctx->sim) < 0)
        return NULL;
    if (gll(args[0], PPK__eff_ipl, &eff) < 0)
        return NULL;
    if (eff < old_ipl && pp_notify_ipl(ctx->owner) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
ppf_cpu_remove(PyObject *self, PyObject *task)
{
    PPCtx *ctx = (PPCtx *)self;
    PyObject *cpu = ctx->owner;
    PyObject *current, *remaining;
    int has;
    current = gd(cpu, PPK__current);
    if (current == NULL && PyErr_Occurred())
        return NULL;
    if (task == current) {
        if (pp_stop_current(cpu, ctx->sim, 1) < 0)
            return NULL;
    }
    remaining = gd(cpu, PPK__remaining);
    if (remaining == NULL || !PyDict_Check(remaining)) {
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_AttributeError,
                            "packetpath: _remaining missing");
        return NULL;
    }
    has = PyDict_Contains(remaining, task);
    if (has < 0)
        return NULL;
    if (has && PyDict_DelItem(remaining, task) < 0)
        return NULL;
    if (pp_reschedule(cpu, ctx->sim) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
ppf_cpu_complete(PyObject *self, PyObject *task)
{
    return pp_complete_impl((PPCtx *)self, task);
}

static PyObject *
ppf_cpu_task(PyObject *self, PyObject *const *args, Py_ssize_t nargs,
             PyObject *kwnames)
{
    PPCtx *ctx = (PPCtx *)self;
    PyObject *task;
    if (ctx->a == NULL) {
        PyErr_SetString(PyExc_RuntimeError,
                        "packetpath: cpu.task original not captured");
        return NULL;
    }
    task = PyObject_Vectorcall(ctx->a, args, nargs, kwnames);
    if (task == NULL)
        return NULL;
    if (pp_bind_deliver(task, ctx->sim) < 0) {
        Py_DECREF(task);
        return NULL;
    }
    return task;
}

static PyMethodDef def_cpu_add_work = {
    "add_work", (PyCFunction)(void (*)(void))ppf_cpu_add_work,
    METH_FASTCALL, NULL};
static PyMethodDef def_cpu_requeue = {
    "requeue_behind", (PyCFunction)ppf_cpu_requeue, METH_O, NULL};
static PyMethodDef def_cpu_ipl_changed = {
    "on_task_ipl_changed", (PyCFunction)(void (*)(void))ppf_cpu_ipl_changed,
    METH_FASTCALL, NULL};
static PyMethodDef def_cpu_remove = {
    "remove_task", (PyCFunction)ppf_cpu_remove, METH_O, NULL};
static PyMethodDef def_cpu_complete = {
    "_complete", (PyCFunction)ppf_cpu_complete, METH_O, NULL};
static PyMethodDef def_cpu_task = {
    "task", (PyCFunction)(void (*)(void))ppf_cpu_task,
    METH_FASTCALL | METH_KEYWORDS, NULL};

/* ---- Packet pipeline: shared helpers -------------------------------- */

/* gd() variant that raises AttributeError when the key is absent. */
static PyObject *  /* borrowed */
gdr(PyObject *obj, int key)
{
    PyObject *v = gd(obj, key);
    if (v == NULL && !PyErr_Occurred())
        PyErr_Format(PyExc_AttributeError, "packetpath: missing %U",
                     pp_keys[key]);
    return v;
}

static int
gdbl(PyObject *obj, int key, double *out)
{
    PyObject *v = gdr(obj, key);
    if (v == NULL)
        return -1;
    *out = PyFloat_AsDouble(v);
    if (*out == -1.0 && PyErr_Occurred())
        return -1;
    return 0;
}

static int
sdbl(PyObject *obj, int key, double value)
{
    PyObject *v = PyFloat_FromDouble(value);
    int rc;
    if (v == NULL)
        return -1;
    rc = sd(obj, key, v);
    Py_DECREF(v);
    return rc;
}

static int
slot_ll_read(PyObject *obj, Py_ssize_t offset, long long *out)
{
    PyObject *v = slot_get(obj, offset);
    if (v == NULL) {
        PyErr_SetString(PyExc_AttributeError, "packetpath: slot unset");
        return -1;
    }
    *out = PyLong_AsLongLong(v);
    if (*out == -1 && PyErr_Occurred())
        return -1;
    return 0;
}

static int
slot_ll_write(PyObject *obj, Py_ssize_t offset, long long value)
{
    PyObject *v = PyLong_FromLongLong(value);
    if (v == NULL)
        return -1;
    slot_set(obj, offset, v);
    return 0;
}

static inline int
pp_deque_push(PyObject *dq, PyObject *item)
{
    PyObject *stack[2];
    PyObject *r;
    stack[0] = dq;
    stack[1] = item;
    r = PyObject_Vectorcall(pps.deque_append, stack, 2, NULL);
    if (r == NULL)
        return -1;
    Py_DECREF(r);
    return 0;
}

static inline PyObject *  /* new ref */
pp_deque_pop_left(PyObject *dq)
{
    PyObject *stack[1];
    stack[0] = dq;
    return PyObject_Vectorcall(pps.deque_popleft, stack, 1, NULL);
}

/* item.mark_dropped(where) with the Python body's hasattr() semantics:
 * silently a no-op for foreign payloads without the method. */
static int
pp_mark_dropped(PyObject *item, PyObject *where)
{
    PyObject *m, *r;
    if (Py_TYPE(item) == (PyTypeObject *)pps.Packet) {
        Py_INCREF(where);
        slot_set(item, pps.off_pk[PK_dropped_at], where);
        return 0;
    }
    m = PyObject_GetAttr(item, pp_keys[PPK_mark_dropped]);
    if (m == NULL) {
        if (PyErr_ExceptionMatches(PyExc_AttributeError)) {
            PyErr_Clear();
            return 0;
        }
        return -1;
    }
    r = PyObject_CallOneArg(m, where);
    Py_DECREF(m);
    if (r == NULL)
        return -1;
    Py_DECREF(r);
    return 0;
}

/* Invoke every callback in a watcher list with the queue as argument. */
static int
pp_fire_list(PyObject *q, int listkey)
{
    PyObject *cbs = gdr(q, listkey);
    Py_ssize_t i;
    if (cbs == NULL)
        return -1;
    if (!PyList_Check(cbs)) {
        PyErr_SetString(PyExc_TypeError, "packetpath: watcher list");
        return -1;
    }
    Py_INCREF(cbs);
    for (i = 0; i < PyList_GET_SIZE(cbs); i++) {
        PyObject *cb = PyList_GET_ITEM(cbs, i);
        PyObject *r;
        Py_INCREF(cb);
        r = PyObject_CallOneArg(cb, q);
        Py_DECREF(cb);
        if (r == NULL) {
            Py_DECREF(cbs);
            return -1;
        }
        Py_DECREF(r);
    }
    Py_DECREF(cbs);
    return 0;
}

/* PacketQueue._fire_high_if_needed: level-triggered on every attempt. */
static int
pp_fire_high(PyObject *q)
{
    PyObject *hw = gdr(q, PPK_high_watermark);
    PyObject *items;
    long long hwv;
    Py_ssize_t sz;
    if (hw == NULL)
        return -1;
    if (hw == Py_None)
        return 0;
    hwv = PyLong_AsLongLong(hw);
    if (hwv == -1 && PyErr_Occurred())
        return -1;
    items = gdr(q, PPK__items);
    if (items == NULL)
        return -1;
    sz = PyObject_Size(items);
    if (sz < 0)
        return -1;
    if ((long long)sz < hwv)
        return 0;
    return pp_fire_list(q, PPK_on_high);
}

/* PacketQueue.enqueue body, trace known unarmed.
 * Returns 1 accepted, 0 dropped, -1 error. */
static int
pp_pq_enqueue_body(PyObject *q, PyObject *item)
{
    PyObject *items = gdr(q, PPK__items);
    PyObject *c;
    long long limit, v, md;
    Py_ssize_t sz;
    if (items == NULL)
        return -1;
    sz = PyObject_Size(items);
    if (sz < 0)
        return -1;
    if (gll(q, PPK_limit, &limit) < 0)
        return -1;
    if ((long long)sz >= limit) {
        PyObject *name;
        if (gll(q, PPK_drop_count, &v) < 0 ||
            sll(q, PPK_drop_count, v + 1) < 0)
            return -1;
        c = gdr(q, PPK__dropped);
        if (c == NULL || counter_inc(c, 1) < 0)
            return -1;
        name = gdr(q, PPK_name);
        if (name == NULL || pp_mark_dropped(item, name) < 0)
            return -1;
        if (pp_fire_high(q) < 0)
            return -1;
        return 0;
    }
    if (pp_deque_push(items, item) < 0)
        return -1;
    if (gll(q, PPK_enqueue_count, &v) < 0 ||
        sll(q, PPK_enqueue_count, v + 1) < 0)
        return -1;
    c = gdr(q, PPK__enqueued);
    if (c == NULL || counter_inc(c, 1) < 0)
        return -1;
    if (gll(q, PPK_max_depth, &md) < 0)
        return -1;
    if ((long long)sz + 1 > md && sll(q, PPK_max_depth, sz + 1) < 0)
        return -1;
    if (pp_fire_high(q) < 0)
        return -1;
    return 1;
}

/* PacketQueue.dequeue body, trace known unarmed. New ref or NULL. */
static PyObject *
pp_pq_dequeue_body(PyObject *q)
{
    PyObject *items = gdr(q, PPK__items);
    PyObject *item, *c, *lw;
    long long v;
    Py_ssize_t sz;
    if (items == NULL)
        return NULL;
    sz = PyObject_Size(items);
    if (sz < 0)
        return NULL;
    if (sz == 0)
        Py_RETURN_NONE;
    item = pp_deque_pop_left(items);
    if (item == NULL)
        return NULL;
    if (gll(q, PPK_dequeue_count, &v) < 0 ||
        sll(q, PPK_dequeue_count, v + 1) < 0)
        goto fail;
    c = gdr(q, PPK__dequeued);
    if (c == NULL || counter_inc(c, 1) < 0)
        goto fail;
    lw = gdr(q, PPK_low_watermark);
    if (lw == NULL)
        goto fail;
    if (lw != Py_None) {
        long long lwv = PyLong_AsLongLong(lw);
        if (lwv == -1 && PyErr_Occurred())
            goto fail;
        if ((long long)sz - 1 == lwv && pp_fire_list(q, PPK_on_low) < 0)
            goto fail;
    }
    return item;
fail:
    Py_DECREF(item);
    return NULL;
}

/* Cached bound rng.random() on ctx->c; owner's rng under rng_key. */
static int
pp_rng_random(PPCtx *ctx, int rng_key, double *out)
{
    PyObject *res;
    if (ctx->c == NULL) {
        PyObject *rng = gdr(ctx->owner, rng_key);
        if (rng == NULL)
            return -1;
        ctx->c = PyObject_GetAttr(rng, pp_keys[PPK_random]);
        if (ctx->c == NULL)
            return -1;
    }
    res = PyObject_CallNoArgs(ctx->c);
    if (res == NULL)
        return -1;
    *out = PyFloat_AsDouble(res);
    Py_DECREF(res);
    if (*out == -1.0 && PyErr_Occurred())
        return -1;
    return 0;
}

/* PacketPool.release(packet) body (exact Packet only). */
static int
pp_pool_release(PyObject *pool, PyObject *packet)
{
    PyObject *enabled = slot_get(pool, pps.off_pool_enabled);
    PyObject *pooled, *freelist;
    long long released, max_free;
    int t;
    if (enabled == NULL) {
        PyErr_SetString(PyExc_AttributeError, "pool enabled unset");
        return -1;
    }
    t = PyObject_IsTrue(enabled);
    if (t < 0)
        return -1;
    if (!t)
        return 0;
    pooled = slot_get(packet, pps.off_pk[PK__pooled]);
    if (pooled != NULL) {
        t = PyObject_IsTrue(pooled);
        if (t < 0)
            return -1;
        if (t) {
            PyErr_Format(PyExc_ValueError,
                         "packet %R released to the pool twice", packet);
            return -1;
        }
    }
    if (slot_ll_read(pool, pps.off_pool_released, &released) < 0)
        return -1;
    if (slot_ll_write(pool, pps.off_pool_released, released + 1) < 0)
        return -1;
    freelist = slot_get(pool, pps.off_pool_free);
    if (freelist == NULL || !PyList_Check(freelist)) {
        PyErr_SetString(PyExc_AttributeError, "pool freelist unset");
        return -1;
    }
    if (slot_ll_read(pool, pps.off_pool_max_free, &max_free) < 0)
        return -1;
    if ((long long)PyList_GET_SIZE(freelist) < max_free) {
        Py_INCREF(Py_True);
        slot_set(packet, pps.off_pk[PK__pooled], Py_True);
        if (PyList_Append(freelist, packet) < 0)
            return -1;
    }
    return 0;
}

/* ---- Packet pipeline: NIC (hw/nic.py) ------------------------------- */

/* NIC._kick_transmitter, scheduling through the compiled core. */
static int
pp_nic_kick(PPCtx *ctx, PyObject *nic)
{
    PyObject *busy = gdr(nic, PPK__tx_busy);
    PyObject *ring, *faults, *cb, *pkt, *name, *label, *cb_args, *ev;
    long long done, delay;
    Py_ssize_t sz;
    int t;
    if (busy == NULL)
        return -1;
    t = PyObject_IsTrue(busy);
    if (t < 0)
        return -1;
    if (t)
        return 0;
    ring = gdr(nic, PPK__tx_ring);
    if (ring == NULL)
        return -1;
    sz = PyObject_Size(ring);
    if (sz < 0)
        return -1;
    if (gll(nic, PPK__tx_done, &done) < 0)
        return -1;
    if (done >= (long long)sz)
        return 0;
    if (sd(nic, PPK__tx_busy, Py_True) < 0)
        return -1;
    if (gll(nic, PPK_tx_packet_time_ns, &delay) < 0)
        return -1;
    faults = gdr(nic, PPK_faults);
    if (faults == NULL)
        return -1;
    if (faults != Py_None) {
        PyObject *extra = PyObject_CallMethod(faults, "tx_extra_delay", "O",
                                              nic);
        long long ex;
        if (extra == NULL)
            return -1;
        ex = PyLong_AsLongLong(extra);
        Py_DECREF(extra);
        if (ex == -1 && PyErr_Occurred())
            return -1;
        delay += ex;
    }
    cb = PyObject_GetAttr(nic, pp_keys[PPK__transmit_complete]);
    if (cb == NULL)
        return -1;
    pkt = PySequence_GetItem(ring, (Py_ssize_t)done);
    if (pkt == NULL) {
        Py_DECREF(cb);
        return -1;
    }
    name = gdr(nic, PPK_name);
    if (name == NULL) {
        Py_DECREF(cb);
        Py_DECREF(pkt);
        return -1;
    }
    label = PyUnicode_FromFormat("tx:%U", name);
    cb_args = label ? PyTuple_Pack(1, pkt) : NULL;
    Py_DECREF(pkt);
    if (cb_args == NULL) {
        Py_DECREF(cb);
        Py_XDECREF(label);
        return -1;
    }
    ev = schedule_common(ctx->sim, delay, cb, cb_args, label);
    Py_DECREF(cb);
    Py_DECREF(label);
    if (ev == NULL)
        return -1;
    Py_DECREF(ev);
    return 0;
}

static PyObject *
ppf_nic_receive(PyObject *self, PyObject *packet)
{
    PPCtx *ctx = (PPCtx *)self;
    PyObject *nic = ctx->owner;
    PyObject *faults = gdr(nic, PPK_faults);
    PyObject *trace, *ring, *line, *c, *arr;
    long long cap;
    Py_ssize_t sz;
    if (faults == NULL)
        return NULL;
    trace = gdr(nic, PPK_trace);
    if (trace == NULL)
        return NULL;
    if (faults != Py_None || trace != Py_None ||
        Py_TYPE(packet) != (PyTypeObject *)pps.Packet) {
        PyObject *stack[2];
        stack[0] = nic;
        stack[1] = packet;
        return PyObject_Vectorcall(pps.nic_receive, stack, 2, NULL);
    }
    ring = gdr(nic, PPK__rx_ring);
    if (ring == NULL)
        return NULL;
    sz = PyObject_Size(ring);
    if (sz < 0)
        return NULL;
    if (gll(nic, PPK_rx_ring_capacity, &cap) < 0)
        return NULL;
    if ((long long)sz >= cap) {
        c = gdr(nic, PPK_rx_overflow_drops);
        if (c == NULL || counter_inc(c, 1) < 0)
            return NULL;
        Py_RETURN_FALSE;
    }
    arr = slot_get(packet, pps.off_pk[PK_nic_arrival_ns]);
    if (arr == Py_None) {
        PyObject *now = PyLong_FromLongLong(ctx->sim->now_ns);
        if (now == NULL)
            return NULL;
        slot_set(packet, pps.off_pk[PK_nic_arrival_ns], now);
    }
    if (pp_deque_push(ring, packet) < 0)
        return NULL;
    c = gdr(nic, PPK_rx_accepted);
    if (c == NULL || counter_inc(c, 1) < 0)
        return NULL;
    line = gdr(nic, PPK_rx_line);
    if (line == NULL)
        return NULL;
    if (line != Py_None) {
        PyObject *req = PyObject_GetAttr(line, pp_keys[PPK_request]);
        PyObject *r;
        if (req == NULL)
            return NULL;
        r = PyObject_CallNoArgs(req);
        Py_DECREF(req);
        if (r == NULL)
            return NULL;
        Py_DECREF(r);
    }
    Py_RETURN_TRUE;
}

static PyObject *
ppf_nic_rx_pull(PyObject *self, PyObject *noarg)
{
    PPCtx *ctx = (PPCtx *)self;
    PyObject *nic = ctx->owner;
    PyObject *ring = gdr(nic, PPK__rx_ring);
    PyObject *faults;
    Py_ssize_t sz;
    (void)noarg;
    if (ring == NULL)
        return NULL;
    sz = PyObject_Size(ring);
    if (sz < 0)
        return NULL;
    if (sz == 0)
        Py_RETURN_NONE;
    faults = gdr(nic, PPK_faults);
    if (faults == NULL)
        return NULL;
    if (faults != Py_None)
        return PyObject_CallOneArg(pps.nic_rx_pull, nic);
    return pp_deque_pop_left(ring);
}

static PyObject *
ppf_nic_rx_pull_many(PyObject *self, PyObject *const *args, Py_ssize_t nargs,
                     PyObject *kwnames)
{
    PPCtx *ctx = (PPCtx *)self;
    PyObject *nic = ctx->owner;
    PyObject *ring, *faults, *out;
    Py_ssize_t count, i;
    if ((kwnames != NULL && PyTuple_GET_SIZE(kwnames) > 0) || nargs > 1) {
        /* keyword call: rare, delegate verbatim */
        PyObject *buf[4];
        Py_ssize_t total = nargs + (kwnames ? PyTuple_GET_SIZE(kwnames) : 0);
        if (total > 3) {
            PyErr_SetString(PyExc_TypeError,
                            "rx_pull_many: too many arguments");
            return NULL;
        }
        buf[0] = nic;
        for (i = 0; i < total; i++)
            buf[1 + i] = args[i];
        return PyObject_Vectorcall(pps.nic_rx_pull_many, buf, nargs + 1,
                                   kwnames);
    }
    ring = gdr(nic, PPK__rx_ring);
    if (ring == NULL)
        return NULL;
    count = PyObject_Size(ring);
    if (count < 0)
        return NULL;
    if (count) {
        faults = gdr(nic, PPK_faults);
        if (faults == NULL)
            return NULL;
        if (faults != Py_None) {
            PyObject *buf[2];
            buf[0] = nic;
            for (i = 0; i < nargs; i++)
                buf[1 + i] = args[i];
            return PyObject_Vectorcall(pps.nic_rx_pull_many, buf, nargs + 1,
                                       NULL);
        }
    }
    if (nargs == 1 && args[0] != Py_None) {
        long long lim = PyLong_AsLongLong(args[0]);
        if (lim == -1 && PyErr_Occurred())
            return NULL;
        if (lim < (long long)count)
            count = (Py_ssize_t)lim;
    }
    out = PyList_New(count);
    if (out == NULL)
        return NULL;
    for (i = 0; i < count; i++) {
        PyObject *item = pp_deque_pop_left(ring);
        if (item == NULL) {
            Py_DECREF(out);
            return NULL;
        }
        PyList_SET_ITEM(out, i, item);
    }
    return out;
}

static PyObject *
ppf_nic_rx_pending(PyObject *self, PyObject *noarg)
{
    PPCtx *ctx = (PPCtx *)self;
    PyObject *nic = ctx->owner;
    PyObject *faults = gdr(nic, PPK_faults);
    PyObject *ring;
    Py_ssize_t sz;
    (void)noarg;
    if (faults == NULL)
        return NULL;
    if (faults != Py_None)
        return PyObject_CallOneArg(pps.nic_rx_pending, nic);
    ring = gdr(nic, PPK__rx_ring);
    if (ring == NULL)
        return NULL;
    sz = PyObject_Size(ring);
    if (sz < 0)
        return NULL;
    return PyLong_FromSsize_t(sz);
}

static PyObject *
ppf_nic_tx_free(PyObject *self, PyObject *noarg)
{
    PPCtx *ctx = (PPCtx *)self;
    PyObject *nic = ctx->owner;
    PyObject *ring = gdr(nic, PPK__tx_ring);
    long long cap;
    Py_ssize_t sz;
    (void)noarg;
    if (ring == NULL)
        return NULL;
    sz = PyObject_Size(ring);
    if (sz < 0)
        return NULL;
    if (gll(nic, PPK_tx_ring_capacity, &cap) < 0)
        return NULL;
    return PyLong_FromLongLong(cap - (long long)sz);
}

static PyObject *
ppf_nic_tx_done(PyObject *self, PyObject *noarg)
{
    PPCtx *ctx = (PPCtx *)self;
    PyObject *v = gdr(ctx->owner, PPK__tx_done);
    (void)noarg;
    if (v == NULL)
        return NULL;
    Py_INCREF(v);
    return v;
}

static PyObject *
ppf_nic_tx_enqueue(PyObject *self, PyObject *packet)
{
    PPCtx *ctx = (PPCtx *)self;
    PyObject *nic = ctx->owner;
    PyObject *ring = gdr(nic, PPK__tx_ring);
    PyObject *busy;
    long long cap;
    Py_ssize_t sz;
    int t;
    if (ring == NULL)
        return NULL;
    sz = PyObject_Size(ring);
    if (sz < 0)
        return NULL;
    if (gll(nic, PPK_tx_ring_capacity, &cap) < 0)
        return NULL;
    if ((long long)sz >= cap)
        Py_RETURN_FALSE;
    if (pp_deque_push(ring, packet) < 0)
        return NULL;
    busy = gdr(nic, PPK__tx_busy);
    if (busy == NULL)
        return NULL;
    t = PyObject_IsTrue(busy);
    if (t < 0)
        return NULL;
    if (!t && pp_nic_kick(ctx, nic) < 0)
        return NULL;
    Py_RETURN_TRUE;
}

static PyObject *
ppf_nic_tx_reclaim(PyObject *self, PyObject *noarg)
{
    PPCtx *ctx = (PPCtx *)self;
    PyObject *nic = ctx->owner;
    PyObject *trace = gdr(nic, PPK_trace);
    long long freed, i;
    (void)noarg;
    if (trace == NULL)
        return NULL;
    if (trace != Py_None)
        return PyObject_CallOneArg(pps.nic_tx_reclaim, nic);
    if (gll(nic, PPK__tx_done, &freed) < 0)
        return NULL;
    if (freed) {
        PyObject *ring = gdr(nic, PPK__tx_ring);
        if (ring == NULL)
            return NULL;
        for (i = 0; i < freed; i++) {
            PyObject *item = pp_deque_pop_left(ring);
            if (item == NULL)
                return NULL;
            Py_DECREF(item);
        }
        if (sll(nic, PPK__tx_done, 0) < 0)
            return NULL;
    }
    return PyLong_FromLongLong(freed);
}

static PyObject *
ppf_nic_txcomplete(PyObject *self, PyObject *packet)
{
    PPCtx *ctx = (PPCtx *)self;
    PyObject *nic = ctx->owner;
    PyObject *trace = gdr(nic, PPK_trace);
    PyObject *c, *hook, *line;
    long long done;
    if (trace == NULL)
        return NULL;
    if (trace != Py_None) {
        PyObject *stack[2];
        stack[0] = nic;
        stack[1] = packet;
        return PyObject_Vectorcall(pps.nic_txcomplete, stack, 2, NULL);
    }
    if (gll(nic, PPK__tx_done, &done) < 0 ||
        sll(nic, PPK__tx_done, done + 1) < 0)
        return NULL;
    if (sd(nic, PPK__tx_busy, Py_False) < 0)
        return NULL;
    c = gdr(nic, PPK_tx_completed);
    if (c == NULL || counter_inc(c, 1) < 0)
        return NULL;
    if (Py_TYPE(packet) == (PyTypeObject *)pps.Packet) {
        PyObject *now = PyLong_FromLongLong(ctx->sim->now_ns);
        if (now == NULL)
            return NULL;
        slot_set(packet, pps.off_pk[PK_transmitted_ns], now);
    }
    else {
        PyObject *m = PyObject_GetAttr(packet, pp_keys[PPK_mark_transmitted]);
        if (m == NULL) {
            if (!PyErr_ExceptionMatches(PyExc_AttributeError))
                return NULL;
            PyErr_Clear();
        }
        else {
            PyObject *now = PyLong_FromLongLong(ctx->sim->now_ns);
            PyObject *r = now ? PyObject_CallOneArg(m, now) : NULL;
            Py_DECREF(m);
            Py_XDECREF(now);
            if (r == NULL)
                return NULL;
            Py_DECREF(r);
        }
    }
    hook = gdr(nic, PPK_on_transmit);
    if (hook == NULL)
        return NULL;
    if (hook != Py_None) {
        PyObject *r;
        Py_INCREF(hook);
        r = PyObject_CallOneArg(hook, packet);
        Py_DECREF(hook);
        if (r == NULL)
            return NULL;
        Py_DECREF(r);
    }
    line = gdr(nic, PPK_tx_line);
    if (line == NULL)
        return NULL;
    if (line != Py_None) {
        PyObject *req = PyObject_GetAttr(line, pp_keys[PPK_request]);
        PyObject *r;
        if (req == NULL)
            return NULL;
        r = PyObject_CallNoArgs(req);
        Py_DECREF(req);
        if (r == NULL)
            return NULL;
        Py_DECREF(r);
    }
    if (pp_nic_kick(ctx, nic) < 0)
        return NULL;
    Py_RETURN_NONE;
}

/* ---- Packet pipeline: queues (kernel/queues.py) --------------------- */

static PyObject *
ppf_pq_enqueue(PyObject *self, PyObject *item)
{
    PPCtx *ctx = (PPCtx *)self;
    PyObject *q = ctx->owner;
    PyObject *trace = gdr(q, PPK_trace);
    int rc;
    if (trace == NULL)
        return NULL;
    if (trace != Py_None) {
        PyObject *stack[2];
        stack[0] = q;
        stack[1] = item;
        return PyObject_Vectorcall(pps.pq_enqueue, stack, 2, NULL);
    }
    rc = pp_pq_enqueue_body(q, item);
    if (rc < 0)
        return NULL;
    return PyBool_FromLong(rc);
}

static PyObject *
ppf_pq_dequeue(PyObject *self, PyObject *noarg)
{
    PPCtx *ctx = (PPCtx *)self;
    PyObject *q = ctx->owner;
    PyObject *trace = gdr(q, PPK_trace);
    (void)noarg;
    if (trace == NULL)
        return NULL;
    if (trace != Py_None)
        return PyObject_CallOneArg(pps.pq_dequeue, q);
    return pp_pq_dequeue_body(q);
}

static PyObject *
ppf_red_enqueue(PyObject *self, PyObject *item)
{
    PPCtx *ctx = (PPCtx *)self;
    PyObject *q = ctx->owner;
    PyObject *trace = gdr(q, PPK_trace);
    PyObject *items;
    double avg, w, navg, minth, maxth;
    long long since;
    Py_ssize_t sz;
    int drop = 0, rc;
    if (trace == NULL)
        return NULL;
    if (trace != Py_None) {
        PyObject *stack[2];
        stack[0] = q;
        stack[1] = item;
        return PyObject_Vectorcall(pps.red_enqueue, stack, 2, NULL);
    }
    items = gdr(q, PPK__items);
    if (items == NULL)
        return NULL;
    sz = PyObject_Size(items);
    if (sz < 0)
        return NULL;
    if (gdbl(q, PPK_average, &avg) < 0 || gdbl(q, PPK_weight, &w) < 0)
        return NULL;
    navg = (1.0 - w) * avg + w * (double)sz;
    if (sdbl(q, PPK_average, navg) < 0)
        return NULL;
    if (gdbl(q, PPK_min_threshold, &minth) < 0 ||
        gdbl(q, PPK_max_threshold, &maxth) < 0)
        return NULL;
    if (gll(q, PPK__since_last_drop, &since) < 0)
        return NULL;
    if (navg >= maxth)
        drop = 1;
    else if (navg >= minth) {
        double span = maxth - minth;
        double maxp, base, denom, prob, r;
        if (gdbl(q, PPK_max_probability, &maxp) < 0)
            return NULL;
        if (span == 0.0) {
            PyErr_SetString(PyExc_ZeroDivisionError,
                            "float division by zero");
            return NULL;
        }
        base = maxp * (navg - minth) / span;
        denom = 1.0 - (double)since * base;
        if (denom < 1e-9)
            denom = 1e-9;
        prob = base / denom;
        if (prob > 1.0)
            prob = 1.0;
        if (pp_rng_random(ctx, PPK__rng, &r) < 0)
            return NULL;
        drop = r < prob;
    }
    if (drop) {
        long long v;
        PyObject *c;
        if (gll(q, PPK_early_drops, &v) < 0 ||
            sll(q, PPK_early_drops, v + 1) < 0)
            return NULL;
        if (gll(q, PPK_drop_count, &v) < 0 ||
            sll(q, PPK_drop_count, v + 1) < 0)
            return NULL;
        if (sll(q, PPK__since_last_drop, 0) < 0)
            return NULL;
        c = gdr(q, PPK__dropped);
        if (c == NULL || counter_inc(c, 1) < 0)
            return NULL;
        if (ctx->b == NULL) {
            PyObject *name = gdr(q, PPK_name);
            if (name == NULL)
                return NULL;
            ctx->b = PyUnicode_FromFormat("%U.red", name);
            if (ctx->b == NULL)
                return NULL;
        }
        if (pp_mark_dropped(item, ctx->b) < 0)
            return NULL;
        if (pp_fire_high(q) < 0)
            return NULL;
        Py_RETURN_FALSE;
    }
    rc = pp_pq_enqueue_body(q, item);
    if (rc < 0)
        return NULL;
    if (rc == 1) {
        if (gll(q, PPK__since_last_drop, &since) < 0 ||
            sll(q, PPK__since_last_drop, since + 1) < 0)
            return NULL;
    }
    return PyBool_FromLong(rc);
}

/* ---- Packet pipeline: IP forwarding (net/ip.py) --------------------- */

static PyObject *
ppf_ip_dispatch(PyObject *self, PyObject *packet)
{
    PPCtx *ctx = (PPCtx *)self;
    PyObject *ip = ctx->owner;
    PyObject *dstobj, *la, *udp, *routing, *routes, *iface = NULL;
    PyObject *arp, *entries, *link, *outputs, *hook, *res, *c;
    long long dst, v;
    int contains;
    Py_ssize_t i, n;
    if (Py_TYPE(packet) != (PyTypeObject *)pps.Packet) {
        PyObject *stack[2];
        stack[0] = ip;
        stack[1] = packet;
        return PyObject_Vectorcall(pps.ip_dispatch, stack, 2, NULL);
    }
    dstobj = slot_get(packet, pps.off_pk[PK_dst]);
    if (dstobj == NULL) {
        PyErr_SetString(PyExc_AttributeError, "packet dst unset");
        return NULL;
    }
    la = gdr(ip, PPK_local_addresses);
    if (la == NULL)
        return NULL;
    udp = gdr(ip, PPK_udp);
    if (udp == NULL)
        return NULL;
    contains = PySequence_Contains(la, dstobj);
    if (contains < 0)
        return NULL;
    if (contains && udp != Py_None) {
        /* local UDP delivery: uncommon path, handled by Python */
        PyObject *stack[2];
        stack[0] = ip;
        stack[1] = packet;
        return PyObject_Vectorcall(pps.ip_dispatch, stack, 2, NULL);
    }
    dst = PyLong_AsLongLong(dstobj);
    if (dst == -1 && PyErr_Occurred()) {
        if (!PyErr_ExceptionMatches(PyExc_OverflowError))
            return NULL;
        PyErr_Clear();
        {
            PyObject *stack[2];
            stack[0] = ip;
            stack[1] = packet;
            return PyObject_Vectorcall(pps.ip_dispatch, stack, 2, NULL);
        }
    }
    routing = gdr(ip, PPK_routing);
    if (routing == NULL)
        return NULL;
    if (gll(routing, PPK_lookups, &v) < 0 ||
        sll(routing, PPK_lookups, v + 1) < 0)
        return NULL;
    routes = gdr(routing, PPK__routes);
    if (routes == NULL || !PyList_Check(routes)) {
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_TypeError, "packetpath: _routes list");
        return NULL;
    }
    n = PyList_GET_SIZE(routes);
    for (i = 0; i < n; i++) {
        PyObject *route = PyList_GET_ITEM(routes, i);
        PyObject *net = slot_get(route, pps.off_route_network);
        PyObject *plen = slot_get(route, pps.off_route_prefix);
        long long network, prefix_len;
        unsigned long long mask;
        if (net == NULL || plen == NULL) {
            PyErr_SetString(PyExc_AttributeError, "route slots unset");
            return NULL;
        }
        network = PyLong_AsLongLong(net);
        if (network == -1 && PyErr_Occurred())
            return NULL;
        prefix_len = PyLong_AsLongLong(plen);
        if (prefix_len == -1 && PyErr_Occurred())
            return NULL;
        mask = prefix_len == 0
                   ? 0ULL
                   : ((0xFFFFFFFFULL << (32 - prefix_len)) & 0xFFFFFFFFULL);
        if (((unsigned long long)dst & mask) == (unsigned long long)network) {
            iface = slot_get(route, pps.off_route_interface);
            if (iface == NULL) {
                PyErr_SetString(PyExc_AttributeError, "route iface unset");
                return NULL;
            }
            break;
        }
    }
    if (iface == NULL) {
        if (gll(routing, PPK_misses, &v) < 0 ||
            sll(routing, PPK_misses, v + 1) < 0)
            return NULL;
        c = gdr(ip, PPK_no_route_drops);
        if (c == NULL || counter_inc(c, 1) < 0)
            return NULL;
        Py_INCREF(pps.s_no_route);
        slot_set(packet, pps.off_pk[PK_dropped_at], pps.s_no_route);
        Py_RETURN_NONE;
    }
    arp = gdr(ip, PPK_arp);
    if (arp == NULL)
        return NULL;
    if (gll(arp, PPK_lookups, &v) < 0 || sll(arp, PPK_lookups, v + 1) < 0)
        return NULL;
    entries = gdr(arp, PPK__entries);
    if (entries == NULL || !PyDict_Check(entries)) {
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_TypeError, "packetpath: _entries dict");
        return NULL;
    }
    link = PyDict_GetItemWithError(entries, dstobj);
    if (link == NULL) {
        if (PyErr_Occurred())
            return NULL;
        if (gll(arp, PPK_failures, &v) < 0 ||
            sll(arp, PPK_failures, v + 1) < 0)
            return NULL;
        c = gdr(ip, PPK_arp_failure_drops);
        if (c == NULL || counter_inc(c, 1) < 0)
            return NULL;
        Py_INCREF(pps.s_arp_failure);
        slot_set(packet, pps.off_pk[PK_dropped_at], pps.s_arp_failure);
        Py_RETURN_NONE;
    }
    outputs = gdr(ip, PPK_outputs);
    if (outputs == NULL || !PyDict_Check(outputs)) {
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_TypeError, "packetpath: outputs dict");
        return NULL;
    }
    hook = PyDict_GetItemWithError(outputs, iface);
    if (hook == NULL) {
        if (PyErr_Occurred())
            return NULL;
        PyErr_Format(PyExc_RuntimeError,
                     "no output hook registered for %R", iface);
        return NULL;
    }
    c = gdr(ip, PPK_forwarded);
    if (c == NULL || counter_inc(c, 1) < 0)
        return NULL;
    Py_INCREF(hook);
    res = PyObject_CallOneArg(hook, packet);
    Py_DECREF(hook);
    if (res == NULL)
        return NULL;
    Py_DECREF(res);
    Py_RETURN_NONE;
}

/* ---- Packet pipeline: interrupt request (hw/interrupts.py) ---------- */

static PyObject *
ppf_line_request(PyObject *self, PyObject *noarg)
{
    PPCtx *ctx = (PPCtx *)self;
    PyObject *line = ctx->owner;
    PyObject *trace = gdr(line, PPK_trace);
    PyObject *faults, *enabled, *insvc, *controller, *cpu, *cur;
    long long rc, ipl, eff;
    int t;
    (void)noarg;
    if (trace == NULL)
        return NULL;
    faults = gdr(line, PPK_faults);
    if (faults == NULL)
        return NULL;
    if (trace != Py_None || faults != Py_None)
        return PyObject_CallOneArg(pps.line_request, line);
    if (gll(line, PPK_request_count, &rc) < 0 ||
        sll(line, PPK_request_count, rc + 1) < 0)
        return NULL;
    enabled = gdr(line, PPK_enabled);
    if (enabled == NULL)
        return NULL;
    t = PyObject_IsTrue(enabled);
    if (t < 0)
        return NULL;
    if (!t) {
        long long sup;
        if (gll(line, PPK_suppressed_while_disabled, &sup) < 0 ||
            sll(line, PPK_suppressed_while_disabled, sup + 1) < 0)
            return NULL;
        if (sd(line, PPK_requested, Py_True) < 0)
            return NULL;
        Py_RETURN_NONE;
    }
    if (sd(line, PPK_requested, Py_True) < 0)
        return NULL;
    insvc = gdr(line, PPK_in_service);
    if (insvc == NULL)
        return NULL;
    t = PyObject_IsTrue(insvc);
    if (t < 0)
        return NULL;
    if (t)
        Py_RETURN_NONE;
    controller = gdr(line, PPK_controller);
    if (controller == NULL)
        return NULL;
    cpu = gdr(controller, PPK_cpu);
    if (cpu == NULL)
        return NULL;
    cur = gdr(cpu, PPK__current);
    if (cur == NULL)
        return NULL;
    eff = 0;
    if (cur != Py_None && gll(cur, PPK__eff_ipl, &eff) < 0)
        return NULL;
    if (gll(line, PPK_ipl, &ipl) < 0)
        return NULL;
    if (ipl <= eff)
        Py_RETURN_NONE;  /* try_deliver would refuse without side effects */
    {
        PyObject *td = PyObject_GetAttr(controller, pp_keys[PPK_try_deliver]);
        PyObject *r;
        if (td == NULL)
            return NULL;
        r = PyObject_CallOneArg(td, line);
        Py_DECREF(td);
        if (r == NULL)
            return NULL;
        Py_DECREF(r);
    }
    Py_RETURN_NONE;
}

/* ---- Packet pipeline: driver outputs, softnet entry ----------------- */

static PyObject *
pp_driver_output(PPCtx *ctx, PyObject *packet, int mode)
{
    /* mode: 0 = tx_line kick (bsd/highipl), 1 = polling wake (polled),
     * 2 = plain enqueue (clocked). */
    PyObject *drv = ctx->owner;
    PyObject *q = gdr(drv, PPK_ifqueue);
    PyObject *enq, *res, *nic, *busy;
    long long done;
    int accepted, t;
    if (q == NULL)
        return NULL;
    enq = PyObject_GetAttr(q, pp_keys[PPK_enqueue]);
    if (enq == NULL)
        return NULL;
    res = PyObject_CallOneArg(enq, packet);
    Py_DECREF(enq);
    if (res == NULL)
        return NULL;
    accepted = PyObject_IsTrue(res);
    Py_DECREF(res);
    if (accepted < 0)
        return NULL;
    if (mode == 2 || !accepted)
        Py_RETURN_NONE;
    nic = gdr(drv, PPK_nic);
    if (nic == NULL)
        return NULL;
    busy = gdr(nic, PPK__tx_busy);
    if (busy == NULL)
        return NULL;
    t = PyObject_IsTrue(busy);
    if (t < 0)
        return NULL;
    if (t)
        Py_RETURN_NONE;
    if (gll(nic, PPK__tx_done, &done) < 0)
        return NULL;
    if (done != 0)
        Py_RETURN_NONE;
    if (mode == 0) {
        PyObject *line = gdr(drv, PPK_tx_line);
        PyObject *req, *r;
        if (line == NULL)
            return NULL;
        req = PyObject_GetAttr(line, pp_keys[PPK_request]);
        if (req == NULL)
            return NULL;
        r = PyObject_CallNoArgs(req);
        Py_DECREF(req);
        if (r == NULL)
            return NULL;
        Py_DECREF(r);
    }
    else {
        PyObject *pol, *wk, *r;
        if (sd(drv, PPK_tx_service_needed, Py_True) < 0)
            return NULL;
        pol = gdr(drv, PPK_polling);
        if (pol == NULL)
            return NULL;
        wk = PyObject_GetAttr(pol, pp_keys[PPK_wake]);
        if (wk == NULL)
            return NULL;
        r = PyObject_CallNoArgs(wk);
        Py_DECREF(wk);
        if (r == NULL)
            return NULL;
        Py_DECREF(r);
    }
    Py_RETURN_NONE;
}

static PyObject *
ppf_driver_output_irq(PyObject *self, PyObject *packet)
{
    return pp_driver_output((PPCtx *)self, packet, 0);
}

static PyObject *
ppf_driver_output_poll(PyObject *self, PyObject *packet)
{
    return pp_driver_output((PPCtx *)self, packet, 1);
}

static PyObject *
ppf_driver_output_plain(PyObject *self, PyObject *packet)
{
    return pp_driver_output((PPCtx *)self, packet, 2);
}

static PyObject *
ppf_ipinput_enqueue(PyObject *self, PyObject *packet)
{
    PPCtx *ctx = (PPCtx *)self;
    PyObject *ipi = ctx->owner;
    PyObject *q = gdr(ipi, PPK_ipintrq);
    PyObject *enq, *res;
    int accepted;
    if (q == NULL)
        return NULL;
    enq = PyObject_GetAttr(q, pp_keys[PPK_enqueue]);
    if (enq == NULL)
        return NULL;
    res = PyObject_CallOneArg(enq, packet);
    Py_DECREF(enq);
    if (res == NULL)
        return NULL;
    accepted = PyObject_IsTrue(res);
    if (accepted < 0)
        goto fail;
    if (accepted) {
        PyObject *sl = gdr(ipi, PPK__softnet_line);
        if (sl == NULL)
            goto fail;
        if (sl != Py_None) {
            PyObject *req = PyObject_GetAttr(sl, pp_keys[PPK_request]);
            PyObject *r;
            if (req == NULL)
                goto fail;
            r = PyObject_CallNoArgs(req);
            Py_DECREF(req);
            if (r == NULL)
                goto fail;
            Py_DECREF(r);
        }
        else {
            PyObject *ns = gdr(ipi, PPK__netisr_signal);
            if (ns == NULL)
                goto fail;
            if (ns != Py_None) {
                PyObject *f = PyObject_GetAttr(ns, pp_keys[PPK_fire]);
                PyObject *r;
                if (f == NULL)
                    goto fail;
                r = PyObject_CallNoArgs(f);
                Py_DECREF(f);
                if (r == NULL)
                    goto fail;
                Py_DECREF(r);
            }
        }
    }
    return res;
fail:
    Py_DECREF(res);
    return NULL;
}

/* ---- Packet pipeline: router delivery hooks (topology.py) ----------- */

static PyObject *
ppf_router_out_transmit(PyObject *self, PyObject *packet)
{
    PPCtx *ctx = (PPCtx *)self;
    PyObject *router = ctx->owner;
    PyObject *trace = gdr(router, PPK_trace);
    PyObject *c, *lat, *pool, *rec;
    int t;
    if (trace == NULL)
        return NULL;
    if (trace != Py_None || Py_TYPE(packet) != (PyTypeObject *)pps.Packet) {
        PyObject *stack[2];
        stack[0] = router;
        stack[1] = packet;
        return PyObject_Vectorcall(pps.router_out_transmit, stack, 2, NULL);
    }
    c = gdr(router, PPK_delivered);
    if (c == NULL || counter_inc(c, 1) < 0)
        return NULL;
    lat = gdr(router, PPK_latency);
    if (lat == NULL)
        return NULL;
    rec = gdr(lat, PPK__recording);
    if (rec == NULL)
        return NULL;
    t = PyObject_IsTrue(rec);
    if (t < 0)
        return NULL;
    if (t) {
        PyObject *samples = gdr(lat, PPK__samples_ns);
        long long cap;
        if (samples == NULL || !PyList_Check(samples)) {
            if (!PyErr_Occurred())
                PyErr_SetString(PyExc_TypeError, "packetpath: samples list");
            return NULL;
        }
        if (gll(lat, PPK_sample_cap, &cap) < 0)
            return NULL;
        if ((long long)PyList_GET_SIZE(samples) >= cap) {
            /* reservoir path draws from the recorder's RNG: delegate the
             * whole observation before touching any state */
            PyObject *stack[2];
            PyObject *r;
            stack[0] = lat;
            stack[1] = packet;
            r = PyObject_Vectorcall(pps.lat_observe, stack, 2, NULL);
            if (r == NULL)
                return NULL;
            Py_DECREF(r);
        }
        else {
            PyObject *arr = slot_get(packet, pps.off_pk[PK_nic_arrival_ns]);
            PyObject *tra = slot_get(packet, pps.off_pk[PK_transmitted_ns]);
            if (arr != NULL && tra != NULL && arr != Py_None &&
                tra != Py_None) {
                long long a, tt, obs;
                PyObject *lv;
                a = PyLong_AsLongLong(arr);
                if (a == -1 && PyErr_Occurred())
                    return NULL;
                tt = PyLong_AsLongLong(tra);
                if (tt == -1 && PyErr_Occurred())
                    return NULL;
                if (gll(lat, PPK__observed, &obs) < 0 ||
                    sll(lat, PPK__observed, obs + 1) < 0)
                    return NULL;
                lv = PyLong_FromLongLong(tt - a);
                if (lv == NULL)
                    return NULL;
                if (PyList_Append(samples, lv) < 0) {
                    Py_DECREF(lv);
                    return NULL;
                }
                Py_DECREF(lv);
            }
        }
    }
    pool = gdr(router, PPK_packet_pool);
    if (pool == NULL)
        return NULL;
    if (pp_pool_release(pool, packet) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
ppf_router_in_transmit(PyObject *self, PyObject *packet)
{
    PPCtx *ctx = (PPCtx *)self;
    PyObject *router = ctx->owner;
    PyObject *pool;
    if (Py_TYPE(packet) != (PyTypeObject *)pps.Packet) {
        PyObject *stack[2];
        stack[0] = router;
        stack[1] = packet;
        return PyObject_Vectorcall(pps.router_in_transmit, stack, 2, NULL);
    }
    pool = gdr(router, PPK_packet_pool);
    if (pool == NULL)
        return NULL;
    if (pp_pool_release(pool, packet) < 0)
        return NULL;
    Py_RETURN_NONE;
}

/* ---- Packet pipeline: traffic generators (workloads/generators.py) -- */

/* self._pending = self.sim.schedule(delay, self.<fnkey>, label=...) */
static int
pp_gen_schedule(PPCtx *ctx, PyObject *gen, long long delay, int fnkey)
{
    PyObject *dfn, *cb_args, *ev;
    int rc;
    if (ctx->b == NULL) {
        PyObject *name = gdr(gen, PPK_name);
        if (name == NULL)
            return -1;
        ctx->b = PyUnicode_FromFormat("sleep:%U", name);
        if (ctx->b == NULL)
            return -1;
    }
    dfn = PyObject_GetAttr(gen, pp_keys[fnkey]);
    if (dfn == NULL)
        return -1;
    cb_args = PyTuple_New(0);
    if (cb_args == NULL) {
        Py_DECREF(dfn);
        return -1;
    }
    ev = schedule_common(ctx->sim, delay, dfn, cb_args, ctx->b);
    Py_DECREF(dfn);
    if (ev == NULL)
        return -1;
    rc = sd(gen, PPK__pending, ev);
    Py_DECREF(ev);
    return rc;
}

/* TrafficGenerator._emit body: pool acquire + reset inlined, trace known
 * unarmed and pool known present. */
static int
pp_gen_emit(PPCtx *ctx, PyObject *gen)
{
    PyObject *pool = gdr(gen, PPK_pool);
    PyObject *freelist, *packet = NULL, *rfw, *res;
    long long sent;
    int t;
    if (pool == NULL)
        return -1;
    freelist = slot_get(pool, pps.off_pool_free);
    if (freelist == NULL || !PyList_Check(freelist)) {
        PyErr_SetString(PyExc_AttributeError, "pool freelist unset");
        return -1;
    }
    if (PyList_GET_SIZE(freelist) > 0) {
        Py_ssize_t nf = PyList_GET_SIZE(freelist);
        long long reused;
        PyObject *pid, *v;
        if (slot_ll_read(pool, pps.off_pool_reused, &reused) < 0 ||
            slot_ll_write(pool, pps.off_pool_reused, reused + 1) < 0)
            return -1;
        packet = PyList_GET_ITEM(freelist, nf - 1);
        Py_INCREF(packet);
        if (PyList_SetSlice(freelist, nf - 1, nf, NULL) < 0)
            goto fail;
        Py_INCREF(Py_False);
        slot_set(packet, pps.off_pk[PK__pooled], Py_False);
        /* Packet.reset(...) */
        pid = PyIter_Next(pps.packet_ids);
        if (pid == NULL) {
            if (!PyErr_Occurred())
                PyErr_SetString(PyExc_RuntimeError,
                                "packet id iterator exhausted");
            goto fail;
        }
        slot_set(packet, pps.off_pk[PK_packet_id], pid);
        v = gdr(gen, PPK_src);
        if (v == NULL)
            goto fail;
        Py_INCREF(v);
        slot_set(packet, pps.off_pk[PK_src], v);
        v = gdr(gen, PPK_dst);
        if (v == NULL)
            goto fail;
        Py_INCREF(v);
        slot_set(packet, pps.off_pk[PK_dst], v);
        v = PyLong_FromLong(0);
        if (v == NULL)
            goto fail;
        slot_set(packet, pps.off_pk[PK_src_port], v);
        v = gdr(gen, PPK_dst_port);
        if (v == NULL)
            goto fail;
        Py_INCREF(v);
        slot_set(packet, pps.off_pk[PK_dst_port], v);
        v = PyLong_FromLong(17);
        if (v == NULL)
            goto fail;
        slot_set(packet, pps.off_pk[PK_protocol], v);
        v = gdr(gen, PPK_payload_bytes);
        if (v == NULL)
            goto fail;
        Py_INCREF(v);
        slot_set(packet, pps.off_pk[PK_payload_bytes], v);
        v = PyLong_FromLongLong(ctx->sim->now_ns);
        if (v == NULL)
            goto fail;
        slot_set(packet, pps.off_pk[PK_created_ns], v);
        Py_INCREF(Py_None);
        slot_set(packet, pps.off_pk[PK_nic_arrival_ns], Py_None);
        Py_INCREF(Py_None);
        slot_set(packet, pps.off_pk[PK_transmitted_ns], Py_None);
        Py_INCREF(Py_None);
        slot_set(packet, pps.off_pk[PK_dropped_at], Py_None);
        Py_INCREF(Py_False);
        slot_set(packet, pps.off_pk[PK_corrupted], Py_False);
        v = gdr(gen, PPK_flow);
        if (v == NULL)
            goto fail;
        Py_INCREF(v);
        slot_set(packet, pps.off_pk[PK_flow], v);
    }
    else {
        long long allocated;
        PyObject *argv[8];
        PyObject *zero, *proto, *created;
        if (slot_ll_read(pool, pps.off_pool_allocated, &allocated) < 0 ||
            slot_ll_write(pool, pps.off_pool_allocated, allocated + 1) < 0)
            return -1;
        argv[0] = gdr(gen, PPK_src);
        argv[1] = gdr(gen, PPK_dst);
        argv[3] = gdr(gen, PPK_dst_port);
        argv[5] = gdr(gen, PPK_payload_bytes);
        argv[7] = gdr(gen, PPK_flow);
        if (argv[0] == NULL || argv[1] == NULL || argv[3] == NULL ||
            argv[5] == NULL || argv[7] == NULL)
            return -1;
        zero = PyLong_FromLong(0);
        proto = PyLong_FromLong(17);
        created = PyLong_FromLongLong(ctx->sim->now_ns);
        if (zero == NULL || proto == NULL || created == NULL) {
            Py_XDECREF(zero);
            Py_XDECREF(proto);
            Py_XDECREF(created);
            return -1;
        }
        argv[2] = zero;
        argv[4] = proto;
        argv[6] = created;
        packet = PyObject_Vectorcall(pps.Packet, argv, 8, NULL);
        Py_DECREF(zero);
        Py_DECREF(proto);
        Py_DECREF(created);
        if (packet == NULL)
            return -1;
    }
    rfw = gdr(gen, PPK__receive_from_wire);
    if (rfw == NULL)
        goto fail;
    Py_INCREF(rfw);
    res = PyObject_CallOneArg(rfw, packet);
    Py_DECREF(rfw);
    if (res == NULL)
        goto fail;
    t = PyObject_IsTrue(res);
    Py_DECREF(res);
    if (t < 0)
        goto fail;
    if (!t && pp_pool_release(pool, packet) < 0)
        goto fail;
    Py_DECREF(packet);
    if (gll(gen, PPK_sent, &sent) < 0 || sll(gen, PPK_sent, sent + 1) < 0)
        return -1;
    return 0;
fail:
    Py_XDECREF(packet);
    return -1;
}

/* _tick bodies; kind: 0 constant-rate, 1 poisson, 2 bursty. The RNG
 * expressions replicate CPython's random.uniform / expovariate term
 * order exactly, so every draw is bit-identical to the pure path. */
static PyObject *
pp_gen_tick(PPCtx *ctx, int kind)
{
    PyObject *gen = ctx->owner;
    PyObject *trace = gdr(gen, PPK_trace);
    PyObject *pool;
    long long gap, minns;
    if (trace == NULL)
        return NULL;
    pool = gdr(gen, PPK_pool);
    if (pool == NULL)
        return NULL;
    if (trace != Py_None || pool == Py_None)
        return PyObject_CallOneArg(pps.gen_ticks[kind], gen);
    if (pp_gen_emit(ctx, gen) < 0)
        return NULL;
    if (kind == 2) {
        long long bp, bs;
        PyObject *rng;
        if (gll(gen, PPK__burst_position, &bp) < 0 ||
            gll(gen, PPK_burst_size, &bs) < 0)
            return NULL;
        bp += 1;
        if (bp < bs) {
            if (sll(gen, PPK__burst_position, bp) < 0)
                return NULL;
            if (gll(gen, PPK_min_interval_ns, &minns) < 0)
                return NULL;
            if (pp_gen_schedule(ctx, gen, minns, PPK__tick) < 0)
                return NULL;
            Py_RETURN_NONE;
        }
        if (sll(gen, PPK__burst_position, 0) < 0)
            return NULL;
        if (gll(gen, PPK_gap_ns, &gap) < 0)
            return NULL;
        rng = gdr(gen, PPK_rng);
        if (rng == NULL)
            return NULL;
        if (rng != Py_None && gap > 0) {
            double r, u;
            if (pp_rng_random(ctx, PPK_rng, &r) < 0)
                return NULL;
            u = 0.5 + (1.5 - 0.5) * r;  /* uniform(0.5, 1.5) */
            gap = (long long)((double)gap * u);
        }
        if (gap > 0) {
            if (pp_gen_schedule(ctx, gen, gap, PPK__gap_over) < 0)
                return NULL;
        }
        else {
            if (gll(gen, PPK_min_interval_ns, &minns) < 0)
                return NULL;
            if (pp_gen_schedule(ctx, gen, minns, PPK__tick) < 0)
                return NULL;
        }
        Py_RETURN_NONE;
    }
    if (kind == 0) {
        double jf;
        if (gll(gen, PPK_interval_ns, &gap) < 0)
            return NULL;
        if (gdbl(gen, PPK_jitter_fraction, &jf) < 0)
            return NULL;
        if (jf > 0.0) {
            double r, a, b, u;
            if (pp_rng_random(ctx, PPK_rng, &r) < 0)
                return NULL;
            a = 1.0 - jf;
            b = 1.0 + jf;
            u = a + (b - a) * r;  /* uniform(1-jf, 1+jf) */
            gap = (long long)((double)gap * u);
            if (gll(gen, PPK_min_interval_ns, &minns) < 0)
                return NULL;
            if (gap < minns)
                gap = minns;
        }
    }
    else {
        double r, e, mean;
        if (pp_rng_random(ctx, PPK_rng, &r) < 0)
            return NULL;
        e = -log(1.0 - r);  /* expovariate(1.0) */
        if (gdbl(gen, PPK_mean_interval_ns, &mean) < 0)
            return NULL;
        gap = (long long)(e * mean);
        if (gll(gen, PPK_min_interval_ns, &minns) < 0)
            return NULL;
        if (gap < minns)
            gap = minns;
    }
    if (pp_gen_schedule(ctx, gen, gap, PPK__tick) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
ppf_gen_tick_constant(PyObject *self, PyObject *noarg)
{
    (void)noarg;
    return pp_gen_tick((PPCtx *)self, 0);
}

static PyObject *
ppf_gen_tick_poisson(PyObject *self, PyObject *noarg)
{
    (void)noarg;
    return pp_gen_tick((PPCtx *)self, 1);
}

static PyObject *
ppf_gen_tick_bursty(PyObject *self, PyObject *noarg)
{
    (void)noarg;
    return pp_gen_tick((PPCtx *)self, 2);
}

static PyObject *
ppf_gen_gap_over(PyObject *self, PyObject *noarg)
{
    PPCtx *ctx = (PPCtx *)self;
    PyObject *gen = ctx->owner;
    PyObject *trace = gdr(gen, PPK_trace);
    long long minns;
    (void)noarg;
    if (trace == NULL)
        return NULL;
    if (trace != Py_None)
        return PyObject_CallOneArg(pps.gen_gap_over, gen);
    if (gll(gen, PPK_min_interval_ns, &minns) < 0)
        return NULL;
    if (pp_gen_schedule(ctx, gen, minns, PPK__tick) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyMethodDef def_nic_receive = {
    "receive_from_wire", (PyCFunction)ppf_nic_receive, METH_O, NULL};
static PyMethodDef def_nic_rx_pull = {
    "rx_pull", (PyCFunction)ppf_nic_rx_pull, METH_NOARGS, NULL};
static PyMethodDef def_nic_rx_pull_many = {
    "rx_pull_many", (PyCFunction)(void (*)(void))ppf_nic_rx_pull_many,
    METH_FASTCALL | METH_KEYWORDS, NULL};
static PyMethodDef def_nic_rx_pending = {
    "rx_pending", (PyCFunction)ppf_nic_rx_pending, METH_NOARGS, NULL};
static PyMethodDef def_nic_tx_free = {
    "tx_free_slots", (PyCFunction)ppf_nic_tx_free, METH_NOARGS, NULL};
static PyMethodDef def_nic_tx_done = {
    "tx_done_slots", (PyCFunction)ppf_nic_tx_done, METH_NOARGS, NULL};
static PyMethodDef def_nic_tx_enqueue = {
    "tx_enqueue", (PyCFunction)ppf_nic_tx_enqueue, METH_O, NULL};
static PyMethodDef def_nic_tx_reclaim = {
    "tx_reclaim", (PyCFunction)ppf_nic_tx_reclaim, METH_NOARGS, NULL};
static PyMethodDef def_nic_txcomplete = {
    "_transmit_complete", (PyCFunction)ppf_nic_txcomplete, METH_O, NULL};
static PyMethodDef def_pq_enqueue = {
    "enqueue", (PyCFunction)ppf_pq_enqueue, METH_O, NULL};
static PyMethodDef def_pq_dequeue = {
    "dequeue", (PyCFunction)ppf_pq_dequeue, METH_NOARGS, NULL};
static PyMethodDef def_red_enqueue = {
    "enqueue", (PyCFunction)ppf_red_enqueue, METH_O, NULL};
static PyMethodDef def_ip_dispatch = {
    "_dispatch", (PyCFunction)ppf_ip_dispatch, METH_O, NULL};
static PyMethodDef def_line_request = {
    "request", (PyCFunction)ppf_line_request, METH_NOARGS, NULL};
static PyMethodDef def_ipinput_enqueue = {
    "enqueue", (PyCFunction)ppf_ipinput_enqueue, METH_O, NULL};
static PyMethodDef def_driver_output_irq = {
    "output", (PyCFunction)ppf_driver_output_irq, METH_O, NULL};
static PyMethodDef def_driver_output_poll = {
    "output", (PyCFunction)ppf_driver_output_poll, METH_O, NULL};
static PyMethodDef def_driver_output_plain = {
    "output", (PyCFunction)ppf_driver_output_plain, METH_O, NULL};
static PyMethodDef def_router_out = {
    "_on_output_transmit", (PyCFunction)ppf_router_out_transmit, METH_O,
    NULL};
static PyMethodDef def_router_in = {
    "_on_input_transmit", (PyCFunction)ppf_router_in_transmit, METH_O, NULL};
static PyMethodDef def_gen_tick_constant = {
    "_tick", (PyCFunction)ppf_gen_tick_constant, METH_NOARGS, NULL};
static PyMethodDef def_gen_tick_poisson = {
    "_tick", (PyCFunction)ppf_gen_tick_poisson, METH_NOARGS, NULL};
static PyMethodDef def_gen_tick_bursty = {
    "_tick", (PyCFunction)ppf_gen_tick_bursty, METH_NOARGS, NULL};
static PyMethodDef def_gen_gap_over = {
    "_gap_over", (PyCFunction)ppf_gen_gap_over, METH_NOARGS, NULL};

/* ---- Compiled IRQ dispatch (hw/interrupts.py + driver handlers) -----
 *
 * The pieces declared above (PPIrq proto, PPGen state machine) are
 * implemented here. A PPGen replays one driver handler generator —
 * including the InterruptController._handler_body dispatch prelude —
 * as a C state machine with the PyIter_Send calling convention, so
 * pp_deliver_impl drives it exactly like a Python generator. Costs are
 * captured at the same resume boundaries as the Python closures, every
 * NIC/queue/IP call goes through the live instance attribute (compiled
 * while installed, pure Python after uninstall), and rare branches
 * (taps, screend, corrupted frames, foreign payloads) pump the real
 * ``ip.input_packet`` generator via g->sub. */

/* Machine states. */
enum {
    GS_PRELUDE,       /* maybe yield line._dispatch_work */
    GS_START,         /* per-kind first-resume captures */
    GS_BSDRX_HEAD, GS_BSDRX_PROC,
    GS_BSDTX_HEAD, GS_BSDTX_AFTER,
    GS_TS_ENTER, GS_TS_RECLAIM, GS_TS_LOOP, GS_TS_BODY,  /* _tx_service */
    GS_HI_HEAD, GS_HI_BATCH_PULL, GS_HI_BATCH_LOOP, GS_HI_BATCH_PKT,
    GS_HI_BATCH_DONE, GS_HI_ONE_HEAD, GS_HI_ONE_PKT, GS_HI_ONE_DONE,
    GS_HI_POST, GS_HI_AFTER,
    GS_IP_ENTER, GS_IP_FORWARD,                  /* ip.input_packet */
    GS_POLLED_RESUME,
    GS_CLOCK_BODY, GS_CLOCK_CALLOUTS, GS_CLOCK_RUN, GS_CLOCK_ROTATE,
};

static PyObject *  /* new ref */
pp_meth0(PyObject *obj, int key)
{
    PyObject *m = PyObject_GetAttr(obj, pp_keys[key]);
    PyObject *r;
    if (m == NULL)
        return NULL;
    r = PyObject_CallNoArgs(m);
    Py_DECREF(m);
    return r;
}

static PyObject *  /* new ref */
pp_meth1(PyObject *obj, int key, PyObject *arg)
{
    PyObject *m = PyObject_GetAttr(obj, pp_keys[key]);
    PyObject *r;
    if (m == NULL)
        return NULL;
    r = PyObject_CallOneArg(m, arg);
    Py_DECREF(m);
    return r;
}

static int
pp_work_cycles(PyObject *work, long long *out)
{
    PyObject *cyc = slot_get(work, pps.off_work_cycles);
    if (cyc == NULL) {
        PyErr_SetString(PyExc_AttributeError,
                        "packetpath: Work cycles unset");
        return -1;
    }
    *out = PyLong_AsLongLong(cyc);
    if (*out == -1 && PyErr_Occurred())
        return -1;
    return 0;
}

/* nic.tx_free_slots() == tx_ring_capacity - len(_tx_ring), exact. */
static int
pp_tx_free(PyObject *nic, long long *out)
{
    PyObject *ring;
    long long cap;
    Py_ssize_t n;
    if (gll(nic, PPK_tx_ring_capacity, &cap) < 0)
        return -1;
    ring = gdr(nic, PPK__tx_ring);
    if (ring == NULL)
        return -1;
    n = PyObject_Length(ring);
    if (n < 0)
        return -1;
    *out = cap - (long long)n;
    return 0;
}

static int
pp_ifq_len(PyObject *drv, Py_ssize_t *out)
{
    PyObject *q = gdr(drv, PPK_ifqueue), *items;
    if (q == NULL)
        return -1;
    items = gdr(q, PPK__items);
    if (items == NULL)
        return -1;
    *out = PyObject_Length(items);
    return *out < 0 ? -1 : 0;
}

/* ---- PPGen: the handler state machine ------------------------------- */

static int
ppgen_traverse(PPGenObject *g, visitproc visit, void *arg)
{
    Py_VISIT(g->proto);
    Py_VISIT(g->sub);
    Py_VISIT(g->packet);
    Py_VISIT(g->batch);
    Py_VISIT(g->work);
    return 0;
}

static int
ppgen_clear(PPGenObject *g)
{
    Py_CLEAR(g->proto);
    Py_CLEAR(g->sub);
    Py_CLEAR(g->packet);
    Py_CLEAR(g->batch);
    Py_CLEAR(g->work);
    return 0;
}

static void
ppgen_dealloc(PPGenObject *g)
{
    PyObject_GC_UnTrack(g);
    ppgen_clear(g);
    PyObject_GC_Del(g);
}

/* Yield ``cycles`` of work: refresh the reusable Work command and hand
 * it out. Identity is unobservable — the Python handlers also yield
 * shared Work objects, and pp_deliver_impl only reads .cycles. */
static PySendResult
ppgen_yield(PPGenObject *g, long long cycles, int next_state, PyObject **pres)
{
    PyObject *cyc = PyLong_FromLongLong(cycles);
    if (cyc == NULL) {
        g->closed = 1;
        *pres = NULL;
        return PYGEN_ERROR;
    }
    slot_set(g->work, pps.off_work_cycles, cyc);
    g->state = next_state;
    Py_INCREF(g->work);
    *pres = g->work;
    return PYGEN_NEXT;
}

static PySendResult
ppgen_send(PPGenObject *g, PyObject *value, PyObject **pres)
{
    PPIrq *p = g->proto;
    PyObject *drv;
    if (g->closed) {
        /* Exhausted generator: Python's .send raises StopIteration,
         * which PyIter_Send maps to PYGEN_RETURN None. */
        Py_INCREF(Py_None);
        *pres = Py_None;
        return PYGEN_RETURN;
    }
    if (p == NULL) {
        PyErr_SetString(PyExc_SystemError, "packetpath: PPGen without proto");
        goto fail;
    }
    drv = p->owner;
    for (;;) {
        /* Active Python sub-generator (the yield-from escape). */
        if (g->sub != NULL) {
            PyObject *sc = NULL;
            PySendResult ssr = PyIter_Send(g->sub, value, &sc);
            if (ssr == PYGEN_NEXT) {
                *pres = sc;
                return PYGEN_NEXT;
            }
            Py_CLEAR(g->sub);
            if (ssr == PYGEN_ERROR)
                goto fail;
            Py_XDECREF(sc);
            value = Py_None;
            /* fall through to the stored continuation state */
        }
        switch (g->state) {

        case GS_PRELUDE: {
            /* InterruptController._handler_body dispatch prelude. */
            PyObject *dw = gdr(p->line, PPK__dispatch_work);
            long long c;
            if (dw == NULL)
                goto fail;
            if (dw == Py_None) {
                g->state = GS_START;
                break;
            }
            if (pp_work_cycles(dw, &c) < 0)
                goto fail;
            return ppgen_yield(g, c, GS_START, pres);
        }

        case GS_START:
            /* First resume of the handler body: the Python closures
             * capture their per-dispatch costs here. */
            switch (p->kind) {
            case PPIRQ_BSD_RX: {
                PyObject *costs = gdr(drv, PPK_costs);
                long long per, extra, post;
                if (costs == NULL ||
                    gll(costs, PPK_rx_device_per_packet, &per) < 0 ||
                    gll(drv, PPK_extra_rx_cycles, &extra) < 0 ||
                    gll(costs, PPK_softirq_post, &post) < 0)
                    goto fail;
                g->c1 = per + extra;
                g->c2 = post;
                g->state = GS_BSDRX_HEAD;
                break;
            }
            case PPIRQ_BSD_TX:
                g->state = GS_BSDTX_HEAD;
                break;
            case PPIRQ_HIGHIPL: {
                PyObject *kernel = gdr(drv, PPK_kernel);
                PyObject *config, *bp, *costs;
                int t;
                if (kernel == NULL)
                    goto fail;
                config = gdr(kernel, PPK_config);
                if (config == NULL)
                    goto fail;
                bp = gdr(config, PPK_rx_batch_pull);
                if (bp == NULL)
                    goto fail;
                t = PyObject_IsTrue(bp);
                if (t < 0)
                    goto fail;
                g->batch_pull = t;
                costs = gdr(drv, PPK_costs);
                if (costs == NULL ||
                    gll(costs, PPK_polled_rx_per_packet, &g->c1) < 0)
                    goto fail;
                g->state = GS_HI_HEAD;
                break;
            }
            case PPIRQ_POLLED_RX:
            case PPIRQ_POLLED_TX: {
                PyObject *costs = gdr(drv, PPK_costs);
                long long c;
                if (costs == NULL ||
                    gll(costs, PPK_polled_stub_handler, &c) < 0)
                    goto fail;
                return ppgen_yield(g, c, GS_POLLED_RESUME, pres);
            }
            case PPIRQ_CLOCK: {
                /* drv is the Kernel here. */
                PyObject *costs = gdr(drv, PPK_costs);
                if (costs == NULL ||
                    gll(costs, PPK_clock_tick, &g->c1) < 0 ||
                    gll(costs, PPK_callout_run, &g->c2) < 0)
                    goto fail;
                return ppgen_yield(g, g->c1, GS_CLOCK_BODY, pres);
            }
            default:
                PyErr_SetString(PyExc_SystemError,
                                "packetpath: unknown PPIrq kind");
                goto fail;
            }
            break;

        /* ---- BsdDriver._rx_handler -------------------------------- */

        case GS_BSDRX_HEAD: {
            PyObject *en, *packet;
            int t;
            en = gdr(p->line, PPK_enabled);
            if (en == NULL)
                goto fail;
            t = PyObject_IsTrue(en);
            if (t < 0)
                goto fail;
            if (!t)
                goto finish;          /* rate-limit feedback stop */
            if (sd(p->line, PPK_requested, Py_False) < 0)
                goto fail;            /* rx_line.acknowledge() */
            {
                PyObject *nic = gdr(drv, PPK_nic);
                if (nic == NULL)
                    goto fail;
                packet = pp_meth0(nic, PPK_rx_pull);
            }
            if (packet == NULL)
                goto fail;
            if (packet == Py_None) {
                Py_DECREF(packet);
                goto finish;
            }
            if (sd(drv, PPK_in_flight, packet) < 0) {
                Py_DECREF(packet);
                goto fail;
            }
            Py_XSETREF(g->packet, packet);
            return ppgen_yield(g, g->c1, GS_BSDRX_PROC, pres);
        }

        case GS_BSDRX_PROC: {
            PyObject *ctr, *ipin, *res;
            int accepted;
            ctr = gdr(drv, PPK_rx_packets_processed);
            if (ctr == NULL || counter_inc(ctr, 1) < 0)
                goto fail;
            ipin = gdr(drv, PPK_ip_input);
            if (ipin == NULL)
                goto fail;
            res = pp_meth1(ipin, PPK_enqueue, g->packet);
            if (res == NULL)
                goto fail;
            accepted = PyObject_IsTrue(res);
            Py_DECREF(res);
            if (accepted < 0)
                goto fail;
            if (sd(drv, PPK_in_flight, Py_None) < 0)
                goto fail;
            Py_CLEAR(g->packet);
            if (accepted)
                return ppgen_yield(g, g->c2, GS_BSDRX_HEAD, pres);
            g->state = GS_BSDRX_HEAD;
            break;
        }

        /* ---- BsdDriver._tx_handler -------------------------------- */

        case GS_BSDTX_HEAD:
            if (sd(p->line, PPK_requested, Py_False) < 0)
                goto fail;            /* tx_line.acknowledge() */
            g->tsq_none = 1;          /* _tx_service(quota=None) */
            g->tsq = 0;
            g->ts_ret = GS_BSDTX_AFTER;
            g->state = GS_TS_ENTER;
            break;

        case GS_BSDTX_AFTER: {
            PyObject *nic = gdr(drv, PPK_nic);
            long long done, freeslots;
            if (nic == NULL || gll(nic, PPK__tx_done, &done) < 0)
                goto fail;
            if (done == 0) {
                Py_ssize_t qlen;
                if (pp_ifq_len(drv, &qlen) < 0)
                    goto fail;
                if (qlen == 0)
                    goto finish;
                if (pp_tx_free(nic, &freeslots) < 0)
                    goto fail;
                if (freeslots == 0)
                    goto finish;
                if (g->moved == 0)
                    goto finish;
            }
            g->state = GS_BSDTX_HEAD;
            break;
        }

        /* ---- Driver._tx_service (shared by bsd-tx and high-IPL) --- */

        case GS_TS_ENTER: {
            PyObject *nic = gdr(drv, PPK_nic);
            long long done;
            if (nic == NULL || gll(nic, PPK__tx_done, &done) < 0)
                goto fail;
            if (done > 0) {
                PyObject *costs = gdr(drv, PPK_costs);
                long long per;
                if (costs == NULL ||
                    gll(costs, PPK_tx_reclaim_per_packet, &per) < 0)
                    goto fail;
                return ppgen_yield(g, per * done, GS_TS_RECLAIM, pres);
            }
            g->moved = 0;
            g->state = GS_TS_LOOP;
            break;
        }

        case GS_TS_RECLAIM: {
            PyObject *nic = gdr(drv, PPK_nic), *r;
            if (nic == NULL)
                goto fail;
            r = pp_meth0(nic, PPK_tx_reclaim);
            if (r == NULL)
                goto fail;
            Py_DECREF(r);
            g->moved = 0;
            g->state = GS_TS_LOOP;
            break;
        }

        case GS_TS_LOOP: {
            PyObject *nic, *tsw;
            long long freeslots, c;
            Py_ssize_t qlen;
            if (!(g->tsq_none || g->moved < g->tsq)) {
                g->state = g->ts_ret;
                break;
            }
            nic = gdr(drv, PPK_nic);
            if (nic == NULL || pp_tx_free(nic, &freeslots) < 0)
                goto fail;
            if (freeslots <= 0) {
                g->state = g->ts_ret;
                break;
            }
            if (pp_ifq_len(drv, &qlen) < 0)
                goto fail;
            if (qlen == 0) {
                g->state = g->ts_ret;
                break;
            }
            tsw = gdr(drv, PPK__tx_start_work);
            if (tsw == NULL || pp_work_cycles(tsw, &c) < 0)
                goto fail;
            return ppgen_yield(g, c, GS_TS_BODY, pres);
        }

        case GS_TS_BODY: {
            PyObject *q = gdr(drv, PPK_ifqueue), *nic, *packet, *r, *ctr;
            if (q == NULL)
                goto fail;
            packet = pp_meth0(q, PPK_dequeue);
            if (packet == NULL)
                goto fail;
            if (packet == Py_None) {
                Py_DECREF(packet);
                g->state = g->ts_ret;
                break;
            }
            nic = gdr(drv, PPK_nic);
            if (nic == NULL) {
                Py_DECREF(packet);
                goto fail;
            }
            r = pp_meth1(nic, PPK_tx_enqueue, packet);
            Py_DECREF(packet);
            if (r == NULL)
                goto fail;
            Py_DECREF(r);
            ctr = gdr(drv, PPK_tx_packets_started);
            if (ctr == NULL || counter_inc(ctr, 1) < 0)
                goto fail;
            g->moved += 1;
            g->state = GS_TS_LOOP;
            break;
        }

        /* ---- HighIplDriver._service_handler ----------------------- */

        case GS_HI_HEAD: {
            PyObject *rxl = gdr(drv, PPK_rx_line);
            PyObject *txl = gdr(drv, PPK_tx_line), *ctr;
            if (rxl == NULL || txl == NULL)
                goto fail;
            if (sd(rxl, PPK_requested, Py_False) < 0 ||
                sd(txl, PPK_requested, Py_False) < 0)
                goto fail;
            ctr = gdr(drv, PPK_service_rounds);
            if (ctr == NULL || counter_inc(ctr, 1) < 0)
                goto fail;
            g->handled = 0;
            g->state = g->batch_pull ? GS_HI_BATCH_PULL : GS_HI_ONE_HEAD;
            break;
        }

        case GS_HI_BATCH_PULL: {
            PyObject *nic = gdr(drv, PPK_nic), *quota, *batch;
            if (nic == NULL)
                goto fail;
            quota = gdr(drv, PPK_quota);
            if (quota == NULL)
                goto fail;
            batch = pp_meth1(nic, PPK_rx_pull_many, quota);
            if (batch == NULL)
                goto fail;
            if (!PyList_Check(batch)) {
                Py_DECREF(batch);
                PyErr_SetString(PyExc_TypeError,
                                "packetpath: rx_pull_many must return a list");
                goto fail;
            }
            if (PyList_Reverse(batch) < 0) {
                Py_DECREF(batch);
                goto fail;
            }
            if (sd(drv, PPK_in_flight, batch) < 0) {
                Py_DECREF(batch);
                goto fail;
            }
            Py_XSETREF(g->batch, batch);
            g->state = GS_HI_BATCH_LOOP;
            break;
        }

        case GS_HI_BATCH_LOOP: {
            Py_ssize_t n;
            PyObject *pkt;
            if (g->batch == NULL) {
                PyErr_SetString(PyExc_SystemError, "packetpath: batch lost");
                goto fail;
            }
            n = PyList_GET_SIZE(g->batch);
            if (n == 0) {
                if (sd(drv, PPK_in_flight, Py_None) < 0)
                    goto fail;
                Py_CLEAR(g->batch);
                g->state = GS_HI_POST;
                break;
            }
            pkt = PyList_GET_ITEM(g->batch, n - 1);
            Py_INCREF(pkt);
            Py_XSETREF(g->packet, pkt);
            return ppgen_yield(g, g->c1, GS_HI_BATCH_PKT, pres);
        }

        case GS_HI_BATCH_PKT: {
            PyObject *ctr = gdr(drv, PPK_rx_packets_processed);
            if (ctr == NULL || counter_inc(ctr, 1) < 0)
                goto fail;
            g->ip_cont = GS_HI_BATCH_DONE;
            g->state = GS_IP_ENTER;
            break;
        }

        case GS_HI_BATCH_DONE: {
            Py_ssize_t n;
            if (g->batch == NULL) {
                PyErr_SetString(PyExc_SystemError, "packetpath: batch lost");
                goto fail;
            }
            n = PyList_GET_SIZE(g->batch);
            if (n > 0 &&
                PyList_SetSlice(g->batch, n - 1, n, NULL) < 0)
                goto fail;            /* batch.pop() */
            g->handled += 1;
            Py_CLEAR(g->packet);
            g->state = GS_HI_BATCH_LOOP;
            break;
        }

        case GS_HI_ONE_HEAD: {
            PyObject *quota = gdr(drv, PPK_quota), *nic, *packet;
            if (quota == NULL)
                goto fail;
            if (quota != Py_None) {
                long long q = PyLong_AsLongLong(quota);
                if (q == -1 && PyErr_Occurred())
                    goto fail;
                if (g->handled >= q) {
                    g->state = GS_HI_POST;
                    break;
                }
            }
            nic = gdr(drv, PPK_nic);
            if (nic == NULL)
                goto fail;
            packet = pp_meth0(nic, PPK_rx_pull);
            if (packet == NULL)
                goto fail;
            if (packet == Py_None) {
                Py_DECREF(packet);
                g->state = GS_HI_POST;
                break;
            }
            if (sd(drv, PPK_in_flight, packet) < 0) {
                Py_DECREF(packet);
                goto fail;
            }
            Py_XSETREF(g->packet, packet);
            return ppgen_yield(g, g->c1, GS_HI_ONE_PKT, pres);
        }

        case GS_HI_ONE_PKT: {
            PyObject *ctr = gdr(drv, PPK_rx_packets_processed);
            if (ctr == NULL || counter_inc(ctr, 1) < 0)
                goto fail;
            g->ip_cont = GS_HI_ONE_DONE;
            g->state = GS_IP_ENTER;
            break;
        }

        case GS_HI_ONE_DONE:
            if (sd(drv, PPK_in_flight, Py_None) < 0)
                goto fail;
            Py_CLEAR(g->packet);
            g->handled += 1;
            g->state = GS_HI_ONE_HEAD;
            break;

        case GS_HI_POST: {
            PyObject *trace = gdr(drv, PPK_trace), *quota;
            if (trace == NULL)
                goto fail;
            if (trace != Py_None && g->handled > 0) {
                PyObject *nic = gdr(drv, PPK_nic), *pobj;
                long long pending;
                if (nic == NULL)
                    goto fail;
                pobj = pp_meth0(nic, PPK_rx_pending);
                if (pobj == NULL)
                    goto fail;
                pending = PyLong_AsLongLong(pobj);
                Py_DECREF(pobj);
                if (pending == -1 && PyErr_Occurred())
                    goto fail;
                if (pending > 0) {
                    PyObject *name = gdr(drv, PPK_name), *rec, *r;
                    if (name == NULL)
                        goto fail;
                    rec = PyObject_GetAttrString(trace, "record");
                    if (rec == NULL)
                        goto fail;
                    r = PyObject_CallFunction(rec, "OOLL",
                                              pps.quota_exhaust, name,
                                              g->handled, pending);
                    Py_DECREF(rec);
                    if (r == NULL)
                        goto fail;
                    Py_DECREF(r);
                }
            }
            quota = gdr(drv, PPK_quota);
            if (quota == NULL)
                goto fail;
            if (quota == Py_None) {
                g->tsq_none = 1;
                g->tsq = 0;
            }
            else {
                long long q = PyLong_AsLongLong(quota);
                if (q == -1 && PyErr_Occurred())
                    goto fail;
                g->tsq_none = 0;
                g->tsq = q;
            }
            g->ts_ret = GS_HI_AFTER;
            g->state = GS_TS_ENTER;
            break;
        }

        case GS_HI_AFTER:
            if (g->handled == 0 && g->moved == 0)
                goto finish;
            g->state = GS_HI_HEAD;
            break;

        /* ---- IPLayer.input_packet (common case inline) ------------ */

        case GS_IP_ENTER: {
            PyObject *ip = gdr(drv, PPK_ip), *taps, *screen, *corr;
            int corrupted = 1;
            if (ip == NULL)
                goto fail;
            taps = gdr(ip, PPK_taps);
            if (taps == NULL)
                goto fail;
            screen = gdr(ip, PPK_screen_path);
            if (screen == NULL)
                goto fail;
            if ((PyObject *)Py_TYPE(g->packet) == pps.Packet) {
                corr = slot_get(g->packet, pps.off_pk[PK_corrupted]);
                if (corr == NULL) {
                    PyErr_SetString(PyExc_AttributeError,
                                    "packetpath: corrupted unset");
                    goto fail;
                }
                corrupted = PyObject_IsTrue(corr);
                if (corrupted < 0)
                    goto fail;
            }
            if (!corrupted && PyList_Check(taps) &&
                PyList_GET_SIZE(taps) == 0 && screen == Py_None) {
                PyObject *fw = gdr(ip, PPK__forward_work);
                long long c;
                if (fw == NULL || pp_work_cycles(fw, &c) < 0)
                    goto fail;
                return ppgen_yield(g, c, GS_IP_FORWARD, pres);
            }
            /* Rare branch (corrupted frame, taps, screend, foreign
             * payload): pump the real Python generator. */
            {
                PyObject *m = PyObject_GetAttrString(ip, "input_packet");
                PyObject *subgen;
                if (m == NULL)
                    goto fail;
                subgen = PyObject_CallOneArg(m, g->packet);
                Py_DECREF(m);
                if (subgen == NULL)
                    goto fail;
                g->sub = subgen;
                g->state = g->ip_cont;
                value = Py_None;
                break;
            }
        }

        case GS_IP_FORWARD: {
            PyObject *ip = gdr(drv, PPK_ip), *r;
            if (ip == NULL)
                goto fail;
            r = pp_meth1(ip, PPK__dispatch, g->packet);
            if (r == NULL)
                goto fail;
            Py_DECREF(r);
            g->state = g->ip_cont;
            break;
        }

        /* ---- PolledDriver stubs ----------------------------------- */

        case GS_POLLED_RESUME: {
            PyObject *polling, *r;
            int flag = (p->kind == PPIRQ_POLLED_RX)
                           ? PPK_rx_service_needed
                           : PPK_tx_service_needed;
            if (sd(p->line, PPK_enabled, Py_False) < 0)
                goto fail;            /* line.disable() */
            if (sd(drv, flag, Py_True) < 0)
                goto fail;
            polling = gdr(drv, PPK_polling);
            if (polling == NULL)
                goto fail;
            r = pp_meth0(polling, PPK_wake);
            if (r == NULL)
                goto fail;
            Py_DECREF(r);
            goto finish;
        }

        /* ---- Kernel._clock_handler -------------------------------- */

        case GS_CLOCK_BODY: {
            /* drv is the Kernel. ticks += 1; run on_tick hooks; pop
             * the due callouts (self.ticks re-read per use, like the
             * Python body). */
            PyObject *hooks, *ct, *due, *tobj;
            long long t;
            Py_ssize_t i;
            if (gll(drv, PPK_ticks, &t) < 0 ||
                sll(drv, PPK_ticks, t + 1) < 0)
                goto fail;
            hooks = gdr(drv, PPK_on_tick);
            if (hooks == NULL)
                goto fail;
            if (!PyList_Check(hooks)) {
                PyErr_SetString(PyExc_TypeError,
                                "packetpath: on_tick must be a list");
                goto fail;
            }
            for (i = 0; i < PyList_GET_SIZE(hooks); i++) {
                PyObject *hook = PyList_GET_ITEM(hooks, i);
                PyObject *r;
                long long now_t;
                Py_INCREF(hook);
                if (gll(drv, PPK_ticks, &now_t) < 0) {
                    Py_DECREF(hook);
                    goto fail;
                }
                tobj = PyLong_FromLongLong(now_t);
                if (tobj == NULL) {
                    Py_DECREF(hook);
                    goto fail;
                }
                r = PyObject_CallOneArg(hook, tobj);
                Py_DECREF(tobj);
                Py_DECREF(hook);
                if (r == NULL)
                    goto fail;
                Py_DECREF(r);
            }
            ct = gdr(drv, PPK_callout_table);
            if (ct == NULL)
                goto fail;
            if (gll(drv, PPK_ticks, &t) < 0)
                goto fail;
            tobj = PyLong_FromLongLong(t);
            if (tobj == NULL)
                goto fail;
            due = pp_meth1(ct, PPK_due, tobj);
            Py_DECREF(tobj);
            if (due == NULL)
                goto fail;
            if (!PyList_Check(due)) {
                Py_DECREF(due);
                PyErr_SetString(PyExc_TypeError,
                                "packetpath: due() must return a list");
                goto fail;
            }
            Py_XSETREF(g->batch, due);
            g->handled = 0;          /* index into the due list */
            g->state = GS_CLOCK_CALLOUTS;
            break;
        }

        case GS_CLOCK_CALLOUTS:
            if (g->batch == NULL ||
                g->handled >= PyList_GET_SIZE(g->batch)) {
                Py_CLEAR(g->batch);
                g->state = GS_CLOCK_ROTATE;
                break;
            }
            return ppgen_yield(g, g->c2, GS_CLOCK_RUN, pres);

        case GS_CLOCK_RUN: {
            PyObject *callout, *fn, *r, *ct;
            long long ex;
            if (g->batch == NULL ||
                g->handled >= PyList_GET_SIZE(g->batch)) {
                PyErr_SetString(PyExc_SystemError,
                                "packetpath: callout batch lost");
                goto fail;
            }
            callout = PyList_GET_ITEM(g->batch, g->handled);
            Py_INCREF(callout);
            fn = PyObject_GetAttr(callout, pp_keys[PPK_func]);
            Py_DECREF(callout);
            if (fn == NULL)
                goto fail;
            r = PyObject_CallNoArgs(fn);
            Py_DECREF(fn);
            if (r == NULL)
                goto fail;
            Py_DECREF(r);
            ct = gdr(drv, PPK_callout_table);
            if (ct == NULL || gll(ct, PPK_executed, &ex) < 0 ||
                sll(ct, PPK_executed, ex + 1) < 0)
                goto fail;
            g->handled += 1;
            g->state = GS_CLOCK_CALLOUTS;
            break;
        }

        case GS_CLOCK_ROTATE: {
            /* Kernel._rotate_quantum, inlined. */
            PyObject *config, *interrupted, *st;
            long long t, q, pc;
            config = gdr(drv, PPK_config);
            if (config == NULL ||
                gll(config, PPK_quantum_ticks, &q) < 0 ||
                gll(drv, PPK_ticks, &t) < 0)
                goto fail;
            if (q == 0) {
                PyErr_SetString(PyExc_ZeroDivisionError,
                                "integer modulo by zero");
                goto fail;
            }
            if (t % q != 0)
                goto finish;
            interrupted = gdr(p->cpu, PPK__last_thread);
            if (interrupted == NULL)
                goto fail;
            if (interrupted == Py_None)
                goto finish;
            if (gll(interrupted, PPK_priority_class, &pc) < 0)
                goto fail;
            if (pc != 1)              /* CLASS_USER */
                goto finish;
            st = gdr(interrupted, PPK_state);
            if (st == NULL)
                goto fail;
            if (!pp_state_is(st, pps.st_alive))
                goto finish;
            {
                PyObject *r = pp_meth1(p->cpu, PPK_requeue_behind,
                                       interrupted);
                if (r == NULL)
                    goto fail;
                Py_DECREF(r);
            }
            goto finish;
        }

        default:
            PyErr_SetString(PyExc_SystemError,
                            "packetpath: corrupt PPGen state");
            goto fail;
        }
    }
finish:
    g->closed = 1;
    Py_INCREF(Py_None);
    *pres = Py_None;
    return PYGEN_RETURN;
fail:
    g->closed = 1;
    *pres = NULL;
    return PYGEN_ERROR;
}

/* Python-visible generator protocol (Process.kill -> _body.close(),
 * and any stray .send after teardown). */
static PyObject *
ppgen_py_send(PPGenObject *g, PyObject *value)
{
    PyObject *res = NULL;
    PySendResult sr = ppgen_send(g, value, &res);
    if (sr == PYGEN_NEXT)
        return res;
    if (sr == PYGEN_RETURN) {
        Py_XDECREF(res);
        PyErr_SetNone(PyExc_StopIteration);
    }
    return NULL;
}

static PyObject *
ppgen_py_close(PPGenObject *g, PyObject *noarg)
{
    (void)noarg;
    g->closed = 1;
    if (g->sub != NULL) {
        PyObject *sub = g->sub;
        PyObject *r;
        g->sub = NULL;
        r = PyObject_CallMethod(sub, "close", NULL);
        Py_DECREF(sub);
        if (r == NULL)
            return NULL;
        Py_DECREF(r);
    }
    Py_RETURN_NONE;
}

static PyMethodDef ppgen_methods[] = {
    {"send", (PyCFunction)ppgen_py_send, METH_O, NULL},
    {"close", (PyCFunction)ppgen_py_close, METH_NOARGS, NULL},
    {NULL, NULL, 0, NULL},
};

static PyTypeObject PPGen_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._fastcore._corec._PPGen",
    .tp_basicsize = sizeof(PPGenObject),
    .tp_dealloc = (destructor)ppgen_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_traverse = (traverseproc)ppgen_traverse,
    .tp_clear = (inquiry)ppgen_clear,
    .tp_methods = ppgen_methods,
};

static PyObject *
ppgen_new(PPIrq *proto)
{
    PPGenObject *g;
    PyObject *zero, *work;
    zero = PyLong_FromLong(0);
    if (zero == NULL)
        return NULL;
    work = PyObject_CallOneArg(pps.Work, zero);
    Py_DECREF(zero);
    if (work == NULL)
        return NULL;
    g = PyObject_GC_New(PPGenObject, &PPGen_Type);
    if (g == NULL) {
        Py_DECREF(work);
        return NULL;
    }
    Py_INCREF(proto);
    g->proto = proto;
    g->sub = NULL;
    g->packet = NULL;
    g->batch = NULL;
    g->work = work;
    g->c1 = g->c2 = 0;
    g->handled = g->moved = g->tsq = 0;
    g->state = GS_PRELUDE;
    g->ip_cont = GS_PRELUDE;
    g->ts_ret = GS_PRELUDE;
    g->tsq_none = 0;
    g->batch_pull = 0;
    g->captured = 0;
    g->closed = 0;
    PyObject_GC_Track(g);
    return (PyObject *)g;
}

/* ---- PPIrq proto ---------------------------------------------------- */

static int
ppirq_traverse(PPIrq *p, visitproc visit, void *arg)
{
    Py_VISIT(p->line);
    Py_VISIT(p->owner);
    Py_VISIT(p->cpu);
    Py_VISIT(p->sim);
    Py_VISIT(p->name);
    Py_VISIT(p->work_label);
    Py_VISIT(p->key);
    Py_VISIT(p->done_cb);
    return 0;
}

static int
ppirq_clear(PPIrq *p)
{
    Py_CLEAR(p->line);
    Py_CLEAR(p->owner);
    Py_CLEAR(p->cpu);
    Py_CLEAR(p->sim);
    Py_CLEAR(p->name);
    Py_CLEAR(p->work_label);
    Py_CLEAR(p->key);
    Py_CLEAR(p->done_cb);
    return 0;
}

static void
ppirq_dealloc(PPIrq *p)
{
    PyObject_GC_UnTrack(p);
    ppirq_clear(p);
    PyObject_GC_Del(p);
}

static PyTypeObject PPIrq_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._fastcore._corec._PPIrq",
    .tp_basicsize = sizeof(PPIrq),
    .tp_dealloc = (destructor)ppirq_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_traverse = (traverseproc)ppirq_traverse,
    .tp_clear = (inquiry)ppirq_clear,
};

/* ---- exit callback: InterruptController._handler_done --------------- */

static PyObject *
ppf_irq_done(PyObject *self, PyObject *proc)
{
    PPCtx *ctx = (PPCtx *)self;
    PyObject *line = ctx->owner;
    PyObject *trace, *controller, *cpu, *cur, *td, *oc, *r, *iplobj;
    long long eff = 0;
    (void)proc;
    trace = gdr(line, PPK_trace);
    if (trace == NULL)
        return NULL;
    controller = gdr(line, PPK_controller);
    if (controller == NULL)
        return NULL;
    if (trace != Py_None)
        /* Late-armed trace: the Python body records IRQ_RETURN. */
        return PyObject_CallFunctionObjArgs(pps.ctrl_handler_done,
                                            controller, line, NULL);
    if (sd(line, PPK_in_service, Py_False) < 0)
        return NULL;
    td = PyObject_GetAttr(controller, pp_keys[PPK_try_deliver]);
    if (td == NULL)
        return NULL;
    r = PyObject_CallOneArg(td, line);
    Py_DECREF(td);
    if (r == NULL)
        return NULL;
    Py_DECREF(r);
    /* _on_ipl_change(cpu.current_ipl) — read *after* try_deliver, which
     * may have started a task and changed the current IPL. */
    cpu = gdr(controller, PPK_cpu);
    if (cpu == NULL)
        return NULL;
    cur = gdr(cpu, PPK__current);
    if (cur == NULL)
        return NULL;
    if (cur != Py_None && gll(cur, PPK__eff_ipl, &eff) < 0)
        return NULL;
    oc = PyObject_GetAttr(controller, pp_keys[PPK__on_ipl_change]);
    if (oc == NULL)
        return NULL;
    iplobj = PyLong_FromLongLong(eff);
    if (iplobj == NULL) {
        Py_DECREF(oc);
        return NULL;
    }
    r = PyObject_CallOneArg(oc, iplobj);
    Py_DECREF(oc);
    Py_DECREF(iplobj);
    if (r == NULL)
        return NULL;
    Py_DECREF(r);
    Py_RETURN_NONE;
}

static PyMethodDef def_irq_done = {
    "_pp_irq_done", (PyCFunction)ppf_irq_done, METH_O, NULL};

/* ---- InterruptController.try_deliver -------------------------------- */

static PyObject *
ppf_ctrl_try_deliver(PyObject *self, PyObject *line)
{
    PPCtx *ctx = (PPCtx *)self;
    PyObject *controller = ctx->owner;
    PyObject *trace, *protoobj, *flag, *cur;
    PyObject *gen = NULL, *task = NULL, *cbs = NULL, *fn = NULL, *res;
    PPIrq *p;
    PPCtx *dctx;
    PyTypeObject *tt;
    long long eff = 0, dc;
    int t;
    trace = gdr(line, PPK_trace);
    if (trace == NULL)
        return NULL;
    protoobj = gd(line, PPK__pp_irq);
    if (protoobj == NULL && PyErr_Occurred())
        return NULL;
    if (trace != Py_None || protoobj == NULL ||
        Py_TYPE(protoobj) != &PPIrq_Type)
        /* Armed trace, or a line without a ported handler (softnet,
         * clock, custom): the Python method handles it, and any task
         * it creates still gets a compiled deliver via the wrapped
         * cpu.task. */
        return PyObject_CallFunctionObjArgs(pps.ctrl_try_deliver,
                                            controller, line, NULL);
    p = (PPIrq *)protoobj;
    flag = gdr(line, PPK_requested);
    if (flag == NULL)
        return NULL;
    t = PyObject_IsTrue(flag);
    if (t < 0)
        return NULL;
    if (t) {
        flag = gdr(line, PPK_enabled);
        if (flag == NULL)
            return NULL;
        t = PyObject_IsTrue(flag);
        if (t < 0)
            return NULL;
    }
    if (t) {
        flag = gdr(line, PPK_in_service);
        if (flag == NULL)
            return NULL;
        t = PyObject_IsTrue(flag);
        if (t < 0)
            return NULL;
        t = !t;
    }
    if (!t)
        Py_RETURN_FALSE;
    cur = gdr(p->cpu, PPK__current);
    if (cur == NULL)
        return NULL;
    if (cur != Py_None && gll(cur, PPK__eff_ipl, &eff) < 0)
        return NULL;
    if (p->ipl <= eff)
        Py_RETURN_FALSE;
    if (sd(line, PPK_requested, Py_False) < 0 ||
        sd(line, PPK_in_service, Py_True) < 0)
        return NULL;
    if (gll(line, PPK_dispatch_count, &dc) < 0 ||
        sll(line, PPK_dispatch_count, dc + 1) < 0)
        return NULL;
    /* line.trace is None here, so no IRQ_DISPATCH record. Build the
     * handler CpuTask: same attributes CpuTask.__init__ would set. */
    gen = ppgen_new(p);
    if (gen == NULL)
        return NULL;
    tt = (PyTypeObject *)pps.CpuTask;
    task = tt->tp_new(tt, pps.empty_tuple, NULL);
    if (task == NULL)
        goto err;
    cbs = PyList_New(1);
    if (cbs == NULL)
        goto err;
    Py_INCREF(p->done_cb);
    PyList_SET_ITEM(cbs, 0, p->done_cb);   /* task.on_exit(handler_done) */
    if (sd(task, PPK_sim, (PyObject *)p->sim) < 0 ||
        sd(task, PPK_name, p->name) < 0 ||
        sd(task, PPK_state, pps.st_new) < 0 ||
        sd(task, PPK__body, gen) < 0 ||
        sd(task, PPK__waiting_on, Py_None) < 0 ||
        sd(task, PPK__exit_callbacks, cbs) < 0 ||
        sd(task, PPK_exception, Py_None) < 0 ||
        sd(task, PPK_cpu, p->cpu) < 0 ||
        sll(task, PPK_base_ipl, p->ipl) < 0 ||
        sll(task, PPK_spl_level, 0) < 0 ||
        sll(task, PPK_priority_class, 1) < 0 ||      /* CLASS_USER */
        sll(task, PPK_cycles_used, 0) < 0 ||
        sll(task, PPK__ready_seq, 0) < 0 ||
        sll(task, PPK__eff_ipl, p->ipl) < 0 ||
        sd(task, PPK__key, p->key) < 0 ||
        sd(task, PPK__work_label, p->work_label) < 0)
        goto err;
    /* Bind the compiled deliver and start the task (NEW -> ALIVE
     * happens inside pp_deliver_impl, same as Process.start). */
    dctx = ppctx_new(task, p->sim);
    if (dctx == NULL)
        goto err;
    fn = PyCFunction_New(&def_task_deliver, (PyObject *)dctx);
    if (fn == NULL) {
        Py_DECREF(dctx);
        goto err;
    }
    if (sd(task, PPK_deliver, fn) < 0) {
        Py_DECREF(fn);
        Py_DECREF(dctx);
        goto err;
    }
    Py_DECREF(fn);
    res = pp_deliver_impl(dctx, Py_None);
    Py_DECREF(dctx);
    if (res == NULL)
        goto err;
    Py_DECREF(res);
    Py_DECREF(cbs);
    Py_DECREF(task);
    Py_DECREF(gen);
    Py_RETURN_TRUE;
err:
    Py_XDECREF(cbs);
    Py_XDECREF(task);
    Py_XDECREF(gen);
    return NULL;
}

static PyMethodDef def_ctrl_try_deliver = {
    "try_deliver", (PyCFunction)ppf_ctrl_try_deliver, METH_O, NULL};

/* ---- InterruptController._on_ipl_change ----------------------------- */

static PyObject *
ppf_ctrl_on_ipl_change(PyObject *self, PyObject *iplobj)
{
    PPCtx *ctx = (PPCtx *)self;
    PyObject *controller = ctx->owner;
    PyObject *lines, *td = NULL;
    long long ipl;
    Py_ssize_t i;
    ipl = PyLong_AsLongLong(iplobj);
    if (ipl == -1 && PyErr_Occurred())
        return NULL;
    lines = gdr(controller, PPK_lines);
    if (lines == NULL)
        return NULL;
    if (!PyList_Check(lines)) {
        PyErr_SetString(PyExc_TypeError, "packetpath: lines must be a list");
        return NULL;
    }
    Py_INCREF(lines);
    /* Re-check the size every iteration, mirroring the Python list
     * iterator (lines are only appended at setup, but stay exact). */
    for (i = 0; i < PyList_GET_SIZE(lines); i++) {
        PyObject *line = PyList_GET_ITEM(lines, i);
        PyObject *flag, *r;
        long long lipl;
        int t;
        Py_INCREF(line);
        if (gll(line, PPK_ipl, &lipl) < 0)
            goto err;
        if (lipl <= ipl) {
            Py_DECREF(line);
            continue;
        }
        flag = gdr(line, PPK_requested);
        if (flag == NULL)
            goto err;
        t = PyObject_IsTrue(flag);
        if (t < 0)
            goto err;
        if (t) {
            flag = gdr(line, PPK_enabled);
            if (flag == NULL)
                goto err;
            t = PyObject_IsTrue(flag);
            if (t < 0)
                goto err;
        }
        if (t) {
            flag = gdr(line, PPK_in_service);
            if (flag == NULL)
                goto err;
            t = PyObject_IsTrue(flag);
            if (t < 0)
                goto err;
            t = !t;
        }
        if (t) {
            if (td == NULL) {
                td = PyObject_GetAttr(controller, pp_keys[PPK_try_deliver]);
                if (td == NULL)
                    goto err;
            }
            r = PyObject_CallOneArg(td, line);
            if (r == NULL)
                goto err;
            Py_DECREF(r);
        }
        Py_DECREF(line);
        continue;
    err:
        Py_DECREF(line);
        Py_XDECREF(td);
        Py_DECREF(lines);
        return NULL;
    }
    Py_XDECREF(td);
    Py_DECREF(lines);
    Py_RETURN_NONE;
}

static PyMethodDef def_ctrl_on_ipl_change = {
    "_on_ipl_change", (PyCFunction)ppf_ctrl_on_ipl_change, METH_O, NULL};

/* ---- proto factory: _corec.pp_irq_proto(kind, line, owner, sim) ----- */

static PyObject *
corec_pp_irq_proto(PyObject *mod, PyObject *args)
{
    const char *kind;
    PyObject *line, *owner, *sim, *controller, *cpu, *lname;
    PPIrq *p;
    PPCtx *dctx;
    int k;
    long long ipl;
    (void)mod;
    if (!PyArg_ParseTuple(args, "sOOO:pp_irq_proto", &kind, &line, &owner,
                          &sim))
        return NULL;
    if (Py_TYPE(sim) != &FastCore_Type) {
        PyErr_SetString(PyExc_TypeError,
                        "pp_irq_proto requires a FastCore simulator");
        return NULL;
    }
    if (!pps.ready && pp_init_symbols() < 0)
        return NULL;
    if (strcmp(kind, "bsd_rx") == 0)
        k = PPIRQ_BSD_RX;
    else if (strcmp(kind, "bsd_tx") == 0)
        k = PPIRQ_BSD_TX;
    else if (strcmp(kind, "highipl") == 0)
        k = PPIRQ_HIGHIPL;
    else if (strcmp(kind, "polled_rx") == 0)
        k = PPIRQ_POLLED_RX;
    else if (strcmp(kind, "polled_tx") == 0)
        k = PPIRQ_POLLED_TX;
    else if (strcmp(kind, "clock") == 0)
        k = PPIRQ_CLOCK;
    else {
        PyErr_Format(PyExc_ValueError, "pp_irq_proto: unknown kind %s",
                     kind);
        return NULL;
    }
    controller = gdr(line, PPK_controller);
    if (controller == NULL)
        return NULL;
    cpu = gdr(controller, PPK_cpu);
    if (cpu == NULL)
        return NULL;
    if (gll(line, PPK_ipl, &ipl) < 0)
        return NULL;
    lname = gdr(line, PPK_name);
    if (lname == NULL)
        return NULL;
    p = PyObject_GC_New(PPIrq, &PPIrq_Type);
    if (p == NULL)
        return NULL;
    p->kind = k;
    p->ipl = ipl;
    Py_INCREF(line);
    p->line = line;
    Py_INCREF(owner);
    p->owner = owner;
    Py_INCREF(cpu);
    p->cpu = cpu;
    Py_INCREF(sim);
    p->sim = (FastCoreObject *)sim;
    p->name = NULL;
    p->work_label = NULL;
    p->key = NULL;
    p->done_cb = NULL;
    PyObject_GC_Track(p);
    p->name = PyUnicode_FromFormat("irq:%U", lname);
    p->work_label = PyUnicode_FromFormat("work:irq:%U", lname);
    p->key = Py_BuildValue("(LLL)", ipl, (long long)1, (long long)0);
    dctx = ppctx_new(line, (FastCoreObject *)sim);
    if (dctx != NULL) {
        p->done_cb = PyCFunction_New(&def_irq_done, (PyObject *)dctx);
        Py_DECREF(dctx);
    }
    if (p->name == NULL || p->work_label == NULL || p->key == NULL ||
        p->done_cb == NULL) {
        Py_DECREF(p);
        return NULL;
    }
    if (sd(line, PPK__pp_irq, (PyObject *)p) < 0) {
        Py_DECREF(p);
        return NULL;
    }
    Py_DECREF(p);
    Py_RETURN_NONE;
}

/* ---- pp_bind: the module-level binding factory ---------------------- */

typedef struct {
    const char *kind;
    PyMethodDef *def;
    const char *attr; /* instance attribute set on owner; NULL = return only */
} PPBindSpec;

static PPBindSpec pp_bind_specs[] = {
    {"cpu.add_work", &def_cpu_add_work, "add_work"},
    {"cpu.requeue_behind", &def_cpu_requeue, "requeue_behind"},
    {"cpu.on_task_ipl_changed", &def_cpu_ipl_changed, "on_task_ipl_changed"},
    {"cpu.remove_task", &def_cpu_remove, "remove_task"},
    {"cpu._complete", &def_cpu_complete, "_complete"},
    {"cpu.task", &def_cpu_task, "task"},
    {"task.deliver", &def_task_deliver, "deliver"},
    {"nic.receive_from_wire", &def_nic_receive, "receive_from_wire"},
    {"nic.rx_pull", &def_nic_rx_pull, "rx_pull"},
    {"nic.rx_pull_many", &def_nic_rx_pull_many, "rx_pull_many"},
    {"nic.rx_pending", &def_nic_rx_pending, "rx_pending"},
    {"nic.tx_free_slots", &def_nic_tx_free, "tx_free_slots"},
    {"nic.tx_done_slots", &def_nic_tx_done, "tx_done_slots"},
    {"nic.tx_enqueue", &def_nic_tx_enqueue, "tx_enqueue"},
    {"nic.tx_reclaim", &def_nic_tx_reclaim, "tx_reclaim"},
    {"nic._transmit_complete", &def_nic_txcomplete, "_transmit_complete"},
    {"queue.enqueue", &def_pq_enqueue, "enqueue"},
    {"queue.dequeue", &def_pq_dequeue, "dequeue"},
    {"queue.enqueue_red", &def_red_enqueue, "enqueue"},
    {"ip._dispatch", &def_ip_dispatch, "_dispatch"},
    {"line.request", &def_line_request, "request"},
    {"ctrl.try_deliver", &def_ctrl_try_deliver, "try_deliver"},
    {"ctrl._on_ipl_change", &def_ctrl_on_ipl_change, "_on_ipl_change"},
    {"ipinput.enqueue", &def_ipinput_enqueue, "enqueue"},
    {"driver.output_kick_irq", &def_driver_output_irq, "output"},
    {"driver.output_kick_poll", &def_driver_output_poll, "output"},
    {"driver.output_plain", &def_driver_output_plain, "output"},
    {"router._on_output_transmit", &def_router_out, NULL},
    {"router._on_input_transmit", &def_router_in, NULL},
    {"gen.tick_constant", &def_gen_tick_constant, "_tick"},
    {"gen.tick_poisson", &def_gen_tick_poisson, "_tick"},
    {"gen.tick_bursty", &def_gen_tick_bursty, "_tick"},
    {"gen.gap_over", &def_gen_gap_over, "_gap_over"},
    {NULL, NULL, NULL},
};

static PyObject *
corec_pp_bind(PyObject *mod, PyObject *args)
{
    const char *kind;
    PyObject *owner, *sim, *extras = NULL, *fn;
    PPBindSpec *spec;
    PPCtx *ctx;
    (void)mod;
    if (!PyArg_ParseTuple(args, "sOO|O:pp_bind", &kind, &owner, &sim,
                          &extras))
        return NULL;
    if (Py_TYPE(sim) != &FastCore_Type) {
        PyErr_SetString(PyExc_TypeError,
                        "pp_bind requires a FastCore simulator");
        return NULL;
    }
    if (!pps.ready && pp_init_symbols() < 0)
        return NULL;
    for (spec = pp_bind_specs; spec->kind != NULL; spec++) {
        if (strcmp(spec->kind, kind) == 0)
            break;
    }
    if (spec->kind == NULL) {
        PyErr_Format(PyExc_ValueError, "pp_bind: unknown kind %s", kind);
        return NULL;
    }
    ctx = ppctx_new(owner, (FastCoreObject *)sim);
    if (ctx == NULL)
        return NULL;
    if (extras != NULL && extras != Py_None) {
        Py_ssize_t n;
        if (!PyTuple_Check(extras)) {
            Py_DECREF(ctx);
            PyErr_SetString(PyExc_TypeError,
                            "pp_bind extras must be a tuple");
            return NULL;
        }
        n = PyTuple_GET_SIZE(extras);
        if (n >= 1) {
            ctx->a = PyTuple_GET_ITEM(extras, 0);
            Py_INCREF(ctx->a);
        }
        if (n >= 2) {
            ctx->b = PyTuple_GET_ITEM(extras, 1);
            Py_INCREF(ctx->b);
        }
        if (n >= 3) {
            ctx->c = PyTuple_GET_ITEM(extras, 2);
            Py_INCREF(ctx->c);
        }
    }
    fn = PyCFunction_New(spec->def, (PyObject *)ctx);
    Py_DECREF(ctx);
    if (fn == NULL)
        return NULL;
    if (spec->attr != NULL &&
        PyObject_SetAttrString(owner, spec->attr, fn) < 0) {
        Py_DECREF(fn);
        return NULL;
    }
    return fn;
}

static PyMethodDef corec_module_methods[] = {
    {"pp_bind", corec_pp_bind, METH_VARARGS,
     "Bind a compiled packet-path entry point onto a Python object."},
    {"pp_irq_proto", corec_pp_irq_proto, METH_VARARGS,
     "Attach a compiled IRQ-handler proto to an InterruptLine."},
    {"profile_buckets", corec_profile_buckets, METH_O,
     "Enable/disable (and reset) the --profile wall-clock buckets."},
    {"profile_snapshot", corec_profile_snapshot, METH_NOARGS,
     "Read the process-wide compiled-vs-python wall-clock buckets."},
    {NULL, NULL, 0, NULL},
};

static PyMethodDef fastcore_methods[] = {
    {"schedule", (PyCFunction)(void (*)(void))fastcore_schedule,
     METH_FASTCALL | METH_KEYWORDS,
     "schedule(delay, callback, *args, label=None) -> Event"},
    {"schedule_at", (PyCFunction)(void (*)(void))fastcore_schedule_at,
     METH_FASTCALL | METH_KEYWORDS,
     "schedule_at(time, callback, *args, label=None) -> Event"},
    {"schedule_periodic", (PyCFunction)fastcore_schedule_periodic,
     METH_VARARGS | METH_KEYWORDS,
     "schedule_periodic(interval_ns, callback, *args, label=None, "
     "first_delay=None) -> PeriodicEvent"},
    {"cancel", (PyCFunction)fastcore_cancel, METH_O,
     "Cancel a pending event (or a PeriodicEvent handle)."},
    {"run", (PyCFunction)fastcore_run, METH_VARARGS,
     "run(until=None) -> now"},
    {"run_for", (PyCFunction)fastcore_run_for, METH_O,
     "run_for(duration) -> now"},
    {"step", (PyCFunction)fastcore_step, METH_NOARGS,
     "Fire the single next pending event."},
    {"peek_time", (PyCFunction)fastcore_peek_time, METH_NOARGS,
     "Time of the next pending event, or None."},
    {"set_sanitize_hook", (PyCFunction)fastcore_set_sanitize_hook,
     METH_VARARGS, "Unsupported on the compiled core (raises)."},
    {"clear_sanitize_hook", (PyCFunction)fastcore_clear_sanitize_hook,
     METH_NOARGS, "No-op: the compiled core never has a hook installed."},
    {NULL},
};

static PyGetSetDef fastcore_getset[] = {
    {"now", (getter)fastcore_get_now, NULL,
     "Current simulation time in nanoseconds.", NULL},
    {"running", (getter)fastcore_get_running, NULL, NULL, NULL},
    {"stats", (getter)fastcore_get_stats, NULL,
     "Counters describing scheduler activity.", NULL},
    {NULL},
};

static PyTypeObject FastCore_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._fastcore._corec.FastCore",
    .tp_basicsize = sizeof(FastCoreObject),
    .tp_dealloc = (destructor)fastcore_dealloc,
    .tp_repr = (reprfunc)fastcore_repr,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_traverse = (traverseproc)fastcore_traverse,
    .tp_clear = (inquiry)fastcore_clear_impl,
    .tp_methods = fastcore_methods,
    .tp_getset = fastcore_getset,
    .tp_new = fastcore_new,
    .tp_doc = "Compiled simulator core, bit-identical to repro.sim."
              "Simulator (backend 'fast-c').",
};

/* ------------------------------------------------------------------ */
/* Module                                                             */
/* ------------------------------------------------------------------ */

static struct PyModuleDef corec_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro._fastcore._corec",
    .m_doc = "Hand-written C port of the simulator hot path.",
    .m_size = -1,
    .m_methods = corec_module_methods,
};

PyMODINIT_FUNC
PyInit__corec(void)
{
    PyObject *m = NULL, *errors = NULL, *backend_name = NULL;

    errors = PyImport_ImportModule("repro.sim.errors");
    if (errors == NULL)
        return NULL;
    ClockError = PyObject_GetAttrString(errors, "ClockError");
    SchedulingError = PyObject_GetAttrString(errors, "SchedulingError");
    Py_DECREF(errors);
    if (ClockError == NULL || SchedulingError == NULL)
        goto fail;

    state_strings[ST_PENDING] = PyUnicode_InternFromString("pending");
    state_strings[ST_FIRED] = PyUnicode_InternFromString("fired");
    state_strings[ST_CANCELLED] = PyUnicode_InternFromString("cancelled");
    if (state_strings[0] == NULL || state_strings[1] == NULL ||
        state_strings[2] == NULL)
        goto fail;

    if (PyType_Ready(&CEvent_Type) < 0 ||
        PyType_Ready(&CPeriodic_Type) < 0 ||
        PyType_Ready(&FastCore_Type) < 0)
        goto fail;

    backend_name = PyUnicode_FromString("fast-c");
    if (backend_name == NULL ||
        PyDict_SetItemString(FastCore_Type.tp_dict, "backend_name",
                             backend_name) < 0)
        goto fail;
    Py_CLEAR(backend_name);

    m = PyModule_Create(&corec_module);
    if (m == NULL)
        goto fail;
    Py_INCREF(&FastCore_Type);
    if (PyModule_AddObject(m, "FastCore", (PyObject *)&FastCore_Type) < 0) {
        Py_DECREF(&FastCore_Type);
        goto fail;
    }
    Py_INCREF(&CEvent_Type);
    if (PyModule_AddObject(m, "Event", (PyObject *)&CEvent_Type) < 0) {
        Py_DECREF(&CEvent_Type);
        goto fail;
    }
    Py_INCREF(&CPeriodic_Type);
    if (PyModule_AddObject(m, "PeriodicEvent",
                           (PyObject *)&CPeriodic_Type) < 0) {
        Py_DECREF(&CPeriodic_Type);
        goto fail;
    }
    return m;

fail:
    Py_XDECREF(backend_name);
    Py_XDECREF(m);
    return NULL;
}
