/* _corec.c — the compiled simulator fast core ("fast-c" backend).
 *
 * A C port of repro.sim.simulator.Simulator's hot path: the two-level
 * calendar queue (timing wheel + current-slot heap + overflow heap),
 * the event-slab freelist, periodic re-arm, tombstone cancellation with
 * amortised compaction, and the drain loop.
 *
 * The contract is bit-identity with the pure-python core: same firing
 * order (time, then scheduling seq), same RNG draw order (callbacks run
 * in the same sequence), same counter values at every callback boundary
 * for everything a trial can observe (pending, heap_size — the keys the
 * watchdog samples), and therefore byte-identical TrialResults. The
 * algorithm below is a line-for-line port of the python one; where the
 * python comments explain *why*, this file only notes where C forces a
 * different *how*:
 *
 *   - triples are C structs {time, seq, ev}, not tuples, and the heaps
 *     are plain arrays with (time, seq) comparison. Pop order for a
 *     binary min-heap is fully determined by the keys (seq is unique),
 *     so heap-layout differences between heapq and this code cannot
 *     change the firing order;
 *   - the slab's getrefcount(ev) == 2 gate (local + getrefcount arg)
 *     becomes Py_REFCNT(ev) == 1 on the popped triple's sole reference
 *     — the same "scheduler is the only owner" test;
 *   - the drain is the *scalar* loop. The batch drain exists to
 *     amortise interpreter overhead across a chunk of pops; compiled
 *     code has no interpreter overhead to amortise, and the scalar
 *     loop's per-boundary counter evolution is what the batch loop is
 *     defined to imitate (see repro/sim/_drain.py);
 *   - callbacks can reenter schedule()/cancel() (and cancel can
 *     compact, which reallocates every array), so the loop re-reads
 *     self->cur after every callback and never caches array pointers
 *     across one.
 *
 * set_sanitize_hook raises: the sanitizer rescans python-visible queue
 * internals that this core does not expose. run_trial() routes
 * sanitized runs to the pure backend before the simulator is built.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>
#include <stdint.h>

#define WHEEL_SHIFT 16
#define WHEEL_SLOTS 256
#define OCC_WORDS (WHEEL_SLOTS / 64)
#define WHEEL_HORIZON ((long long)WHEEL_SLOTS << WHEEL_SHIFT)
#define COMPACT_MIN_HEAP 64
#define SLAB_MAX_FREE 4096

/* Event states; the python core's interned strings are kept for the
 * .state attribute so handles look identical from client code. */
enum { ST_PENDING = 0, ST_FIRED = 1, ST_CANCELLED = 2 };

static PyObject *ClockError;
static PyObject *SchedulingError;
static PyObject *state_strings[3]; /* "pending", "fired", "cancelled" */

typedef struct CPeriodic CPeriodic;

typedef struct {
    PyObject_HEAD
    long long time;
    long long seq;
    PyObject *callback; /* strong */
    PyObject *args;     /* strong, always a tuple */
    PyObject *label;    /* strong, str or NULL (exposed as None) */
    CPeriodic *periodic; /* strong; non-NULL on periodic-timer events */
    int state;
} CEvent;

typedef struct {
    long long time;
    long long seq;
    CEvent *ev; /* strong */
} Triple;

typedef struct {
    Triple *a;
    Py_ssize_t len;
    Py_ssize_t cap;
} TList;

typedef struct {
    PyObject_HEAD
    long long now_ns;
    long long seq;
    long long fired;
    long long cancelled;
    long long tombstones;
    long long compactions;
    int running;
    int cursor; /* -1 .. WHEEL_SLOTS-1 */
    long long wheel_base;
    long long wheel_count;
    uint64_t occ[OCC_WORDS];
    TList cur;      /* heap */
    TList overflow; /* heap */
    TList wheel[WHEEL_SLOTS]; /* append-ordered buckets */
    /* slab freelist (LIFO, like the python EventSlab) */
    CEvent **free_list;
    Py_ssize_t nfree;
    long long slab_allocated;
    long long slab_reused;
    long long slab_high_water;
} FastCoreObject;

struct CPeriodic {
    PyObject_HEAD
    FastCoreObject *sim; /* strong */
    CEvent *event;       /* strong */
    long long interval_ns;
    long long fires;
    int active;
};

static PyTypeObject CEvent_Type;
static PyTypeObject CPeriodic_Type;
static PyTypeObject FastCore_Type;

/* ------------------------------------------------------------------ */
/* Triple lists and heaps                                             */
/* ------------------------------------------------------------------ */

static int
tl_reserve(TList *l, Py_ssize_t need)
{
    Py_ssize_t cap;
    Triple *a;
    if (need <= l->cap)
        return 0;
    cap = l->cap ? l->cap : 8;
    while (cap < need)
        cap *= 2;
    a = (Triple *)PyMem_Realloc(l->a, (size_t)cap * sizeof(Triple));
    if (a == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    l->a = a;
    l->cap = cap;
    return 0;
}

static int
tl_append(TList *l, Triple t) /* steals t.ev */
{
    if (tl_reserve(l, l->len + 1) < 0) {
        Py_DECREF(t.ev);
        return -1;
    }
    l->a[l->len++] = t;
    return 0;
}

static inline int
triple_lt(const Triple *x, const Triple *y)
{
    if (x->time != y->time)
        return x->time < y->time;
    return x->seq < y->seq;
}

static void
heap_sift_toward_root(TList *h, Py_ssize_t pos)
{
    Triple item = h->a[pos];
    while (pos > 0) {
        Py_ssize_t parent = (pos - 1) >> 1;
        if (!triple_lt(&item, &h->a[parent]))
            break;
        h->a[pos] = h->a[parent];
        pos = parent;
    }
    h->a[pos] = item;
}

static void
heap_sift_toward_leaves(TList *h, Py_ssize_t pos)
{
    Py_ssize_t n = h->len;
    Triple item = h->a[pos];
    for (;;) {
        Py_ssize_t child = 2 * pos + 1;
        if (child >= n)
            break;
        if (child + 1 < n && triple_lt(&h->a[child + 1], &h->a[child]))
            child += 1;
        if (!triple_lt(&h->a[child], &item))
            break;
        h->a[pos] = h->a[child];
        pos = child;
    }
    h->a[pos] = item;
}

static int
heap_push(TList *h, Triple t) /* steals t.ev */
{
    if (tl_append(h, t) < 0)
        return -1;
    heap_sift_toward_root(h, h->len - 1);
    return 0;
}

static Triple
heap_pop(TList *h) /* caller owns the returned ev ref; precondition len > 0 */
{
    Triple top = h->a[0];
    h->len -= 1;
    if (h->len > 0) {
        h->a[0] = h->a[h->len];
        heap_sift_toward_leaves(h, 0);
    }
    return top;
}

static void
heapify(TList *h)
{
    Py_ssize_t i;
    for (i = h->len / 2 - 1; i >= 0; i--)
        heap_sift_toward_leaves(h, i);
}

/* ------------------------------------------------------------------ */
/* Occupancy bitmap                                                   */
/* ------------------------------------------------------------------ */

static inline void
occ_set(FastCoreObject *s, int idx)
{
    s->occ[idx >> 6] |= (uint64_t)1 << (idx & 63);
}

static inline void
occ_clear(FastCoreObject *s, int idx)
{
    s->occ[idx >> 6] &= ~((uint64_t)1 << (idx & 63));
}

static int
occ_next(FastCoreObject *s, int from) /* lowest set bit >= from, or -1 */
{
    int w;
    uint64_t word;
    if (from >= WHEEL_SLOTS)
        return -1;
    if (from < 0)
        from = 0;
    w = from >> 6;
    word = s->occ[w] & (~(uint64_t)0 << (from & 63));
    for (;;) {
        if (word)
            return (w << 6) + __builtin_ctzll(word);
        if (++w >= OCC_WORDS)
            return -1;
        word = s->occ[w];
    }
}

static int
occ_popcount(FastCoreObject *s)
{
    int w, n = 0;
    for (w = 0; w < OCC_WORDS; w++)
        n += __builtin_popcountll(s->occ[w]);
    return n;
}

/* ------------------------------------------------------------------ */
/* CEvent                                                             */
/* ------------------------------------------------------------------ */

static CEvent *
cevent_alloc(void)
{
    CEvent *ev = PyObject_GC_New(CEvent, &CEvent_Type);
    if (ev == NULL)
        return NULL;
    ev->time = 0;
    ev->seq = 0;
    ev->callback = NULL;
    ev->args = NULL;
    ev->label = NULL;
    ev->periodic = NULL;
    ev->state = ST_PENDING;
    PyObject_GC_Track((PyObject *)ev);
    return ev;
}

static int
cevent_traverse(CEvent *self, visitproc visit, void *arg)
{
    Py_VISIT(self->callback);
    Py_VISIT(self->args);
    Py_VISIT(self->label);
    Py_VISIT((PyObject *)self->periodic);
    return 0;
}

static int
cevent_clear(CEvent *self)
{
    Py_CLEAR(self->callback);
    Py_CLEAR(self->args);
    Py_CLEAR(self->label);
    Py_CLEAR(self->periodic);
    return 0;
}

static void
cevent_dealloc(CEvent *self)
{
    PyObject_GC_UnTrack((PyObject *)self);
    cevent_clear(self);
    PyObject_GC_Del(self);
}

static PyObject *
cevent_get_state(CEvent *self, void *closure)
{
    PyObject *s = state_strings[self->state];
    Py_INCREF(s);
    return s;
}

static PyObject *
cevent_get_pending(CEvent *self, void *closure)
{
    return PyBool_FromLong(self->state == ST_PENDING);
}

static PyObject *
cevent_get_cancelled(CEvent *self, void *closure)
{
    return PyBool_FromLong(self->state == ST_CANCELLED);
}

static PyObject *
cevent_get_label(CEvent *self, void *closure)
{
    PyObject *l = self->label ? self->label : Py_None;
    Py_INCREF(l);
    return l;
}

static PyObject *
cevent_get_callback(CEvent *self, void *closure)
{
    PyObject *cb = self->callback ? self->callback : Py_None;
    Py_INCREF(cb);
    return cb;
}

static PyObject *
cevent_get_args(CEvent *self, void *closure)
{
    PyObject *a = self->args ? self->args : Py_None;
    Py_INCREF(a);
    return a;
}

static PyObject *
cevent_repr(CEvent *self)
{
    const char *name = "callback";
    PyObject *nameobj = NULL;
    PyObject *out;
    if (self->label && PyUnicode_Check(self->label)) {
        nameobj = self->label;
        Py_INCREF(nameobj);
    } else if (self->callback) {
        nameobj = PyObject_GetAttrString(self->callback, "__name__");
        if (nameobj == NULL)
            PyErr_Clear();
    }
    if (nameobj && PyUnicode_Check(nameobj))
        name = PyUnicode_AsUTF8(nameobj);
    out = PyUnicode_FromFormat("Event(t=%lld, seq=%lld, %s, %U)",
                               self->time, self->seq, name ? name : "callback",
                               state_strings[self->state]);
    Py_XDECREF(nameobj);
    return out;
}

static PyMemberDef cevent_members[] = {
    {"time", T_LONGLONG, offsetof(CEvent, time), READONLY, NULL},
    {"seq", T_LONGLONG, offsetof(CEvent, seq), READONLY, NULL},
    {NULL},
};

static PyGetSetDef cevent_getset[] = {
    {"state", (getter)cevent_get_state, NULL, NULL, NULL},
    {"pending", (getter)cevent_get_pending, NULL, NULL, NULL},
    {"cancelled", (getter)cevent_get_cancelled, NULL, NULL, NULL},
    {"label", (getter)cevent_get_label, NULL, NULL, NULL},
    {"callback", (getter)cevent_get_callback, NULL, NULL, NULL},
    {"args", (getter)cevent_get_args, NULL, NULL, NULL},
    {NULL},
};

static PyTypeObject CEvent_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._fastcore._corec.Event",
    .tp_basicsize = sizeof(CEvent),
    .tp_dealloc = (destructor)cevent_dealloc,
    .tp_repr = (reprfunc)cevent_repr,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_traverse = (traverseproc)cevent_traverse,
    .tp_clear = (inquiry)cevent_clear,
    .tp_members = cevent_members,
    .tp_getset = cevent_getset,
    .tp_doc = "Opaque scheduled-event handle (compiled core).",
};

/* ------------------------------------------------------------------ */
/* Slab freelist                                                      */
/* ------------------------------------------------------------------ */

/* The python gate is getrefcount(ev) == 2: the drain's local plus the
 * getrefcount argument, i.e. "nothing but the scheduler still holds
 * it". Here the caller owns exactly one reference (the popped
 * triple's), so the gate is Py_REFCNT == 1. Steals the reference
 * either way: into the freelist, or dropped to the GC. */
static void
retire_event(FastCoreObject *self, CEvent *ev)
{
    if (Py_REFCNT((PyObject *)ev) == 1 && ev->periodic == NULL &&
        self->nfree < SLAB_MAX_FREE) {
        Py_ssize_t n = self->nfree;
        self->free_list[n] = ev; /* keep the reference */
        self->nfree = n + 1;
        if (n >= self->slab_high_water)
            self->slab_high_water = n + 1;
        return;
    }
    Py_DECREF(ev);
}

/* Returns a new reference; mirrors the inlined slab acquire in
 * Simulator.schedule (LIFO reuse, counters bumped the same way). */
static CEvent *
acquire_event(FastCoreObject *self, long long time, long long seq,
              PyObject *callback, PyObject *args /* stolen */,
              PyObject *label /* borrowed or NULL */)
{
    CEvent *ev;
    if (self->nfree > 0) {
        ev = self->free_list[--self->nfree];
        self->slab_reused += 1;
        Py_INCREF(callback);
        Py_XSETREF(ev->callback, callback);
        Py_XSETREF(ev->args, args);
        Py_XINCREF(label);
        Py_XSETREF(ev->label, label);
    } else {
        self->slab_allocated += 1;
        ev = cevent_alloc();
        if (ev == NULL) {
            Py_DECREF(args);
            return NULL;
        }
        Py_INCREF(callback);
        ev->callback = callback;
        ev->args = args;
        Py_XINCREF(label);
        ev->label = label;
    }
    ev->time = time;
    ev->seq = seq;
    ev->state = ST_PENDING;
    return ev;
}

/* ------------------------------------------------------------------ */
/* Queue insert / cancel / compact                                    */
/* ------------------------------------------------------------------ */

/* The three-way dispatch from Simulator.schedule: at/behind the cursor
 * -> current-slot heap; inside the wheel window -> bucket append;
 * beyond the horizon -> overflow heap. Steals the ev reference. */
static int
insert_event(FastCoreObject *self, long long time, long long seq, CEvent *ev)
{
    long long idx = (time - self->wheel_base) >> WHEEL_SHIFT;
    Triple t = {time, seq, ev};
    if (idx <= (long long)self->cursor)
        return heap_push(&self->cur, t);
    if (idx < WHEEL_SLOTS) {
        if (tl_append(&self->wheel[idx], t) < 0)
            return -1;
        occ_set(self, (int)idx);
        self->wheel_count += 1;
        return 0;
    }
    return heap_push(&self->overflow, t);
}

static void
tl_filter_cancelled(TList *l)
{
    Py_ssize_t i, w = 0;
    for (i = 0; i < l->len; i++) {
        Triple t = l->a[i];
        if (t.ev->state == ST_CANCELLED)
            Py_DECREF(t.ev); /* dropped to the GC, not the slab */
        else
            l->a[w++] = t;
    }
    l->len = w;
}

static void
compact(FastCoreObject *self)
{
    int idx;
    long long count = 0;
    tl_filter_cancelled(&self->cur);
    heapify(&self->cur);
    tl_filter_cancelled(&self->overflow);
    heapify(&self->overflow);
    memset(self->occ, 0, sizeof(self->occ));
    for (idx = 0; idx < WHEEL_SLOTS; idx++) {
        TList *bucket = &self->wheel[idx];
        if (bucket->len) {
            tl_filter_cancelled(bucket);
            if (bucket->len) {
                occ_set(self, idx);
                count += bucket->len;
            }
        }
    }
    self->wheel_count = count;
    self->tombstones = 0;
    self->compactions += 1;
}

/* Shared by FastCore.cancel and CPeriodic.cancel: tombstone the event
 * and run the amortised compaction trigger (four int ops, same
 * threshold arithmetic as the python core). */
static void
cancel_event(FastCoreObject *self, CEvent *ev)
{
    long long tombs, total;
    ev->state = ST_CANCELLED;
    self->cancelled += 1;
    tombs = self->tombstones + 1;
    self->tombstones = tombs;
    total = self->seq - self->fired - self->cancelled + tombs;
    if (total >= COMPACT_MIN_HEAP && tombs * 2 > total)
        compact(self);
}

/* ------------------------------------------------------------------ */
/* Queue traversal                                                    */
/* ------------------------------------------------------------------ */

/* Port of Simulator._advance: load the next populated bucket whose
 * window starts at or before the deadline into the (empty) current
 * heap. Returns 1 loaded, 0 nothing runnable, -1 on error. */
static int
advance(FastCoreObject *self, long long deadline, int has_deadline)
{
    for (;;) {
        long long base = self->wheel_base;
        int idx = occ_next(self, self->cursor + 1);
        while (idx >= 0) {
            TList *bucket = &self->wheel[idx];
            TList tmp;
            if (bucket->len == 0) {
                /* Stale bit (compaction emptied the bucket). */
                occ_clear(self, idx);
                idx = occ_next(self, idx + 1);
                continue;
            }
            if (has_deadline &&
                base + ((long long)idx << WHEEL_SHIFT) > deadline)
                return 0;
            /* Zero-copy load: swap the bucket's array with the drained
             * (empty) current heap's, so the load allocates nothing and
             * the bucket inherits the spent array for reuse. */
            self->wheel_count -= bucket->len;
            occ_clear(self, idx);
            self->cursor = idx;
            tmp = self->cur;
            self->cur = *bucket;
            *bucket = tmp;
            heapify(&self->cur);
            return 1;
        }
        /* Wheel window exhausted: jump to the overflow's first event. */
        while (self->overflow.len &&
               self->overflow.a[0].ev->state == ST_CANCELLED) {
            Triple t = heap_pop(&self->overflow);
            self->tombstones -= 1;
            retire_event(self, t.ev);
        }
        if (self->overflow.len == 0)
            return 0;
        {
            long long t_min = self->overflow.a[0].time;
            long long limit, count = 0;
            if (has_deadline && t_min > deadline)
                return 0;
            base = (t_min >> WHEEL_SHIFT) << WHEEL_SHIFT;
            self->wheel_base = base;
            self->cursor = -1;
            limit = base + WHEEL_HORIZON;
            memset(self->occ, 0, sizeof(self->occ));
            while (self->overflow.len && self->overflow.a[0].time < limit) {
                Triple t = heap_pop(&self->overflow);
                long long idx2;
                if (t.ev->state == ST_CANCELLED) {
                    self->tombstones -= 1;
                    retire_event(self, t.ev);
                    continue;
                }
                idx2 = (t.time - base) >> WHEEL_SHIFT;
                if (tl_append(&self->wheel[idx2], t) < 0)
                    return -1;
                occ_set(self, (int)idx2);
                count += 1;
            }
            /* The wheel was provably empty before the refill. */
            self->wheel_count = count;
        }
        /* Loop: rescan the refilled window from slot 0. */
    }
}

/* ------------------------------------------------------------------ */
/* Firing                                                             */
/* ------------------------------------------------------------------ */

/* Fire one popped triple. Owns (and consumes) the ev reference.
 * The periodic branch is the C equivalent of the python fire()
 * closure: fires++ before the callback, re-arm consumes a fresh seq
 * *after* the callback — identical counter evolution at every
 * callback boundary. Returns 0, or -1 with an exception set. */
static int
fire_event(FastCoreObject *self, CEvent *ev)
{
    PyObject *res;
    CPeriodic *p = ev->periodic;
    if (p != NULL) {
        p->fires += 1;
        res = PyObject_Call(ev->callback, ev->args, NULL);
        if (res == NULL) {
            Py_DECREF(ev);
            return -1;
        }
        Py_DECREF(res);
        if (p->active) {
            long long time = ev->time + p->interval_ns;
            long long seq = self->seq;
            self->seq = seq + 1;
            ev->time = time;
            ev->seq = seq;
            ev->state = ST_PENDING;
            return insert_event(self, time, seq, ev); /* ref moves back in */
        }
        retire_event(self, ev); /* handle still holds it: goes to the GC */
        return 0;
    }
    res = PyObject_Call(ev->callback, ev->args, NULL);
    if (res == NULL) {
        Py_DECREF(ev);
        return -1;
    }
    Py_DECREF(res);
    retire_event(self, ev);
    return 0;
}

static void
raise_clock_error(long long time, long long now)
{
    PyErr_Format(ClockError, "event at t=%lld behind clock t=%lld", time, now);
}

/* Port of the generated drain_plain loop (repro/sim/_drain.py). */
static int
drain(FastCoreObject *self, long long deadline, int has_deadline)
{
    for (;;) {
        while (self->cur.len) {
            Triple head = self->cur.a[0];
            CEvent *ev = head.ev;
            if (ev->state == ST_CANCELLED) {
                heap_pop(&self->cur);
                self->tombstones -= 1;
                retire_event(self, ev);
                continue;
            }
            if (has_deadline && head.time > deadline)
                return 0;
            if (head.time < self->now_ns) {
                raise_clock_error(head.time, self->now_ns);
                return -1;
            }
            heap_pop(&self->cur);
            self->now_ns = head.time;
            ev->state = ST_FIRED;
            self->fired += 1;
            if (fire_event(self, ev) < 0)
                return -1;
            /* The callback may have scheduled, cancelled, compacted —
             * self->cur is re-read at the top of the loop. */
        }
        {
            int adv = advance(self, deadline, has_deadline);
            if (adv < 0)
                return -1;
            if (adv == 0)
                return 0;
        }
    }
}

/* ------------------------------------------------------------------ */
/* CPeriodic                                                          */
/* ------------------------------------------------------------------ */

static int
cperiodic_traverse(CPeriodic *self, visitproc visit, void *arg)
{
    Py_VISIT((PyObject *)self->sim);
    Py_VISIT((PyObject *)self->event);
    return 0;
}

static int
cperiodic_clear(CPeriodic *self)
{
    Py_CLEAR(self->sim);
    Py_CLEAR(self->event);
    return 0;
}

static void
cperiodic_dealloc(CPeriodic *self)
{
    PyObject_GC_UnTrack((PyObject *)self);
    cperiodic_clear(self);
    PyObject_GC_Del(self);
}

static PyObject *
cperiodic_cancel(CPeriodic *self, PyObject *noargs)
{
    CEvent *ev;
    if (!self->active)
        Py_RETURN_FALSE;
    self->active = 0;
    ev = self->event;
    if (ev != NULL && ev->state == ST_PENDING && self->sim != NULL)
        cancel_event(self->sim, ev);
    Py_RETURN_TRUE;
}

static PyObject *
cperiodic_get_active(CPeriodic *self, void *closure)
{
    return PyBool_FromLong(self->active);
}

static PyObject *
cperiodic_repr(CPeriodic *self)
{
    return PyUnicode_FromFormat("PeriodicEvent(every %lld ns, fires=%lld, %s)",
                                self->interval_ns, self->fires,
                                self->active ? "active" : "cancelled");
}

static PyMemberDef cperiodic_members[] = {
    {"interval_ns", T_LONGLONG, offsetof(CPeriodic, interval_ns), READONLY, NULL},
    {"fires", T_LONGLONG, offsetof(CPeriodic, fires), READONLY, NULL},
    {NULL},
};

static PyGetSetDef cperiodic_getset[] = {
    {"active", (getter)cperiodic_get_active, NULL, NULL, NULL},
    {NULL},
};

static PyMethodDef cperiodic_methods[] = {
    {"cancel", (PyCFunction)cperiodic_cancel, METH_NOARGS,
     "Stop the timer. Safe from inside its own callback."},
    {NULL},
};

static PyTypeObject CPeriodic_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._fastcore._corec.PeriodicEvent",
    .tp_basicsize = sizeof(CPeriodic),
    .tp_dealloc = (destructor)cperiodic_dealloc,
    .tp_repr = (reprfunc)cperiodic_repr,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_traverse = (traverseproc)cperiodic_traverse,
    .tp_clear = (inquiry)cperiodic_clear,
    .tp_members = cperiodic_members,
    .tp_getset = cperiodic_getset,
    .tp_methods = cperiodic_methods,
    .tp_doc = "Recurring-timer handle (compiled core).",
};

/* ------------------------------------------------------------------ */
/* FastCore                                                           */
/* ------------------------------------------------------------------ */

static PyObject *
fastcore_new(PyTypeObject *type, PyObject *args, PyObject *kwargs)
{
    FastCoreObject *self;
    if ((args && PyTuple_GET_SIZE(args)) || (kwargs && PyDict_GET_SIZE(kwargs))) {
        PyErr_SetString(PyExc_TypeError, "FastCore() takes no arguments");
        return NULL;
    }
    self = (FastCoreObject *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    self->cursor = -1;
    self->free_list =
        (CEvent **)PyMem_Calloc(SLAB_MAX_FREE, sizeof(CEvent *));
    if (self->free_list == NULL) {
        Py_DECREF(self);
        return PyErr_NoMemory();
    }
    return (PyObject *)self;
}

static int
fastcore_traverse(FastCoreObject *self, visitproc visit, void *arg)
{
    Py_ssize_t i;
    int b;
    for (i = 0; i < self->cur.len; i++)
        Py_VISIT((PyObject *)self->cur.a[i].ev);
    for (i = 0; i < self->overflow.len; i++)
        Py_VISIT((PyObject *)self->overflow.a[i].ev);
    for (b = 0; b < WHEEL_SLOTS; b++) {
        TList *bucket = &self->wheel[b];
        for (i = 0; i < bucket->len; i++)
            Py_VISIT((PyObject *)bucket->a[i].ev);
    }
    for (i = 0; i < self->nfree; i++)
        Py_VISIT((PyObject *)self->free_list[i]);
    return 0;
}

static void
tl_drop(TList *l)
{
    Py_ssize_t i;
    for (i = 0; i < l->len; i++)
        Py_DECREF(l->a[i].ev);
    l->len = 0;
    PyMem_Free(l->a);
    l->a = NULL;
    l->cap = 0;
}

static int
fastcore_clear_impl(FastCoreObject *self)
{
    int b;
    Py_ssize_t i;
    tl_drop(&self->cur);
    tl_drop(&self->overflow);
    for (b = 0; b < WHEEL_SLOTS; b++)
        tl_drop(&self->wheel[b]);
    memset(self->occ, 0, sizeof(self->occ));
    self->wheel_count = 0;
    if (self->free_list != NULL) {
        for (i = 0; i < self->nfree; i++)
            Py_DECREF(self->free_list[i]);
        self->nfree = 0;
    }
    return 0;
}

static void
fastcore_dealloc(FastCoreObject *self)
{
    PyObject_GC_UnTrack((PyObject *)self);
    fastcore_clear_impl(self);
    PyMem_Free(self->free_list);
    self->free_list = NULL;
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static int
as_ns(PyObject *obj, long long *out)
{
    long long v = PyLong_AsLongLong(obj);
    if (v == -1 && PyErr_Occurred())
        return -1;
    *out = v;
    return 0;
}

/* Shared kwnames handling for the fastcall schedule entry points:
 * only 'label' is accepted; returns 0 and writes the borrowed value
 * (NULL when absent or None). */
static int
parse_label_kw(PyObject *kwnames, PyObject *const *kwvalues,
               const char *fname, PyObject **label_out)
{
    *label_out = NULL;
    if (kwnames == NULL)
        return 0;
    {
        Py_ssize_t nkw = PyTuple_GET_SIZE(kwnames);
        Py_ssize_t i;
        for (i = 0; i < nkw; i++) {
            PyObject *name = PyTuple_GET_ITEM(kwnames, i);
            if (PyUnicode_CompareWithASCIIString(name, "label") == 0) {
                *label_out = kwvalues[i];
            } else {
                PyErr_Format(PyExc_TypeError,
                             "%s() accepts only the 'label' keyword", fname);
                return -1;
            }
        }
    }
    if (*label_out == Py_None)
        *label_out = NULL;
    return 0;
}

static PyObject *
args_tuple_from(PyObject *const *items, Py_ssize_t n)
{
    PyObject *tup = PyTuple_New(n);
    Py_ssize_t i;
    if (tup == NULL)
        return NULL;
    for (i = 0; i < n; i++) {
        PyObject *item = items[i];
        Py_INCREF(item);
        PyTuple_SET_ITEM(tup, i, item);
    }
    return tup;
}

static PyObject *
schedule_common(FastCoreObject *self, long long delay, PyObject *callback,
                PyObject *cb_args /* stolen */, PyObject *label)
{
    long long time = self->now_ns + delay;
    long long seq = self->seq;
    CEvent *ev;
    self->seq = seq + 1;
    ev = acquire_event(self, time, seq, callback, cb_args, label);
    if (ev == NULL)
        return NULL;
    Py_INCREF(ev); /* one ref for the queue, one for the caller */
    if (insert_event(self, time, seq, ev) < 0) {
        Py_DECREF(ev);
        return NULL;
    }
    return (PyObject *)ev;
}

/* schedule(delay, callback, *args, label=None) */
static PyObject *
fastcore_schedule(FastCoreObject *self, PyObject *const *args, Py_ssize_t n,
                  PyObject *kwnames)
{
    long long delay;
    PyObject *cb_args, *label;
    if (n < 2) {
        PyErr_SetString(PyExc_TypeError,
                        "schedule() requires (delay, callback, ...)");
        return NULL;
    }
    if (parse_label_kw(kwnames, args + n, "schedule", &label) < 0)
        return NULL;
    if (as_ns(args[0], &delay) < 0)
        return NULL;
    if (delay < 0) {
        PyErr_Format(SchedulingError,
                     "cannot schedule into the past (delay=%lld)", delay);
        return NULL;
    }
    cb_args = args_tuple_from(args + 2, n - 2);
    if (cb_args == NULL)
        return NULL;
    return schedule_common(self, delay, args[1], cb_args, label);
}

/* schedule_at(time, callback, *args, label=None) */
static PyObject *
fastcore_schedule_at(FastCoreObject *self, PyObject *const *args,
                     Py_ssize_t n, PyObject *kwnames)
{
    long long time;
    PyObject *cb_args, *label;
    if (n < 2) {
        PyErr_SetString(PyExc_TypeError,
                        "schedule_at() requires (time, callback, ...)");
        return NULL;
    }
    if (parse_label_kw(kwnames, args + n, "schedule_at", &label) < 0)
        return NULL;
    if (as_ns(args[0], &time) < 0)
        return NULL;
    if (time < self->now_ns) {
        PyErr_Format(SchedulingError,
                     "cannot schedule at t=%lld, now is t=%lld", time,
                     self->now_ns);
        return NULL;
    }
    cb_args = args_tuple_from(args + 2, n - 2);
    if (cb_args == NULL)
        return NULL;
    return schedule_common(self, time - self->now_ns, args[1], cb_args, label);
}

/* schedule_periodic(interval_ns, callback, *args, label=None,
 *                   first_delay=None) */
static PyObject *
fastcore_schedule_periodic(FastCoreObject *self, PyObject *args,
                           PyObject *kwargs)
{
    Py_ssize_t n = PyTuple_GET_SIZE(args);
    long long interval, delay, time, seq;
    PyObject *callback, *cb_args, *label = NULL, *first_delay = NULL;
    CPeriodic *handle;
    CEvent *ev;
    if (n < 2) {
        PyErr_SetString(
            PyExc_TypeError,
            "schedule_periodic() requires (interval_ns, callback, ...)");
        return NULL;
    }
    if (kwargs != NULL && PyDict_GET_SIZE(kwargs)) {
        Py_ssize_t seen = 0;
        label = PyDict_GetItemString(kwargs, "label");
        if (label != NULL)
            seen++;
        first_delay = PyDict_GetItemString(kwargs, "first_delay");
        if (first_delay != NULL)
            seen++;
        if (seen != PyDict_GET_SIZE(kwargs)) {
            PyErr_SetString(PyExc_TypeError,
                            "schedule_periodic() accepts only the 'label' "
                            "and 'first_delay' keywords");
            return NULL;
        }
        if (label == Py_None)
            label = NULL;
        if (first_delay == Py_None)
            first_delay = NULL;
    }
    if (as_ns(PyTuple_GET_ITEM(args, 0), &interval) < 0)
        return NULL;
    if (interval <= 0) {
        PyErr_Format(SchedulingError,
                     "periodic interval must be positive, got %lld", interval);
        return NULL;
    }
    delay = interval;
    if (first_delay != NULL) {
        if (as_ns(first_delay, &delay) < 0)
            return NULL;
        if (delay < 0) {
            PyErr_Format(SchedulingError,
                         "cannot schedule into the past (first_delay=%lld)",
                         delay);
            return NULL;
        }
    }
    callback = PyTuple_GET_ITEM(args, 1);
    cb_args = PyTuple_GetSlice(args, 2, n);
    if (cb_args == NULL)
        return NULL;
    handle = PyObject_GC_New(CPeriodic, &CPeriodic_Type);
    if (handle == NULL) {
        Py_DECREF(cb_args);
        return NULL;
    }
    Py_INCREF(self);
    handle->sim = self;
    handle->event = NULL;
    handle->interval_ns = interval;
    handle->fires = 0;
    handle->active = 1;
    PyObject_GC_Track((PyObject *)handle);
    /* First arm goes through the same schedule path (seq consumed here,
     * slab acquire counted here) as the python core's self.schedule. */
    time = self->now_ns + delay;
    seq = self->seq;
    self->seq = seq + 1;
    ev = acquire_event(self, time, seq, callback, cb_args, label);
    if (ev == NULL) {
        Py_DECREF(handle);
        return NULL;
    }
    Py_INCREF(handle);
    ev->periodic = handle;
    Py_INCREF(ev);
    handle->event = ev;
    if (insert_event(self, time, seq, ev) < 0) {
        Py_DECREF(handle);
        return NULL;
    }
    return (PyObject *)handle;
}

static PyObject *
fastcore_cancel(FastCoreObject *self, PyObject *handle)
{
    if (Py_TYPE(handle) == &CPeriodic_Type)
        return cperiodic_cancel((CPeriodic *)handle, NULL);
    if (Py_TYPE(handle) == &CEvent_Type) {
        CEvent *ev = (CEvent *)handle;
        if (ev->state != ST_PENDING)
            Py_RETURN_FALSE;
        cancel_event(self, ev);
        Py_RETURN_TRUE;
    }
    PyErr_Format(PyExc_TypeError,
                 "cancel() expects an Event or PeriodicEvent handle from "
                 "this simulator, got %.100s", Py_TYPE(handle)->tp_name);
    return NULL;
}

static PyObject *
fastcore_run(FastCoreObject *self, PyObject *args)
{
    PyObject *until_obj = Py_None;
    long long deadline = 0;
    int has_deadline = 0, rc;
    if (!PyArg_ParseTuple(args, "|O:run", &until_obj))
        return NULL;
    if (until_obj != Py_None) {
        if (as_ns(until_obj, &deadline) < 0)
            return NULL;
        if (deadline < self->now_ns) {
            PyErr_Format(SchedulingError,
                         "deadline t=%lld is in the past (now t=%lld)",
                         deadline, self->now_ns);
            return NULL;
        }
        has_deadline = 1;
    }
    self->running = 1;
    rc = drain(self, deadline, has_deadline);
    self->running = 0;
    if (rc < 0)
        return NULL;
    if (has_deadline && deadline > self->now_ns)
        self->now_ns = deadline;
    return PyLong_FromLongLong(self->now_ns);
}

static PyObject *
fastcore_run_for(FastCoreObject *self, PyObject *arg)
{
    long long duration;
    PyObject *until, *tuple, *out;
    if (as_ns(arg, &duration) < 0)
        return NULL;
    until = PyLong_FromLongLong(self->now_ns + duration);
    if (until == NULL)
        return NULL;
    tuple = PyTuple_Pack(1, until);
    Py_DECREF(until);
    if (tuple == NULL)
        return NULL;
    out = fastcore_run(self, tuple);
    Py_DECREF(tuple);
    return out;
}

static PyObject *
fastcore_step(FastCoreObject *self, PyObject *noargs)
{
    for (;;) {
        while (self->cur.len) {
            Triple head = self->cur.a[0];
            CEvent *ev = head.ev;
            if (ev->state == ST_CANCELLED) {
                heap_pop(&self->cur);
                self->tombstones -= 1;
                retire_event(self, ev);
                continue;
            }
            if (head.time < self->now_ns) {
                raise_clock_error(head.time, self->now_ns);
                return NULL;
            }
            heap_pop(&self->cur);
            self->now_ns = head.time;
            ev->state = ST_FIRED;
            self->fired += 1;
            if (fire_event(self, ev) < 0)
                return NULL;
            Py_RETURN_TRUE;
        }
        {
            int adv = advance(self, 0, 0);
            if (adv < 0)
                return NULL;
            if (adv == 0)
                Py_RETURN_FALSE;
        }
    }
}

static PyObject *
fastcore_peek_time(FastCoreObject *self, PyObject *noargs)
{
    int idx;
    while (self->cur.len) {
        Triple head = self->cur.a[0];
        if (head.ev->state != ST_CANCELLED)
            return PyLong_FromLongLong(head.time);
        heap_pop(&self->cur);
        self->tombstones -= 1;
        retire_event(self, head.ev);
    }
    idx = occ_next(self, self->cursor + 1);
    while (idx >= 0) {
        TList *bucket = &self->wheel[idx];
        Py_ssize_t i;
        long long best = 0;
        int found = 0;
        for (i = 0; i < bucket->len; i++) {
            Triple *t = &bucket->a[i];
            if (t->ev->state != ST_CANCELLED && (!found || t->time < best)) {
                best = t->time;
                found = 1;
            }
        }
        if (found)
            return PyLong_FromLongLong(best);
        idx = occ_next(self, idx + 1);
    }
    while (self->overflow.len) {
        Triple head = self->overflow.a[0];
        if (head.ev->state != ST_CANCELLED)
            return PyLong_FromLongLong(head.time);
        heap_pop(&self->overflow);
        self->tombstones -= 1;
        retire_event(self, head.ev);
    }
    Py_RETURN_NONE;
}

static PyObject *
fastcore_set_sanitize_hook(FastCoreObject *self, PyObject *args)
{
    PyErr_SetString(
        PyExc_NotImplementedError,
        "the compiled fast core has no sanitized drain loop; sanitized "
        "runs use backend='pure' (run_trial falls back automatically)");
    return NULL;
}

static PyObject *
fastcore_clear_sanitize_hook(FastCoreObject *self, PyObject *noargs)
{
    Py_RETURN_NONE;
}

static PyObject *
fastcore_get_now(FastCoreObject *self, void *closure)
{
    return PyLong_FromLongLong(self->now_ns);
}

static PyObject *
fastcore_get_running(FastCoreObject *self, void *closure)
{
    return PyBool_FromLong(self->running);
}

static int
dict_set_ll(PyObject *d, const char *key, long long value)
{
    PyObject *v = PyLong_FromLongLong(value);
    int rc;
    if (v == NULL)
        return -1;
    rc = PyDict_SetItemString(d, key, v);
    Py_DECREF(v);
    return rc;
}

static PyObject *
fastcore_get_stats(FastCoreObject *self, void *closure)
{
    PyObject *d = PyDict_New();
    PyObject *backend;
    if (d == NULL)
        return NULL;
    backend = PyUnicode_FromString("fast-c");
    if (backend == NULL ||
        PyDict_SetItemString(d, "backend", backend) < 0) {
        Py_XDECREF(backend);
        Py_DECREF(d);
        return NULL;
    }
    Py_DECREF(backend);
    if (dict_set_ll(d, "scheduled", self->seq) < 0 ||
        dict_set_ll(d, "fired", self->fired) < 0 ||
        dict_set_ll(d, "cancelled", self->cancelled) < 0 ||
        dict_set_ll(d, "pending",
                    self->seq - self->fired - self->cancelled) < 0 ||
        dict_set_ll(d, "heap_size",
                    (long long)self->cur.len + self->wheel_count +
                        (long long)self->overflow.len) < 0 ||
        dict_set_ll(d, "compactions", self->compactions) < 0 ||
        dict_set_ll(d, "wheel_occupancy", occ_popcount(self)) < 0 ||
        dict_set_ll(d, "wheel_events", self->wheel_count) < 0 ||
        dict_set_ll(d, "current_bucket", (long long)self->cur.len) < 0 ||
        dict_set_ll(d, "overflow_size", (long long)self->overflow.len) < 0 ||
        dict_set_ll(d, "slab_allocated", self->slab_allocated) < 0 ||
        dict_set_ll(d, "slab_reused", self->slab_reused) < 0 ||
        dict_set_ll(d, "slab_recycled",
                    self->slab_reused + (long long)self->nfree) < 0 ||
        dict_set_ll(d, "slab_free", (long long)self->nfree) < 0 ||
        dict_set_ll(d, "slab_high_water", self->slab_high_water) < 0) {
        Py_DECREF(d);
        return NULL;
    }
    return d;
}

static PyObject *
fastcore_repr(FastCoreObject *self)
{
    return PyUnicode_FromFormat(
        "FastCore(backend=fast-c, now=%lld ns, pending=%lld, "
        "wheel=%d slots/%lld events, overflow=%zd, slab_hw=%lld)",
        self->now_ns, self->seq - self->fired - self->cancelled,
        occ_popcount(self), self->wheel_count, self->overflow.len,
        self->slab_high_water);
}

static PyMethodDef fastcore_methods[] = {
    {"schedule", (PyCFunction)(void (*)(void))fastcore_schedule,
     METH_FASTCALL | METH_KEYWORDS,
     "schedule(delay, callback, *args, label=None) -> Event"},
    {"schedule_at", (PyCFunction)(void (*)(void))fastcore_schedule_at,
     METH_FASTCALL | METH_KEYWORDS,
     "schedule_at(time, callback, *args, label=None) -> Event"},
    {"schedule_periodic", (PyCFunction)fastcore_schedule_periodic,
     METH_VARARGS | METH_KEYWORDS,
     "schedule_periodic(interval_ns, callback, *args, label=None, "
     "first_delay=None) -> PeriodicEvent"},
    {"cancel", (PyCFunction)fastcore_cancel, METH_O,
     "Cancel a pending event (or a PeriodicEvent handle)."},
    {"run", (PyCFunction)fastcore_run, METH_VARARGS,
     "run(until=None) -> now"},
    {"run_for", (PyCFunction)fastcore_run_for, METH_O,
     "run_for(duration) -> now"},
    {"step", (PyCFunction)fastcore_step, METH_NOARGS,
     "Fire the single next pending event."},
    {"peek_time", (PyCFunction)fastcore_peek_time, METH_NOARGS,
     "Time of the next pending event, or None."},
    {"set_sanitize_hook", (PyCFunction)fastcore_set_sanitize_hook,
     METH_VARARGS, "Unsupported on the compiled core (raises)."},
    {"clear_sanitize_hook", (PyCFunction)fastcore_clear_sanitize_hook,
     METH_NOARGS, "No-op: the compiled core never has a hook installed."},
    {NULL},
};

static PyGetSetDef fastcore_getset[] = {
    {"now", (getter)fastcore_get_now, NULL,
     "Current simulation time in nanoseconds.", NULL},
    {"running", (getter)fastcore_get_running, NULL, NULL, NULL},
    {"stats", (getter)fastcore_get_stats, NULL,
     "Counters describing scheduler activity.", NULL},
    {NULL},
};

static PyTypeObject FastCore_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._fastcore._corec.FastCore",
    .tp_basicsize = sizeof(FastCoreObject),
    .tp_dealloc = (destructor)fastcore_dealloc,
    .tp_repr = (reprfunc)fastcore_repr,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_traverse = (traverseproc)fastcore_traverse,
    .tp_clear = (inquiry)fastcore_clear_impl,
    .tp_methods = fastcore_methods,
    .tp_getset = fastcore_getset,
    .tp_new = fastcore_new,
    .tp_doc = "Compiled simulator core, bit-identical to repro.sim."
              "Simulator (backend 'fast-c').",
};

/* ------------------------------------------------------------------ */
/* Module                                                             */
/* ------------------------------------------------------------------ */

static struct PyModuleDef corec_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro._fastcore._corec",
    .m_doc = "Hand-written C port of the simulator hot path.",
    .m_size = -1,
};

PyMODINIT_FUNC
PyInit__corec(void)
{
    PyObject *m = NULL, *errors = NULL, *backend_name = NULL;

    errors = PyImport_ImportModule("repro.sim.errors");
    if (errors == NULL)
        return NULL;
    ClockError = PyObject_GetAttrString(errors, "ClockError");
    SchedulingError = PyObject_GetAttrString(errors, "SchedulingError");
    Py_DECREF(errors);
    if (ClockError == NULL || SchedulingError == NULL)
        goto fail;

    state_strings[ST_PENDING] = PyUnicode_InternFromString("pending");
    state_strings[ST_FIRED] = PyUnicode_InternFromString("fired");
    state_strings[ST_CANCELLED] = PyUnicode_InternFromString("cancelled");
    if (state_strings[0] == NULL || state_strings[1] == NULL ||
        state_strings[2] == NULL)
        goto fail;

    if (PyType_Ready(&CEvent_Type) < 0 ||
        PyType_Ready(&CPeriodic_Type) < 0 ||
        PyType_Ready(&FastCore_Type) < 0)
        goto fail;

    backend_name = PyUnicode_FromString("fast-c");
    if (backend_name == NULL ||
        PyDict_SetItemString(FastCore_Type.tp_dict, "backend_name",
                             backend_name) < 0)
        goto fail;
    Py_CLEAR(backend_name);

    m = PyModule_Create(&corec_module);
    if (m == NULL)
        goto fail;
    Py_INCREF(&FastCore_Type);
    if (PyModule_AddObject(m, "FastCore", (PyObject *)&FastCore_Type) < 0) {
        Py_DECREF(&FastCore_Type);
        goto fail;
    }
    Py_INCREF(&CEvent_Type);
    if (PyModule_AddObject(m, "Event", (PyObject *)&CEvent_Type) < 0) {
        Py_DECREF(&CEvent_Type);
        goto fail;
    }
    Py_INCREF(&CPeriodic_Type);
    if (PyModule_AddObject(m, "PeriodicEvent",
                           (PyObject *)&CPeriodic_Type) < 0) {
        Py_DECREF(&CPeriodic_Type);
        goto fail;
    }
    return m;

fail:
    Py_XDECREF(backend_name);
    Py_XDECREF(m);
    return NULL;
}
