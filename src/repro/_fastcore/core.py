"""Fast-core fallback: the batch-drain simulator in plain python.

This module is the *model* of the compiled fast core and the fallback
when no extension could be built, so ``backend="fast"`` always works:

* with the hand-written C extension (``repro._fastcore._corec``) built,
  the package exports that core (``backend_name == "fast-c"``);
* with this module compiled by mypyc (the optional ``setup.py`` build),
  the same code runs natively (``fast-mypyc``);
* otherwise this interpreted class is used (``fast-py``) — roughly the
  pure backend's speed, but semantically identical to the compiled
  cores, which keeps the parity test matrix runnable on any install.

``FastCore`` is deliberately tiny: it *is* the pure
:class:`~repro.sim.simulator.Simulator` with the batch drain variant
installed (see :mod:`repro.sim._drain` for why the batch loop is
observably identical to the scalar one). Anything not understood by a
compiled core — today only the invariant sanitizer, whose hook contract
is per-event — is routed by ``Simulator.run`` to the scalar sanitized
drain, which this class inherits.

The compiled *packet path* (DESIGN.md §13) needs no counterpart here:
:mod:`repro._fastcore.packetpath` binds its C entry points only when
``_corec`` is importable and the simulator is its ``FastCore`` type.
On this flavour ``packetpath.available()`` is False, every install hook
no-ops, and the per-packet pipeline runs the ordinary Python bodies —
which are the oracle the C port is bit-identical to, so the three
flavours stay in lockstep by construction: same event core semantics
here, same packet-path semantics from the Python classes themselves.
"""

from __future__ import annotations

from repro.sim._drain import drain_batch
from repro.sim.simulator import Simulator

#: True when mypyc compiled this module (its __file__ is then the
#: extension, not the .py source).
COMPILED = not __file__.endswith((".py", ".pyc"))


class FastCore(Simulator):
    """Batch-drain simulator (interpreted / mypyc flavour)."""

    backend_name = "fast-mypyc" if COMPILED else "fast-py"

    _drain = drain_batch
