"""Generator-based simulation processes.

A process body is a Python generator that ``yield``\\ s command objects:

* :class:`Sleep` — suspend for a fixed amount of simulated time;
* :class:`WaitSignal` — block until a :class:`~repro.sim.signals.Signal`
  fires (the fired value is returned by the ``yield`` expression);
* :class:`Work` — consume CPU cycles. The base :class:`Process` rejects
  this; CPU-scheduled tasks (:class:`repro.hw.cpu.CpuTask`) accept it and
  hand it to the CPU model, which charges simulated time subject to
  priorities and preemption.

This split mirrors the system being modelled: traffic generators and wires
are environment processes (time passes but no router CPU is consumed),
whereas interrupt handlers, kernel threads and user processes are CPU
tasks whose every microsecond is accounted against the router CPU.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional

from .errors import ProcessError
from .signals import Signal
from .simulator import Simulator

# Process lifecycle states.
NEW = "new"
ALIVE = "alive"
DONE = "done"
FAILED = "failed"
KILLED = "killed"


class Command:
    """Base class for values a process body may yield."""

    __slots__ = ()


class Sleep(Command):
    """Suspend the process for ``ns`` nanoseconds of simulated time."""

    __slots__ = ("ns",)

    def __init__(self, ns: int) -> None:
        if ns < 0:
            raise ValueError("cannot sleep a negative duration: %d" % ns)
        self.ns = ns

    def __repr__(self) -> str:
        return "Sleep(%d ns)" % self.ns


class WaitSignal(Command):
    """Block until ``signal`` fires; the fired value is sent back in."""

    __slots__ = ("signal",)

    def __init__(self, signal: Signal) -> None:
        self.signal = signal

    def __repr__(self) -> str:
        return "WaitSignal(%s)" % self.signal.name


class Work(Command):
    """Consume ``cycles`` CPU cycles (CPU tasks only)."""

    __slots__ = ("cycles",)

    def __init__(self, cycles: int) -> None:
        if cycles < 0:
            raise ValueError("cannot perform negative work: %d" % cycles)
        self.cycles = int(cycles)

    def __repr__(self) -> str:
        return "Work(%d cycles)" % self.cycles


ProcessBody = Generator[Command, Any, None]


class Process:
    """A simulation process driving a generator body.

    Subclasses may extend :meth:`_dispatch` to support more command types
    (the CPU task adds :class:`Work`).
    """

    def __init__(self, sim: Simulator, body: ProcessBody, name: str = "process") -> None:
        if not hasattr(body, "send"):
            raise ProcessError(
                "process body must be a generator, got %r" % type(body).__name__
            )
        self.sim = sim
        self.name = name
        self.state = NEW
        self._body = body
        self._waiting_on: Optional[Signal] = None
        self._exit_callbacks: List[Callable[["Process"], None]] = []
        self.exception: Optional[BaseException] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def alive(self) -> bool:
        return self.state == ALIVE

    @property
    def finished(self) -> bool:
        return self.state in (DONE, FAILED, KILLED)

    def on_exit(self, callback: Callable[["Process"], None]) -> None:
        """Register a callback invoked once when the process terminates."""
        self._exit_callbacks.append(callback)

    def start(self) -> "Process":
        """Begin executing the body (advances to the first yield)."""
        if self.state != NEW:
            raise ProcessError("process %s already started" % self.name)
        self.state = ALIVE
        self.deliver(None)
        return self

    def kill(self) -> None:
        """Terminate the process without resuming it again."""
        if self.finished:
            return
        if self._waiting_on is not None:
            self._waiting_on.remove_waiter(self)
            self._waiting_on = None
        self.state = KILLED
        self._body.close()
        self._finish()

    # ------------------------------------------------------------------
    # Engine interface
    # ------------------------------------------------------------------

    def deliver(self, value: Any) -> None:
        """Resume the body with ``value`` and dispatch its next command.

        Called by the engine (timers, signals, the CPU); client code should
        not call this directly.
        """
        if self.state == NEW:
            self.state = ALIVE
        if self.state != ALIVE:
            # A stale wake-up for a process that was killed meanwhile.
            return
        self._waiting_on = None
        try:
            command = self._body.send(value)
        except StopIteration:
            self.state = DONE
            self._finish()
            return
        except BaseException as exc:
            self.state = FAILED
            self.exception = exc
            self._finish()
            raise ProcessError(
                "process %s failed at t=%d ns" % (self.name, self.sim.now)
            ) from exc
        try:
            self._dispatch(command)
        except ProcessError:
            self.state = FAILED
            self._finish()
            raise

    # ------------------------------------------------------------------
    # Command dispatch
    # ------------------------------------------------------------------

    def _dispatch(self, command: Command) -> None:
        if isinstance(command, Sleep):
            self.sim.schedule(command.ns, self.deliver, None, label="sleep:" + self.name)
        elif isinstance(command, WaitSignal):
            self._waiting_on = command.signal
            command.signal.add_waiter(self)
        elif isinstance(command, Work):
            raise ProcessError(
                "process %s yielded Work but is not a CPU task" % self.name
            )
        else:
            raise ProcessError(
                "process %s yielded unknown command %r" % (self.name, command)
            )

    def _finish(self) -> None:
        callbacks, self._exit_callbacks = self._exit_callbacks, []
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:
        return "%s(%s, %s)" % (type(self).__name__, self.name, self.state)
