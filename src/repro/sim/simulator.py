"""The discrete-event simulator core.

A :class:`Simulator` owns the virtual clock (integer nanoseconds) and a
binary heap of :class:`~repro.sim.events.Event` objects. Components
schedule callbacks at relative delays; :meth:`run` drains the heap in
time order until a deadline or until no events remain.

The simulator itself knows nothing about CPUs, packets, or kernels — those
are layered on top (see :mod:`repro.hw` and :mod:`repro.kernel`). It only
guarantees:

* the clock never moves backwards (:class:`~repro.sim.errors.ClockError`);
* events scheduled for the same instant fire in scheduling order;
* cancellation is O(1) and safe at any time before the event fires.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from .errors import ClockError, SchedulingError
from .events import CANCELLED, FIRED, PENDING, Event


class Simulator:
    """Event loop and virtual clock for one simulation run."""

    def __init__(self) -> None:
        self._now: int = 0
        self._heap: List[Event] = []
        self._seq: int = 0
        self._running: bool = False
        self._fired: int = 0
        self._scheduled: int = 0
        self._cancelled: int = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------

    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    @property
    def running(self) -> bool:
        return self._running

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(
        self,
        delay: int,
        callback: Callable[..., Any],
        *args: Any,
        label: Optional[str] = None,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` ns from now.

        ``delay`` may be zero (the event fires after all events already
        scheduled for the current instant), but never negative.
        """
        if delay < 0:
            raise SchedulingError("cannot schedule into the past (delay=%d)" % delay)
        event = Event(self._now + delay, self._seq, callback, args, label=label)
        self._seq += 1
        self._scheduled += 1
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(
        self,
        time: int,
        callback: Callable[..., Any],
        *args: Any,
        label: Optional[str] = None,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute time ``time`` ns."""
        if time < self._now:
            raise SchedulingError(
                "cannot schedule at t=%d, now is t=%d" % (time, self._now)
            )
        return self.schedule(time - self._now, callback, *args, label=label)

    def cancel(self, event: Event) -> bool:
        """Cancel a pending event. Returns True if it was still pending."""
        if event.state != PENDING:
            return False
        event.state = CANCELLED
        self._cancelled += 1
        return True

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Fire the single next pending event. Returns False if none left."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.state == CANCELLED:
                continue
            if event.time < self._now:
                raise ClockError(
                    "event at t=%d behind clock t=%d" % (event.time, self._now)
                )
            self._now = event.time
            event.state = FIRED
            self._fired += 1
            event.callback(*event.args)
            return True
        return False

    def peek_time(self) -> Optional[int]:
        """Time of the next pending event, or None if the heap is empty."""
        while self._heap and self._heap[0].state == CANCELLED:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def run(self, until: Optional[int] = None) -> int:
        """Run until the clock reaches ``until`` ns (absolute), or until no
        events remain if ``until`` is None. Returns the final clock value.

        If a deadline is given the clock is advanced exactly to it, so
        back-to-back ``run`` calls tile the timeline without gaps.
        """
        if until is not None and until < self._now:
            raise SchedulingError(
                "deadline t=%d is in the past (now t=%d)" % (until, self._now)
            )
        self._running = True
        try:
            while True:
                next_time = self.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                self.step()
        finally:
            self._running = False
        if until is not None:
            self._now = max(self._now, until)
        return self._now

    def run_for(self, duration: int) -> int:
        """Run for ``duration`` ns of simulated time from the current clock."""
        return self.run(self._now + duration)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def stats(self) -> dict:
        """Counters describing scheduler activity (for tests/diagnostics)."""
        return {
            "scheduled": self._scheduled,
            "fired": self._fired,
            "cancelled": self._cancelled,
            "pending": sum(1 for e in self._heap if e.state == PENDING),
        }

    def __repr__(self) -> str:
        return "Simulator(now=%d ns, pending=%d)" % (
            self._now,
            self.stats["pending"],
        )
