"""The discrete-event simulator core.

A :class:`Simulator` owns the virtual clock (integer nanoseconds) and a
two-level calendar queue of :class:`~repro.sim.events.Event` objects.
Components schedule callbacks at relative delays; :meth:`run` drains the
queue in time order until a deadline or until no events remain.

The simulator itself knows nothing about CPUs, packets, or kernels — those
are layered on top (see :mod:`repro.hw` and :mod:`repro.kernel`). It only
guarantees:

* the clock never moves backwards (:class:`~repro.sim.errors.ClockError`);
* events scheduled for the same instant fire in scheduling order;
* cancellation is O(1) and safe at any time before the event fires.

Structure (this module is the hot path of every experiment):

* **Timing wheel** — near-term events land in one of ``WHEEL_SLOTS``
  fixed-width buckets indexed by ``(time - wheel_base) >> WHEEL_SHIFT``.
  A bucket is a plain list of ``(time, seq, event)`` triples in append
  order; scheduling into the wheel is a list append plus a bitmap OR,
  with no comparisons at all.
* **Current-slot heap** (``_cur``) — when the drain reaches a bucket, its
  pending triples are heapified once and popped in ``(time, seq)`` order.
  Because the triples lead with ints, every heap comparison resolves in
  C; ``Event.__lt__`` is never called on this path. Events scheduled
  into the slot being drained (``delay=0`` chains, same-instant wakeups)
  are pushed straight into this heap, preserving exact FIFO seq order.
* **Overflow heap** — events beyond the wheel horizon
  (``WHEEL_SLOTS << WHEEL_SHIFT`` ns, ~17 ms) wait in a small fallback
  heap. When the wheel empties, the window *jumps* to the earliest
  overflow event (no empty-slot traversal) and the overflow refills the
  buckets it now covers.
* **Occupancy bitmap** (``_occ``) — one int whose bit *i* marks bucket
  *i* non-empty; the drain finds the next populated bucket with a
  lowest-set-bit scan instead of walking empty slots.
* **Determinism** — buckets partition time into disjoint windows visited
  in order, and within a bucket the heap yields exact ``(time, seq)``
  order, so the global firing order is identical to a single binary
  heap's. Trial results are bit-identical to the old ``heapq`` core
  (proven against the committed golden fixture and by
  ``scripts/bench_wheel.py``, which re-runs the frozen heap loop).
* **Tombstones** — cancelled events are skipped when the drain reaches
  them (bucket load, heap pop, or overflow refill). The queue is also
  *compacted in place* whenever tombstones outnumber live events, so
  cancellation-heavy workloads — including events cancelled long before
  their fire time — cannot grow resident memory without bound.
* **Event slab** — fired and reclaimed events whose only remaining
  reference is the scheduler's are recycled through an
  :class:`~repro.sim.events.EventSlab` freelist, so the steady-state hot
  loop allocates zero Event objects. The ``sys.getrefcount`` gate means
  any event whose handle a client kept (periodic timers, cancellable
  completions) is simply left to the garbage collector instead.
* recurring work should use :meth:`schedule_periodic`, which re-arms one
  :class:`Event` object per timer instead of allocating a fresh event
  every tick. The callback runs once per ``interval_ns`` until the
  returned :class:`PeriodicEvent` handle is cancelled (either via
  ``handle.cancel()`` or ``Simulator.cancel(handle)``, safe even from
  inside the callback itself).
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from sys import getrefcount
from typing import Any, Callable, List, Optional, Tuple

from ._drain import drain_plain, drain_sanitized
from .errors import ClockError, SchedulingError
from .events import CANCELLED, FIRED, PENDING, Event, EventSlab

#: Bucket width is ``1 << WHEEL_SHIFT`` ns (65.5 µs). Deliberately
#: coarse: a bucket load costs a filter pass plus a heapify, so it must
#: amortize over several events. Near-term events (the same-bucket
#: majority at paper rates) bypass the wheel entirely and go straight to
#: the current-slot heap, where every comparison is a C int-tuple
#: compare — the wheel only has to beat the old heap on *far* inserts,
#: which it does at any bucket width.
WHEEL_SHIFT = 16

#: Number of wheel buckets; horizon = ``WHEEL_SLOTS << WHEEL_SHIFT``
#: (~16.8 ms) comfortably covers clock ticks, watchdog windows, DMA
#: latencies and quota timers, so overflow traffic is rare.
WHEEL_SLOTS = 256

_WHEEL_HORIZON = WHEEL_SLOTS << WHEEL_SHIFT

_INF = float("inf")

#: Compaction is skipped below this resident size: tiny queues are cheap
#: to scan and rebuilding them constantly would cost more than it saves.
_COMPACT_MIN_HEAP = 64


class PeriodicEvent:
    """Handle for a recurring timer created by ``schedule_periodic``.

    One underlying :class:`Event` object is re-armed for every firing, so
    a periodic tick allocates nothing per period. Treat the handle as
    opaque: the only useful client operation is :meth:`cancel` (or,
    equivalently, passing the handle to ``Simulator.cancel``).
    """

    __slots__ = ("interval_ns", "fires", "_sim", "_event", "_active")

    def __init__(self, sim: "Simulator", interval_ns: int) -> None:
        self._sim = sim
        self._event: Optional[Event] = None
        self._active = True
        self.interval_ns = interval_ns
        self.fires = 0

    @property
    def active(self) -> bool:
        return self._active

    def cancel(self) -> bool:
        """Stop the timer. Safe from inside its own callback. Returns
        True if it was still active."""
        if not self._active:
            return False
        self._active = False
        event = self._event
        if event is not None and event.state == PENDING:
            # Cancel through the simulator so tombstone/pending counters
            # stay exact.
            self._sim.cancel(event)
        return True

    def __repr__(self) -> str:
        return "PeriodicEvent(every %d ns, fires=%d, %s)" % (
            self.interval_ns,
            self.fires,
            "active" if self._active else "cancelled",
        )


class Simulator:
    """Event loop and virtual clock for one simulation run."""

    #: Which core this is, for attribution (stats, ``TrialResult``,
    #: Perfetto metadata). The compiled backends report their flavour
    #: (``fast-c`` / ``fast-mypyc`` / ``fast-py``); see repro.sim.backend.
    backend_name = "pure"

    def __init__(self) -> None:
        self._now: int = 0
        self._seq: int = 0
        self._running: bool = False
        self._fired: int = 0
        self._cancelled: int = 0
        # The pending-event count is not stored: every schedule bumps
        # _seq and every fire/cancel bumps its counter exactly once, so
        # pending == _seq - _fired - _cancelled at all times and the hot
        # paths keep one less counter.
        #: Number of CANCELLED events still resident in the queue.
        self._tombstones: int = 0
        self._compactions: int = 0
        # --- calendar queue -------------------------------------------
        #: Heap of (time, seq, event) triples for the bucket currently
        #: being drained (plus any events scheduled at/behind it).
        self._cur: List[Tuple[int, int, Event]] = []
        #: Fixed ring of buckets; each is an append-ordered triple list.
        self._wheel: List[List[Tuple[int, int, Event]]] = [
            [] for _ in range(WHEEL_SLOTS)
        ]
        #: Heap of triples beyond the wheel horizon.
        self._overflow: List[Tuple[int, int, Event]] = []
        #: Bitmap of non-empty buckets (bit i => bucket i occupied).
        self._occ: int = 0
        #: Triples resident in wheel buckets (tombstones included).
        self._wheel_count: int = 0
        #: Index of the bucket loaded into ``_cur``; -1 before the first
        #: bucket of the current window is reached. ``schedule`` pushes
        #: events that map at or behind the cursor straight into ``_cur``
        #: (they can only be at/after ``now``, and ``_cur`` is always
        #: drained before the cursor advances, so ordering is preserved).
        self._cursor: int = -1
        #: Absolute time of bucket 0's window start.
        self._wheel_base: int = 0
        #: Freelist of retired Event objects (see module docstring).
        self._slab: EventSlab = EventSlab()
        #: Triples popped into a batch drain's buffer but not yet fired
        #: (always 0 under the scalar drains). Counted into
        #: ``stats["heap_size"]`` so scheduler-pressure sampling reads
        #: the same resident count under every drain variant.
        self._inflight: int = 0
        #: The live batch buffer while a batch drain runs, so
        #: :meth:`_compact` can filter tombstones out of it too.
        self._inflight_buf: Optional[List[Tuple[int, int, Event]]] = None
        #: Optional invariant-sanitizer hook: ``(callable, every_n)``.
        #: When set, :meth:`run` switches to an instrumented drain loop
        #: that invokes the callable every ``every_n`` fired events; when
        #: None the original loop runs, so a sanitizer-free simulation
        #: pays nothing (checked once per ``run`` call, not per event).
        self._sanitize_hook: Optional[Callable[[], None]] = None
        self._sanitize_every: int = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------

    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    @property
    def running(self) -> bool:
        return self._running

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(
        self,
        delay: int,
        callback: Callable[..., Any],
        *args: Any,
        label: Optional[str] = None,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` ns from now.

        ``delay`` may be zero (the event fires after all events already
        scheduled for the current instant), but never negative.
        """
        if delay < 0:
            raise SchedulingError("cannot schedule into the past (delay=%d)" % delay)
        time = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        # Inlined slab acquire: recycle a retired Event if one is free.
        slab = self._slab
        free = slab._free
        if free:
            event = free.pop()
            slab.reused += 1
            event.time = time
            event.seq = seq
            event.callback = callback
            event.args = args
            event.state = PENDING
            event.label = label
        else:
            slab.allocated += 1
            event = Event(time, seq, callback, args, label=label)
        # Inlined queue insert (the same three-way dispatch appears in
        # the periodic fire closure; keep the two in step).
        idx = (time - self._wheel_base) >> WHEEL_SHIFT
        if idx <= self._cursor:
            heappush(self._cur, (time, seq, event))
        elif idx < WHEEL_SLOTS:
            self._wheel[idx].append((time, seq, event))
            self._occ |= 1 << idx
            self._wheel_count += 1
        else:
            heappush(self._overflow, (time, seq, event))
        return event

    def schedule_at(
        self,
        time: int,
        callback: Callable[..., Any],
        *args: Any,
        label: Optional[str] = None,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute time ``time`` ns."""
        if time < self._now:
            raise SchedulingError(
                "cannot schedule at t=%d, now is t=%d" % (time, self._now)
            )
        return self.schedule(time - self._now, callback, *args, label=label)

    def schedule_periodic(
        self,
        interval_ns: int,
        callback: Callable[..., Any],
        *args: Any,
        label: Optional[str] = None,
        first_delay: Optional[int] = None,
    ) -> PeriodicEvent:
        """Run ``callback(*args)`` every ``interval_ns`` until cancelled.

        The first firing is ``first_delay`` ns from now (default: one
        interval). One :class:`Event` object is re-armed for every firing,
        so clock/poll ticks do not allocate per period. Returns a
        :class:`PeriodicEvent` handle whose :meth:`~PeriodicEvent.cancel`
        is safe at any time, including from inside the callback.
        """
        if interval_ns <= 0:
            raise SchedulingError(
                "periodic interval must be positive, got %d" % interval_ns
            )
        if first_delay is not None and first_delay < 0:
            raise SchedulingError(
                "cannot schedule into the past (first_delay=%d)" % first_delay
            )
        handle = PeriodicEvent(self, interval_ns)

        def fire() -> None:
            handle.fires += 1
            callback(*args)
            if not handle._active:
                return
            # Re-arm and re-queue inline (Event._rearm + _insert fused):
            # a periodic tick is pure per-period overhead, so it must not
            # pay Python-call costs on top of the callback's own.
            event = handle._event
            time = event.time + interval_ns
            seq = self._seq
            self._seq = seq + 1
            event.time = time
            event.seq = seq
            event.state = PENDING
            idx = (time - self._wheel_base) >> WHEEL_SHIFT
            if idx <= self._cursor:
                heappush(self._cur, (time, seq, event))
            elif idx < WHEEL_SLOTS:
                self._wheel[idx].append((time, seq, event))
                self._occ |= 1 << idx
                self._wheel_count += 1
            else:
                heappush(self._overflow, (time, seq, event))

        delay = interval_ns if first_delay is None else first_delay
        handle._event = self.schedule(delay, fire, label=label)
        return handle

    def cancel(self, event) -> bool:
        """Cancel a pending event (or a :class:`PeriodicEvent` handle).
        Returns True if it was still pending/active."""
        if isinstance(event, PeriodicEvent):
            return event.cancel()
        if event.state != PENDING:
            return False
        event.state = CANCELLED
        self._cancelled += 1
        # Inlined compaction trigger. Resident triples are exactly
        # pending events (each queued once) plus tombstones, and pending
        # is itself counter arithmetic, so the trigger is four int ops —
        # the len() sums this used to compute per cancel were the
        # bottleneck of the 200k-cancel storm (BENCH_wheel cancel_storm
        # at 0.812x vs the frozen heap before this was inlined).
        tombs = self._tombstones + 1
        self._tombstones = tombs
        total = self._seq - self._fired - self._cancelled + tombs
        if total >= _COMPACT_MIN_HEAP and tombs * 2 > total:
            self._compact()
        return True

    # ------------------------------------------------------------------
    # Tombstone reclamation
    # ------------------------------------------------------------------

    def _compact(self) -> None:
        """Filter tombstones out of the queue once they dominate it.

        Drain-time skipping only reclaims a cancelled event when the
        clock reaches its bucket; an event cancelled long before then
        would otherwise occupy queue slots indefinitely. ``cancel``
        triggers this when tombstones exceed half the resident triples,
        which bounds memory at ~2x the live event count while keeping
        cancellation amortised O(1).

        All three structures are filtered *in place* (slice assignment)
        because the drain loop holds local references to them.
        """
        cur = self._cur
        cur[:] = [tr for tr in cur if tr[2].state != CANCELLED]
        heapify(cur)
        overflow = self._overflow
        overflow[:] = [tr for tr in overflow if tr[2].state != CANCELLED]
        heapify(overflow)
        occ = 0
        count = 0
        for idx, bucket in enumerate(self._wheel):
            if bucket:
                bucket[:] = [tr for tr in bucket if tr[2].state != CANCELLED]
                if bucket:
                    occ |= 1 << idx
                    count += len(bucket)
        self._occ = occ
        self._wheel_count = count
        buf = self._inflight_buf
        if buf:
            # A batch drain is mid-chunk: its buffer holds popped-but-
            # unfired triples, including possibly tombstones. Filter it
            # too (dropping consumed slots), or resetting ``_tombstones``
            # below would under-count. The drain notices ``_compactions``
            # changed and restarts on the filtered buffer.
            buf[:] = [
                tr for tr in buf if tr is not None and tr[2].state != CANCELLED
            ]
            self._inflight = len(buf)
        # Dropped events go to the GC, not the slab: list comprehensions
        # hold transient references, so the refcount gate can't prove
        # exclusivity here, and compaction is far off the hot path.
        self._tombstones = 0
        self._compactions += 1

    # ------------------------------------------------------------------
    # Queue traversal
    # ------------------------------------------------------------------

    def _advance(self, deadline) -> bool:
        """Load the next populated bucket (time <= ``deadline``) into
        ``_cur``. Returns False when every remaining event — if any — is
        beyond the deadline. Precondition: ``_cur`` is empty.
        """
        wheel = self._wheel
        pop = heappop
        while True:
            base = self._wheel_base
            # Lowest-set-bit scan over buckets strictly after the cursor.
            mask = self._occ & -(1 << (self._cursor + 1))
            while mask:
                low = mask & -mask
                idx = low.bit_length() - 1
                bucket = wheel[idx]
                if not bucket:
                    # Stale bit (compaction emptied the bucket).
                    self._occ &= ~low
                    mask &= ~low
                    continue
                if base + (idx << WHEEL_SHIFT) > deadline:
                    # Every event in this and later buckets is later
                    # than the deadline; leave the bucket for next run.
                    return False
                # Zero-copy load: heapify the bucket list itself and hand
                # the drained (empty) ``_cur`` list back to the slot, so
                # a bucket load allocates nothing. Tombstones ride along
                # — the drain loop skips them on pop, which also lets the
                # refcount gate recycle them (a bulk filter here could
                # not: its transient references defeat the gate).
                wheel[idx] = self._cur
                self._wheel_count -= len(bucket)
                self._occ &= ~low
                self._cursor = idx
                heapify(bucket)
                self._cur = bucket
                return True
            # Wheel window exhausted: jump to the overflow's first event.
            overflow = self._overflow
            while overflow and overflow[0][2].state == CANCELLED:
                _, _, ev = pop(overflow)
                self._tombstones -= 1
                if getrefcount(ev) == 2:
                    self._slab.release(ev)
            if not overflow:
                return False
            t_min = overflow[0][0]
            if t_min > deadline:
                return False
            base = (t_min >> WHEEL_SHIFT) << WHEEL_SHIFT
            self._wheel_base = base
            self._cursor = -1
            limit = base + _WHEEL_HORIZON
            occ = 0
            count = 0
            while overflow and overflow[0][0] < limit:
                t, s, ev = pop(overflow)
                if ev.state == CANCELLED:
                    self._tombstones -= 1
                    if getrefcount(ev) == 2:
                        self._slab.release(ev)
                    continue
                idx = (t - base) >> WHEEL_SHIFT
                wheel[idx].append((t, s, ev))
                occ |= 1 << idx
                count += 1
            # The wheel was provably empty before the refill.
            self._occ = occ
            self._wheel_count = count
            # Loop: rescan the refilled window from slot 0.

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Fire the single next pending event. Returns False if none left."""
        pop = heappop
        while True:
            cur = self._cur
            while cur:
                head = cur[0]
                event = head[2]
                if event.state == CANCELLED:
                    pop(cur)
                    self._tombstones -= 1
                    del head
                    if getrefcount(event) == 2:
                        self._slab.release(event)
                    continue
                time = head[0]
                if time < self._now:
                    raise ClockError(
                        "event at t=%d behind clock t=%d" % (time, self._now)
                    )
                pop(cur)
                del head
                self._now = time
                event.state = FIRED
                self._fired += 1
                event.callback(*event.args)
                if getrefcount(event) == 2:
                    self._slab.release(event)
                return True
            if not self._advance(_INF):
                return False

    def peek_time(self) -> Optional[int]:
        """Time of the next pending event, or None if none remain."""
        pop = heappop
        cur = self._cur
        while cur:
            head = cur[0]
            if head[2].state != CANCELLED:
                return head[0]
            del head
            _, _, ev = pop(cur)
            self._tombstones -= 1
            if getrefcount(ev) == 2:
                self._slab.release(ev)
        mask = self._occ & -(1 << (self._cursor + 1))
        wheel = self._wheel
        while mask:
            idx = (mask & -mask).bit_length() - 1
            mask &= mask - 1
            best = None
            for tr in wheel[idx]:
                if tr[2].state != CANCELLED and (best is None or tr[0] < best):
                    best = tr[0]
            if best is not None:
                return best
        overflow = self._overflow
        while overflow:
            head = overflow[0]
            if head[2].state != CANCELLED:
                return head[0]
            del head
            _, _, ev = pop(overflow)
            self._tombstones -= 1
            if getrefcount(ev) == 2:
                self._slab.release(ev)
        return None

    def run(self, until: Optional[int] = None) -> int:
        """Run until the clock reaches ``until`` ns (absolute), or until no
        events remain if ``until`` is None. Returns the final clock value.

        If a deadline is given the clock is advanced exactly to it, so
        back-to-back ``run`` calls tile the timeline without gaps.
        """
        if until is not None and until < self._now:
            raise SchedulingError(
                "deadline t=%d is in the past (now t=%d)" % (until, self._now)
            )
        # The drain-loop variants (plain / sanitized / batch) are
        # generated from one template in repro.sim._drain; this is the
        # single selection seam. A float +inf deadline lets one
        # comparison cover the "no deadline" case (ints compare fine
        # against it). A sanitized run always takes the scalar
        # sanitized loop — even on a batch-drain subclass — because the
        # hook's "every N fired events" contract is per-event by
        # definition (that is why there is no batch-sanitized variant).
        deadline = _INF if until is None else until
        self._running = True
        try:
            if self._sanitize_hook is not None:
                drain_sanitized(self, deadline)
            else:
                self._drain(deadline)
        finally:
            self._running = False
        if until is not None:
            self._now = max(self._now, until)
        return self._now

    #: The hot drain loop, installed as an unbound method so subclasses
    #: (the fast backend's interpreted fallback) can swap in the batch
    #: variant by reassigning one attribute.
    _drain = drain_plain

    def set_sanitize_hook(self, hook: Callable[[], None], every_events: int) -> None:
        """Install an invariant-check hook invoked every ``every_events``
        fired events. Only the instrumented drain loop consults it, so a
        simulation without a hook runs the original loop unchanged."""
        if every_events <= 0:
            raise SchedulingError(
                "sanitize period must be positive, got %d" % every_events
            )
        self._sanitize_hook = hook
        self._sanitize_every = every_events

    def clear_sanitize_hook(self) -> None:
        self._sanitize_hook = None
        self._sanitize_every = 0

    def run_for(self, duration: int) -> int:
        """Run for ``duration`` ns of simulated time from the current clock."""
        return self.run(self._now + duration)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def stats(self) -> dict:
        """Counters describing scheduler activity (for tests/diagnostics).

        ``heap_size`` is the total number of resident triples (current
        slot + wheel buckets + overflow), i.e. the queue's memory
        footprint in events — the same meaning the key had when the core
        was a single binary heap.
        """
        slab = self._slab
        return {
            "backend": self.backend_name,
            "scheduled": self._seq,
            "fired": self._fired,
            "cancelled": self._cancelled,
            "pending": self._seq - self._fired - self._cancelled,
            "heap_size": (
                len(self._cur)
                + self._wheel_count
                + len(self._overflow)
                + self._inflight
            ),
            "compactions": self._compactions,
            "wheel_occupancy": bin(self._occ).count("1"),
            "wheel_events": self._wheel_count,
            "current_bucket": len(self._cur),
            "overflow_size": len(self._overflow),
            "slab_allocated": slab.allocated,
            "slab_reused": slab.reused,
            "slab_recycled": slab.recycled,
            "slab_free": len(slab._free),
            "slab_high_water": slab.high_water,
        }

    def __repr__(self) -> str:
        return (
            "%s(backend=%s, now=%d ns, pending=%d, wheel=%d slots/%d events, "
            "overflow=%d, slab_hw=%d)"
            % (
                type(self).__name__,
                self.backend_name,
                self._now,
                self._seq - self._fired - self._cancelled,
                bin(self._occ).count("1"),
                self._wheel_count,
                len(self._overflow),
                self._slab.high_water,
            )
        )
