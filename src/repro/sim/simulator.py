"""The discrete-event simulator core.

A :class:`Simulator` owns the virtual clock (integer nanoseconds) and a
binary heap of :class:`~repro.sim.events.Event` objects. Components
schedule callbacks at relative delays; :meth:`run` drains the heap in
time order until a deadline or until no events remain.

The simulator itself knows nothing about CPUs, packets, or kernels — those
are layered on top (see :mod:`repro.hw` and :mod:`repro.kernel`). It only
guarantees:

* the clock never moves backwards (:class:`~repro.sim.errors.ClockError`);
* events scheduled for the same instant fire in scheduling order;
* cancellation is O(1) and safe at any time before the event fires.

Performance notes (this module is the hot path of every experiment):

* :meth:`run` is a single fused drain loop — it peeks, pops and fires in
  one pass with heap operations bound to locals, instead of the
  ``peek_time()`` + ``step()`` pair which inspected the heap top twice
  per event;
* cancelled events are tombstones skipped on pop, but the heap is also
  *compacted* (pending events filtered and re-heapified) whenever
  tombstones outnumber live events — so cancellation-heavy workloads,
  including events cancelled long before their fire time, cannot grow
  the heap without bound;
* recurring work should use :meth:`schedule_periodic`, which re-arms one
  :class:`Event` object per timer instead of allocating a fresh event
  every tick. The callback runs once per ``interval_ns`` until the
  returned :class:`PeriodicEvent` handle is cancelled (either via
  ``handle.cancel()`` or ``Simulator.cancel(handle)``, safe even from
  inside the callback itself).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from .errors import ClockError, SchedulingError
from .events import CANCELLED, FIRED, PENDING, Event

#: Compaction is skipped below this heap size: tiny heaps are cheap to
#: scan and re-heapifying them constantly would cost more than it saves.
_COMPACT_MIN_HEAP = 64


class PeriodicEvent:
    """Handle for a recurring timer created by ``schedule_periodic``.

    One underlying :class:`Event` object is re-armed for every firing, so
    a periodic tick allocates nothing per period. Treat the handle as
    opaque: the only useful client operation is :meth:`cancel` (or,
    equivalently, passing the handle to ``Simulator.cancel``).
    """

    __slots__ = ("interval_ns", "fires", "_sim", "_event", "_active")

    def __init__(self, sim: "Simulator", interval_ns: int) -> None:
        self._sim = sim
        self._event: Optional[Event] = None
        self._active = True
        self.interval_ns = interval_ns
        self.fires = 0

    @property
    def active(self) -> bool:
        return self._active

    def cancel(self) -> bool:
        """Stop the timer. Safe from inside its own callback. Returns
        True if it was still active."""
        if not self._active:
            return False
        self._active = False
        event = self._event
        if event is not None and event.state == PENDING:
            # Cancel through the simulator so tombstone/pending counters
            # stay exact.
            self._sim.cancel(event)
        return True

    def __repr__(self) -> str:
        return "PeriodicEvent(every %d ns, fires=%d, %s)" % (
            self.interval_ns,
            self.fires,
            "active" if self._active else "cancelled",
        )


class Simulator:
    """Event loop and virtual clock for one simulation run."""

    def __init__(self) -> None:
        self._now: int = 0
        self._heap: List[Event] = []
        self._seq: int = 0
        self._running: bool = False
        self._fired: int = 0
        self._scheduled: int = 0
        self._cancelled: int = 0
        #: Exact number of PENDING events in the heap, maintained on
        #: schedule/cancel/fire so ``stats`` never scans the heap.
        self._pending: int = 0
        #: Number of CANCELLED events still sitting in the heap.
        self._tombstones: int = 0
        self._compactions: int = 0
        #: Optional invariant-sanitizer hook: ``(callable, every_n)``.
        #: When set, :meth:`run` switches to an instrumented drain loop
        #: that invokes the callable every ``every_n`` fired events; when
        #: None the original loop runs, so a sanitizer-free simulation
        #: pays nothing (checked once per ``run`` call, not per event).
        self._sanitize_hook: Optional[Callable[[], None]] = None
        self._sanitize_every: int = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------

    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    @property
    def running(self) -> bool:
        return self._running

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(
        self,
        delay: int,
        callback: Callable[..., Any],
        *args: Any,
        label: Optional[str] = None,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` ns from now.

        ``delay`` may be zero (the event fires after all events already
        scheduled for the current instant), but never negative.
        """
        if delay < 0:
            raise SchedulingError("cannot schedule into the past (delay=%d)" % delay)
        event = Event(self._now + delay, self._seq, callback, args, label=label)
        self._seq += 1
        self._scheduled += 1
        self._pending += 1
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(
        self,
        time: int,
        callback: Callable[..., Any],
        *args: Any,
        label: Optional[str] = None,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute time ``time`` ns."""
        if time < self._now:
            raise SchedulingError(
                "cannot schedule at t=%d, now is t=%d" % (time, self._now)
            )
        return self.schedule(time - self._now, callback, *args, label=label)

    def schedule_periodic(
        self,
        interval_ns: int,
        callback: Callable[..., Any],
        *args: Any,
        label: Optional[str] = None,
        first_delay: Optional[int] = None,
    ) -> PeriodicEvent:
        """Run ``callback(*args)`` every ``interval_ns`` until cancelled.

        The first firing is ``first_delay`` ns from now (default: one
        interval). One :class:`Event` object is re-armed for every firing,
        so clock/poll ticks do not allocate per period. Returns a
        :class:`PeriodicEvent` handle whose :meth:`~PeriodicEvent.cancel`
        is safe at any time, including from inside the callback.
        """
        if interval_ns <= 0:
            raise SchedulingError(
                "periodic interval must be positive, got %d" % interval_ns
            )
        if first_delay is not None and first_delay < 0:
            raise SchedulingError(
                "cannot schedule into the past (first_delay=%d)" % first_delay
            )
        handle = PeriodicEvent(self, interval_ns)

        def fire() -> None:
            handle.fires += 1
            callback(*args)
            if not handle._active:
                return
            event = handle._event
            event._rearm(event.time + interval_ns, self._seq)
            self._seq += 1
            self._scheduled += 1
            self._pending += 1
            heapq.heappush(self._heap, event)

        delay = interval_ns if first_delay is None else first_delay
        handle._event = self.schedule(delay, fire, label=label)
        return handle

    def cancel(self, event) -> bool:
        """Cancel a pending event (or a :class:`PeriodicEvent` handle).
        Returns True if it was still pending/active."""
        if isinstance(event, PeriodicEvent):
            return event.cancel()
        if event.state != PENDING:
            return False
        event.state = CANCELLED
        self._cancelled += 1
        self._pending -= 1
        self._tombstones += 1
        self._maybe_compact()
        return True

    # ------------------------------------------------------------------
    # Tombstone reclamation
    # ------------------------------------------------------------------

    def _maybe_compact(self) -> None:
        """Rebuild the heap without tombstones once they dominate it.

        Pop-time skipping only reclaims a cancelled event when the clock
        reaches its fire time; an event cancelled long before then would
        otherwise occupy heap slots indefinitely. Compacting when
        tombstones exceed half the heap bounds memory at ~2x the live
        event count while keeping cancellation amortised O(log n).
        """
        heap = self._heap
        if len(heap) >= _COMPACT_MIN_HEAP and self._tombstones * 2 > len(heap):
            self._heap = [e for e in heap if e.state == PENDING]
            heapq.heapify(self._heap)
            self._tombstones = 0
            self._compactions += 1

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Fire the single next pending event. Returns False if none left."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.state == CANCELLED:
                self._tombstones -= 1
                continue
            if event.time < self._now:
                raise ClockError(
                    "event at t=%d behind clock t=%d" % (event.time, self._now)
                )
            self._now = event.time
            event.state = FIRED
            self._fired += 1
            self._pending -= 1
            event.callback(*event.args)
            return True
        return False

    def peek_time(self) -> Optional[int]:
        """Time of the next pending event, or None if the heap is empty."""
        while self._heap and self._heap[0].state == CANCELLED:
            heapq.heappop(self._heap)
            self._tombstones -= 1
        return self._heap[0].time if self._heap else None

    def run(self, until: Optional[int] = None) -> int:
        """Run until the clock reaches ``until`` ns (absolute), or until no
        events remain if ``until`` is None. Returns the final clock value.

        If a deadline is given the clock is advanced exactly to it, so
        back-to-back ``run`` calls tile the timeline without gaps.
        """
        if until is not None and until < self._now:
            raise SchedulingError(
                "deadline t=%d is in the past (now t=%d)" % (until, self._now)
            )
        # Fused drain loop: peek, deadline-check, pop and fire in one pass
        # over the heap top, with the hot names bound to locals. A float
        # +inf deadline lets one comparison cover the "no deadline" case
        # (ints compare fine against it).
        deadline = float("inf") if until is None else until
        pop = heapq.heappop
        self._running = True
        try:
            if self._sanitize_hook is not None:
                self._drain_sanitized(deadline)
            else:
                while True:
                    heap = self._heap
                    if not heap:
                        break
                    event = heap[0]
                    if event.state == CANCELLED:
                        pop(heap)
                        self._tombstones -= 1
                        continue
                    time = event.time
                    if time > deadline:
                        break
                    if time < self._now:
                        raise ClockError(
                            "event at t=%d behind clock t=%d" % (time, self._now)
                        )
                    pop(heap)
                    self._now = time
                    event.state = FIRED
                    self._fired += 1
                    self._pending -= 1
                    event.callback(*event.args)
        finally:
            self._running = False
        if until is not None:
            self._now = max(self._now, until)
        return self._now

    def set_sanitize_hook(self, hook: Callable[[], None], every_events: int) -> None:
        """Install an invariant-check hook invoked every ``every_events``
        fired events. Only the instrumented drain loop consults it, so a
        simulation without a hook runs the original loop unchanged."""
        if every_events <= 0:
            raise SchedulingError(
                "sanitize period must be positive, got %d" % every_events
            )
        self._sanitize_hook = hook
        self._sanitize_every = every_events

    def clear_sanitize_hook(self) -> None:
        self._sanitize_hook = None
        self._sanitize_every = 0

    def _drain_sanitized(self, deadline) -> None:
        """The instrumented twin of :meth:`run`'s drain loop: identical
        event semantics, plus the sanitizer hook every N fired events."""
        pop = heapq.heappop
        hook = self._sanitize_hook
        every = self._sanitize_every
        countdown = every
        while True:
            heap = self._heap
            if not heap:
                break
            event = heap[0]
            if event.state == CANCELLED:
                pop(heap)
                self._tombstones -= 1
                continue
            time = event.time
            if time > deadline:
                break
            if time < self._now:
                raise ClockError(
                    "event at t=%d behind clock t=%d" % (time, self._now)
                )
            pop(heap)
            self._now = time
            event.state = FIRED
            self._fired += 1
            self._pending -= 1
            event.callback(*event.args)
            countdown -= 1
            if countdown <= 0:
                countdown = every
                hook()

    def run_for(self, duration: int) -> int:
        """Run for ``duration`` ns of simulated time from the current clock."""
        return self.run(self._now + duration)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def stats(self) -> dict:
        """Counters describing scheduler activity (for tests/diagnostics)."""
        return {
            "scheduled": self._scheduled,
            "fired": self._fired,
            "cancelled": self._cancelled,
            "pending": self._pending,
            "heap_size": len(self._heap),
            "compactions": self._compactions,
        }

    def __repr__(self) -> str:
        return "Simulator(now=%d ns, pending=%d)" % (self._now, self._pending)
