"""Runtime invariant sanitizer (opt-in, like a kernel's lock assertions).

The simulator's hot paths lean on cached state for speed: cached task
sort keys, the TX done-prefix representation, the packet-pool ownership
flag. Each cache is an invariant that, if silently broken, corrupts
results rather than crashing. The sanitizer re-derives those invariants
from first principles every N fired events and raises
:class:`~repro.sim.errors.InvariantViolation` at the first divergence —
close to the event that broke it, instead of at the end of a trial.

Checked invariants:

* **packet pool** — release count never exceeds acquisitions; every
  freelist entry carries the pooled flag; the freelist respects its cap;
* **NIC rings** — RX/TX occupancy within capacity; the TX done-prefix
  count never exceeds the ring population;
* **IPL / dispatch** — every runnable task's cached effective IPL and
  sort key match recomputation from ``base_ipl``/``spl_level``; the
  running task has the maximum key; no interrupt line sits requested,
  enabled, out of service, and above the CPU's IPL (such a line must
  have been delivered before the event loop moved on);
* **scheduler** — the calendar queue's derived bookkeeping matches a
  full rescan: the wheel triple count and occupancy bitmap agree with
  the buckets, the tombstone counter equals the number of resident
  CANCELLED triples, every resident triple's ``(time, seq)`` key
  matches its event's fields, and the event-slab freelist respects its
  cap and holds only retired events.

The hook runs from the simulator's instrumented drain loop (see
``Simulator.set_sanitize_hook``), which is only selected while a hook is
attached — a sanitizer-free run executes the original loop unchanged.
"""

from __future__ import annotations

from typing import Optional

from .errors import InvariantViolation
from .events import CANCELLED, PENDING
from .simulator import WHEEL_SLOTS


class InvariantSanitizer:
    """Periodic invariant checks over one router's hardware and kernel."""

    def __init__(self, router, every_events: Optional[int] = None) -> None:
        self.router = router
        self.every_events = (
            every_events
            if every_events is not None
            else router.config.sanitize_every_events
        )
        if self.every_events <= 0:
            raise ValueError("sanitize period must be positive")
        self.checks_run = 0
        self._attached = False

    # ------------------------------------------------------------------

    def attach(self) -> "InvariantSanitizer":
        if self._attached:
            raise RuntimeError("sanitizer already attached")
        self._attached = True
        self.router.sim.set_sanitize_hook(self.check, self.every_events)
        return self

    def detach(self) -> None:
        if self._attached:
            self._attached = False
            self.router.sim.clear_sanitize_hook()

    # ------------------------------------------------------------------

    def check(self) -> None:
        """Run every invariant once (also callable directly from tests)."""
        self.checks_run += 1
        self._check_pool()
        self._check_rings()
        self._check_ipl()
        self._check_scheduler()

    def check_trial_end(self, teardown_report: dict) -> None:
        """Post-teardown ownership check: with the pool enabled, every
        acquired packet must be delivered, recovered, or accounted as an
        interior drop — anything else is a leak or a double release."""
        leaked = teardown_report.get("leaked")
        if leaked is None:
            return
        if leaked > 0:
            raise InvariantViolation(
                "%d pooled packet(s) leaked at trial end (outstanding=%d, "
                "interior drops=%d, retained=%d)"
                % (
                    leaked,
                    teardown_report["outstanding"],
                    teardown_report["interior_drops"],
                    teardown_report["retained"],
                )
            )
        if leaked < 0:
            raise InvariantViolation(
                "packet pool over-released by %d at trial end (double "
                "release not caught at release time)" % -leaked
            )

    # ------------------------------------------------------------------

    def _check_pool(self) -> None:
        pool = self.router.packet_pool
        acquired = pool.allocated + pool.reused
        if pool.released > acquired:
            raise InvariantViolation(
                "packet pool released %d packets but only %d were acquired"
                % (pool.released, acquired)
            )
        free = pool._free
        if len(free) > pool.max_free:
            raise InvariantViolation(
                "packet pool freelist holds %d entries, cap is %d"
                % (len(free), pool.max_free)
            )
        for packet in free:
            if not packet._pooled:
                raise InvariantViolation(
                    "freelist entry %r lacks the pooled flag (it could be "
                    "handed out while still referenced elsewhere)" % packet
                )

    def _check_rings(self) -> None:
        for nic in (self.router.nic_in, self.router.nic_out):
            rx = len(nic._rx_ring)
            if rx > nic.rx_ring_capacity:
                raise InvariantViolation(
                    "NIC %s RX ring holds %d descriptors, capacity %d"
                    % (nic.name, rx, nic.rx_ring_capacity)
                )
            tx = len(nic._tx_ring)
            if tx > nic.tx_ring_capacity:
                raise InvariantViolation(
                    "NIC %s TX ring holds %d descriptors, capacity %d"
                    % (nic.name, tx, nic.tx_ring_capacity)
                )
            if nic._tx_done > tx:
                raise InvariantViolation(
                    "NIC %s reports %d done TX descriptors with only %d in "
                    "the ring" % (nic.name, nic._tx_done, tx)
                )

    def _check_ipl(self) -> None:
        kernel = self.router.kernel
        for cpu, controller in zip(kernel.cpus, kernel.controllers):
            self._check_core_ipl(cpu, controller)

    def _check_core_ipl(self, cpu, controller) -> None:
        best_key = None
        for task in cpu._remaining:
            expected_ipl = (
                task.base_ipl
                if task.base_ipl >= task.spl_level
                else task.spl_level
            )
            if task._eff_ipl != expected_ipl:
                raise InvariantViolation(
                    "task %s caches effective IPL %d, recomputation gives %d "
                    "(base=%d, spl=%d)"
                    % (
                        task.name,
                        task._eff_ipl,
                        expected_ipl,
                        task.base_ipl,
                        task.spl_level,
                    )
                )
            expected_key = (expected_ipl, task.priority_class, -task._ready_seq)
            if task._key != expected_key:
                raise InvariantViolation(
                    "task %s caches sort key %r, recomputation gives %r"
                    % (task.name, task._key, expected_key)
                )
            if best_key is None or task._key > best_key:
                best_key = task._key
        current = cpu._current
        if current is not None and best_key is not None and current._key < best_key:
            raise InvariantViolation(
                "CPU runs %s (key %r) while a higher-key task is runnable "
                "(best %r) — IPL preemption mask inconsistent"
                % (current.name, current._key, best_key)
            )
        ipl = cpu.current_ipl
        for line in controller.lines:
            if (
                line.requested
                and line.enabled
                and not line.in_service
                and line.ipl > ipl
            ):
                raise InvariantViolation(
                    "interrupt line %s is deliverable (ipl %d > cpu %d) but "
                    "was not dispatched before the event loop moved on"
                    % (line.name, line.ipl, ipl)
                )

    def _check_scheduler(self) -> None:
        """Re-derive the calendar queue's cached bookkeeping by rescanning
        the resident triples. The hot paths maintain ``_wheel_count``,
        ``_occ`` and ``_tombstones`` incrementally (and derive the pending
        count from three counters); a single missed update anywhere would
        silently skip or duplicate events."""
        sim = self.router.sim
        if not (-1 <= sim._cursor < WHEEL_SLOTS):
            raise InvariantViolation(
                "wheel cursor %d outside [-1, %d)" % (sim._cursor, WHEEL_SLOTS)
            )
        bucket_count = 0
        for idx, bucket in enumerate(sim._wheel):
            if bucket:
                bucket_count += len(bucket)
                if not sim._occ & (1 << idx):
                    raise InvariantViolation(
                        "wheel bucket %d holds %d triples but its occupancy "
                        "bit is clear (the drain would never visit it)"
                        % (idx, len(bucket))
                    )
        if bucket_count != sim._wheel_count:
            raise InvariantViolation(
                "wheel count caches %d resident triples, rescan finds %d"
                % (sim._wheel_count, bucket_count)
            )
        residents = 0
        tombstones = 0
        for queue in (sim._cur, *sim._wheel, sim._overflow):
            for time, seq, event in queue:
                residents += 1
                state = event.state
                if state == CANCELLED:
                    tombstones += 1
                elif state != PENDING:
                    raise InvariantViolation(
                        "resident triple holds %r — fired events must be "
                        "popped before their callback runs" % event
                    )
                if event.time != time or event.seq != seq:
                    raise InvariantViolation(
                        "triple key (t=%d, seq=%d) diverges from its event "
                        "%r (a re-arm must pop the old triple first)"
                        % (time, seq, event)
                    )
        if tombstones != sim._tombstones:
            raise InvariantViolation(
                "tombstone counter caches %d, rescan finds %d resident "
                "cancelled events" % (sim._tombstones, tombstones)
            )
        pending = sim._seq - sim._fired - sim._cancelled
        if residents - tombstones != pending:
            raise InvariantViolation(
                "%d live resident events but the counters derive pending=%d "
                "(scheduled=%d, fired=%d, cancelled=%d)"
                % (residents - tombstones, pending, sim._seq, sim._fired,
                   sim._cancelled)
            )
        slab = sim._slab
        free = slab._free
        if len(free) > slab.max_free:
            raise InvariantViolation(
                "event slab freelist holds %d entries, cap is %d"
                % (len(free), slab.max_free)
            )
        if slab.high_water < len(free):
            raise InvariantViolation(
                "event slab high-water mark %d below current freelist "
                "length %d" % (slab.high_water, len(free))
            )
        for event in free:
            if event.state == PENDING:
                raise InvariantViolation(
                    "event slab freelist holds pending %r (it could be "
                    "handed out while still queued)" % event
                )

    def __repr__(self) -> str:
        return "InvariantSanitizer(every=%d, checks=%d%s)" % (
            self.every_events,
            self.checks_run,
            ", attached" if self._attached else "",
        )
