"""Event objects for the discrete-event scheduler.

Events are one-shot callbacks pinned to a simulation time. They support
O(1) cancellation via tombstoning: a cancelled event stays in the heap but
is skipped when popped. This is the standard technique for event heaps
with frequent cancellation (here: CPU work-completion events cancelled on
every preemption).
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Tuple

#: State constants. An event moves PENDING -> {FIRED, CANCELLED} exactly once.
PENDING = "pending"
FIRED = "fired"
CANCELLED = "cancelled"


class Event:
    """A scheduled callback.

    Instances are created by :meth:`repro.sim.simulator.Simulator.schedule`
    and should be treated as opaque handles by client code; the only useful
    client operation is passing them back to ``Simulator.cancel``.
    """

    __slots__ = ("time", "seq", "callback", "args", "state", "label", "_key")

    def __init__(
        self,
        time: int,
        seq: int,
        callback: Callable[..., Any],
        args: Tuple[Any, ...],
        label: Optional[str] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.state = PENDING
        self.label = label
        self._key = (time, seq)

    def _rearm(self, time: int, seq: int) -> None:
        """Reuse this (fired) event object for a new firing time.

        Only the simulator's periodic scheduling calls this; ``time`` and
        ``seq`` must change together so the cached heap key stays valid.
        """
        self.time = time
        self.seq = seq
        self.state = PENDING
        self._key = (time, seq)

    @property
    def pending(self) -> bool:
        return self.state == PENDING

    @property
    def cancelled(self) -> bool:
        return self.state == CANCELLED

    def sort_key(self) -> Tuple[int, int]:
        """Heap ordering: by time, ties broken by scheduling order so that
        same-time events fire in FIFO order (deterministic)."""
        return self._key

    def __lt__(self, other: "Event") -> bool:
        # The key tuple is precomputed at schedule time: heap sifts compare
        # events many times per push/pop, and building the tuples on every
        # comparison dominated the scheduler profile.
        return self._key < other._key

    def __repr__(self) -> str:
        name = self.label or getattr(self.callback, "__name__", "callback")
        return "Event(t=%d, seq=%d, %s, %s)" % (self.time, self.seq, name, self.state)
