"""Event objects for the discrete-event scheduler.

Events are one-shot callbacks pinned to a simulation time. They support
O(1) cancellation via tombstoning: a cancelled event stays wherever it is
queued (a wheel bucket or the overflow heap) and is skipped when reached.
This is the standard technique for event schedulers with frequent
cancellation (here: CPU work-completion events cancelled on every
preemption).

:class:`EventSlab` is the scheduler's freelist of Event objects,
mirroring :class:`repro.net.packet.PacketPool`: the drain loop returns an
event to the slab the moment it fires (or is reclaimed as a tombstone)
*provided nothing else still references it*, and ``schedule`` re-arms a
recycled object instead of allocating. At steady state the hot loop
therefore allocates zero Event objects. Recycling is reference-safe: an
event is only returned to the slab when ``sys.getrefcount`` proves the
scheduler holds the sole reference, so a client that kept the handle
returned by ``schedule`` can never observe its event being reused.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Tuple

#: State constants. An event moves PENDING -> {FIRED, CANCELLED} exactly once
#: (a slab-recycled object starts a fresh PENDING life with a new seq).
PENDING = "pending"
FIRED = "fired"
CANCELLED = "cancelled"


class Event:
    """A scheduled callback.

    Instances are created by :meth:`repro.sim.simulator.Simulator.schedule`
    and should be treated as opaque handles by client code; the only useful
    client operation is passing them back to ``Simulator.cancel``.
    """

    __slots__ = ("time", "seq", "callback", "args", "state", "label")

    def __init__(
        self,
        time: int,
        seq: int,
        callback: Callable[..., Any],
        args: Tuple[Any, ...],
        label: Optional[str] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.state = PENDING
        self.label = label

    def _rearm(self, time: int, seq: int) -> None:
        """Reuse this (fired) event object for a new firing time.

        Only the simulator's periodic scheduling calls this; ``time`` and
        ``seq`` must change together so the ordering key stays valid.
        """
        self.time = time
        self.seq = seq
        self.state = PENDING

    @property
    def pending(self) -> bool:
        return self.state == PENDING

    @property
    def cancelled(self) -> bool:
        return self.state == CANCELLED

    def sort_key(self) -> Tuple[int, int]:
        """Scheduler ordering: by time, ties broken by scheduling order so
        that same-time events fire in FIFO order (deterministic)."""
        return (self.time, self.seq)

    def __lt__(self, other: "Event") -> bool:
        # Kept for any client-side sorting of event handles. The
        # scheduler itself orders (time, seq, event) triples, so this is
        # never on the hot path and the key needn't be cached.
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:
        name = self.label or getattr(self.callback, "__name__", "callback")
        return "Event(t=%d, seq=%d, %s, %s)" % (self.time, self.seq, name, self.state)


class EventSlab:
    """Freelist of recycled :class:`Event` objects (the scheduler's
    ``PacketPool``).

    The simulator inlines the acquire/release fast paths; the methods here
    are the cold-path equivalents used by tests and diagnostics. Counters:

    * ``allocated`` — events built fresh because the freelist was empty;
    * ``reused`` — schedules served by re-arming a recycled object;
    * ``recycled`` — fired/cancelled events returned to the freelist.
      Not a stored counter: every released event is either still on the
      freelist or was since reused, so ``recycled == reused + len(free)``
      exactly;
    * ``high_water`` — maximum freelist length ever reached (how much of
      the slab the workload actually uses).

    ``max_free`` caps the freelist so a one-off scheduling burst cannot
    pin memory forever — beyond the cap, retired events are simply left
    to the garbage collector.

    A retired event keeps its last ``callback``/``args`` references until
    it is re-armed: re-arming overwrites them anyway, so clearing at
    release time would be pure per-event overhead on the drain loop. The
    cost is that up to ``max_free`` retired events may transiently pin
    their final payloads — bounded, and invisible next to the packet
    pool's own freelist.
    """

    __slots__ = ("max_free", "_free", "allocated", "reused", "high_water")

    #: Default freelist cap: far above the live-event population of any
    #: paper-scale trial (a few hundred), small enough to be invisible.
    DEFAULT_MAX_FREE = 4096

    def __init__(self, max_free: int = DEFAULT_MAX_FREE) -> None:
        if max_free < 0:
            raise ValueError("slab cap must be non-negative")
        self.max_free = max_free
        self._free: list = []
        self.allocated = 0
        self.reused = 0
        self.high_water = 0

    def acquire(
        self,
        time: int,
        seq: int,
        callback: Callable[..., Any],
        args: Tuple[Any, ...],
        label: Optional[str] = None,
    ) -> Event:
        """A PENDING event armed for ``(time, seq)`` — recycled if possible."""
        free = self._free
        if free:
            event = free.pop()
            self.reused += 1
            event.time = time
            event.seq = seq
            event.callback = callback
            event.args = args
            event.state = PENDING
            event.label = label
            return event
        self.allocated += 1
        return Event(time, seq, callback, args, label=label)

    def release(self, event: Event) -> bool:
        """Return a retired event to the freelist. Returns False when the
        freelist is at capacity. (The drain loops inline this body; keep
        the two in step.)"""
        free = self._free
        n = len(free)
        if n >= self.max_free:
            return False
        free.append(event)
        if n >= self.high_water:
            self.high_water = n + 1
        return True

    @property
    def recycled(self) -> int:
        return self.reused + len(self._free)

    def stats(self) -> dict:
        return {
            "allocated": self.allocated,
            "reused": self.reused,
            "recycled": self.recycled,
            "free": len(self._free),
            "high_water": self.high_water,
            "max_free": self.max_free,
        }

    def __repr__(self) -> str:
        return "EventSlab(free=%d, allocated=%d, reused=%d, high_water=%d)" % (
            len(self._free),
            self.allocated,
            self.reused,
            self.high_water,
        )
