"""Event objects for the discrete-event scheduler.

Events are one-shot callbacks pinned to a simulation time. They support
O(1) cancellation via tombstoning: a cancelled event stays in the heap but
is skipped when popped. This is the standard technique for event heaps
with frequent cancellation (here: CPU work-completion events cancelled on
every preemption).
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Tuple

#: State constants. An event moves PENDING -> {FIRED, CANCELLED} exactly once.
PENDING = "pending"
FIRED = "fired"
CANCELLED = "cancelled"


class Event:
    """A scheduled callback.

    Instances are created by :meth:`repro.sim.simulator.Simulator.schedule`
    and should be treated as opaque handles by client code; the only useful
    client operation is passing them back to ``Simulator.cancel``.
    """

    __slots__ = ("time", "seq", "callback", "args", "state", "label")

    def __init__(
        self,
        time: int,
        seq: int,
        callback: Callable[..., Any],
        args: Tuple[Any, ...],
        label: Optional[str] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.state = PENDING
        self.label = label

    @property
    def pending(self) -> bool:
        return self.state == PENDING

    @property
    def cancelled(self) -> bool:
        return self.state == CANCELLED

    def sort_key(self) -> Tuple[int, int]:
        """Heap ordering: by time, ties broken by scheduling order so that
        same-time events fire in FIFO order (deterministic)."""
        return (self.time, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key() < other.sort_key()

    def __repr__(self) -> str:
        name = self.label or getattr(self.callback, "__name__", "callback")
        return "Event(t=%d, seq=%d, %s, %s)" % (self.time, self.seq, name, self.state)
