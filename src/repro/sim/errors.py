"""Exception hierarchy for the simulation engine."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all simulator errors."""


class SchedulingError(SimulationError):
    """Raised for invalid event scheduling (negative delay, reuse of a
    cancelled event, scheduling into the past)."""


class ProcessError(SimulationError):
    """Raised when a simulation process misbehaves (yields an unknown
    command, resumes a dead process, double-starts)."""


class ClockError(SimulationError):
    """Raised when the simulation clock would move backwards."""
