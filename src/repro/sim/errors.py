"""Exception hierarchy for the simulation engine."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all simulator errors."""


class SchedulingError(SimulationError):
    """Raised for invalid event scheduling (negative delay, reuse of a
    cancelled event, scheduling into the past)."""


class ProcessError(SimulationError):
    """Raised when a simulation process misbehaves (yields an unknown
    command, resumes a dead process, double-starts)."""


class ClockError(SimulationError):
    """Raised when the simulation clock would move backwards."""


class FaultError(SimulationError):
    """Raised for an invalid fault-injection setup (malformed
    :class:`~repro.faults.FaultPlan`, arming after start, arming twice)."""


class WatchdogTimeout(SimulationError):
    """Raised by the livelock watchdog when a trial makes no progress for
    its configured number of windows and aborting was requested. The
    sweep engine records the aborted trial as a ``TrialFailure``."""


class InvariantViolation(SimulationError):
    """Raised by the runtime invariant sanitizer when a checked invariant
    (packet-pool ownership, ring bounds, IPL-mask consistency) is broken."""
