"""Runtime selection between the pure and compiled simulator cores.

Three knobs, highest priority first:

1. ``TrialSpec.backend`` / the ``backend=`` trial kwarg;
2. the ``REPRO_BACKEND`` environment variable;
3. the default: ``"pure"``.

``"pure"`` is the reference oracle — the plain-python
:class:`~repro.sim.simulator.Simulator`. ``"fast"`` is the best
available :mod:`repro._fastcore` flavour (C extension, mypyc, or the
interpreted fallback — see that package). The two are bit-identical by
contract, which is why the backend is *stripped from cache
fingerprints* (:mod:`repro.experiments.engine`): a cached trial is
valid for either backend, and ``TrialResult.backend`` records which
flavour actually computed it.

The invariant sanitizer is the one feature the compiled cores do not
carry (its hook fires per event, which a compiled batch loop cannot
honour without giving up its advantage): ``sanitize=True`` trials are
forced back to ``pure`` with a logged reason (see
``repro.experiments.harness.run_trial``).
"""

from __future__ import annotations

import logging
import os
from typing import Optional

from .simulator import Simulator

log = logging.getLogger("repro.backend")

PURE = "pure"
FAST = "fast"
BACKENDS = (PURE, FAST)

#: Environment variable consulted when no explicit backend is given.
ENV_VAR = "REPRO_BACKEND"


def resolve_backend(name: Optional[str] = None) -> str:
    """Normalize a backend request to ``"pure"`` or ``"fast"``.

    ``None`` consults :data:`ENV_VAR`, then defaults to ``"pure"``.
    Unknown names raise ``ValueError`` — a typo silently running the
    wrong core would be worse than a crash.
    """
    if name is None:
        name = os.environ.get(ENV_VAR) or PURE
    if name not in BACKENDS:
        raise ValueError(
            "unknown simulator backend %r (expected one of %s, or unset)"
            % (name, "/".join(BACKENDS))
        )
    return name


def make_simulator(backend: Optional[str] = None) -> Simulator:
    """A fresh simulator for the resolved ``backend``.

    The returned object's ``backend_name`` says what actually runs:
    ``"pure"``, or for ``"fast"`` the resolved flavour (``fast-c`` /
    ``fast-mypyc`` / ``fast-py``).
    """
    if resolve_backend(backend) == FAST:
        from repro._fastcore import FastCore

        return FastCore()
    return Simulator()


def fastcore_kind() -> str:
    """The flavour ``backend="fast"`` resolves to in this process."""
    from repro._fastcore import FASTCORE_KIND

    return FASTCORE_KIND
