"""Signals: lightweight condition variables for simulation processes.

A :class:`Signal` is a named wake-up channel. Processes block on it with
``yield WaitSignal(signal)``; any other component wakes them with
:meth:`Signal.fire` (wake all) or :meth:`Signal.fire_one` (wake the
longest-waiting process). Wake-ups are **deferred**: the woken process
resumes via a zero-delay event, after the code that fired the signal has
finished its current step. This keeps control flow non-reentrant and
deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .process import Process
    from .simulator import Simulator


class Signal:
    """A wake-up channel for processes blocked in ``WaitSignal``."""

    def __init__(self, sim: "Simulator", name: str = "signal") -> None:
        self._sim = sim
        self.name = name
        self._waiters: Deque["Process"] = deque()
        self._fires: int = 0

    # ------------------------------------------------------------------

    def add_waiter(self, process: "Process") -> None:
        """Register a process as blocked on this signal (engine-internal)."""
        self._waiters.append(process)

    def remove_waiter(self, process: "Process") -> bool:
        """Withdraw a blocked process (e.g. when it is being killed)."""
        try:
            self._waiters.remove(process)
            return True
        except ValueError:
            return False

    # ------------------------------------------------------------------

    @property
    def waiter_count(self) -> int:
        return len(self._waiters)

    @property
    def fire_count(self) -> int:
        return self._fires

    # ------------------------------------------------------------------

    def fire(self, value: Any = None) -> int:
        """Wake every waiting process; returns the number woken.

        Processes that start waiting *after* this call are unaffected
        (edge-triggered semantics, like a condition-variable broadcast).
        """
        self._fires += 1
        woken = 0
        while self._waiters:
            process = self._waiters.popleft()
            self._sim.schedule(0, process.deliver, value, label="wake:" + self.name)
            woken += 1
        return woken

    def fire_one(self, value: Any = None) -> bool:
        """Wake the longest-waiting process, if any; returns True if woken."""
        self._fires += 1
        if not self._waiters:
            return False
        process = self._waiters.popleft()
        self._sim.schedule(0, process.deliver, value, label="wake:" + self.name)
        return True

    def __repr__(self) -> str:
        return "Signal(%s, waiters=%d)" % (self.name, len(self._waiters))
