"""Drain-loop codegen: one template, three loop bodies.

The simulator's drain loop exists in three flavours:

* **plain** — the default hot loop (exactly what ``Simulator.run`` used
  to inline);
* **sanitized** — the same loop plus an invariant-check hook every N
  fired events;
* **batch** — the fast-backend loop: pop up to :data:`BATCH_CHUNK`
  runnable triples into a buffer, then fire them back-to-back, paying
  the heap/deadline bookkeeping once per chunk instead of once per
  event. This is the pure-python model of the compiled
  ``repro._fastcore`` drain and the fallback when no extension built.

Historically the first two were hand-written twins that had to be kept
in step by code review. They are now *generated* from the fragments
below, so a change to the shared body (tombstone skip, slab recycle,
clock checks) lands in every variant by construction, and adding the
batch loop made three drain copies, not four: a sanitized simulation
always takes the scalar sanitized loop (see ``Simulator.run``), because
the sanitizer's "every N fired events" contract is awkward to honour
mid-chunk and the sanitizer already rescans the whole queue anyway.

Behavioural identity of all three variants — same firing order, same
counter values observable from inside any callback, same final stats —
is asserted by ``tests/sim/test_drain_variants.py``.

Why the batch loop is observably identical to the scalar one, not just
"same firing order":

* tombstones are *buffered*, not reclaimed at fill time, and skipped at
  exactly the position the scalar loop would pop them, so
  ``_tombstones`` / slab counters evolve identically at every callback
  boundary;
* ``_inflight`` counts buffered-but-unfired triples and is added to
  ``stats["heap_size"]``, so a watchdog sampling scheduler pressure
  from inside a chunk sees the same resident count either way;
* a compaction triggered by ``cancel`` inside a callback filters the
  in-flight buffer too (``Simulator._compact``), and the fire phase
  detects it via the ``_compactions`` counter and restarts on the
  filtered buffer;
* an event scheduled *during* a chunk that orders before a buffered
  event forces a spill: the remaining buffer is pushed back into the
  current-slot heap and the fill phase re-runs. Same-instant schedules
  need no spill — they get a fresh (higher) seq, so FIFO order already
  places them after every buffered triple.
"""

from __future__ import annotations

from heapq import heappop, heappush
from sys import getrefcount

from .errors import ClockError
from .events import CANCELLED, FIRED

#: Events fired per buffer fill in the batch drain. Large enough to
#: amortise the per-chunk bookkeeping, small enough that the buffer
#: stays in cache and a deadline overshoot costs at most one refill.
BATCH_CHUNK = 128


def _recycle(var: str, indent: int) -> str:
    """The inlined ``EventSlab.release`` fast path (refcount-gated)."""
    pad = " " * indent
    return (
        "{p}if getref({v}) == 2:\n"
        "{p}    nfree = len(free)\n"
        "{p}    if nfree < cap:\n"
        "{p}        free.append({v})\n"
        "{p}        if nfree >= slab.high_water:\n"
        "{p}            slab.high_water = nfree + 1\n"
    ).format(p=pad, v=var)


_SCALAR_TEMPLATE = """\
def {name}(self, deadline):
    pop = heappop
    getref = getrefcount
    slab = self._slab
    free = slab._free
    cap = slab.max_free
    advance = self._advance
{setup}\
    while True:
        cur = self._cur
        while cur:
            head = cur[0]
            event = head[2]
            if event.state == CANCELLED:
                pop(cur)
                self._tombstones -= 1
                del head
{recycle_skip}\
                continue
            time = head[0]
            if time > deadline:
                break
            if time < self._now:
                raise ClockError(
                    "event at t=%d behind clock t=%d" % (time, self._now)
                )
            pop(cur)
            del head
            self._now = time
            event.state = FIRED
            self._fired += 1
            event.callback(*event.args)
{recycle_fire}\
{post_fire}\
        else:
            if advance(deadline):
                continue
        break
"""

_SANITIZE_SETUP = """\
    hook = self._sanitize_hook
    every = self._sanitize_every
    countdown = every
"""

_SANITIZE_POST_FIRE = """\
            countdown -= 1
            if countdown <= 0:
                countdown = every
                hook()
"""

_BATCH_TEMPLATE = """\
def {name}(self, deadline):
    pop = heappop
    push = heappush
    getref = getrefcount
    slab = self._slab
    free = slab._free
    cap = slab.max_free
    advance = self._advance
    chunk = BATCH_CHUNK
    buf = []
    self._inflight_buf = buf
    try:
        while True:
            cur = self._cur
            # Fill: pop up to `chunk` runnable triples without firing.
            # Tombstones ride along un-reclaimed so the fire phase can
            # skip them at exactly the scalar loop's position.
            fill = 0
            while cur and fill < chunk:
                head = cur[0]
                if head[2].state != CANCELLED and head[0] > deadline:
                    break
                pop(cur)
                buf.append(head)
                fill += 1
            if not buf:
                if cur:
                    break
                if advance(deadline):
                    continue
                break
            # Fire: consume the buffer in (time, seq) order.
            self._inflight = fill
            gen = self._compactions
            i = 0
            nbuf = fill
            while i < nbuf:
                head = buf[i]
                buf[i] = None
                i += 1
                # Anything in the heap that orders before `head` was
                # scheduled (or left over) during this chunk: reclaim
                # tombstones inline, spill on a live event.
                live = None
                while cur:
                    nxt = cur[0]
                    if not nxt < head:
                        break
                    event = nxt[2]
                    if event.state == CANCELLED:
                        pop(cur)
                        self._tombstones -= 1
                        del nxt
{recycle_guard}\
                        continue
                    live = nxt
                    break
                if live is not None:
                    push(cur, head)
                    while i < nbuf:
                        push(cur, buf[i])
                        buf[i] = None
                        i += 1
                    break
                event = head[2]
                if event.state == CANCELLED:
                    self._tombstones -= 1
                    del head
                    self._inflight = nbuf - i
{recycle_skip}\
                    continue
                time = head[0]
                if time < self._now:
                    raise ClockError(
                        "event at t=%d behind clock t=%d" % (time, self._now)
                    )
                del head
                self._now = time
                event.state = FIRED
                self._fired += 1
                self._inflight = nbuf - i
                event.callback(*event.args)
{recycle_fire}\
                if self._compactions != gen:
                    # A cancel inside the callback compacted the queue;
                    # _compact filtered `buf` in place (consumed slots
                    # and tombstones dropped), so restart on it.
                    gen = self._compactions
                    i = 0
                    nbuf = len(buf)
            del buf[:]
            self._inflight = 0
    finally:
        self._inflight_buf = None
        self._inflight = 0
        if buf:
            # A callback raised mid-chunk (e.g. WatchdogTimeout): put
            # the unfired remainder back so the queue stays consistent.
            cur = self._cur
            for head in buf:
                if head is not None:
                    push(cur, head)
            del buf[:]
"""


def _render(kind: str, name: str) -> str:
    if kind == "plain":
        return _SCALAR_TEMPLATE.format(
            name=name,
            setup="",
            post_fire="",
            recycle_skip=_recycle("event", 16),
            recycle_fire=_recycle("event", 12),
        )
    if kind == "sanitized":
        return _SCALAR_TEMPLATE.format(
            name=name,
            setup=_SANITIZE_SETUP,
            post_fire=_SANITIZE_POST_FIRE,
            recycle_skip=_recycle("event", 16),
            recycle_fire=_recycle("event", 12),
        )
    if kind == "batch":
        return _BATCH_TEMPLATE.format(
            name=name,
            recycle_guard=_recycle("event", 24),
            recycle_skip=_recycle("event", 20),
            recycle_fire=_recycle("event", 16),
        )
    raise ValueError("unknown drain kind %r" % (kind,))


def make_drain(kind: str, name: str = None):
    """Compile and return the drain function for ``kind``.

    ``kind`` is one of ``"plain"``, ``"sanitized"``, ``"batch"``. The
    returned function has signature ``(self, deadline)`` and is meant to
    be installed as a method on :class:`~repro.sim.simulator.Simulator`
    (or a subclass).
    """
    name = name or "drain_" + kind
    source = _render(kind, name)
    namespace = {
        "heappop": heappop,
        "heappush": heappush,
        "getrefcount": getrefcount,
        "CANCELLED": CANCELLED,
        "FIRED": FIRED,
        "ClockError": ClockError,
        "BATCH_CHUNK": BATCH_CHUNK,
    }
    code = compile(source, "<drain:%s>" % kind, "exec")
    exec(code, namespace)
    return namespace[name]


#: Rendered sources, for inspection and for the identity test's "the
#: scalar variants differ only by the sanitizer fragments" assertion.
DRAIN_SOURCES = {kind: _render(kind, "drain_" + kind) for kind in (
    "plain", "sanitized", "batch",
)}

drain_plain = make_drain("plain")
drain_sanitized = make_drain("sanitized")
drain_batch = make_drain("batch")
