"""Livelock watchdog: windowed progress tracking with a structured verdict.

The paper defines livelock operationally — "the system spends all its
time processing interrupts, to the exclusion of other necessary tasks"
(§1) — so the watchdog measures exactly that: in fixed windows of
simulated time it compares *input pressure* (frames reaching the input
interface, accepted or overflowed) against *useful progress* (packets
delivered on the output wire, and optionally user-mode CPU cycles).

Window classification:

* **stalled** — input arrived, nothing was delivered;
* **livelocked** — input arrived but the delivered/offered ratio fell
  below ``livelock_fraction`` (deliveries happen, yet almost all work is
  wasted — the post-cliff regime of fig 6-1);
* **starved** — deliveries were fine but an attached user-progress probe
  made no progress (the §7 user-starvation regime);
* **healthy** — everything else with input; windows with no input are
  counted separately and never influence the verdict.

The verdict over a whole trial is the dominant classification among
loaded windows. A strict majority wins first (checked as: stalled
majority, then combined livelocked+stalled majority, then starved
majority); when no class holds a majority, the verdict is the single
largest unhealthy class, with ties broken by explicit severity order
``livelocked > stalled > starved > healthy``.
``abort_after_stalled_windows`` optionally turns the watchdog
into a tripwire: that many *consecutive* zero-progress windows raise
:class:`~repro.sim.errors.WatchdogTimeout` inside the simulation,
bounding how long a wedged trial can spin.

The watchdog is strictly opt-in: it schedules one periodic simulator
event, which perturbs event sequence numbers, so golden-fixture replays
run without it.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from .errors import WatchdogTimeout

#: Delivered/offered ratio below which a loaded window counts as
#: livelocked. Calibrated against the golden trials: past the cliff the
#: unmodified kernel delivers ~0.16 of offered load while every fixed
#: variant stays above ~0.4, so 0.25 separates them with margin.
DEFAULT_LIVELOCK_FRACTION = 0.25

VERDICT_HEALTHY = "healthy"
VERDICT_LIVELOCKED = "livelocked"
VERDICT_STALLED = "stalled"
VERDICT_STARVED = "starved"


class LivelockWatchdog:
    """Watches progress counters in fixed windows of simulated time.

    ``delivered`` is the output-side progress counter; ``arrivals`` the
    input-side pressure counters (summed); ``user_cycles`` an optional
    zero-argument callable returning cumulative user-mode progress.
    """

    def __init__(
        self,
        sim,
        delivered,
        arrivals: Sequence,
        window_ns: int,
        user_cycles: Optional[Callable[[], int]] = None,
        livelock_fraction: float = DEFAULT_LIVELOCK_FRACTION,
        abort_after_stalled_windows: Optional[int] = None,
        trace=None,
        cpus: Optional[Sequence] = None,
    ) -> None:
        if window_ns <= 0:
            raise ValueError("watchdog window must be positive")
        if not 0.0 < livelock_fraction < 1.0:
            raise ValueError("livelock fraction must be in (0, 1)")
        if abort_after_stalled_windows is not None and abort_after_stalled_windows <= 0:
            raise ValueError("abort_after_stalled_windows must be positive")
        self.sim = sim
        self.delivered = delivered
        self.arrivals = list(arrivals)
        self.window_ns = window_ns
        self.user_cycles = user_cycles
        self.livelock_fraction = livelock_fraction
        self.abort_after_stalled_windows = abort_after_stalled_windows
        #: Optional :class:`~repro.trace.TraceBuffer`. When attached,
        #: the records around the *first* unhealthy loaded window — the
        #: livelock onset — are snapshotted into the verdict.
        self.trace = trace
        self._onset_ns: Optional[int] = None
        self._onset_records = None
        #: Optional per-core health sampling (multi-core machines only):
        #: a sequence of :class:`~repro.hw.cpu.CPU` objects whose
        #: ``busy_ns`` is sampled each window. The verdict then carries
        #: a ``cores`` entry with each core's busy fraction — single-core
        #: verdicts keep their exact pre-SMP shape.
        self.cpus = list(cpus) if cpus is not None else None
        self._last_busy = (
            [cpu.busy_ns for cpu in self.cpus] if self.cpus is not None else None
        )
        self._core_busy_ns = (
            [0] * len(self.cpus) if self.cpus is not None else None
        )
        self._core_busy_peak = (
            [0.0] * len(self.cpus) if self.cpus is not None else None
        )
        self._sampled_ns = 0

        self.windows = 0
        self.idle_windows = 0
        self.healthy_windows = 0
        self.livelock_windows = 0
        self.stall_windows = 0
        self.starved_windows = 0
        #: Peak scheduler pressure observed at window boundaries (via
        #: ``Simulator.stats``): pending events and resident queue
        #: triples. A livelocked kernel can also wedge the *scheduler* —
        #: interrupt storms queueing work faster than it drains — and
        #: that regime is invisible to packet counters alone.
        self.sched_pending_peak = 0
        self.sched_resident_peak = 0
        self._consecutive_stalls = 0
        self._total_input = 0
        self._total_delivered = 0
        self._last_delivered = delivered.value
        self._last_arrivals = self._arrival_total()
        self._last_user = user_cycles() if user_cycles is not None else 0
        self._timer = None

    # ------------------------------------------------------------------

    def start(self) -> "LivelockWatchdog":
        if self._timer is not None:
            raise RuntimeError("watchdog already started")
        self._timer = self.sim.schedule_periodic(
            self.window_ns, self._sample, label="watchdog"
        )
        return self

    def stop(self) -> None:
        if self._timer is not None:
            self.sim.cancel(self._timer)
            self._timer = None

    def _arrival_total(self) -> int:
        return sum(counter.value for counter in self.arrivals)

    # ------------------------------------------------------------------

    def _sample(self) -> None:
        # Scheduler pressure is sampled from the public stats property —
        # guarded with getattr so the watchdog also works against stub
        # simulators in tests (which have counters but no stats).
        snap = getattr(self.sim, "stats", None)
        if isinstance(snap, dict):
            pending = snap["pending"]
            if pending > self.sched_pending_peak:
                self.sched_pending_peak = pending
            resident = snap["heap_size"]
            if resident > self.sched_resident_peak:
                self.sched_resident_peak = resident
        if self.cpus is not None:
            self._sampled_ns += self.window_ns
            for index, cpu in enumerate(self.cpus):
                busy_now = cpu.busy_ns
                delta = busy_now - self._last_busy[index]
                self._last_busy[index] = busy_now
                self._core_busy_ns[index] += delta
                fraction = delta / self.window_ns
                if fraction > self._core_busy_peak[index]:
                    self._core_busy_peak[index] = fraction
        delivered_now = self.delivered.value
        arrivals_now = self._arrival_total()
        delivered = delivered_now - self._last_delivered
        arrived = arrivals_now - self._last_arrivals
        self._last_delivered = delivered_now
        self._last_arrivals = arrivals_now
        user_progressed = True
        if self.user_cycles is not None:
            user_now = self.user_cycles()
            user_progressed = user_now > self._last_user
            self._last_user = user_now

        self.windows += 1
        if arrived == 0:
            self.idle_windows += 1
            self._consecutive_stalls = 0
            return
        self._total_input += arrived
        self._total_delivered += delivered

        if delivered == 0:
            self.stall_windows += 1
            self._capture_onset()
            if not user_progressed or self.user_cycles is None:
                self._consecutive_stalls += 1
                limit = self.abort_after_stalled_windows
                if limit is not None and self._consecutive_stalls >= limit:
                    raise WatchdogTimeout(
                        "no progress for %d consecutive watchdog windows "
                        "(%.1f ms each): %d frames arrived, none delivered"
                        % (
                            self._consecutive_stalls,
                            self.window_ns / 1e6,
                            arrived,
                        )
                    )
            else:
                self._consecutive_stalls = 0
            return
        self._consecutive_stalls = 0
        if delivered < arrived * self.livelock_fraction:
            self.livelock_windows += 1
            self._capture_onset()
        elif not user_progressed:
            self.starved_windows += 1
        else:
            self.healthy_windows += 1

    def _capture_onset(self) -> None:
        """Snapshot the trace tail at the first unhealthy loaded window.

        The ring keeps overwriting afterwards, so this is the only
        moment the records *around the onset* are guaranteed to still
        be in the buffer."""
        if self.trace is not None and self._onset_records is None:
            self._onset_ns = self.sim.now
            self._onset_records = self.trace.export_tail(256)

    # ------------------------------------------------------------------

    @property
    def loaded_windows(self) -> int:
        return self.windows - self.idle_windows

    #: Tie-break order for :meth:`classification` when no window class
    #: holds a strict majority: most severe first. Explicit, so the
    #: verdict never depends on dict/attribute enumeration order.
    SEVERITY_ORDER = (
        VERDICT_LIVELOCKED,
        VERDICT_STALLED,
        VERDICT_STARVED,
        VERDICT_HEALTHY,
    )

    def classification(self) -> str:
        """Dominant window class over the trial.

        A strict majority of loaded windows wins first — stalled, then
        livelocked (counting stalled windows as livelock evidence: a
        stall is livelock's limit case), then starved. With no majority,
        the verdict falls back to the largest single class, ties broken
        by :attr:`SEVERITY_ORDER` (``livelocked > stalled > starved >
        healthy``) so an ambiguous trial reads as its worst plausible
        regime rather than whichever counter happened to be checked
        first.
        """
        loaded = self.loaded_windows
        if loaded == 0:
            return VERDICT_HEALTHY
        majority = loaded / 2.0
        if self.stall_windows > majority:
            return VERDICT_STALLED
        if self.livelock_windows + self.stall_windows > majority:
            return VERDICT_LIVELOCKED
        if self.starved_windows > majority:
            return VERDICT_STARVED
        counts = {
            VERDICT_LIVELOCKED: self.livelock_windows,
            VERDICT_STALLED: self.stall_windows,
            VERDICT_STARVED: self.starved_windows,
            VERDICT_HEALTHY: self.healthy_windows,
        }
        best = max(counts.values())
        for verdict in self.SEVERITY_ORDER:
            if counts[verdict] == best:
                return verdict
        return VERDICT_HEALTHY  # pragma: no cover - SEVERITY_ORDER is total

    def verdict(self) -> dict:
        """Structured verdict for :class:`TrialResult.watchdog`.

        With a trace attached, the verdict additionally carries
        ``trace_onset``: the timestamp and trace-record tail captured at
        the first stalled/livelocked loaded window (None if the trial
        never turned unhealthy). Verdicts without a trace are unchanged.
        """
        total_input = self._total_input
        report = {
            "verdict": self.classification(),
            "windows": self.windows,
            "loaded_windows": self.loaded_windows,
            "healthy_windows": self.healthy_windows,
            "livelock_windows": self.livelock_windows,
            "stall_windows": self.stall_windows,
            "starved_windows": self.starved_windows,
            "delivered_fraction": (
                self._total_delivered / total_input if total_input else None
            ),
            "window_ns": self.window_ns,
            "livelock_fraction": self.livelock_fraction,
            "sched_pending_peak": self.sched_pending_peak,
            "sched_resident_peak": self.sched_resident_peak,
        }
        if self.cpus is not None:
            report["cores"] = [
                {
                    "name": cpu.name,
                    "busy_fraction": (
                        self._core_busy_ns[index] / self._sampled_ns
                        if self._sampled_ns
                        else 0.0
                    ),
                    "busy_peak_fraction": self._core_busy_peak[index],
                }
                for index, cpu in enumerate(self.cpus)
            ]
        if self.trace is not None:
            report["trace_onset"] = (
                None
                if self._onset_records is None
                else {"t_ns": self._onset_ns, "records": self._onset_records}
            )
        return report

    def __repr__(self) -> str:
        return "LivelockWatchdog(%s, windows=%d)" % (
            self.classification(),
            self.windows,
        )
