"""Deterministic random-number streams.

Every stochastic component (each traffic generator, each jitter source)
draws from its own named stream so that adding a new random consumer never
perturbs the draws seen by existing ones. Streams are derived from a
single experiment seed plus the stream name, so a trial is reproducible
from ``(seed, topology)`` alone.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a child seed from a root seed and a stream name (stable
    across Python versions and platforms, unlike ``hash``)."""
    digest = hashlib.sha256(("%d:%s" % (root_seed, name)).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """A factory of named, independent ``random.Random`` instances."""

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = root_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        if name not in self._streams:
            self._streams[name] = random.Random(derive_seed(self.root_seed, name))
        return self._streams[name]

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __repr__(self) -> str:
        return "RandomStreams(seed=%d, streams=%d)" % (
            self.root_seed,
            len(self._streams),
        )
