"""Time and rate units for the simulator.

The simulation clock is an integer count of **nanoseconds**. Integer time
keeps the event heap deterministic across platforms and makes equality
comparisons exact; at the paper's time scales (packet costs of tens of
microseconds, trials of a few simulated seconds) nanosecond resolution is
three orders of magnitude finer than anything we measure.

CPU work is expressed in **cycles** and converted to nanoseconds using the
modelled CPU frequency. The conversion rounds half-up so that a cost model
expressed in cycles never silently loses work.
"""

from __future__ import annotations

NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_SEC = 1_000_000_000


def seconds(value: float) -> int:
    """Convert seconds to integer nanoseconds."""
    return int(round(value * NS_PER_SEC))


def milliseconds(value: float) -> int:
    """Convert milliseconds to integer nanoseconds."""
    return int(round(value * NS_PER_MS))


def microseconds(value: float) -> int:
    """Convert microseconds to integer nanoseconds."""
    return int(round(value * NS_PER_US))


def to_seconds(ns: int) -> float:
    """Convert integer nanoseconds to float seconds."""
    return ns / NS_PER_SEC


def cycles_to_ns(cycles: int, hz: int) -> int:
    """Convert a cycle count on a ``hz``-Hz CPU to nanoseconds (>= 1 ns for
    any positive cycle count, so work never completes instantaneously)."""
    if cycles <= 0:
        return 0
    ns = (cycles * NS_PER_SEC + hz // 2) // hz
    return max(ns, 1)


def ns_to_cycles(ns: int, hz: int) -> int:
    """Convert nanoseconds to cycles on a ``hz``-Hz CPU."""
    if ns <= 0:
        return 0
    return (ns * hz + NS_PER_SEC // 2) // NS_PER_SEC


def rate_to_interval_ns(packets_per_second: float) -> int:
    """Inter-arrival interval in nanoseconds for a given packet rate."""
    if packets_per_second <= 0:
        raise ValueError("rate must be positive, got %r" % packets_per_second)
    return max(1, int(round(NS_PER_SEC / packets_per_second)))


def interval_to_rate(interval_ns: int) -> float:
    """Packet rate corresponding to an inter-arrival interval."""
    if interval_ns <= 0:
        raise ValueError("interval must be positive, got %r" % interval_ns)
    return NS_PER_SEC / interval_ns
