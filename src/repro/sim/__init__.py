"""Discrete-event simulation engine (substrate).

Public surface:

* :class:`~repro.sim.simulator.Simulator` — event loop and virtual clock;
  recurring work uses :meth:`~repro.sim.simulator.Simulator.schedule_periodic`,
  which re-arms a single :class:`~repro.sim.events.Event` per timer
  (returns a cancellable :class:`~repro.sim.simulator.PeriodicEvent`);
* :class:`~repro.sim.process.Process` and the command objects
  (:class:`~repro.sim.process.Sleep`, :class:`~repro.sim.process.WaitSignal`,
  :class:`~repro.sim.process.Work`);
* :class:`~repro.sim.signals.Signal` — condition-variable wake-ups;
* :class:`~repro.sim.probes.ProbeRegistry` — counters and windows;
* :class:`~repro.sim.randomness.RandomStreams` — deterministic RNG streams;
* :mod:`~repro.sim.units` — time conversions.
"""

from .errors import ClockError, ProcessError, SchedulingError, SimulationError
from .events import Event
from .probes import Accumulator, Counter, CounterWindow, ProbeRegistry, TimeSeries
from .process import (
    ALIVE,
    DONE,
    FAILED,
    KILLED,
    NEW,
    Command,
    Process,
    Sleep,
    WaitSignal,
    Work,
)
from .randomness import RandomStreams, derive_seed
from .signals import Signal
from .simulator import PeriodicEvent, Simulator
from .units import (
    NS_PER_MS,
    NS_PER_SEC,
    NS_PER_US,
    cycles_to_ns,
    interval_to_rate,
    microseconds,
    milliseconds,
    ns_to_cycles,
    rate_to_interval_ns,
    seconds,
    to_seconds,
)

__all__ = [
    "ALIVE",
    "Accumulator",
    "ClockError",
    "Command",
    "Counter",
    "CounterWindow",
    "DONE",
    "Event",
    "FAILED",
    "KILLED",
    "NEW",
    "NS_PER_MS",
    "NS_PER_SEC",
    "NS_PER_US",
    "PeriodicEvent",
    "ProbeRegistry",
    "Process",
    "ProcessError",
    "RandomStreams",
    "SchedulingError",
    "Signal",
    "SimulationError",
    "Simulator",
    "Sleep",
    "TimeSeries",
    "WaitSignal",
    "Work",
    "cycles_to_ns",
    "derive_seed",
    "interval_to_rate",
    "microseconds",
    "milliseconds",
    "ns_to_cycles",
    "rate_to_interval_ns",
    "seconds",
    "to_seconds",
]
