"""Measurement probes: counters and windowed accumulators.

Experiments measure throughput the way the paper does: read a counter
(``netstat`` "Opkts") before and after a trial window and divide by the
window length. :class:`Counter` supports exactly that via
:meth:`Counter.snapshot` / :meth:`CounterWindow.rate`. :class:`Accumulator`
tracks a running total (e.g. CPU cycles consumed by a process) with the
same snapshot discipline.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .simulator import Simulator
from .units import NS_PER_SEC


class Counter:
    """A monotonically increasing event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def increment(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counter %s cannot decrease" % self.name)
        self.value += amount

    def snapshot(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return "Counter(%s=%d)" % (self.name, self.value)


class Accumulator:
    """A running sum that may only grow (cycles, bytes, drops...)."""

    __slots__ = ("name", "total")

    def __init__(self, name: str) -> None:
        self.name = name
        self.total = 0

    def add(self, amount: int) -> None:
        if amount < 0:
            raise ValueError("accumulator %s cannot decrease" % self.name)
        self.total += amount

    def snapshot(self) -> int:
        return self.total


class CounterWindow:
    """Measures a counter's rate over an explicit start/stop window."""

    def __init__(self, sim: Simulator, counter: Counter) -> None:
        self._sim = sim
        self._counter = counter
        self._start_value: Optional[int] = None
        self._start_time: Optional[int] = None
        self._delta: Optional[int] = None
        self._duration: Optional[int] = None

    def start(self) -> None:
        self._start_value = self._counter.snapshot()
        self._start_time = self._sim.now
        self._delta = None
        self._duration = None

    def stop(self) -> None:
        if self._start_value is None or self._start_time is None:
            raise RuntimeError("window stopped before being started")
        self._delta = self._counter.snapshot() - self._start_value
        self._duration = self._sim.now - self._start_time

    @property
    def delta(self) -> int:
        if self._delta is None:
            raise RuntimeError("window not stopped yet")
        return self._delta

    @property
    def duration_ns(self) -> int:
        if self._duration is None:
            raise RuntimeError("window not stopped yet")
        return self._duration

    def rate(self) -> float:
        """Events per second over the window."""
        if self.duration_ns == 0:
            return 0.0
        return self.delta * NS_PER_SEC / self.duration_ns


class TimeSeries:
    """Records (time, value) samples, e.g. queue depth over time."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.samples: List[Tuple[int, float]] = []

    def record(self, time_ns: int, value: float) -> None:
        self.samples.append((time_ns, value))

    def values(self) -> List[float]:
        return [value for _, value in self.samples]

    def last(self) -> Optional[float]:
        return self.samples[-1][1] if self.samples else None

    def __len__(self) -> int:
        return len(self.samples)


class ProbeRegistry:
    """A namespace of counters/accumulators shared by one simulation.

    Components create probes lazily by name; the experiment harness reads
    them all out at the end of a trial.
    """

    def __init__(self, sim: Simulator) -> None:
        self._sim = sim
        self._counters: Dict[str, Counter] = {}
        self._accumulators: Dict[str, Accumulator] = {}
        self._series: Dict[str, TimeSeries] = {}
        #: Name-sorted probe items, rebuilt lazily: probe registration
        #: invalidates, ``dump()`` rebuilds at most once — repeated
        #: trial-end dumps stop re-sorting both dicts every call.
        self._sorted_probes: Optional[List[Tuple[str, object]]] = None

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
            self._sorted_probes = None
        return self._counters[name]

    def accumulator(self, name: str) -> Accumulator:
        if name not in self._accumulators:
            self._accumulators[name] = Accumulator(name)
            self._sorted_probes = None
        return self._accumulators[name]

    def series(self, name: str) -> TimeSeries:
        if name not in self._series:
            self._series[name] = TimeSeries(name)
        return self._series[name]

    def window(self, counter_name: str) -> CounterWindow:
        return CounterWindow(self._sim, self.counter(counter_name))

    def dump(self) -> Dict[str, int]:
        """All counter and accumulator values, for reports and tests.

        Counters come first (name-sorted), then accumulators
        (name-sorted) — the historical ordering, now served from a
        cached sort instead of re-sorting both dicts on every call.
        """
        probes = self._sorted_probes
        if probes is None:
            probes = [
                (name, counter)
                for name, counter in sorted(self._counters.items())
            ]
            probes.extend(sorted(self._accumulators.items()))
            self._sorted_probes = probes
        return {name: probe.snapshot() for name, probe in probes}
