"""Command-line interface: regenerate any figure from the paper.

Examples::

    repro-livelock list
    repro-livelock figure 6-1
    repro-livelock figure 6-1 --jobs 4            # parallel trials
    repro-livelock figure 6-5 --fast --csv --no-cache
    repro-livelock trial --variant polling --quota 5 --rate 12000

Figure and trial runs go through the sweep engine
(:mod:`repro.experiments.engine`): ``--jobs N`` fans independent trials
across N worker processes, and results are cached on disk keyed by the
full kernel configuration (``--no-cache`` recomputes, ``--cache-dir``
relocates the cache). Serial, parallel and cached runs print identical
output.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core import variants
from .experiments.engine import SweepError, TrialFailure, run_trials
from .experiments.extensions import EXTENSION_EXPERIMENTS
from .experiments.figures import ALL_FIGURES
from .experiments.harness import (
    DEFAULT_RATE_GRID,
    FAST_RATE_GRID,
)
from .experiments.results import render_report, to_csv
from .faults import CANNED_PLANS

#: Everything `figure` can regenerate: the paper's figures plus the
#: extension experiments.
ALL_EXPERIMENTS = dict(ALL_FIGURES)
ALL_EXPERIMENTS.update(EXTENSION_EXPERIMENTS)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-livelock",
        description=(
            "Reproduce figures from 'Eliminating Receive Livelock in an "
            "Interrupt-driven Kernel' (Mogul & Ramakrishnan, USENIX 1996)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list reproducible figures")

    def add_engine_flags(command):
        command.add_argument(
            "--jobs",
            type=int,
            default=None,
            metavar="N",
            help="fan trials across N worker processes (default: serial)",
        )
        command.add_argument(
            "--no-cache",
            action="store_true",
            help="recompute every trial instead of using the on-disk cache",
        )
        command.add_argument(
            "--cache-dir",
            default=None,
            metavar="DIR",
            help="result cache location (default: $REPRO_CACHE_DIR or "
            "~/.cache/repro-livelock)",
        )
        command.add_argument(
            "--backend",
            choices=["pure", "fast"],
            default=None,
            help="simulator core: the pure-python oracle or the compiled "
            "repro._fastcore backend (bit-identical results; default: "
            "$REPRO_BACKEND or pure)",
        )

    def add_profile_flags(command):
        command.add_argument(
            "--profile",
            action="store_true",
            help="run under cProfile and print the top 20 functions by "
            "cumulative time to stderr (with --jobs, only the parent's "
            "dispatch work is profiled, not the workers)",
        )
        command.add_argument(
            "--profile-out",
            default=None,
            metavar="FILE",
            help="dump raw profiling data to FILE for `python -m pstats` "
            "(implies --profile)",
        )

    def add_resilience_flags(command):
        command.add_argument(
            "--strict",
            action="store_true",
            help="fail fast: abort (nonzero exit) on the first trial "
            "failure instead of recording it and continuing",
        )
        command.add_argument(
            "--timeout",
            type=float,
            default=None,
            metavar="S",
            help="per-trial wall-clock limit in seconds (forces pool "
            "execution so a hung trial can be abandoned)",
        )
        command.add_argument(
            "--retries",
            type=int,
            default=1,
            metavar="N",
            help="extra attempts for crashed/hung workers (default: 1)",
        )

    def add_machine_flags(command):
        command.add_argument(
            "--cores",
            type=int,
            default=1,
            metavar="N",
            help="simulated core count (default: 1, the paper's machine)",
        )
        command.add_argument(
            "--steering",
            choices=["affinity", "rss"],
            default="affinity",
            help="IRQ steering policy on multi-core machines: static "
            "round-robin affinity or RSS-style seeded flow hashing",
        )
        command.add_argument(
            "--isolate-polling",
            action="store_true",
            help="dedicate polling cores (role model: core 0 "
            "housekeeping, up to two polling cores, rest isolated "
            "IRQ targets)",
        )
        command.add_argument(
            "--coalesce-us",
            type=float,
            default=0.0,
            metavar="US",
            help="adaptive interrupt-coalescing timer bound for the "
            "hybrid driver, in microseconds (0 disables)",
        )

    def add_variant_flags(command):
        command.add_argument(
            "--variant",
            choices=[
                "unmodified",
                "modified_no_polling",
                "polling",
                "clocked",
                "high_ipl",
                "hybrid",
            ],
            default="unmodified",
        )
        command.add_argument(
            "--input-feedback",
            action="store_true",
            help="classic kernel with §5.1 interrupt-rate limiting",
        )
        command.add_argument("--rate", type=float, default=8_000)
        command.add_argument("--quota", type=int, default=None)
        command.add_argument("--screend", action="store_true")
        command.add_argument("--feedback", action="store_true")
        command.add_argument("--cycle-limit", type=float, default=None)
        command.add_argument("--duration", type=float, default=0.5)
        command.add_argument("--compute", action="store_true")
        command.add_argument("--seed", type=int, default=0)
        command.add_argument(
            "--fault-plan",
            choices=sorted(CANNED_PLANS),
            default=None,
            help="inject a canned deterministic hardware-fault plan",
        )
        command.add_argument(
            "--watchdog",
            action="store_true",
            help="attach the livelock watchdog and report its verdict",
        )
        command.add_argument(
            "--sanitize",
            action="store_true",
            help="run the runtime invariant sanitizer during the trial",
        )

    fig = sub.add_parser("figure", help="regenerate one figure/experiment")
    fig.add_argument("figure_id", choices=sorted(ALL_EXPERIMENTS))
    fig.add_argument(
        "--fast", action="store_true", help="coarser rate grid, shorter trials"
    )
    fig.add_argument("--csv", action="store_true", help="emit CSV instead of a report")
    fig.add_argument("--seed", type=int, default=0)
    fig.add_argument(
        "--trace",
        action="store_true",
        help="run every trial with the scheduling trace armed; per-series "
        "timelines attach to the figure result",
    )
    fig.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="write the collected per-series timelines as JSON "
        "(implies --trace)",
    )
    add_machine_flags(fig)
    add_engine_flags(fig)
    add_resilience_flags(fig)
    add_profile_flags(fig)

    trial = sub.add_parser("trial", help="run a single measurement")
    add_variant_flags(trial)
    add_machine_flags(trial)
    trial.add_argument(
        "--trace",
        action="store_true",
        help="collect the windowed trace timeline alongside the measurement",
    )
    trial.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="also export a Perfetto trace_event JSON of the trial "
        "(runs in-process; implies --trace)",
    )
    add_engine_flags(trial)
    add_resilience_flags(trial)
    add_profile_flags(trial)

    trace = sub.add_parser(
        "trace",
        help="run one traced trial and export its Perfetto/CSV timeline",
    )
    add_variant_flags(trace)
    add_machine_flags(trace)
    trace.add_argument(
        "--warmup", type=float, default=None, help="warmup seconds"
    )
    trace.add_argument(
        "--capacity",
        type=int,
        default=None,
        metavar="N",
        help="trace ring capacity in records (default: 65536)",
    )
    trace.add_argument(
        "--out",
        default="trace.json",
        metavar="FILE",
        help="Perfetto trace_event JSON path (default: trace.json); "
        "open with ui.perfetto.dev or chrome://tracing",
    )
    trace.add_argument(
        "--csv-records",
        default=None,
        metavar="FILE",
        help="also dump the raw record stream as CSV",
    )
    trace.add_argument(
        "--csv-timeline",
        default=None,
        metavar="FILE",
        help="also dump the windowed timeline as CSV",
    )
    trace.add_argument(
        "--backend",
        choices=["pure", "fast"],
        default=None,
        help="simulator core (bit-identical results; default: "
        "$REPRO_BACKEND or pure)",
    )

    scenario = sub.add_parser(
        "scenario",
        help="run a named adversarial-overload scenario with SLO verdict",
    )
    from .experiments.scenarios import SCENARIOS

    scenario.add_argument("scenario_name", choices=sorted(SCENARIOS))
    scenario.add_argument(
        "--attack-rate",
        type=float,
        default=None,
        metavar="PPS",
        help="override the scenario's peak attack rate",
    )
    scenario.add_argument(
        "--mitigate",
        action="store_true",
        help="arm the closed-loop mitigation controller on the kernel "
        "under attack (default: the bare livelock-prone kernel)",
    )
    scenario.add_argument("--seed", type=int, default=0)
    scenario.add_argument(
        "--slo-out",
        default=None,
        metavar="FILE",
        help="write the structured SLO verdict as JSON",
    )
    scenario.add_argument(
        "--trace",
        action="store_true",
        help="arm the scheduling trace; phase marks land in the timeline",
    )
    scenario.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="export a Perfetto trace_event JSON with attack_start/"
        "attack_end/recovered marks (implies --trace)",
    )
    scenario.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero unless every SLO passed",
    )
    scenario.add_argument(
        "--backend",
        choices=["pure", "fast"],
        default=None,
        help="simulator core (bit-identical results; default: "
        "$REPRO_BACKEND or pure)",
    )
    add_machine_flags(scenario)

    chaos = sub.add_parser(
        "chaos",
        help="seeded chaos/soak: fuzzed trials, differential bit-identity",
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--budget",
        type=int,
        default=20,
        metavar="N",
        help="number of fuzzed cases to run (default: 20)",
    )
    chaos.add_argument(
        "--smoke",
        action="store_true",
        help="CI smoke run: cap the budget at 8 cases",
    )
    chaos.add_argument(
        "--replay",
        type=int,
        default=None,
        metavar="INDEX",
        help="re-run exactly one case of the run rooted at --seed",
    )
    chaos.add_argument(
        "--backend",
        choices=["pure", "both"],
        default="both",
        help="'both' (default) differentially checks the compiled "
        "fastcore leg against pure; 'pure' skips it",
    )
    chaos.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="write the full chaos report as JSON",
    )

    matrix = sub.add_parser(
        "faultmatrix",
        help="smoke the driver x fault-plan matrix with watchdog + sanitizer",
    )
    matrix.add_argument("--rate", type=float, default=12_000)
    add_machine_flags(matrix)
    matrix.add_argument("--duration", type=float, default=0.08)
    matrix.add_argument("--warmup", type=float, default=0.03)
    matrix.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero unless the clean column shows the expected "
        "verdicts (unmodified livelocked, fixed variants healthy) and "
        "every cell completes with zero leaked packets",
    )
    add_engine_flags(matrix)
    add_resilience_flags(matrix)
    return parser


def _run_profiled(args, fn):
    """Call ``fn()``, under cProfile when ``--profile``/``--profile-out``
    was given. The report goes to stderr so ``--csv`` output stays
    machine-readable.

    cProfile cannot see inside the compiled fast core — a fast-backend
    run shows one opaque ``run`` entry — so when the C extension is
    loaded this also arms its wall-clock buckets and prints the
    compiled-core vs python-callback split alongside the summary."""
    if not (getattr(args, "profile", False) or getattr(args, "profile_out", None)):
        return fn()
    import cProfile
    import pstats

    try:
        from ._fastcore import _corec
    except ImportError:
        _corec = None
    buckets = _corec if hasattr(_corec, "profile_buckets") else None
    if buckets is not None:
        buckets.profile_buckets(True)
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn()
    finally:
        profiler.disable()
        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats("cumulative").print_stats(20)
        if buckets is not None:
            split = buckets.profile_snapshot()
            buckets.profile_buckets(False)
            if split["run_s"] > 0:
                print(
                    "fast-core split: %.3fs in compiled run loops = %.3fs "
                    "compiled core (%.0f%%) + %.3fs python callbacks "
                    "(%d calls; with --jobs only the parent is counted)"
                    % (
                        split["run_s"],
                        split["compiled_s"],
                        100 * split["compiled_s"] / split["run_s"],
                        split["python_callback_s"],
                        split["python_callback_calls"],
                    ),
                    file=sys.stderr,
                )
        if args.profile_out:
            stats.dump_stats(args.profile_out)
            print(
                "profile data written to %s" % args.profile_out, file=sys.stderr
            )
    return result


def _machine_from_args(args: argparse.Namespace):
    """Round-trip the ``--cores``/``--steering``/``--isolate-polling``/
    ``--coalesce-us`` flags through one validated MachineSpec; None when
    the flags spell the default single-core machine, so those runs keep
    their exact pre-SMP trial identity (and cache fingerprints)."""
    from .hw.machine import SINGLE_CORE, MachineSpec

    machine = MachineSpec(
        cores=getattr(args, "cores", 1),
        steering=getattr(args, "steering", "affinity"),
        isolate_polling=bool(getattr(args, "isolate_polling", False)),
        coalesce_us=getattr(args, "coalesce_us", 0.0),
    )
    return None if machine == SINGLE_CORE else machine


def _config_from_args(args: argparse.Namespace):
    if args.variant == "unmodified":
        return variants.unmodified(
            screend=args.screend, input_feedback=args.input_feedback
        )
    if args.variant == "modified_no_polling":
        return variants.modified_no_polling(screend=args.screend)
    if args.variant == "polling":
        return variants.polling(
            quota=args.quota if args.quota is not None else 10,
            screend=args.screend,
            feedback=args.feedback or None,
            cycle_limit=args.cycle_limit,
        )
    if args.variant == "clocked":
        return variants.clocked(quota=args.quota)
    if args.variant == "high_ipl":
        return variants.high_ipl(
            quota=args.quota if args.quota is not None else 10,
            screend=args.screend,
        )
    if args.variant == "hybrid":
        return variants.hybrid(
            quota=args.quota if args.quota is not None else 10,
            screend=args.screend,
        )
    raise ValueError("unknown variant %r" % args.variant)


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    try:
        return _dispatch(args)
    except NotADirectoryError as exc:
        print("repro-livelock: error: %s" % exc, file=sys.stderr)
        return 2
    except SweepError as exc:
        print("repro-livelock: error: %s" % exc, file=sys.stderr)
        return 1


def _dispatch(args) -> int:
    if args.command == "list":
        for figure_id in sorted(ALL_FIGURES):
            print("figure %s" % figure_id)
        for figure_id in sorted(EXTENSION_EXPERIMENTS):
            print("experiment %s" % figure_id)
        return 0

    if args.command == "figure":
        kwargs = {
            "seed": args.seed,
            "jobs": args.jobs,
            "cache": not args.no_cache,
            "cache_dir": args.cache_dir,
            "timeout_s": args.timeout,
            "retries": args.retries,
            "strict": args.strict,
        }
        if args.fast:
            kwargs["duration_s"] = 0.3
            kwargs["warmup_s"] = 0.1
            if args.figure_id not in ("7-1", "ext-endhost"):
                kwargs["rates"] = FAST_RATE_GRID
        if getattr(args, "trace", False) or getattr(args, "trace_out", None):
            kwargs["trace"] = True
        if args.backend is not None:
            kwargs["backend"] = args.backend
        machine = _machine_from_args(args)
        if machine is not None:
            kwargs["machine"] = machine
        result = _run_profiled(
            args, lambda: ALL_EXPERIMENTS[args.figure_id](**kwargs)
        )
        sys.stdout.write(to_csv(result) if args.csv else render_report(result))
        if getattr(args, "trace_out", None):
            import json

            with open(args.trace_out, "w", encoding="utf-8") as handle:
                json.dump(result.timelines, handle, sort_keys=True)
            print("timelines written to %s" % args.trace_out, file=sys.stderr)
        return 0

    if args.command == "trial":
        trial_kwargs = {
            "duration_s": args.duration,
            "with_compute": args.compute,
            "seed": args.seed,
        }
        if args.fault_plan is not None:
            trial_kwargs["fault_plan"] = args.fault_plan
        if args.watchdog:
            trial_kwargs["watchdog"] = True
        if args.sanitize:
            trial_kwargs["sanitize"] = True
        if args.backend is not None:
            trial_kwargs["backend"] = args.backend
        trial_kwargs["machine"] = _machine_from_args(args)
        trace_buffer = None
        if args.trace_out:
            # A caller-owned buffer keeps the raw record ring in this
            # process for export (the engine runs such specs in-process).
            from .trace import TraceBuffer

            trace_buffer = TraceBuffer()
            trial_kwargs["trace"] = trace_buffer
        elif args.trace:
            trial_kwargs["trace"] = True
        from .experiments.spec import TrialSpec

        spec = TrialSpec.from_kwargs(
            _config_from_args(args), args.rate, **trial_kwargs
        )
        [trial] = _run_profiled(
            args,
            lambda: run_trials(
                [spec],
                jobs=args.jobs,
                cache=not args.no_cache,
                cache_dir=args.cache_dir,
                timeout_s=args.timeout,
                retries=args.retries,
                strict=args.strict,
            ),
        )
        if isinstance(trial, TrialFailure):
            print(
                "trial FAILED (%s after %d attempt(s)): %s"
                % (trial.kind, trial.attempts, trial.error)
            )
            return 0
        print("variant:        %s" % trial.variant)
        if trial.backend is not None:
            print("backend:        %s" % trial.backend)
        print("offered rate:   %8.0f pkt/s" % trial.offered_rate_pps)
        print("output rate:    %8.0f pkt/s" % trial.output_rate_pps)
        print("loss fraction:  %8.3f" % trial.loss_fraction)
        if trial.user_cpu_share is not None:
            print("user CPU share: %8.1f %%" % (100 * trial.user_cpu_share))
        if trial.latency_us.get("count"):
            print(
                "latency us:     mean %.0f  median %.0f  p99 %.0f"
                % (
                    trial.latency_us["mean"],
                    trial.latency_us["median"],
                    trial.latency_us["p99"],
                )
            )
        if trial.drops:
            print("drops:")
            for name, value in sorted(trial.drops.items()):
                print("  %-36s %d" % (name, value))
        if trial.watchdog is not None:
            print(
                "watchdog:       %s (%d/%d loaded windows healthy, "
                "delivered fraction %s)"
                % (
                    trial.watchdog["verdict"],
                    trial.watchdog["healthy_windows"],
                    trial.watchdog["loaded_windows"],
                    (
                        "%.3f" % trial.watchdog["delivered_fraction"]
                        if trial.watchdog["delivered_fraction"] is not None
                        else "n/a"
                    ),
                )
            )
        if trial.faults is not None:
            injected = ", ".join(
                "%s=%d" % item for item in sorted(trial.faults["injected"].items())
            )
            print("faults:         %s" % (injected or "none fired"))
            print(
                "teardown:       %d recovered, leaked=%s"
                % (
                    trial.faults["teardown"]["recovered"],
                    trial.faults["teardown"]["leaked"],
                )
            )
        if trial.timeline is not None:
            print(
                "timeline:       %d windows of %.1f ms"
                % (
                    len(trial.timeline["windows"]),
                    trial.timeline["window_ns"] / 1e6,
                )
            )
        if trace_buffer is not None:
            from .trace import write_perfetto

            write_perfetto(args.trace_out, trace_buffer)
            print(
                "trace written:  %s (%d records, %d overwritten)"
                % (args.trace_out, len(trace_buffer), trace_buffer.overwritten)
            )
        return 0

    if args.command == "trace":
        return _run_trace(args)

    if args.command == "scenario":
        return _run_scenario(args)

    if args.command == "chaos":
        return _run_chaos(args)

    if args.command == "faultmatrix":
        return _run_faultmatrix(args)

    return 2  # pragma: no cover - argparse enforces the choices


def _run_trace(args) -> int:
    """Run one traced trial in-process and export its timeline.

    The trace rides on the exact measurement the ``trial`` command
    performs — tracing never perturbs the simulation — so the summary
    printed here matches an untraced run of the same arguments.
    """
    from .experiments.spec import TrialSpec
    from .trace import (
        TraceBuffer,
        timeline_to_csv,
        trace_to_csv,
        write_perfetto,
    )

    buffer = TraceBuffer(args.capacity) if args.capacity else TraceBuffer()
    kwargs = {
        "duration_s": args.duration,
        "with_compute": args.compute,
        "seed": args.seed,
        "trace": buffer,
    }
    if args.warmup is not None:
        kwargs["warmup_s"] = args.warmup
    if args.fault_plan is not None:
        kwargs["fault_plan"] = args.fault_plan
    if args.watchdog:
        kwargs["watchdog"] = True
    if args.sanitize:
        kwargs["sanitize"] = True
    if args.backend is not None:
        kwargs["backend"] = args.backend
    kwargs["machine"] = _machine_from_args(args)
    spec = TrialSpec.from_kwargs(_config_from_args(args), args.rate, **kwargs)
    trial = spec.run()

    print("variant:        %s" % trial.variant)
    if trial.backend is not None:
        print("backend:        %s" % trial.backend)
    print("offered rate:   %8.0f pkt/s" % trial.offered_rate_pps)
    print("output rate:    %8.0f pkt/s" % trial.output_rate_pps)
    if trial.watchdog is not None:
        print("watchdog:       %s" % trial.watchdog["verdict"])
        onset = trial.watchdog.get("trace_onset")
        if onset is not None:
            print(
                "onset:          t=%.1f ms (%d trace records captured)"
                % (onset["t_ns"] / 1e6, len(onset["records"]))
            )
    print(
        "trace:          %d records collected, %d in ring, %d overwritten"
        % (buffer.recorded, len(buffer), buffer.overwritten)
    )
    windows = trial.timeline["windows"] if trial.timeline else []
    print(
        "timeline:       %d windows of %.1f ms"
        % (len(windows), trial.timeline["window_ns"] / 1e6)
    )
    write_perfetto(args.out, buffer)
    print("perfetto trace: %s" % args.out)
    if args.csv_records:
        with open(args.csv_records, "w", encoding="utf-8") as handle:
            handle.write(trace_to_csv(buffer))
        print("record CSV:     %s" % args.csv_records)
    if args.csv_timeline:
        with open(args.csv_timeline, "w", encoding="utf-8") as handle:
            handle.write(timeline_to_csv(buffer.timeline))
        print("timeline CSV:   %s" % args.csv_timeline)
    return 0


def _run_scenario(args) -> int:
    """Run one named overload scenario and print its SLO verdict."""
    import json

    from .experiments.scenarios import get_scenario, run_scenario

    scenario = get_scenario(args.scenario_name).with_attack_rate(
        args.attack_rate
    )
    trace = False
    trace_buffer = None
    if args.trace_out:
        from .trace import TraceBuffer

        trace_buffer = TraceBuffer()
        trace = trace_buffer
    elif args.trace:
        trace = True
    result = run_scenario(
        scenario,
        mitigate=args.mitigate,
        seed=args.seed,
        trace=trace,
        backend=args.backend,
        machine=_machine_from_args(args),
    )
    slo = result.slo

    print("scenario:       %s (%s attack)" % (scenario.name, scenario.attack))
    print("kernel:         %s" % result.variant)
    print(
        "attack rate:    %8.0f pkt/s over %8.0f pkt/s background"
        % (scenario.attack_rate_pps, scenario.background_rate_pps)
    )
    print("baseline:       %8.0f pkt/s goodput" % slo["baseline"]["goodput_pps"])
    attack = slo["attack_phase"]
    print(
        "under attack:   %8.0f pkt/s goodput (%.0f%% of baseline), "
        "%d unhealthy watchdog window(s)"
        % (
            attack["goodput_pps"],
            100 * attack["goodput_fraction"],
            attack["unhealthy_windows"],
        )
    )
    if attack["p99_latency_us"] is not None:
        print("p99 latency:    %8.0f us during attack" % attack["p99_latency_us"])
    recovery = slo["recovery"]
    if recovery["recovered"]:
        print(
            "recovery:       %.0f ms after attack end (bound %.0f ms)"
            % (
                1e3 * recovery["time_to_recovery_s"],
                1e3 * recovery["bound_s"],
            )
        )
    else:
        print(
            "recovery:       NONE within %.0f ms of attack end"
            % (1e3 * recovery["bound_s"])
        )
    if slo["mitigation"] is not None:
        mit = slo["mitigation"]
        print(
            "mitigation:     peak level %d, %d escalation(s), "
            "%d inhibit pulse(s), restored=%s"
            % (
                mit["max_level_reached"],
                mit["escalations"],
                mit["inhibit_pulses"],
                mit["restored"],
            )
        )
    print("verdict:        %s" % ("PASS" if slo["passed"] else "FAIL"))
    for violation in slo["violations"]:
        print("  violated:     %s" % violation)
    if args.slo_out:
        with open(args.slo_out, "w", encoding="utf-8") as handle:
            json.dump(slo, handle, sort_keys=True, indent=2)
        print("slo verdict:    %s" % args.slo_out, file=sys.stderr)
    if trace_buffer is not None:
        from .trace import write_perfetto

        write_perfetto(args.trace_out, trace_buffer)
        print("perfetto trace: %s" % args.trace_out, file=sys.stderr)
    if args.check and not slo["passed"]:
        return 1
    return 0


def _run_chaos(args) -> int:
    """Fuzz-and-differentially-check chaos run (or replay one case)."""
    import json

    from .experiments.chaos import replay_case, run_chaos

    fast = args.backend == "both"
    if args.replay is not None:
        record = replay_case(args.seed, args.replay, fast=fast)
        print(record["describe"])
        if record["ok"]:
            print(
                "ok: verdict=%s delivered=%d"
                % (record["verdict"], record["delivered"])
            )
            return 0
        failure = record["failure"]
        print(
            "FAILED at stage %s: %s\n%s"
            % (failure["stage"], failure["reason"], failure["detail"])
        )
        return 1

    budget = min(args.budget, 8) if args.smoke else args.budget

    def progress(record):
        status = (
            "ok verdict=%s" % record.get("verdict")
            if record["ok"]
            else "FAILED (%s)" % record["failure"]["reason"]
        )
        print("  %s -> %s" % (record["describe"], status))

    report = run_chaos(seed=args.seed, budget=budget, fast=fast, progress=progress)
    print(report.summary())
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, sort_keys=True, indent=2)
        print("chaos report:   %s" % args.out, file=sys.stderr)
    return 0 if report.ok else 1


#: The faultmatrix driver column: every driver architecture the paper
#: compares.
_MATRIX_VARIANTS = (
    ("unmodified", variants.unmodified),
    ("polling", variants.polling),
    ("clocked", variants.clocked),
    ("high_ipl", variants.high_ipl),
)


def _run_faultmatrix(args) -> int:
    """Drivers x fault plans, each cell watched and sanitized.

    With ``--check``, exits nonzero unless (a) every cell produced a
    result with zero leaked packets and (b) the fault-free column shows
    the paper's signature: the unmodified kernel livelocked above the
    cliff, every fixed variant healthy.
    """
    from .experiments.spec import TrialSpec

    machine = _machine_from_args(args)
    plans = [None] + sorted(CANNED_PLANS)
    specs = []
    for _, factory in _MATRIX_VARIANTS:
        for plan in plans:
            kwargs = {
                "duration_s": args.duration,
                "warmup_s": args.warmup,
                "watchdog": True,
                "sanitize": True,
                "machine": machine,
            }
            if plan is not None:
                kwargs["fault_plan"] = plan
            specs.append(TrialSpec.from_kwargs(factory(), args.rate, **kwargs))
    results = run_trials(
        specs,
        jobs=args.jobs,
        cache=not args.no_cache,
        cache_dir=args.cache_dir,
        timeout_s=args.timeout,
        retries=args.retries,
        strict=args.strict,
    )

    width = max(len(name) for name, _ in _MATRIX_VARIANTS)
    header = ["%-*s" % (width, "driver")] + [
        "%18s" % (plan or "clean") for plan in plans
    ]
    print(" ".join(header))
    failures = []
    clean_verdicts = {}
    index = 0
    for name, _ in _MATRIX_VARIANTS:
        row = ["%-*s" % (width, name)]
        for plan in plans:
            result = results[index]
            index += 1
            if isinstance(result, TrialFailure):
                row.append("%18s" % ("FAILED:" + result.kind))
                failures.append((name, plan, result))
                continue
            verdict = result.watchdog["verdict"]
            leaked = (
                result.faults["teardown"]["leaked"]
                if result.faults is not None
                else 0
            )
            if leaked:
                verdict += "+leak"
                failures.append((name, plan, result))
            if plan is None:
                clean_verdicts[name] = verdict
            row.append("%18s" % verdict)
        print(" ".join(row))

    if not args.check:
        return 0
    expected = dict.fromkeys(
        (name for name, _ in _MATRIX_VARIANTS), "healthy"
    )
    if machine is None or machine.cores == 1:
        expected["unmodified"] = "livelocked"
    else:
        # Steering the device IRQs off the housekeeping core leaves
        # netisr runnable: the classic kernel no longer livelocks at
        # this rate (the point of the SMP column).
        expected["unmodified"] = "healthy"
        if machine.isolate_polling:
            # With a single isolated IRQ target every device line
            # lands on one core. The high-IPL driver's rx handler
            # never leaves device IPL under overload, so the output
            # interface's tx interrupt starves on that core — tx only
            # ever delivers in the dispatch gap after a handler
            # completes, and on a saturated dedicated core that gap
            # never opens (DESIGN.md §14). The SMP analogue of why
            # the paper prefers the polling thread.
            expected["high_ipl"] = "livelocked"
    ok = not failures and clean_verdicts == expected
    if not ok:
        for name, plan, result in failures:
            print(
                "check failed: %s / %s -> %r"
                % (name, plan or "clean", result),
                file=sys.stderr,
            )
        if clean_verdicts != expected:
            print(
                "check failed: clean verdicts %r, expected %r"
                % (clean_verdicts, expected),
                file=sys.stderr,
            )
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
