"""Kernel configuration: everything that distinguishes the paper's
kernel variants, in one dataclass.

Experiments never flip mechanisms directly; they construct a
:class:`KernelConfig` (usually via :mod:`repro.core.variants`) and hand
it to the router builder. Defaults model the stock Digital UNIX router
(IP layer as a kernel thread, no polling, no feedback, no cycle limit).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..sim.units import NS_PER_MS
from .costs import DEFAULT_COSTS, CostModel

#: IP-layer placement for the classic kernel: 4.2BSD dispatches a software
#: interrupt at SPLNET, Digital UNIX runs a separately scheduled kernel
#: thread at IPL 0 (§6.3). Both suffer the same livelock; both are modelled.
IP_LAYER_SOFTIRQ = "softirq"
IP_LAYER_THREAD = "thread"


@dataclass(frozen=True)
class KernelConfig:
    """Complete configuration of one simulated kernel."""

    costs: CostModel = field(default_factory=lambda: DEFAULT_COSTS)

    # ------------------------------------------------------------------
    # Structure: which kernel is this?
    # ------------------------------------------------------------------
    #: Classic path: where the IP layer runs (fig 6-2).
    ip_layer_mode: str = IP_LAYER_THREAD
    #: True = the paper's modified kernel (§6.4): stub interrupt handlers,
    #: polling thread, processing to completion, no ipintrq.
    use_polling: bool = False
    #: Modified kernel configured to act like the unmodified one
    #: ("no polling" in fig 6-3); adds a small per-packet compat overhead.
    emulate_unmodified: bool = False
    #: Pure periodic polling with no interrupts (Traw & Smith, §8).
    use_clocked_polling: bool = False
    #: Poll period for the clocked-interrupt driver.
    clocked_poll_interval_ns: int = 1_000_000
    #: "Do (almost) everything at high IPL" (§5.3, first approach):
    #: process packets to completion inside the device-IPL handler.
    use_high_ipl: bool = False
    #: NAPI-style hybrid driver: per-device stub-interrupt → poll-drain
    #: → re-arm threads with an adaptive coalescing timer (the timer
    #: bound comes from :class:`repro.hw.machine.MachineSpec`). NOTE:
    #: new config fields must stay default-omitted in
    #: ``repro.experiments.engine.trial_fingerprint`` so pre-SMP cache
    #: fingerprints survive.
    use_hybrid: bool = False
    #: §5.1 interrupt-rate limiting applied to the *classic* kernel:
    #: disable input interrupts when ipintrq fills, re-enable when it
    #: drains to ``ipintrq_low_fraction`` of its limit.
    classic_input_feedback: bool = False
    ipintrq_low_fraction: float = 0.25

    # ------------------------------------------------------------------
    # Polling-thread parameters (§6.4–§6.6)
    # ------------------------------------------------------------------
    #: Packets one callback may handle per poll round; None = unlimited
    #: (the livelocking "no quota" configuration of fig 6-3).
    poll_quota: Optional[int] = 10
    #: Queue-state feedback from the screening queue (§6.6.1).
    feedback_enabled: bool = False
    #: Fraction of each period the packet-processing code may use
    #: (§7); None disables the cycle-limit mechanism.
    cycle_limit_fraction: Optional[float] = None

    # ------------------------------------------------------------------
    # screend (§6.1)
    # ------------------------------------------------------------------
    screend_enabled: bool = False
    #: The paper configures screend to accept all packets.
    screend_accept_all: bool = True

    # ------------------------------------------------------------------
    # Queue limits (classic BSD defaults; screening queue per §6.6.1)
    # ------------------------------------------------------------------
    ipintrq_limit: int = 50
    ifqueue_limit: int = 50
    screen_queue_limit: int = 32
    screen_queue_high_fraction: float = 0.75
    screen_queue_low_fraction: float = 0.25
    #: Re-enable input this many clock ticks after feedback inhibited it,
    #: in case screend hangs ("arbitrarily chosen as one clock tick").
    feedback_timeout_ticks: int = 1

    #: Drop policy of the interface output queues: "droptail" (the
    #: paper's policy, §8) or "red" (the Floyd & Jacobson alternative
    #: the paper cites as possibly better).
    output_queue_policy: str = "droptail"
    red_min_fraction: float = 0.25
    red_max_fraction: float = 0.75
    red_max_probability: float = 0.10
    red_weight: float = 0.2

    # ------------------------------------------------------------------
    # Interface rings
    # ------------------------------------------------------------------
    rx_ring_capacity: int = 64
    tx_ring_capacity: int = 32
    #: Drivers that drain to completion (high-IPL, clocked) may pull
    #: their whole RX batch in one ``rx_pull_many`` call instead of one
    #: ``rx_pull`` per packet. Opt-in, because freeing the descriptors
    #: at a single instant can admit arrivals an incremental drain would
    #: have overflow-dropped — replays of recorded trials must keep the
    #: default.
    rx_batch_pull: bool = False

    # ------------------------------------------------------------------
    # Clock and scheduling
    # ------------------------------------------------------------------
    clock_tick_ns: int = NS_PER_MS
    #: Cycle-limit accounting period (§7: 10 ms, "chosen arbitrarily to
    #: match the scheduler's quantum").
    cycle_limit_period_ticks: int = 10
    #: Round-robin quantum for user threads, in clock ticks.
    quantum_ticks: int = 10
    #: Run an idle thread (re-enables input and clears cycle totals, §7).
    idle_thread: bool = True

    # ------------------------------------------------------------------
    # Closed-loop mitigation controller (repro.core.mitigation)
    # ------------------------------------------------------------------
    #: Arm the closed-loop overload controller. Requires a polling-class
    #: kernel (use_polling or use_clocked_polling): the controller's
    #: actuators are the polling quota, the input-inhibit gate, and the
    #: clocked poll period — the classic kernel exposes none of them.
    mitigation_enabled: bool = False
    #: Controller sampling period, in clock ticks (one window per sample).
    mitigation_period_ticks: int = 10
    #: Useful-work fraction (delivered/arrived per window) below which a
    #: window counts as *pressure* toward escalation.
    mitigation_low_fraction: float = 0.3
    #: Useful-work fraction at or above which a window counts as *relief*
    #: toward de-escalation.
    mitigation_high_fraction: float = 0.7
    #: Consecutive pressure windows before the controller escalates.
    mitigation_trip_windows: int = 2
    #: Consecutive relief windows before the controller de-escalates.
    mitigation_clear_windows: int = 3
    #: Hard floor for the adapted RX quota: progress never stops.
    mitigation_min_quota: int = 2
    #: Quota imposed at escalation level 1 when the configured quota is
    #: unlimited (None); each further level halves it toward the floor.
    mitigation_quota_cap: int = 16
    #: Maximum escalation level.
    mitigation_max_level: int = 4
    #: Ceiling on the clocked poll-interval stretch factor.
    mitigation_max_interval_scale: int = 8
    #: RX-queue occupancy fraction above which the controller pulses the
    #: input-inhibit gate (polling kernel), and below which it releases it.
    mitigation_queue_high_fraction: float = 0.75
    mitigation_queue_low_fraction: float = 0.25

    # ------------------------------------------------------------------
    # Diagnostics (livelock watchdog, invariant sanitizer)
    # ------------------------------------------------------------------
    #: Width of one livelock-watchdog progress window, in clock ticks.
    watchdog_window_ticks: int = 50
    #: Invariant-sanitizer sampling period (check every N simulator
    #: events). Only consulted when the sanitizer is attached.
    sanitize_every_events: int = 256

    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Raise ValueError on inconsistent settings."""
        if self.ip_layer_mode not in (IP_LAYER_SOFTIRQ, IP_LAYER_THREAD):
            raise ValueError("unknown ip_layer_mode %r" % self.ip_layer_mode)
        if self.poll_quota is not None and self.poll_quota <= 0:
            raise ValueError("poll_quota must be positive or None")
        if self.cycle_limit_fraction is not None and not (
            0.0 < self.cycle_limit_fraction <= 1.0
        ):
            raise ValueError("cycle_limit_fraction must be in (0, 1]")
        if not (0.0 < self.screen_queue_low_fraction < self.screen_queue_high_fraction <= 1.0):
            raise ValueError("screen queue watermark fractions out of order")
        if self.emulate_unmodified and not self.use_polling:
            raise ValueError("emulate_unmodified is a mode of the modified kernel")
        exclusive_modes = sum(
            (
                self.use_polling,
                self.use_clocked_polling,
                self.use_high_ipl,
                self.use_hybrid,
            )
        )
        if exclusive_modes > 1:
            raise ValueError(
                "use_polling, use_clocked_polling, use_high_ipl and "
                "use_hybrid are exclusive"
            )
        if self.clocked_poll_interval_ns <= 0:
            raise ValueError("clocked_poll_interval_ns must be positive")
        if self.classic_input_feedback and (
            self.use_polling
            or self.use_clocked_polling
            or self.use_high_ipl
            or self.use_hybrid
        ):
            raise ValueError("classic_input_feedback applies to the classic kernel")
        if not 0.0 < self.ipintrq_low_fraction < 1.0:
            raise ValueError("ipintrq_low_fraction must be in (0, 1)")
        if self.mitigation_enabled and not (
            self.use_polling or self.use_clocked_polling
        ):
            raise ValueError(
                "mitigation_enabled requires a polling-class kernel "
                "(use_polling or use_clocked_polling)"
            )
        if self.mitigation_enabled and self.emulate_unmodified:
            raise ValueError(
                "mitigation_enabled is incompatible with emulate_unmodified"
            )
        if not (
            0.0
            < self.mitigation_low_fraction
            < self.mitigation_high_fraction
            <= 1.0
        ):
            raise ValueError("mitigation useful-work fractions out of order")
        if not (
            0.0
            < self.mitigation_queue_low_fraction
            < self.mitigation_queue_high_fraction
            <= 1.0
        ):
            raise ValueError("mitigation queue watermark fractions out of order")
        if self.output_queue_policy not in ("droptail", "red"):
            raise ValueError(
                "output_queue_policy must be 'droptail' or 'red', got %r"
                % self.output_queue_policy
            )
        for name in (
            "ipintrq_limit",
            "ifqueue_limit",
            "screen_queue_limit",
            "rx_ring_capacity",
            "tx_ring_capacity",
            "clock_tick_ns",
            "cycle_limit_period_ticks",
            "quantum_ticks",
            "feedback_timeout_ticks",
            "watchdog_window_ticks",
            "sanitize_every_events",
            "mitigation_period_ticks",
            "mitigation_trip_windows",
            "mitigation_clear_windows",
            "mitigation_min_quota",
            "mitigation_quota_cap",
            "mitigation_max_level",
            "mitigation_max_interval_scale",
        ):
            if getattr(self, name) <= 0:
                raise ValueError("%s must be positive" % name)

    def with_options(self, **changes) -> "KernelConfig":
        """A modified copy (convenience over dataclasses.replace)."""
        updated = replace(self, **changes)
        updated.validate()
        return updated

    @property
    def screen_queue_high(self) -> int:
        return max(1, int(self.screen_queue_limit * self.screen_queue_high_fraction))

    @property
    def screen_queue_low(self) -> int:
        # Strictly below the high watermark even when a tiny queue makes
        # both fractions round to the same integer.
        low = int(self.screen_queue_limit * self.screen_queue_low_fraction)
        return min(low, self.screen_queue_high - 1)
