"""CPU cost model: cycles charged for each kernel operation.

All per-operation CPU costs of the simulated kernel live here, expressed
in cycles of the modelled CPU (150 MHz by default, the DECstation
3000/300's Alpha 21064). The defaults are calibrated so the *unmodified*
kernel reproduces the paper's measured operating points (see DESIGN.md §4):

* kernel forwarding peak (MLFRR) ≈ 4,700 pkt/s without screend (§6.2):
  60 + 95 + 55 µs per packet ⇒ 1 / 210 µs ≈ 4,760 pkt/s;
* device-IPL saturation (full livelock) just below the 14,880 pkt/s
  Ethernet limit: ≈ 64 µs of device-IPL work per packet at full batching;
* screend livelock at ≈ 6,000 pkt/s (§6.2): device + IP-input work
  60 + 105 µs ⇒ 1 / 165 µs ≈ 6,060 pkt/s;
* screend peak ≈ 2,000 pkt/s: 60 + 105 + 235 + 45 + 55 µs ⇒ ≈ 2,000 pkt/s;
* ≈ 94 % of the CPU available to a compute-bound user process at zero
  input load (§7): 1 kHz clock × ~40 µs ≈ 4 %, plus scheduling overhead.

Experiments may substitute their own :class:`CostModel` to explore other
hardware points; every cost is an independent dataclass field.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


def us_to_cycles(us: float, hz: int) -> int:
    """Microseconds of work to cycles on a ``hz``-Hz CPU."""
    return int(round(us * hz / 1_000_000))


@dataclass(frozen=True)
class CostModel:
    """Cycle costs of kernel operations (defaults: 150 MHz Alpha router)."""

    cpu_hz: int = 150_000_000

    # ------------------------------------------------------------------
    # Interrupt plumbing
    # ------------------------------------------------------------------
    #: Taking one interrupt: PAL dispatch, save/restore, EOI (§4.1 "a
    #: costly operation"); amortised over a batch by the drivers.
    interrupt_dispatch: int = 1_500  # 10 µs
    #: Posting a software interrupt / wakeup from the device driver.
    softirq_post: int = 150  # 1 µs
    #: Thread context switch (charged by the CPU model between threads).
    context_switch: int = 750  # 5 µs

    # ------------------------------------------------------------------
    # Classic (unmodified) receive path, §4.1 / fig 6-2
    # ------------------------------------------------------------------
    #: Device-IPL work per received packet: buffer management, link-level
    #: processing, and the ipintrq enqueue. Dominates livelock behaviour.
    rx_device_per_packet: int = 7_200  # 48 µs
    #: Dequeue from ipintrq at SPLNET.
    ipintrq_dequeue: int = 300  # 2 µs
    #: IP forwarding decision + output enqueue (kernel route, no screend).
    ip_forward: int = 12_750  # 85 µs
    #: IP input processing when handing to the screening queue (includes
    #: queueing and waking the user process) — the screend path's kernel
    #: share is deliberately larger than plain forwarding.
    ip_input_to_screen_queue: int = 15_750  # 105 µs
    #: IP output processing after a screend verdict (route + ifqueue).
    ip_output_after_screen: int = 6_750  # 45 µs

    # ------------------------------------------------------------------
    # Transmit path
    # ------------------------------------------------------------------
    #: Moving one packet from the output ifqueue into a TX descriptor.
    tx_start_per_packet: int = 4_500  # 30 µs
    #: Releasing one completed TX descriptor.
    tx_reclaim_per_packet: int = 1_200  # 8 µs

    # ------------------------------------------------------------------
    # Modified (polling) path, §6.4
    # ------------------------------------------------------------------
    #: The stub interrupt handler: record service need, schedule the
    #: polling thread, leave interrupts disabled. "almost no work at all".
    polled_stub_handler: int = 750  # 5 µs
    #: Per-packet RX work in the received-packet callback (replaces
    #: rx_device_per_packet; slightly cheaper: no ipintrq, no softirq).
    polled_rx_per_packet: int = 9_000  # 60 µs
    #: Fixed cost of one polling-loop pass (flag checks, loop control).
    poll_loop_overhead: int = 750  # 5 µs
    #: Checking one registered device's service flags.
    poll_device_check: int = 300  # 2 µs
    #: Reading the cycle counter and updating the usage total (§7); the
    #: Alpha PCC read is one instruction, the bookkeeping a few more.
    cycle_accounting: int = 30  # 0.2 µs
    #: Extra per-packet overhead when the modified kernel is configured
    #: to *emulate* the unmodified path ("no polling" in fig 6-3, which
    #: performed slightly worse than the true unmodified kernel).
    modified_compat_overhead: int = 600  # 4 µs

    # ------------------------------------------------------------------
    # screend / user processes
    # ------------------------------------------------------------------
    #: One screend iteration: syscall in, filter evaluation, syscall out.
    screend_per_packet: int = 35_250  # 235 µs
    #: Generic syscall overhead for other applications (monitor, sink).
    syscall_overhead: int = 3_000  # 20 µs
    #: Copying one packet into a packet-filter tap queue (passive
    #: monitoring, §2 / [8, 9]).
    packet_filter_tap: int = 1_500  # 10 µs

    # ------------------------------------------------------------------
    # Clock and housekeeping
    # ------------------------------------------------------------------
    #: hardclock: timekeeping, callout scan, scheduler bookkeeping.
    clock_tick: int = 5_250  # 35 µs
    #: Executing one expired callout.
    callout_run: int = 300  # 2 µs

    # ------------------------------------------------------------------

    def scaled(self, factor: float) -> "CostModel":
        """A uniformly faster/slower kernel (e.g. ``scaled(0.5)`` halves
        every per-operation cost — a CPU twice as fast at the same Hz)."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        fields = {}
        for name in self.__dataclass_fields__:
            if name == "cpu_hz":
                continue
            fields[name] = max(0, int(round(getattr(self, name) * factor)))
        return replace(self, **fields)

    def us(self, cycles: int) -> float:
        """Convert a cycle count back to microseconds (for reports)."""
        return cycles * 1_000_000 / self.cpu_hz


#: The calibrated default model used by all paper-reproduction experiments.
DEFAULT_COSTS = CostModel()
