"""Kernel core: CPU, clock, callouts, threads, and idle loop.

:class:`Kernel` owns the machine-level plumbing shared by every kernel
variant. The network stack (drivers, IP layer, queues) is assembled on
top of it by :class:`repro.experiments.topology.Router`, keeping this
module free of networking concerns.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..hw.clock import ClockDevice
from ..hw.cpu import CLASS_IDLE, CLASS_KERNEL, CLASS_USER, CPU, CpuTask
from ..hw.interrupts import InterruptController, InterruptLine
from ..hw.machine import SINGLE_CORE, IRQSteering, MachineSpec, STEERING_RSS
from ..sim.probes import ProbeRegistry
from ..sim.process import ProcessBody, Work
from ..sim.randomness import RandomStreams
from ..sim.simulator import Simulator
from .callouts import Callout, CalloutTable
from .config import KernelConfig

#: Size of one idle-loop work chunk, microseconds. Between chunks the
#: idle thread runs its hooks (re-enable input, clear cycle totals, §7).
IDLE_CHUNK_US = 100


class Kernel:
    """The simulated operating system kernel (machine layer)."""

    def __init__(
        self,
        sim: Optional[Simulator] = None,
        config: Optional[KernelConfig] = None,
        probes: Optional[ProbeRegistry] = None,
        machine: Optional[MachineSpec] = None,
    ) -> None:
        self.sim = sim if sim is not None else Simulator()
        self.config = config if config is not None else KernelConfig()
        self.config.validate()
        self.costs = self.config.costs
        self.probes = probes if probes is not None else ProbeRegistry(self.sim)
        self.machine = machine if machine is not None else SINGLE_CORE
        # Core 0 keeps the exact pre-SMP constructor calls (defaults for
        # name/index) so single-core trials stay byte-identical to the
        # golden fixture; extra cores and their controllers are built in
        # index order (the same-instant tie-break, DESIGN.md §14).
        self.cpu = CPU(
            self.sim,
            hz=self.costs.cpu_hz,
            context_switch_cycles=self.costs.context_switch,
        )
        self.interrupts = InterruptController(self.cpu)
        self.cpus: List[CPU] = [self.cpu]
        self.controllers: List[InterruptController] = [self.interrupts]
        for index in range(1, self.machine.cores):
            cpu = CPU(
                self.sim,
                hz=self.costs.cpu_hz,
                context_switch_cycles=self.costs.context_switch,
                name="cpu%d" % index,
                index=index,
            )
            self.cpus.append(cpu)
            self.controllers.append(InterruptController(cpu))
        self.callout_table = CalloutTable()
        self.ticks = 0
        self.clock = ClockDevice(
            self.sim,
            self.interrupts,
            self._clock_handler,
            tick_ns=self.config.clock_tick_ns,
            dispatch_cycles=self.costs.interrupt_dispatch,
        )
        #: Deterministic RNG streams for in-kernel randomness (RED).
        self.streams = RandomStreams(0)
        #: Device-IRQ → core map; built only on multi-core machines (the
        #: RSS salt draw would otherwise perturb nothing, but the object
        #: is simply meaningless with one core). The salt comes from the
        #: named ``"steering"`` stream so trials stay replayable.
        self.steering: Optional[IRQSteering] = None
        if self.machine.cores > 1:
            salt = 0
            if self.machine.steering == STEERING_RSS:
                salt = self.streams.stream("steering").getrandbits(32)
            self.steering = IRQSteering(self.machine, salt=salt)
        #: Hooks run from the idle thread (e.g. cycle-limit reset, §7).
        self.on_idle: List[Callable[[], None]] = []
        #: Hooks run once per clock tick, at clock IPL (cheap bookkeeping).
        self.on_tick: List[Callable[[int], None]] = []
        self.idle_task: Optional[CpuTask] = None
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start the clock and (optionally) the idle threads."""
        if self._started:
            raise RuntimeError("kernel already started")
        self._started = True
        self.clock.start()
        if self.config.idle_thread:
            self.idle_task = self.cpu.spawn(
                self._idle_body(), "idle", priority_class=CLASS_IDLE
            )
            # Extra cores idle too (their utilization accounting needs a
            # baseline task) but only core 0's idle loop runs the
            # on_idle hooks — they are machine-wide, not per-core.
            for cpu in self.cpus[1:]:
                cpu.spawn(
                    self._idle_body(run_hooks=False),
                    "idle:%s" % cpu.name,
                    priority_class=CLASS_IDLE,
                )

    # ------------------------------------------------------------------
    # Thread creation
    # ------------------------------------------------------------------

    def kernel_thread(
        self, body: ProcessBody, name: str, core: int = 0
    ) -> CpuTask:
        """Spawn a kernel thread (beats every user process), optionally
        pinned to a core other than the housekeeping core."""
        return self.cpus[core].spawn(body, name, priority_class=CLASS_KERNEL)

    def user_process(self, body: ProcessBody, name: str) -> CpuTask:
        """Spawn a user process (timeshared, below kernel threads)."""
        return self.cpu.spawn(body, name, priority_class=CLASS_USER)

    # ------------------------------------------------------------------
    # Interrupt lines (device IRQs are steered on multi-core machines)
    # ------------------------------------------------------------------

    def irq_line(
        self,
        name: str,
        ipl: int,
        handler_factory,
        dispatch_cycles: int = 0,
    ) -> InterruptLine:
        """Create a *device* interrupt line on its steered core.

        Single-core machines delegate straight to the core-0 controller
        (the pre-SMP path, byte-identical); with more cores the
        :class:`~repro.hw.machine.IRQSteering` policy picks the target.
        Software interrupts (softnet) and the clock are not device
        lines: they stay on the housekeeping core via
        ``self.interrupts.line(...)``.
        """
        if self.steering is None:
            return self.interrupts.line(
                name, ipl, handler_factory, dispatch_cycles=dispatch_cycles
            )
        controller = self.controllers[self.steering.core_for(name)]
        return controller.line(
            name, ipl, handler_factory, dispatch_cycles=dispatch_cycles
        )

    def irq_lines(self) -> List[InterruptLine]:
        """Every interrupt line on every core, in (core, creation) order."""
        if len(self.controllers) == 1:
            return self.interrupts.lines
        out: List[InterruptLine] = []
        for controller in self.controllers:
            out.extend(controller.lines)
        return out

    # ------------------------------------------------------------------
    # Callouts
    # ------------------------------------------------------------------

    def callout(self, delay_ticks: int, func: Callable[[], None]) -> Callout:
        """Run ``func`` from the clock handler ``delay_ticks`` ticks from now."""
        return self.callout_table.schedule(self.ticks, delay_ticks, func)

    # ------------------------------------------------------------------
    # Clock interrupt handler (runs at IPL_CLOCK)
    # ------------------------------------------------------------------

    def _clock_handler(self) -> ProcessBody:
        yield Work(self.costs.clock_tick)
        self.ticks += 1
        for hook in self.on_tick:
            hook(self.ticks)
        due = self.callout_table.due(self.ticks)
        for callout in due:
            yield Work(self.costs.callout_run)
            callout.func()
            self.callout_table.executed += 1
        self._rotate_quantum()

    def _rotate_quantum(self) -> None:
        """Round-robin rotation of the interrupted user thread when its
        quantum expires (sampled at clock ticks, like real hardclock)."""
        if self.ticks % self.config.quantum_ticks != 0:
            return
        for cpu in self.cpus:
            interrupted = cpu.last_thread
            if (
                interrupted is not None
                and interrupted.priority_class == CLASS_USER
                and interrupted.alive
            ):
                cpu.requeue_behind(interrupted)

    # ------------------------------------------------------------------
    # Idle thread
    # ------------------------------------------------------------------

    def _idle_body(self, run_hooks: bool = True) -> ProcessBody:
        chunk_cycles = self.costs.cpu_hz // 1_000_000 * IDLE_CHUNK_US
        while True:
            if run_hooks:
                for hook in self.on_idle:
                    hook()
            yield Work(chunk_cycles)

    def __repr__(self) -> str:
        return "Kernel(t=%d ns, ticks=%d)" % (self.sim.now, self.ticks)
