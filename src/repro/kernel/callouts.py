"""Kernel callout table (tick-granularity timers).

BSD-style callouts: a function scheduled to run a whole number of clock
ticks in the future, executed from the clock interrupt handler at clock
IPL. The paper's feedback timeout ("one clock tick, or about 1 msec",
§6.6.1) and the cycle-limit period timer (§7) are callouts.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Tuple


class Callout:
    """Handle for a scheduled callout; supports cancellation."""

    __slots__ = ("deadline_tick", "seq", "func", "cancelled")

    def __init__(self, deadline_tick: int, seq: int, func: Callable[[], None]) -> None:
        self.deadline_tick = deadline_tick
        self.seq = seq
        self.func = func
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __lt__(self, other: "Callout") -> bool:
        return (self.deadline_tick, self.seq) < (other.deadline_tick, other.seq)


class CalloutTable:
    """Pending callouts, drained once per clock tick."""

    def __init__(self) -> None:
        self._heap: List[Callout] = []
        self._seq = 0
        self.executed = 0

    def schedule(self, now_tick: int, delay_ticks: int, func: Callable[[], None]) -> Callout:
        """Run ``func`` ``delay_ticks`` ticks from ``now_tick`` (min 1)."""
        if delay_ticks < 1:
            raise ValueError("callout delay must be at least one tick")
        callout = Callout(now_tick + delay_ticks, self._seq, func)
        self._seq += 1
        heapq.heappush(self._heap, callout)
        return callout

    def due(self, now_tick: int) -> List[Callout]:
        """Pop every live callout whose deadline has arrived."""
        ready: List[Callout] = []
        while self._heap and self._heap[0].deadline_tick <= now_tick:
            callout = heapq.heappop(self._heap)
            if not callout.cancelled:
                ready.append(callout)
        return ready

    def pending(self) -> int:
        return sum(1 for c in self._heap if not c.cancelled)
