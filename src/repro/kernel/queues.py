"""Bounded drop-tail packet queues with watermark callbacks.

Every queue in the classic stack (``ipintrq``, per-interface output
queues, the screening queue) is a fixed-limit drop-tail queue (§4.1:
"typically they have fixed length limits... the system must drop the
packet"). The paper's queue-state feedback mechanism (§6.6.1) needs two
extra notions, provided here:

* **high / low watermarks** with callbacks, used to inhibit and re-enable
  input processing;
* **drop accounting**, split by queue, because a packet dropped late
  carries away all the CPU already invested in it (§4.2) — the
  wasted-work benches read these counters.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, List, Optional

from ..sim.probes import ProbeRegistry
from ..trace.buffer import Q_DROP, Q_ENQUEUE


class PacketQueue:
    """A bounded FIFO with drop-tail overflow and watermark callbacks."""

    def __init__(
        self,
        name: str,
        limit: int,
        probes: Optional[ProbeRegistry] = None,
        high_watermark: Optional[int] = None,
        low_watermark: Optional[int] = None,
    ) -> None:
        if limit <= 0:
            raise ValueError("queue limit must be positive, got %d" % limit)
        if high_watermark is not None and not (0 < high_watermark <= limit):
            raise ValueError("high watermark must be in (0, limit]")
        if low_watermark is not None and high_watermark is not None:
            if low_watermark >= high_watermark:
                raise ValueError("low watermark must be below high watermark")
        self.name = name
        self.limit = limit
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self._items: Deque[Any] = deque()
        self._probes = probes
        if probes is not None:
            self._enqueued = probes.counter("queue.%s.enqueued" % name)
            self._dequeued = probes.counter("queue.%s.dequeued" % name)
            self._dropped = probes.counter("queue.%s.dropped" % name)
        else:
            self._enqueued = self._dequeued = self._dropped = None
        self.on_high: List[Callable[["PacketQueue"], None]] = []
        self.on_low: List[Callable[["PacketQueue"], None]] = []
        #: Trace hook (:class:`repro.trace.TraceBuffer`), bound by
        #: ``Router.attach_trace``; None on the untraced fast path.
        self.trace = None
        self.enqueue_count = 0
        self.dequeue_count = 0
        self.drop_count = 0
        self.max_depth = 0

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.limit

    @property
    def empty(self) -> bool:
        return not self._items

    @property
    def above_high(self) -> bool:
        return self.high_watermark is not None and len(self._items) >= self.high_watermark

    @property
    def below_low(self) -> bool:
        return self.low_watermark is not None and len(self._items) <= self.low_watermark

    # ------------------------------------------------------------------

    def enqueue(self, item: Any) -> bool:
        """Append ``item``; drop it (returning False) if the queue is full.

        The high-watermark callbacks fire on **every** enqueue attempt
        (successful or not) that leaves the queue at or above the high
        watermark — a level check, not an edge. The feedback mechanism
        needs this: after its failsafe timeout re-enables input with the
        queue still congested, the very next enqueue must re-inhibit
        (§6.6.1: "detect when the screening queue becomes full").
        Subscribers must therefore be idempotent.
        """
        if self.full:
            self.drop_count += 1
            if self._dropped is not None:
                self._dropped.increment()
            if hasattr(item, "mark_dropped"):
                item.mark_dropped(self.name)
            trace = self.trace
            if trace is not None:
                trace.packet_drop(Q_DROP, self.name, item)
            self._fire_high_if_needed()
            return False
        self._items.append(item)
        self.enqueue_count += 1
        if self._enqueued is not None:
            self._enqueued.increment()
        if len(self._items) > self.max_depth:
            self.max_depth = len(self._items)
        trace = self.trace
        if trace is not None:
            trace.record(Q_ENQUEUE, self.name, len(self._items))
        self._fire_high_if_needed()
        return True

    def _fire_high_if_needed(self) -> None:
        if self.high_watermark is not None and len(self._items) >= self.high_watermark:
            for callback in self.on_high:
                callback(self)

    def dequeue(self) -> Optional[Any]:
        """Remove and return the head item, or None if empty."""
        if not self._items:
            return None
        item = self._items.popleft()
        self.dequeue_count += 1
        if self._dequeued is not None:
            self._dequeued.increment()
        if self.low_watermark is not None and len(self._items) == self.low_watermark:
            for callback in self.on_low:
                callback(self)
        return item

    def peek(self) -> Optional[Any]:
        return self._items[0] if self._items else None

    def drain(self) -> List[Any]:
        """Remove and return all queued items *without* counting them as
        drops or dequeues. Teardown-only: the packets were neither lost
        nor serviced — the trial simply ended around them — so the drop
        accounting the wasted-work benches read must not move."""
        items = list(self._items)
        self._items.clear()
        return items

    def clear(self) -> int:
        """Discard all queued items (counts them as drops)."""
        discarded = len(self._items)
        for item in self._items:
            if hasattr(item, "mark_dropped"):
                item.mark_dropped(self.name)
        self.drop_count += discarded
        if self._dropped is not None:
            self._dropped.increment(discarded)
        self._items.clear()
        return discarded

    def __repr__(self) -> str:
        return "PacketQueue(%s, %d/%d, dropped=%d)" % (
            self.name,
            len(self._items),
            self.limit,
            self.drop_count,
        )


class REDQueue(PacketQueue):
    """Random Early Detection drop policy (Floyd & Jacobson 1993).

    The paper keeps drop-tail and notes that "other policies might
    provide better results [3]" (§8); this queue is that ablation. A
    weighted moving average of the occupancy drives probabilistic early
    drops between ``min_threshold`` and ``max_threshold``; above
    ``max_threshold`` every arrival is dropped. Early drops keep the
    standing queue (and therefore queueing delay) short under sustained
    overload, at the cost of dropping packets the queue could still have
    held.
    """

    def __init__(
        self,
        name: str,
        limit: int,
        rng,
        probes: Optional["ProbeRegistry"] = None,
        min_fraction: float = 0.25,
        max_fraction: float = 0.75,
        max_probability: float = 0.1,
        weight: float = 0.2,
        high_watermark: Optional[int] = None,
        low_watermark: Optional[int] = None,
    ) -> None:
        super().__init__(
            name,
            limit,
            probes,
            high_watermark=high_watermark,
            low_watermark=low_watermark,
        )
        if not 0.0 < min_fraction < max_fraction <= 1.0:
            raise ValueError("need 0 < min_fraction < max_fraction <= 1")
        if not 0.0 < max_probability <= 1.0:
            raise ValueError("max_probability must be in (0, 1]")
        if not 0.0 < weight <= 1.0:
            raise ValueError("weight must be in (0, 1]")
        self._rng = rng
        self.min_threshold = max(1.0, min_fraction * limit)
        self.max_threshold = max_fraction * limit
        self.max_probability = max_probability
        self.weight = weight
        self.average = 0.0
        self.early_drops = 0
        self._since_last_drop = 0

    def enqueue(self, item: Any) -> bool:
        self.average = (
            (1.0 - self.weight) * self.average + self.weight * len(self._items)
        )
        if self.average >= self.max_threshold or self._should_early_drop():
            self.early_drops += 1
            self.drop_count += 1
            self._since_last_drop = 0
            if self._dropped is not None:
                self._dropped.increment()
            if hasattr(item, "mark_dropped"):
                item.mark_dropped(self.name + ".red")
            trace = self.trace
            if trace is not None:
                trace.packet_drop(Q_DROP, self.name + ".red", item)
            self._fire_high_if_needed()
            return False
        accepted = super().enqueue(item)
        if accepted:
            self._since_last_drop += 1
        return accepted

    def _should_early_drop(self) -> bool:
        if self.average < self.min_threshold:
            return False
        span = self.max_threshold - self.min_threshold
        base = self.max_probability * (self.average - self.min_threshold) / span
        # Floyd & Jacobson's count correction spreads drops uniformly.
        denominator = max(1e-9, 1.0 - self._since_last_drop * base)
        probability = min(1.0, base / denominator)
        return self._rng.random() < probability
