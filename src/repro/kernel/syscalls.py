"""Syscall helpers for simulated user processes.

User processes cross into the kernel through these generator helpers
(used with ``yield from`` inside a process body). Each crossing charges
CPU in the calling process's context, exactly as a monolithic kernel
does; a blocking read parks the process on the queue's data signal so it
consumes no CPU while waiting.
"""

from __future__ import annotations

from typing import Any, Optional

from ..sim.process import WaitSignal, Work
from ..sim.signals import Signal
from .costs import CostModel
from .queues import PacketQueue


class BlockingQueueReader:
    """Blocking, signal-driven reads from a kernel packet queue.

    The kernel side enqueues packets and fires ``data_signal``; the user
    side does ``packet = yield from reader.read()``. Used by screend and
    the passive monitor.
    """

    def __init__(
        self,
        queue: PacketQueue,
        data_signal: Signal,
        costs: CostModel,
        charge_syscall: bool = True,
    ) -> None:
        self.queue = queue
        self.data_signal = data_signal
        self.costs = costs
        self.charge_syscall = charge_syscall
        self.reads = 0
        self.blocked_reads = 0

    def read(self):
        """Generator helper: returns the next packet, blocking if empty."""
        if self.charge_syscall:
            yield Work(self.costs.syscall_overhead)
        while True:
            packet = self.queue.dequeue()
            if packet is not None:
                self.reads += 1
                return packet
            self.blocked_reads += 1
            yield WaitSignal(self.data_signal)

    def try_read(self) -> Optional[Any]:
        """Non-blocking dequeue (no syscall cost; for kernel-side use)."""
        return self.queue.dequeue()
