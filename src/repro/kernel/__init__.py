"""Kernel substrate: configuration, cost model, queues, callouts, threads
and syscall helpers."""

from .callouts import Callout, CalloutTable
from .config import IP_LAYER_SOFTIRQ, IP_LAYER_THREAD, KernelConfig
from .costs import DEFAULT_COSTS, CostModel, us_to_cycles
from .kernel import Kernel
from .queues import PacketQueue, REDQueue
from .syscalls import BlockingQueueReader

__all__ = [
    "BlockingQueueReader",
    "Callout",
    "CalloutTable",
    "CostModel",
    "DEFAULT_COSTS",
    "IP_LAYER_SOFTIRQ",
    "IP_LAYER_THREAD",
    "Kernel",
    "KernelConfig",
    "PacketQueue",
    "REDQueue",
    "us_to_cycles",
]
