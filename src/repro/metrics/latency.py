"""Per-packet latency recording.

Latency here is **router residence time**: NIC arrival to transmit
completion, the quantity §4.3 discusses ("the latency to deliver the
first packet in a burst is increased almost by the time it takes to
receive the entire burst"). The recorder hooks an output NIC's
``on_transmit`` path and supports a measurement window so warm-up
packets are excluded.
"""

from __future__ import annotations

from typing import List, Optional

from ..net.packet import Packet
from ..sim.simulator import Simulator
from ..sim.units import NS_PER_US
from .stats import summarize


class LatencyRecorder:
    """Collects residence latencies of transmitted packets."""

    def __init__(self, sim: Simulator, name: str = "latency") -> None:
        self.sim = sim
        self.name = name
        self._samples_ns: List[int] = []
        self._recording = False
        self._window_start: Optional[int] = None

    # ------------------------------------------------------------------

    def start(self) -> None:
        """Begin recording (call at the end of warm-up)."""
        self._recording = True
        self._window_start = self.sim.now
        self._samples_ns = []

    def stop(self) -> None:
        self._recording = False

    def observe(self, packet: Packet) -> None:
        """on_transmit hook: record the packet's residence latency."""
        if not self._recording:
            return
        latency = packet.latency_ns()
        if latency is not None:
            self._samples_ns.append(latency)

    # ------------------------------------------------------------------

    @property
    def count(self) -> int:
        return len(self._samples_ns)

    def samples_us(self) -> List[float]:
        return [ns / NS_PER_US for ns in self._samples_ns]

    def summary_us(self) -> dict:
        """Mean/median/p95/p99/max in microseconds."""
        return summarize(self.samples_us())
