"""Per-packet latency recording.

Latency here is **router residence time**: NIC arrival to transmit
completion, the quantity §4.3 discusses ("the latency to deliver the
first packet in a burst is increased almost by the time it takes to
receive the entire burst"). The recorder hooks an output NIC's
``on_transmit`` path and supports a measurement window so warm-up
packets are excluded.

Memory is bounded: the first ``sample_cap`` latencies are kept exactly
(so ``summary_us()`` is unchanged for every normal-length trial), after
which the recorder switches to uniform reservoir sampling driven by its
own fixed-seed RNG — deterministic for a given observation sequence, and
independent of every other random stream in the trial. Week-long
simulated runs therefore hold at most ``sample_cap`` samples instead of
one float per delivered packet.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..net.packet import Packet
from ..sim.simulator import Simulator
from ..sim.units import NS_PER_US
from .stats import summarize

#: Exact-sample limit before reservoir sampling kicks in. Large enough
#: that every paper-scale trial (seconds of simulated time) keeps exact
#: percentiles; small enough that week-long runs stay at ~0.5 MB.
DEFAULT_SAMPLE_CAP = 65_536

#: Fixed reservoir seed: replacement decisions depend only on the
#: observation sequence, never on the trial's seed or wall clock.
_RESERVOIR_SEED = 0x1A7E9C


class LatencyRecorder:
    """Collects residence latencies of transmitted packets."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "latency",
        sample_cap: int = DEFAULT_SAMPLE_CAP,
    ) -> None:
        if sample_cap <= 0:
            raise ValueError("sample cap must be positive")
        self.sim = sim
        self.name = name
        self.sample_cap = sample_cap
        self._samples_ns: List[int] = []
        self._observed = 0
        self._recording = False
        self._window_start: Optional[int] = None
        self._rng = random.Random(_RESERVOIR_SEED)

    # ------------------------------------------------------------------

    def start(self) -> None:
        """Begin recording (call at the end of warm-up)."""
        self._recording = True
        self._window_start = self.sim.now
        self._samples_ns = []
        self._observed = 0
        self._rng = random.Random(_RESERVOIR_SEED)

    def stop(self) -> None:
        self._recording = False

    def observe(self, packet: Packet) -> None:
        """on_transmit hook: record the packet's residence latency."""
        if not self._recording:
            return
        arrival = packet.nic_arrival_ns
        transmitted = packet.transmitted_ns
        if arrival is None or transmitted is None:
            return
        latency = transmitted - arrival
        self._observed += 1
        samples = self._samples_ns
        if len(samples) < self.sample_cap:
            samples.append(latency)
            return
        # Algorithm R: keep each of the _observed latencies with equal
        # probability cap/_observed.
        slot = self._rng.randrange(self._observed)
        if slot < self.sample_cap:
            samples[slot] = latency

    # ------------------------------------------------------------------

    @property
    def count(self) -> int:
        """Latencies observed (not the retained sample count)."""
        return self._observed

    @property
    def samples_held(self) -> int:
        """Samples actually retained (== ``count`` until the cap)."""
        return len(self._samples_ns)

    def samples_us(self) -> List[float]:
        return [ns / NS_PER_US for ns in self._samples_ns]

    def summary_us(self) -> dict:
        """Mean/median/p95/p99/max in microseconds.

        Identical to the unbounded recorder whenever fewer than
        ``sample_cap`` latencies were observed; beyond that, the summary
        is computed over the reservoir and ``count`` reports the true
        observation count with ``sampled`` recording the reservoir size.
        """
        summary = summarize(self.samples_us())
        if self._observed > len(self._samples_ns):
            summary["count"] = self._observed
            summary["sampled"] = len(self._samples_ns)
        return summary
