"""Periodic state sampling: queue depths and ring occupancy over time.

The feedback mechanisms are oscillators — the screening queue saws
between its watermarks (§6.6.1), the cycle limiter gates input once per
period (§7). A :class:`DepthSampler` records any ``len()``-able object's
occupancy on a fixed period into a
:class:`~repro.sim.probes.TimeSeries`, so tests and examples can assert
on (or display) the dynamics rather than just end-of-run totals.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..sim.probes import TimeSeries
from ..sim.simulator import Simulator


class DepthSampler:
    """Samples ``probe()`` every ``period_ns`` into a TimeSeries."""

    def __init__(
        self,
        sim: Simulator,
        probe: Callable[[], float],
        period_ns: int,
        name: str = "depth",
    ) -> None:
        if period_ns <= 0:
            raise ValueError("sampling period must be positive")
        self.sim = sim
        self.probe = probe
        self.period_ns = period_ns
        self.series = TimeSeries(name)
        self._running = False
        self._timer = None

    @classmethod
    def for_queue(
        cls, sim: Simulator, queue, period_ns: int
    ) -> "DepthSampler":
        """Sample anything with ``__len__`` (PacketQueue, rings...)."""
        return cls(sim, lambda: len(queue), period_ns, name=queue.name)

    def start(self) -> "DepthSampler":
        if self._running:
            raise RuntimeError("sampler already running")
        self._running = True
        # One re-armed event for the sampler's lifetime (samplers tick for
        # the whole run, often at sub-tick periods).
        self._timer = self.sim.schedule_periodic(
            self.period_ns, self._tick, label="sample:" + self.series.name
        )
        return self

    def stop(self) -> None:
        self._running = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _tick(self) -> None:
        self.series.record(self.sim.now, float(self.probe()))

    # ------------------------------------------------------------------

    def values(self) -> Sequence[float]:
        return self.series.values()

    def max_depth(self) -> float:
        values = self.series.values()
        return max(values) if values else 0.0

    def mean_depth(self) -> float:
        values = self.series.values()
        return sum(values) / len(values) if values else 0.0

    def oscillations(self, high: float, low: float) -> int:
        """Count full high->low cycles (feedback saw-tooth periods)."""
        count = 0
        armed = False
        for value in self.series.values():
            if not armed and value >= high:
                armed = True
            elif armed and value <= low:
                armed = False
                count += 1
        return count

    def sparkline(self, buckets: int = 60) -> str:
        """A coarse one-line rendering of the sampled series."""
        values = list(self.series.values())
        if not values:
            return "(no samples)"
        marks = " .:-=+*#%@"
        peak = max(values) or 1.0
        step = max(1, len(values) // buckets)
        chars = []
        for index in range(0, len(values), step):
            window = values[index:index + step]
            level = max(window) / peak
            chars.append(marks[min(len(marks) - 1, int(level * (len(marks) - 1)))])
        return "".join(chars)
