"""Small statistics helpers (no numpy dependency in the core library)."""

from __future__ import annotations

import math
from typing import List, Sequence


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def variance(values: Sequence[float]) -> float:
    """Population variance."""
    if not values:
        raise ValueError("variance of empty sequence")
    mu = mean(values)
    return sum((v - mu) ** 2 for v in values) / len(values)


def stddev(values: Sequence[float]) -> float:
    return math.sqrt(variance(values))


def percentile(values: Sequence[float], pct: float) -> float:
    """Linear-interpolation percentile, pct in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= pct <= 100.0:
        raise ValueError("pct must be within [0, 100], got %r" % pct)
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * pct / 100.0
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high or ordered[low] == ordered[high]:
        return ordered[low]
    frac = rank - low
    value = ordered[low] + (ordered[high] - ordered[low]) * frac
    # Clamp against float rounding so interpolation stays within its
    # bracketing samples (keeps percentile monotone in pct).
    return min(max(value, ordered[low]), ordered[high])


def median(values: Sequence[float]) -> float:
    return percentile(values, 50.0)


def jitter(values: Sequence[float]) -> float:
    """Mean absolute successive difference — the "variance in delay"
    sense of jitter used in §3."""
    if len(values) < 2:
        return 0.0
    diffs = [abs(b - a) for a, b in zip(values, values[1:])]
    return sum(diffs) / len(diffs)


def summarize(values: Sequence[float]) -> dict:
    """Mean / median / p95 / p99 / max summary used in reports."""
    if not values:
        return {"count": 0}
    return {
        "count": len(values),
        "mean": mean(values),
        "median": median(values),
        "p95": percentile(values, 95.0),
        "p99": percentile(values, 99.0),
        "max": max(values),
        "min": min(values),
    }
