"""Throughput analysis: MLFRR estimation and livelock detection.

The paper's vocabulary (§4.2):

* **MLFRR** — Maximum Loss Free Receive Rate: throughput keeps up with
  offered load up to this point;
* a *well-behaved* system's throughput stays roughly flat above MLFRR;
* a *livelock-prone* system's throughput **falls** with increasing load;
* **livelock** — throughput effectively zero while overload persists.

These functions classify a measured (input_rate, output_rate) sweep.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

#: Output below this fraction of the peak counts as collapsed (livelock).
LIVELOCK_FRACTION = 0.10


def peak_rate(series: Sequence[Tuple[float, float]]) -> Tuple[float, float]:
    """(input_rate, output_rate) at the maximum observed output."""
    if not series:
        raise ValueError("empty rate series")
    return max(series, key=lambda point: point[1])


def estimate_mlfrr(
    series: Sequence[Tuple[float, float]],
    loss_tolerance: float = 0.05,
) -> float:
    """Highest input rate whose output keeps up within ``loss_tolerance``.

    Loss-free is taken as output >= (1 - tolerance) * input; the MLFRR is
    the largest input rate still satisfying it.
    """
    if not series:
        raise ValueError("empty rate series")
    eligible = [
        input_rate
        for input_rate, output_rate in series
        if input_rate > 0 and output_rate >= (1.0 - loss_tolerance) * input_rate
    ]
    return max(eligible) if eligible else 0.0


def livelock_onset(
    series: Sequence[Tuple[float, float]],
    collapse_fraction: float = LIVELOCK_FRACTION,
) -> Optional[float]:
    """Lowest input rate at/after which output has collapsed to below
    ``collapse_fraction`` of the peak and never recovers. None if the
    system never livelocks in the measured range."""
    if not series:
        raise ValueError("empty rate series")
    ordered = sorted(series)
    _, peak_output = peak_rate(ordered)
    if peak_output <= 0:
        return ordered[0][0]
    threshold = peak_output * collapse_fraction
    onset: Optional[float] = None
    for input_rate, output_rate in ordered:
        if output_rate < threshold and input_rate > 0:
            if onset is None:
                onset = input_rate
        else:
            onset = None
    return onset


def degradation_ratio(series: Sequence[Tuple[float, float]]) -> float:
    """Output at the highest measured load divided by peak output — 1.0
    means perfectly flat overload behaviour, 0.0 means full livelock."""
    if not series:
        raise ValueError("empty rate series")
    ordered = sorted(series)
    _, peak_output = peak_rate(ordered)
    if peak_output <= 0:
        return 0.0
    return ordered[-1][1] / peak_output


def is_livelock_free(
    series: Sequence[Tuple[float, float]],
    min_sustained_fraction: float = 0.7,
) -> bool:
    """True if output at every overload point stays above
    ``min_sustained_fraction`` of the peak."""
    ordered = sorted(series)
    _, peak_output = peak_rate(ordered)
    if peak_output <= 0:
        return False
    floor = peak_output * min_sustained_fraction
    peak_seen = False
    for _, output_rate in ordered:
        if output_rate == peak_output:
            peak_seen = True
        if peak_seen and output_rate < floor:
            return False
    return True
