"""CPU-time attribution: where did the cycles go?

The paper's whole diagnosis is a CPU-attribution statement — "the system
will spend all of its time processing receiver interrupts" (§4.2) — and
its §7 mechanism meters one category of CPU use against a budget. This
module measures the same thing for any simulation: every nanosecond the
CPU charges to a task is attributed to a category (interrupt / kernel
thread / user process / idle loop) and to the task's name, over explicit
measurement windows.

Typical use::

    accountant = CpuAccountant(router.kernel.cpu)
    ... warm-up ...
    window = accountant.window()      # starts now
    ... measurement period ...
    report = window.report()
    report.fraction(CATEGORY_INTERRUPT)   # e.g. 0.83 under overload
"""

from __future__ import annotations

from typing import Dict, Optional

from ..hw.cpu import CLASS_IDLE, CLASS_KERNEL, CPU, CpuTask

CATEGORY_INTERRUPT = "interrupt"
CATEGORY_KERNEL = "kernel"
CATEGORY_USER = "user"
CATEGORY_IDLE = "idle"
#: Wall time the CPU spent with nothing runnable at all (no idle thread).
CATEGORY_UNUSED = "unused"

CATEGORIES = (
    CATEGORY_INTERRUPT,
    CATEGORY_KERNEL,
    CATEGORY_USER,
    CATEGORY_IDLE,
    CATEGORY_UNUSED,
)


def categorize(task: CpuTask) -> str:
    """Attribution category of a CPU task."""
    if task.effective_ipl > 0 or task.base_ipl > 0:
        return CATEGORY_INTERRUPT
    if task.priority_class == CLASS_IDLE:
        return CATEGORY_IDLE
    if task.priority_class >= CLASS_KERNEL:
        return CATEGORY_KERNEL
    return CATEGORY_USER


class CpuAccountant:
    """Cumulative per-category and per-task CPU time for one CPU."""

    def __init__(self, cpu: CPU) -> None:
        self.cpu = cpu
        self.by_category: Dict[str, int] = {c: 0 for c in CATEGORIES}
        self.by_task: Dict[str, int] = {}
        cpu.account_observers.append(self._observe)

    def _observe(self, task: CpuTask, elapsed_ns: int) -> None:
        self.by_category[categorize(task)] += elapsed_ns
        self.by_task[task.name] = self.by_task.get(task.name, 0) + elapsed_ns

    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, int]:
        """Cumulative nanoseconds per category (plus implicit unused)."""
        snap = dict(self.by_category)
        accounted = sum(snap.values())
        snap[CATEGORY_UNUSED] = max(0, self.cpu.sim.now - accounted)
        return snap

    def task_snapshot(self) -> Dict[str, int]:
        return dict(self.by_task)

    def window(self) -> "CpuBreakdownWindow":
        """Start a measurement window at the current instant."""
        return CpuBreakdownWindow(self)


class CpuBreakdownReport:
    """Per-category CPU fractions over one closed window."""

    def __init__(self, window_ns: int, by_category: Dict[str, int],
                 by_task: Dict[str, int]) -> None:
        self.window_ns = window_ns
        self.by_category = by_category
        self.by_task = by_task

    def fraction(self, category: str) -> float:
        if self.window_ns <= 0:
            return 0.0
        return self.by_category.get(category, 0) / self.window_ns

    def task_fraction(self, name: str) -> float:
        if self.window_ns <= 0:
            return 0.0
        return self.by_task.get(name, 0) / self.window_ns

    def top_tasks(self, count: int = 5):
        """[(name, fraction)] of the heaviest CPU consumers."""
        ranked = sorted(self.by_task.items(), key=lambda kv: -kv[1])
        return [
            (name, ns / self.window_ns if self.window_ns else 0.0)
            for name, ns in ranked[:count]
        ]

    def format(self) -> str:
        lines = ["CPU breakdown over %.1f ms:" % (self.window_ns / 1e6)]
        for category in CATEGORIES:
            lines.append(
                "  %-10s %6.1f %%" % (category, 100 * self.fraction(category))
            )
        return "\n".join(lines)


class CpuBreakdownWindow:
    """Snapshot-delta measurement window over a :class:`CpuAccountant`."""

    def __init__(self, accountant: CpuAccountant) -> None:
        self._accountant = accountant
        self._start_ns = accountant.cpu.sim.now
        self._start_categories = dict(accountant.by_category)
        self._start_tasks = dict(accountant.by_task)

    def report(self) -> CpuBreakdownReport:
        """Close the window at the current instant."""
        accountant = self._accountant
        now = accountant.cpu.sim.now
        window_ns = now - self._start_ns
        by_category = {
            category: accountant.by_category[category]
            - self._start_categories.get(category, 0)
            for category in accountant.by_category
        }
        accounted = sum(by_category.values())
        by_category[CATEGORY_UNUSED] = max(0, window_ns - accounted)
        by_task = {
            name: total - self._start_tasks.get(name, 0)
            for name, total in accountant.by_task.items()
            if total - self._start_tasks.get(name, 0) > 0
        }
        return CpuBreakdownReport(window_ns, by_category, by_task)
