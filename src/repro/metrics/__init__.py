"""Measurement: statistics, latency recording, throughput analysis."""

from .cpuaccount import (
    CATEGORIES,
    CATEGORY_IDLE,
    CATEGORY_INTERRUPT,
    CATEGORY_KERNEL,
    CATEGORY_UNUSED,
    CATEGORY_USER,
    CpuAccountant,
    CpuBreakdownReport,
    CpuBreakdownWindow,
    categorize,
)
from .latency import LatencyRecorder
from .sampling import DepthSampler
from .stats import jitter, mean, median, percentile, stddev, summarize, variance
from .throughput import (
    degradation_ratio,
    estimate_mlfrr,
    is_livelock_free,
    livelock_onset,
    peak_rate,
)

__all__ = [
    "CATEGORIES",
    "CATEGORY_IDLE",
    "CATEGORY_INTERRUPT",
    "CATEGORY_KERNEL",
    "CATEGORY_UNUSED",
    "CATEGORY_USER",
    "CpuAccountant",
    "CpuBreakdownReport",
    "CpuBreakdownWindow",
    "DepthSampler",
    "LatencyRecorder",
    "categorize",
    "degradation_ratio",
    "estimate_mlfrr",
    "is_livelock_free",
    "jitter",
    "livelock_onset",
    "mean",
    "median",
    "peak_rate",
    "percentile",
    "stddev",
    "summarize",
    "variance",
]
