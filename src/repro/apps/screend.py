"""The ``screend`` packet-screening daemon (user mode).

Used by firewalls to screen out unwanted packets; "this user-mode program
does one system call per packet; the packet-forwarding path includes both
kernel and user-mode code" (§6.2). In the experiments it is "configured
to accept all packets", so its only effect is the user-mode CPU cost and
the kernel/user queue crossing — which is all the livelock story needs.

The daemon blocks reading the screening queue, charges its per-packet
cost (two protection-domain crossings plus filter evaluation), and emits
accepted packets through the IP output path *in its own context*, as a
second system call would.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..kernel.kernel import Kernel
from ..kernel.syscalls import BlockingQueueReader
from ..net.ip import IPLayer, ScreenPath
from ..net.packet import Packet
from ..sim.process import Work

#: A screening rule: packet -> accept?
ScreenRule = Callable[[Packet], bool]


def accept_all(_packet: Packet) -> bool:
    """The paper's configuration: every packet passes."""
    return True


class Screend:
    """User-mode screening daemon process."""

    def __init__(
        self,
        kernel: Kernel,
        ip_layer: IPLayer,
        screen_path: ScreenPath,
        rule: Optional[ScreenRule] = None,
    ) -> None:
        self.kernel = kernel
        self.ip = ip_layer
        self.screen_path = screen_path
        self.rule = rule if rule is not None else accept_all
        # Syscall cost is folded into screend_per_packet (calibrated as a
        # whole), so the reader itself charges nothing.
        self.reader = BlockingQueueReader(
            screen_path.queue,
            screen_path.data_signal,
            kernel.costs,
            charge_syscall=False,
        )
        self.task = None
        #: Packet dequeued from the screening queue but still inside the
        #: suspended daemon frame; read by the teardown path.
        self.in_flight = None
        probes = kernel.probes
        self.accepted = probes.counter("screend.accepted")
        self.rejected = probes.counter("screend.rejected")

    def start(self) -> None:
        if self.task is not None:
            raise RuntimeError("screend already started")
        self.task = self.kernel.user_process(self._body(), "screend")

    def _body(self):
        while True:
            packet = yield from self.reader.read()
            self.in_flight = packet
            yield Work(self.kernel.costs.screend_per_packet)
            if self.rule(packet):
                self.accepted.increment()
                for command in self.ip.output_after_screen(packet):
                    yield command
            else:
                self.rejected.increment()
                packet.mark_dropped("screend.rejected")
            self.in_flight = None
