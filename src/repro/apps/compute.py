"""Compute-bound user process — the §7 progress probe.

The paper measures user-level starvation by "running a compute-bound
process on our modified router, and then flooding the router with
minimum-sized packets": the unmodified router forwards at full speed
while the process makes "no measurable progress". This process performs
pure CPU work in fixed-size chunks and counts completed cycles, so the
experiment harness can compute the fraction of the CPU it obtained over
a measurement window (fig 7-1's y-axis).
"""

from __future__ import annotations

from ..kernel.kernel import Kernel
from ..sim.process import Work

#: One scheduling chunk of user computation, in microseconds. Small
#: enough that availability is sampled smoothly, large enough not to
#: dominate the event count.
COMPUTE_CHUNK_US = 500


class ComputeBoundProcess:
    """An infinite pure-CPU loop, instrumented for progress accounting."""

    def __init__(self, kernel: Kernel, chunk_us: int = COMPUTE_CHUNK_US) -> None:
        if chunk_us <= 0:
            raise ValueError("chunk must be positive")
        self.kernel = kernel
        self.chunk_cycles = kernel.costs.cpu_hz // 1_000_000 * chunk_us
        self.task = None
        self.chunks_completed = kernel.probes.counter("compute.chunks")

    def start(self) -> None:
        if self.task is not None:
            raise RuntimeError("compute process already started")
        self.task = self.kernel.user_process(self._body(), "compute")

    def _body(self):
        while True:
            yield Work(self.chunk_cycles)
            self.chunks_completed.increment()

    # ------------------------------------------------------------------
    # Progress measurement
    # ------------------------------------------------------------------

    def cycles_used(self) -> int:
        """Total CPU cycles this process has actually executed."""
        if self.task is None:
            return 0
        return self.task.cycles_used

    def cpu_share(self, window_start_cycles: int, window_cycles: int) -> float:
        """Fraction of a window's CPU cycles obtained by this process.

        ``window_start_cycles`` is a :meth:`cycles_used` snapshot taken at
        the window start; ``window_cycles`` is the window length in CPU
        cycles.
        """
        if window_cycles <= 0:
            return 0.0
        used = self.cycles_used() - window_start_cycles
        return max(0.0, min(1.0, used / window_cycles))
