"""User-level applications: screend, compute-bound probe, packet sink,
passive monitor."""

from .compute import ComputeBoundProcess
from .monitor import PacketFilterTap, PassiveMonitor
from .screend import Screend, accept_all
from .sink import PacketSink

__all__ = [
    "ComputeBoundProcess",
    "PacketFilterTap",
    "PacketSink",
    "PassiveMonitor",
    "Screend",
    "accept_all",
]
