"""Packet sink: a user process consuming datagrams from a UDP socket.

Models the "ultimate consumer" of §3 for end-system scenarios (NFS-like
request sinks, monitoring consumers): each read is a system call, each
packet costs some user-mode processing. Throughput *to this process* is
the paper's definition of useful throughput for a receiving host.
"""

from __future__ import annotations

from ..kernel.kernel import Kernel
from ..kernel.syscalls import BlockingQueueReader
from ..net.udp import UdpSocket
from ..sim.process import Work

#: Default user-mode work per consumed packet, cycles (≈ 50 µs at 150 MHz).
DEFAULT_WORK_CYCLES = 7_500


class PacketSink:
    """Reads packets from a socket, does per-packet work, counts them."""

    def __init__(
        self,
        kernel: Kernel,
        socket: UdpSocket,
        per_packet_cycles: int = DEFAULT_WORK_CYCLES,
    ) -> None:
        self.kernel = kernel
        self.socket = socket
        self.per_packet_cycles = per_packet_cycles
        self.reader = BlockingQueueReader(
            socket.queue, socket.data_signal, kernel.costs, charge_syscall=True
        )
        self.task = None
        self.consumed = kernel.probes.counter("sink.%d.consumed" % socket.port)

    def start(self) -> None:
        if self.task is not None:
            raise RuntimeError("sink already started")
        self.task = self.kernel.user_process(
            self._body(), "sink:%d" % self.socket.port
        )

    def _body(self):
        while True:
            yield from self.reader.read()
            if self.per_packet_cycles:
                yield Work(self.per_packet_cycles)
            self.consumed.increment()
