"""Passive network monitoring (§2: one of the motivating applications).

A packet-filter tap copies (matching) packets traversing IP input into a
bounded queue — the analogue of the BSD packet filter of [9] — and a
user-mode monitor process consumes them. Under receive overload an
unmodified kernel starves this process exactly like it starves screend;
the tap's drop counter shows the monitoring loss.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..kernel.kernel import Kernel
from ..kernel.queues import PacketQueue
from ..kernel.syscalls import BlockingQueueReader
from ..net.packet import Packet
from ..sim.process import Work
from ..sim.signals import Signal

#: A capture filter: packet -> capture?
CaptureFilter = Callable[[Packet], bool]


class PacketFilterTap:
    """Kernel-side tap: bounded queue fed from IP input processing."""

    def __init__(
        self,
        kernel: Kernel,
        name: str = "pfilt",
        queue_limit: int = 32,
        capture: Optional[CaptureFilter] = None,
    ) -> None:
        self.kernel = kernel
        self.name = name
        self.capture = capture
        self.queue = PacketQueue(name, queue_limit, kernel.probes)
        self.data_signal = Signal(kernel.sim, "%s.data" % name)
        self.matched = kernel.probes.counter("%s.matched" % name)

    def deliver(self, packet: Packet) -> bool:
        """Called from IP input (CPU already charged by the caller)."""
        if self.capture is not None and not self.capture(packet):
            return False
        self.matched.increment()
        accepted = self.queue.enqueue(packet)
        if accepted:
            self.data_signal.fire()
        return accepted


class PassiveMonitor:
    """User-mode monitor consuming captured packets from a tap."""

    def __init__(
        self,
        kernel: Kernel,
        tap: PacketFilterTap,
        per_packet_cycles: int = 3_000,
    ) -> None:
        self.kernel = kernel
        self.tap = tap
        self.per_packet_cycles = per_packet_cycles
        self.reader = BlockingQueueReader(
            tap.queue, tap.data_signal, kernel.costs, charge_syscall=True
        )
        self.task = None
        self.observed = kernel.probes.counter("monitor.observed")

    def start(self) -> None:
        if self.task is not None:
            raise RuntimeError("monitor already started")
        self.task = self.kernel.user_process(self._body(), "monitor")

    def _body(self):
        while True:
            yield from self.reader.read()
            if self.per_packet_cycles:
                yield Work(self.per_packet_cycles)
            self.observed.increment()

    @property
    def capture_loss(self) -> int:
        """Packets matched by the filter but dropped at the tap queue."""
        return self.tap.queue.drop_count
