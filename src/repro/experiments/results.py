"""Rendering and serialization of experiment results.

The paper presents its results as scatter/line plots; in a terminal we
render each figure as (a) a table of every series and (b) a coarse ASCII
plot that makes the shapes — plateaus, collapses, crossovers — visible
at a glance. :func:`trial_to_dict` / :func:`trial_from_dict` give
:class:`~repro.experiments.harness.TrialResult` a lossless JSON form,
used by the sweep engine's on-disk result cache.
"""

from __future__ import annotations

import io
from dataclasses import asdict, fields
from typing import Dict, List, Optional, Sequence, Tuple

from .figures import FigureResult
from .harness import TrialResult

Point = Tuple[float, float]


# ----------------------------------------------------------------------
# TrialResult (de)serialization
# ----------------------------------------------------------------------

def trial_to_dict(trial: TrialResult) -> Dict:
    """A JSON-able dict capturing every field of ``trial``.

    The round trip through :func:`trial_from_dict` is lossless: floats
    survive exactly (JSON emits the shortest round-tripping repr), so a
    cached trial compares equal to a freshly computed one.
    """
    return asdict(trial)


def trial_from_dict(data: Dict) -> TrialResult:
    """Rebuild a :class:`TrialResult` from :func:`trial_to_dict` output.

    Raises ``TypeError``/``KeyError`` on malformed input — callers (the
    result cache) treat any exception as a cache miss.
    """
    known = {f.name for f in fields(TrialResult)}
    unknown = set(data) - known
    if unknown:
        raise KeyError("unknown TrialResult fields: %s" % sorted(unknown))
    return TrialResult(**data)


def format_table(result: FigureResult) -> str:
    """All series of a figure as one aligned table (rates as rows)."""
    xs = sorted({x for points in result.series.values() for x, _ in points})
    labels = list(result.series)
    by_series = {
        label: dict(points) for label, points in result.series.items()
    }
    out = io.StringIO()
    out.write("Figure %s: %s\n" % (result.figure_id, result.title))
    header = ["%14s" % result.xlabel.split(" (")[0]] + [
        "%20s" % label[:20] for label in labels
    ]
    out.write(" ".join(header) + "\n")
    for x in xs:
        row = ["%14.0f" % x]
        for label in labels:
            value = by_series[label].get(x)
            row.append("%20s" % ("-" if value is None else "%.0f" % value))
        out.write(" ".join(row) + "\n")
    if result.notes:
        out.write("note: %s\n" % result.notes)
    return out.getvalue()


def ascii_plot(
    result: FigureResult,
    width: int = 64,
    height: int = 16,
    ymax: Optional[float] = None,
) -> str:
    """A coarse character plot of every series in the figure."""
    marks = "ox+*#@%&"
    all_points = [p for pts in result.series.values() for p in pts]
    if not all_points:
        return "(no data)\n"
    xmax = max(x for x, _ in all_points) or 1.0
    if ymax is None:
        ymax = max(y for _, y in all_points) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for index, (label, points) in enumerate(result.series.items()):
        mark = marks[index % len(marks)]
        for x, y in points:
            col = min(width - 1, int(x / xmax * (width - 1)))
            row = min(height - 1, int(y / ymax * (height - 1)))
            grid[height - 1 - row][col] = mark
    out = io.StringIO()
    out.write("Figure %s (y max = %.0f)\n" % (result.figure_id, ymax))
    for line in grid:
        out.write("|" + "".join(line) + "\n")
    out.write("+" + "-" * width + "> %s (max %.0f)\n" % (result.xlabel, xmax))
    for index, label in enumerate(result.series):
        out.write("  %s = %s\n" % (marks[index % len(marks)], label))
    return out.getvalue()


def to_csv(result: FigureResult) -> str:
    """The figure's series in long-form CSV (figure,series,x,y)."""
    out = io.StringIO()
    out.write("figure,series,x,y\n")
    for label, points in result.series.items():
        for x, y in points:
            out.write("%s,%s,%.3f,%.3f\n" % (result.figure_id, label, x, y))
    return out.getvalue()


def render_report(result: FigureResult) -> str:
    """Table plus plot, for CLI / example output."""
    return format_table(result) + "\n" + ascii_plot(result)
