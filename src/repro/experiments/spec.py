"""`TrialSpec`: the typed, frozen description of one trial.

:func:`repro.experiments.harness.run_trial` grew one keyword per
feature — rate, timing, workload shape, fault plan, watchdog, sanitizer,
and now tracing. ``TrialSpec`` is the canonical form of that call: a
frozen dataclass naming every knob, hashable, validated at construction,
and accepted everywhere a ``(config, rate, kwargs)`` tuple was —
``run_trial(spec)``, ``run_trials([spec, ...])``, ``trial_fingerprint
(spec)``, ``trial_cost_estimate(spec)``. The kwargs form remains as a
compatibility shim and both forms produce identical TrialResults.

Cache-fingerprint compatibility is the design constraint: the on-disk
result cache hashes the kwargs dict *exactly as the caller passed it*
(``{"seed": 0}`` and ``{}`` are different keys, by long-standing
behavior), so a spec must remember which fields were set explicitly.
``TrialSpec.from_kwargs(config, rate, seed=0)`` and the direct
constructor both record that set; :meth:`to_kwargs` reproduces the
original dict, and therefore the original fingerprint, byte for byte.
For a directly-constructed spec the explicit set is every field that
differs from its default — the same dict a minimal legacy caller would
have passed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, Optional, Tuple

from ..hw.machine import SINGLE_CORE, MachineSpec
from ..kernel.config import KernelConfig
from ..sim.backend import BACKENDS

#: Workload names accepted by :func:`run_trial` / :class:`TrialSpec`.
WORKLOAD_CONSTANT = "constant"
WORKLOAD_POISSON = "poisson"
WORKLOAD_BURSTY = "bursty"
#: Adversarial workloads (repro.workloads.adversarial). ``synflood`` and
#: ``flashcrowd`` drive the attack source alone at ``rate_pps``;
#: ``composite`` layers a synflood at ``attack_rate_pps`` over constant
#: legitimate background traffic at ``rate_pps``.
WORKLOAD_SYNFLOOD = "synflood"
WORKLOAD_FLASHCROWD = "flashcrowd"
WORKLOAD_COMPOSITE = "composite"

WORKLOADS = (
    WORKLOAD_CONSTANT,
    WORKLOAD_POISSON,
    WORKLOAD_BURSTY,
    WORKLOAD_SYNFLOOD,
    WORKLOAD_FLASHCROWD,
    WORKLOAD_COMPOSITE,
)

#: Default measurement timing (simulated seconds). Short relative to the
#: paper's multi-second trials, but the simulation is noiseless apart
#: from deliberate jitter, so windows converge much faster.
DEFAULT_WARMUP_S = 0.2
DEFAULT_DURATION_S = 0.5


@dataclass(frozen=True)
class WorkloadSpec:
    """Nested sub-spec for the traffic shape.

    ``TrialSpec`` stores the workload flat (``workload`` / ``burst_size``
    / ``attack_rate_pps`` fields) because the cache fingerprints hash the
    flat keyword dict; a ``WorkloadSpec`` passed anywhere a workload name
    is accepted canonicalizes into exactly the flat keywords a legacy
    caller would have passed, so the nested spelling and the flat one
    produce the same fingerprint, byte for byte.
    """

    workload: str = WORKLOAD_CONSTANT
    burst_size: int = 32
    attack_rate_pps: Optional[float] = None

    def __post_init__(self) -> None:
        if self.workload not in WORKLOADS:
            raise ValueError("unknown workload %r" % (self.workload,))
        if self.burst_size <= 0:
            raise ValueError("burst_size must be positive")

    def to_kwargs(self) -> Dict[str, Any]:
        """Minimal flat keywords (defaults omitted, like a legacy call)."""
        out: Dict[str, Any] = {"workload": self.workload}
        if self.burst_size != 32:
            out["burst_size"] = self.burst_size
        if self.attack_rate_pps is not None:
            out["attack_rate_pps"] = self.attack_rate_pps
        return out


#: Flat machine keywords accepted by ``from_kwargs``/``replace`` (and
#: the CLI); they canonicalize into one nested ``MachineSpec``.
_MACHINE_FLAT = ("cores", "steering", "isolate_polling", "coalesce_us")


def _canonicalize_trial_kwargs(kwargs: Dict[str, Any]) -> Dict[str, Any]:
    """Fold flat machine keywords and nested ``WorkloadSpec`` values into
    the canonical keyword set (mutates and returns ``kwargs``)."""
    flat = {name: kwargs.pop(name) for name in _MACHINE_FLAT if name in kwargs}
    if flat:
        if kwargs.get("machine") is not None:
            raise TypeError(
                "pass machine=MachineSpec(...) or the flat %s keywords, "
                "not both" % "/".join(_MACHINE_FLAT)
            )
        kwargs["machine"] = MachineSpec(**flat)
    elif "machine" in kwargs and kwargs["machine"] is None:
        # machine=None is the default single-core machine; drop it so
        # the spec fingerprints identically to one that never mentioned
        # the keyword.
        del kwargs["machine"]
    workload = kwargs.get("workload")
    if isinstance(workload, WorkloadSpec):
        # The nested spec owns every workload field, including ones it
        # left at their defaults — a flat duplicate is ambiguous even
        # when to_kwargs() would elide the value.
        owned = {f.name for f in fields(WorkloadSpec)}
        clash = (owned & set(kwargs)) - {"workload"}
        if clash:
            raise TypeError(
                "workload=WorkloadSpec(...) conflicts with flat keyword(s): "
                "%s" % ", ".join(sorted(clash))
            )
        kwargs.update(workload.to_kwargs())
    return kwargs


@dataclass(frozen=True)
class TrialSpec:
    """One trial, fully specified.

    Every field after ``rate_pps`` mirrors the same-named ``run_trial``
    keyword; see that function for semantics. ``trace`` arms the
    scheduling trace (``True`` → windowed timeline on the result;
    a :class:`~repro.trace.TraceBuffer` instance → full record stream,
    runs in-process and uncached), ``trace_capacity`` sizes the ring.
    """

    config: KernelConfig
    rate_pps: float
    duration_s: float = DEFAULT_DURATION_S
    warmup_s: float = DEFAULT_WARMUP_S
    seed: int = 0
    workload: str = WORKLOAD_CONSTANT
    burst_size: int = 32
    #: Attack intensity for the ``composite`` workload (peak pps of the
    #: SYN-flood layer); None elsewhere.
    attack_rate_pps: Optional[float] = None
    with_compute: bool = False
    fault_plan: Any = None
    watchdog: bool = False
    sanitize: bool = False
    trace: Any = False
    trace_capacity: Optional[int] = None
    #: Simulator core: ``"pure"`` (reference oracle), ``"fast"`` (the
    #: compiled repro._fastcore backend), or None to consult the
    #: ``REPRO_BACKEND`` env var and default to pure. The backends are
    #: bit-identical by contract, so this field never enters the cache
    #: fingerprint (engine._canonical_kwargs strips it).
    backend: Optional[str] = None
    #: Core topology (:class:`~repro.hw.machine.MachineSpec`); None is
    #: the paper's single-core machine and — crucially — is *absent*
    #: from ``to_kwargs``, so every pre-SMP trial keeps its exact cache
    #: fingerprint. Flat ``cores``/``steering``/``isolate_polling``/
    #: ``coalesce_us`` keywords canonicalize into this field.
    machine: Optional[MachineSpec] = None
    #: Names of the fields the caller set explicitly (None → derive from
    #: non-default values in ``__post_init__``). Not part of equality:
    #: two specs describing the same trial compare equal even if one
    #: spelled out a default.
    _explicit: Optional[Tuple[str, ...]] = field(
        default=None, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        if not isinstance(self.config, KernelConfig):
            raise TypeError(
                "TrialSpec.config must be a KernelConfig, got %r"
                % type(self.config).__name__
            )
        if isinstance(self.workload, WorkloadSpec):
            # Nested workload spelled directly at the constructor:
            # flatten (the sub-spec wins over the flat fields).
            nested = self.workload
            object.__setattr__(self, "workload", nested.workload)
            object.__setattr__(self, "burst_size", nested.burst_size)
            object.__setattr__(self, "attack_rate_pps", nested.attack_rate_pps)
        if isinstance(self.machine, dict):
            object.__setattr__(self, "machine", MachineSpec(**self.machine))
        if self.machine is not None and not isinstance(self.machine, MachineSpec):
            raise TypeError(
                "TrialSpec.machine must be a MachineSpec (or None), got %r"
                % type(self.machine).__name__
            )
        if self.rate_pps < 0:
            raise ValueError("rate must be non-negative")
        if self.duration_s < 0 or self.warmup_s < 0:
            raise ValueError("trial timing must be non-negative")
        if self.workload not in WORKLOADS:
            raise ValueError("unknown workload %r" % (self.workload,))
        if self.burst_size <= 0:
            raise ValueError("burst_size must be positive")
        if self.attack_rate_pps is not None:
            if self.workload != WORKLOAD_COMPOSITE:
                raise ValueError(
                    "attack_rate_pps only applies to the composite workload"
                )
            if self.attack_rate_pps <= 0:
                raise ValueError("attack_rate_pps must be positive")
        if self.trace_capacity is not None and self.trace_capacity <= 0:
            raise ValueError("trace_capacity must be positive")
        if self.backend is not None and self.backend not in BACKENDS:
            raise ValueError(
                "unknown backend %r (expected one of %s or None)"
                % (self.backend, "/".join(BACKENDS))
            )
        if self._explicit is None:
            explicit = tuple(
                sorted(
                    name
                    for name, default in _FIELD_DEFAULTS
                    if getattr(self, name) != default
                )
            )
            object.__setattr__(self, "_explicit", explicit)

    # ------------------------------------------------------------------

    @classmethod
    def from_kwargs(
        cls, config: KernelConfig, rate_pps: float, **kwargs
    ) -> "TrialSpec":
        """Build a spec from the legacy keyword form, remembering exactly
        which keywords were passed (fingerprint compatibility)."""
        kwargs = _canonicalize_trial_kwargs(dict(kwargs))
        unknown = set(kwargs) - _FIELD_NAMES
        if unknown:
            raise TypeError(
                "unknown trial keyword(s): %s" % ", ".join(sorted(unknown))
            )
        return cls(
            config,
            rate_pps,
            _explicit=tuple(sorted(kwargs)),
            **kwargs,
        )

    def to_kwargs(self) -> Dict[str, Any]:
        """The explicit keywords, reproducing the legacy kwargs dict this
        spec stands for (and therefore its cache fingerprint)."""
        return {name: getattr(self, name) for name in self._explicit}

    def as_tuple(self) -> Tuple[KernelConfig, float, Dict[str, Any]]:
        """The legacy ``(config, rate_pps, kwargs)`` spec tuple."""
        return (self.config, self.rate_pps, self.to_kwargs())

    @property
    def explicit_fields(self) -> Tuple[str, ...]:
        return self._explicit

    @property
    def workload_spec(self) -> WorkloadSpec:
        """The nested view of the flat workload fields."""
        return WorkloadSpec(self.workload, self.burst_size, self.attack_rate_pps)

    @property
    def machine_spec(self) -> MachineSpec:
        """The machine, with None resolved to the single-core default."""
        return self.machine if self.machine is not None else SINGLE_CORE

    # ------------------------------------------------------------------

    def replace(self, **changes) -> "TrialSpec":
        """A copy with ``changes`` applied; changed fields (plus those
        already explicit) count as explicit in the copy."""
        unknown = (
            set(changes) - _FIELD_NAMES - set(_MACHINE_FLAT) - {"config", "rate_pps"}
        )
        if unknown:
            raise TypeError(
                "unknown trial keyword(s): %s" % ", ".join(sorted(unknown))
            )
        merged = self.to_kwargs()
        config = changes.pop("config", self.config)
        rate_pps = changes.pop("rate_pps", self.rate_pps)
        merged.update(changes)
        return type(self).from_kwargs(config, rate_pps, **merged)

    def fingerprint(self) -> str:
        """The spec's cache key (see ``engine.trial_fingerprint``)."""
        from .engine import trial_fingerprint

        return trial_fingerprint(self.config, self.rate_pps, self.to_kwargs())

    def run(self):
        """Run this trial (convenience for ``run_trial(spec)``)."""
        from .harness import run_trial

        return run_trial(self)


_FIELD_DEFAULTS = tuple(
    (f.name, f.default)
    for f in fields(TrialSpec)
    if f.name not in ("config", "rate_pps", "_explicit")
)
_FIELD_NAMES = frozenset(name for name, _ in _FIELD_DEFAULTS)


def spec_tuple(spec) -> Tuple[KernelConfig, float, Dict[str, Any]]:
    """Normalize a TrialSpec or legacy ``(config, rate, kwargs)`` tuple
    to the tuple form the engine internals run on."""
    if isinstance(spec, TrialSpec):
        return spec.as_tuple()
    config, rate_pps, kwargs = spec
    return (config, rate_pps, kwargs)
