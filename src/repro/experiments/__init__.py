"""Experiment harness: topology, trial runner, figure definitions,
result rendering."""

from .figures import (
    ALL_FIGURES,
    FigureResult,
    figure_6_1,
    figure_6_3,
    figure_6_4,
    figure_6_5,
    figure_6_6,
    figure_7_1,
)
from .harness import (
    DEFAULT_RATE_GRID,
    FAST_RATE_GRID,
    TrialResult,
    run_sweep,
    run_trial,
    sweep_series,
)
from .endhost import EndHost, HOST_ADDR, SERVICE_PORT
from .engine import (
    CACHE_VERSION,
    ResultCache,
    default_cache_dir,
    parallel_map,
    run_trials,
    trial_fingerprint,
)
from .extensions import EXTENSION_EXPERIMENTS
from .multitopology import MultiInputRouter
from .results import (
    ascii_plot,
    format_table,
    render_report,
    to_csv,
    trial_from_dict,
    trial_to_dict,
)
from .topology import (
    DEST_HOST,
    DEST_NET,
    INPUT_IF,
    OUTPUT_IF,
    Router,
    SOURCE_HOST,
    SOURCE_NET,
)

__all__ = [
    "ALL_FIGURES",
    "CACHE_VERSION",
    "DEFAULT_RATE_GRID",
    "DEST_HOST",
    "DEST_NET",
    "EXTENSION_EXPERIMENTS",
    "EndHost",
    "FAST_RATE_GRID",
    "MultiInputRouter",
    "FigureResult",
    "HOST_ADDR",
    "SERVICE_PORT",
    "INPUT_IF",
    "OUTPUT_IF",
    "ResultCache",
    "Router",
    "SOURCE_HOST",
    "SOURCE_NET",
    "TrialResult",
    "ascii_plot",
    "default_cache_dir",
    "figure_6_1",
    "figure_6_3",
    "figure_6_4",
    "figure_6_5",
    "figure_6_6",
    "figure_7_1",
    "format_table",
    "parallel_map",
    "render_report",
    "run_sweep",
    "run_trial",
    "run_trials",
    "sweep_series",
    "to_csv",
    "trial_fingerprint",
    "trial_from_dict",
    "trial_to_dict",
]
