"""Experiment harness: topology, trial runner, figure definitions,
result rendering."""

from .figures import (
    ALL_FIGURES,
    FigureResult,
    figure_6_1,
    figure_6_3,
    figure_6_4,
    figure_6_5,
    figure_6_6,
    figure_7_1,
)
from .harness import (
    DEFAULT_RATE_GRID,
    FAST_RATE_GRID,
    TrialResult,
    run_sweep,
    run_trial,
    sweep_series,
)
from .endhost import EndHost, HOST_ADDR, SERVICE_PORT
from .extensions import EXTENSION_EXPERIMENTS
from .multitopology import MultiInputRouter
from .results import ascii_plot, format_table, render_report, to_csv
from .topology import (
    DEST_HOST,
    DEST_NET,
    INPUT_IF,
    OUTPUT_IF,
    Router,
    SOURCE_HOST,
    SOURCE_NET,
)

__all__ = [
    "ALL_FIGURES",
    "DEFAULT_RATE_GRID",
    "DEST_HOST",
    "DEST_NET",
    "EXTENSION_EXPERIMENTS",
    "EndHost",
    "FAST_RATE_GRID",
    "MultiInputRouter",
    "FigureResult",
    "HOST_ADDR",
    "SERVICE_PORT",
    "INPUT_IF",
    "OUTPUT_IF",
    "Router",
    "SOURCE_HOST",
    "SOURCE_NET",
    "TrialResult",
    "ascii_plot",
    "figure_6_1",
    "figure_6_3",
    "figure_6_4",
    "figure_6_5",
    "figure_6_6",
    "figure_7_1",
    "format_table",
    "render_report",
    "run_sweep",
    "run_trial",
    "sweep_series",
    "to_csv",
]
