"""Trial runner: one (kernel config, input rate) measurement.

Follows the paper's methodology (§6.1): run traffic at a target rate
through the router-under-test, let the system reach steady state
(warm-up), then measure the delivered packet rate over a window by
sampling the output interface counter before and after — the ``netstat``
"Opkts" technique. Optionally a compute-bound process measures available
user-mode CPU (§7).
"""

from __future__ import annotations

import logging
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.variants import describe
from ..hw.machine import MachineSpec
from ..kernel.config import KernelConfig
from ..sim.backend import FAST, PURE, make_simulator, resolve_backend
from ..sim.randomness import RandomStreams
from ..sim.units import NS_PER_SEC, ns_to_cycles, seconds
from ..workloads.adversarial import (
    CompositeGenerator,
    FlashCrowdGenerator,
    SynFloodGenerator,
)
from ..workloads.generators import (
    BurstyGenerator,
    ConstantRateGenerator,
    PoissonGenerator,
)
# Workload names and default timing live in .spec (the canonical trial
# description) and are re-exported here for compatibility.
from .spec import (  # noqa: F401  (re-exports)
    DEFAULT_DURATION_S,
    DEFAULT_WARMUP_S,
    TrialSpec,
    WORKLOAD_BURSTY,
    WORKLOAD_COMPOSITE,
    WORKLOAD_CONSTANT,
    WORKLOAD_FLASHCROWD,
    WORKLOAD_POISSON,
    WORKLOAD_SYNFLOOD,
    spec_tuple,
)
from .topology import Router


@dataclass
class TrialResult:
    """Everything measured in one trial."""

    variant: str
    target_rate_pps: float
    offered_rate_pps: float
    output_rate_pps: float
    delivered: int
    generated: int
    duration_s: float
    user_cpu_share: Optional[float] = None
    latency_us: Dict[str, float] = field(default_factory=dict)
    drops: Dict[str, int] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    #: Structured livelock-watchdog verdict (None unless ``watchdog=True``).
    watchdog: Optional[Dict] = None
    #: Fault-injection record: the plan, injected-fault counts, and the
    #: teardown reconciliation report (None for fault-free trials).
    faults: Optional[Dict] = None
    #: Windowed telemetry (:meth:`repro.trace.Timeline.to_dict`); None
    #: unless the trial ran with ``trace`` enabled.
    timeline: Optional[Dict] = None
    #: Structured SLO verdict (:mod:`repro.experiments.scenarios`); None
    #: unless the trial was produced by a named scenario run.
    slo: Optional[Dict] = None
    #: Name of the simulator core that computed this trial (``"pure"``,
    #: ``"fast-c"``, ``"fast-mypyc"``, ``"fast-py"``) — attribution
    #: only, never part of trial identity: the backends are
    #: bit-identical, results are comparable (and cacheable) across
    #: them. None when an injected router's simulator predates the
    #: backend split.
    backend: Optional[str] = None

    @property
    def loss_fraction(self) -> float:
        if self.generated == 0:
            return 0.0
        return max(0.0, 1.0 - self.delivered / self.generated)

    def as_point(self):
        """(offered, delivered) rate pair for figure series."""
        return (self.offered_rate_pps, self.output_rate_pps)


def _make_generator(
    workload: str,
    router: Router,
    rate_pps: float,
    streams: RandomStreams,
    burst_size: int,
    attack_rate_pps: Optional[float] = None,
):
    pool = getattr(router, "packet_pool", None)
    # Link faults interpose a wire between generator and NIC; fault-free
    # routers leave wire_in as None and keep the direct NIC binding.
    wire = getattr(router, "wire_in", None)
    if workload == WORKLOAD_CONSTANT:
        return ConstantRateGenerator(
            router.sim,
            router.nic_in,
            rate_pps,
            jitter_fraction=0.05,
            rng=streams.stream("traffic"),
            pool=pool,
            wire=wire,
        )
    if workload == WORKLOAD_POISSON:
        return PoissonGenerator(
            router.sim,
            router.nic_in,
            rate_pps,
            rng=streams.stream("traffic"),
            pool=pool,
            wire=wire,
        )
    if workload == WORKLOAD_BURSTY:
        return BurstyGenerator(
            router.sim,
            router.nic_in,
            rate_pps,
            burst_size=burst_size,
            rng=streams.stream("traffic"),
            pool=pool,
            wire=wire,
        )
    if workload == WORKLOAD_SYNFLOOD:
        return SynFloodGenerator(
            router.sim,
            router.nic_in,
            rate_pps,
            rng=streams.stream("attack"),
            pool=pool,
            wire=wire,
        )
    if workload == WORKLOAD_FLASHCROWD:
        return FlashCrowdGenerator(
            router.sim,
            router.nic_in,
            rate_pps,
            rng=streams.stream("attack"),
            pool=pool,
            wire=wire,
        )
    if workload == WORKLOAD_COMPOSITE:
        background = ConstantRateGenerator(
            router.sim,
            router.nic_in,
            rate_pps,
            jitter_fraction=0.05,
            rng=streams.stream("traffic"),
            flow="legit",
            name="legit",
            pool=pool,
            wire=wire,
        )
        attack = SynFloodGenerator(
            router.sim,
            router.nic_in,
            attack_rate_pps if attack_rate_pps is not None else 4 * rate_pps,
            rng=streams.stream("attack"),
            pool=pool,
            wire=wire,
        )
        return CompositeGenerator(router.sim, background, attack)
    raise ValueError("unknown workload %r" % workload)


def _resolve_fault_plan(fault_plan):
    """Accept a FaultPlan, a canned-plan name, or None."""
    if fault_plan is None:
        return None
    if isinstance(fault_plan, str):
        from ..faults import canned_plan

        return canned_plan(fault_plan)
    return fault_plan


def run_trial(
    config,
    rate_pps: Optional[float] = None,
    duration_s: float = DEFAULT_DURATION_S,
    warmup_s: float = DEFAULT_WARMUP_S,
    seed: int = 0,
    workload: str = WORKLOAD_CONSTANT,
    burst_size: int = 32,
    attack_rate_pps: Optional[float] = None,
    with_compute: bool = False,
    router: Optional[Router] = None,
    fault_plan=None,
    watchdog: bool = False,
    sanitize: bool = False,
    trace=False,
    trace_capacity: Optional[int] = None,
    backend: Optional[str] = None,
    machine: Optional[MachineSpec] = None,
) -> TrialResult:
    """Run one trial and return its measurements.

    The canonical entry point takes a single
    :class:`~repro.experiments.spec.TrialSpec`::

        run_trial(TrialSpec(config, rate_pps=8_000, watchdog=True))

    The historical keyword form ``run_trial(config, rate_pps, **kw)``
    still works and is exactly equivalent (same results, same cache
    fingerprints), but it is **deprecated** — it emits a
    :class:`DeprecationWarning` and will eventually require a spec.

    ``rate_pps`` of 0 runs an unloaded router (used for the fig 7-1
    zero-load point). Pass ``router`` to reuse a pre-built topology
    (e.g. one with a monitor attached); it must not be started yet.

    ``fault_plan`` (a :class:`~repro.faults.FaultPlan` or a canned-plan
    name) arms deterministic hardware fault injection; the plan is part
    of the trial's identity for caching. ``watchdog=True`` attaches the
    livelock watchdog and records its verdict on the result;
    ``sanitize=True`` runs the runtime invariant sanitizer throughout
    the trial and reconciles packet-pool ownership at the end. Both are
    opt-in: the watchdog schedules its own periodic event and so
    perturbs event sequence numbers relative to a bare trial.

    ``trace`` arms the scheduling-level trace subsystem: ``True``
    creates a fresh :class:`~repro.trace.TraceBuffer` (ring capacity
    ``trace_capacity``) plus a windowed :class:`~repro.trace.Timeline`,
    or pass a caller-owned ``TraceBuffer`` to keep the raw record ring
    for export afterwards. Tracing schedules no simulator events and
    draws no randomness, so a traced trial's event stream — and every
    measured field of its ``TrialResult`` — is bit-identical to the
    untraced trial; only :attr:`TrialResult.timeline` is added.

    ``backend`` selects the simulator core: ``"pure"`` (default, the
    reference oracle) or ``"fast"`` (the compiled
    :mod:`repro._fastcore`); None consults ``REPRO_BACKEND``. The cores
    are bit-identical, so this changes speed, never results.
    ``sanitize=True`` forces ``pure`` (the sanitizer's per-event hook
    and queue rescans are a pure-core feature); an explicitly injected
    ``router`` keeps whatever simulator it was built with.

    ``machine`` (a :class:`~repro.hw.machine.MachineSpec`) selects the
    core topology; None is the paper's single-core machine. At
    ``cores > 1`` the compiled fast path declines to install and the
    trial runs on the pure bodies.
    """
    if isinstance(config, TrialSpec):
        if rate_pps is not None:
            raise TypeError(
                "run_trial(spec) takes no separate rate_pps; "
                "it is part of the TrialSpec"
            )
        kwargs = config.to_kwargs()
        if router is not None:
            kwargs["router"] = router
        return _run_trial_impl(config.config, config.rate_pps, **kwargs)
    warnings.warn(
        "run_trial(config, rate_pps, **kwargs) is deprecated; construct "
        "a TrialSpec (repro.experiments.spec.TrialSpec.from_kwargs takes "
        "the same keywords) and call run_trial(spec)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _run_trial_impl(
        config,
        rate_pps,
        duration_s=duration_s,
        warmup_s=warmup_s,
        seed=seed,
        workload=workload,
        burst_size=burst_size,
        attack_rate_pps=attack_rate_pps,
        with_compute=with_compute,
        router=router,
        fault_plan=fault_plan,
        watchdog=watchdog,
        sanitize=sanitize,
        trace=trace,
        trace_capacity=trace_capacity,
        backend=backend,
        machine=machine,
    )


def _run_trial_impl(
    config,
    rate_pps: Optional[float] = None,
    duration_s: float = DEFAULT_DURATION_S,
    warmup_s: float = DEFAULT_WARMUP_S,
    seed: int = 0,
    workload: str = WORKLOAD_CONSTANT,
    burst_size: int = 32,
    attack_rate_pps: Optional[float] = None,
    with_compute: bool = False,
    router: Optional[Router] = None,
    fault_plan=None,
    watchdog: bool = False,
    sanitize: bool = False,
    trace=False,
    trace_capacity: Optional[int] = None,
    backend: Optional[str] = None,
    machine: Optional[MachineSpec] = None,
) -> TrialResult:
    """The actual trial runner (see :func:`run_trial` for the contract).

    Internal callers (the sweep engine, the spec dispatch above) come
    here directly so the legacy-keyword deprecation warning fires only
    for *external* raw-keyword calls.
    """
    if rate_pps is None:
        raise TypeError("run_trial(config, rate_pps, ...) requires a rate")
    if router is not None and machine is not None:
        raise TypeError(
            "machine= describes the router to build; it cannot be "
            "combined with a pre-built router"
        )
    if rate_pps < 0:
        raise ValueError("rate must be non-negative")
    plan = _resolve_fault_plan(fault_plan)
    if router is None:
        resolved_backend = resolve_backend(backend)
        if sanitize and resolved_backend == FAST:
            logging.getLogger("repro.backend").warning(
                "sanitize=True requires the pure backend's per-event "
                "drain loop; falling back to backend=pure "
                "(fast was requested)"
            )
            resolved_backend = PURE
        router = Router(
            config, sim=make_simulator(resolved_backend), machine=machine
        )
    if plan is not None:
        router.arm_faults(plan)
    if with_compute:
        router.add_compute_process()
    sanitizer = None
    if sanitize:
        from ..sim.sanitize import InvariantSanitizer

        sanitizer = InvariantSanitizer(router).attach()
    router.start()
    trace_buffer = None
    timeline = None
    # NB: an *empty* caller-owned TraceBuffer is len()-falsy, so test
    # identity against the disabled sentinels, not truthiness.
    if trace is not False and trace is not None:
        from ..trace.buffer import TraceBuffer
        from ..trace.timeline import Timeline

        if isinstance(trace, bool):
            trace_buffer = (
                TraceBuffer(trace_capacity)
                if trace_capacity is not None
                else TraceBuffer()
            )
        else:
            trace_buffer = trace  # caller-owned buffer (kept for export)
        timeline = trace_buffer.timeline
        if timeline is None:
            # Window the time series exactly like the watchdog samples.
            timeline = Timeline(
                config.watchdog_window_ticks * config.clock_tick_ns
            )
            trace_buffer.attach_timeline(timeline)
        router.attach_trace(trace_buffer)
    streams = RandomStreams(seed)
    generator = None
    if rate_pps > 0:
        generator = _make_generator(
            workload, router, rate_pps, streams, burst_size,
            attack_rate_pps=attack_rate_pps,
        ).start()
        if trace_buffer is not None:
            generator.trace = trace_buffer
    wd = None
    if watchdog:
        from ..sim.watchdog import LivelockWatchdog

        wd = LivelockWatchdog(
            router.sim,
            router.delivered,
            (router.nic_in.rx_accepted, router.nic_in.rx_overflow_drops),
            window_ns=config.watchdog_window_ticks * config.clock_tick_ns,
            user_cycles=(
                router.compute.cycles_used if router.compute is not None else None
            ),
            trace=trace_buffer,
            # Per-core health sampling only exists on multi-core
            # machines, so single-core verdicts keep their exact
            # pre-SMP shape.
            cpus=(
                router.kernel.cpus if len(router.kernel.cpus) > 1 else None
            ),
        ).start()

    router.run_for(seconds(warmup_s))

    delivered_before = router.delivered.snapshot()
    generated_before = generator.sent if generator is not None else 0
    compute_before = (
        router.compute.cycles_used() if router.compute is not None else 0
    )
    window_start_ns = router.sim.now
    router.latency.start()
    if timeline is not None:
        timeline.mark("measure_start", window_start_ns)

    router.run_for(seconds(duration_s))

    router.latency.stop()
    if timeline is not None:
        timeline.mark("measure_end", router.sim.now)
    window_ns = router.sim.now - window_start_ns
    delivered = router.delivered.snapshot() - delivered_before
    generated = (generator.sent if generator is not None else 0) - generated_before
    output_rate = delivered * NS_PER_SEC / window_ns
    offered_rate = generated * NS_PER_SEC / window_ns

    user_share: Optional[float] = None
    if router.compute is not None:
        window_cycles = ns_to_cycles(window_ns, config.costs.cpu_hz)
        user_share = router.compute.cpu_share(compute_before, window_cycles)

    if wd is not None:
        wd.stop()
    dump = router.probes.dump()
    drops = {
        name: value
        for name, value in dump.items()
        if ("drop" in name) and value > 0
    }

    faults_record = None
    if plan is not None or sanitize:
        # End-of-trial reconciliation: stop the source, recover every
        # in-flight packet, and balance the pool's books. Skipped for
        # plain trials so their event streams stay byte-identical to
        # the golden fixtures.
        if generator is not None:
            generator.stop()
        report = router.teardown()
        if sanitizer is not None:
            sanitizer.detach()
            sanitizer.check_trial_end(report)
        if plan is not None:
            faults_record = {
                "plan": plan.to_dict(),
                "injected": router.faults.summary(),
                "teardown": report,
            }
    return TrialResult(
        variant=describe(config),
        target_rate_pps=rate_pps,
        offered_rate_pps=offered_rate,
        output_rate_pps=output_rate,
        delivered=delivered,
        generated=generated,
        duration_s=window_ns / NS_PER_SEC,
        user_cpu_share=user_share,
        latency_us=router.latency.summary_us(),
        drops=drops,
        counters=dump,
        watchdog=wd.verdict() if wd is not None else None,
        faults=faults_record,
        timeline=timeline.to_dict() if timeline is not None else None,
        backend=getattr(router.sim, "backend_name", None),
    )


#: Event rate a zero-load trial still sustains (clock ticks, ring
#: service, watchdog windows) — the floor of the cost estimate below.
_IDLE_EVENT_RATE = 2_000.0


def trial_cost_estimate(spec) -> float:
    """Relative wall-clock cost of one trial spec (arbitrary units).

    The event count of a trial is roughly linear in simulated time and
    in the packet rate (each packet is a handful of events), with a
    fixed per-second floor for clock ticks and housekeeping. The sweep
    engine uses this to cut a spec list into equal-cost chunks, so one
    slow 12k-pps trial does not serialize behind a chunk of idle ones.

    Accepts a :class:`TrialSpec` or the engine's ``(config, rate_pps,
    kwargs)`` tuple form.
    """
    _config, rate_pps, kwargs = spec_tuple(spec)
    sim_seconds = kwargs.get("duration_s", DEFAULT_DURATION_S) + kwargs.get(
        "warmup_s", DEFAULT_WARMUP_S
    )
    return max(0.0, sim_seconds) * (max(0.0, rate_pps) + _IDLE_EVENT_RATE)


def run_sweep(
    config: KernelConfig,
    rates: Sequence[float],
    jobs: Optional[int] = None,
    cache=False,
    cache_dir=None,
    **trial_kwargs,
) -> List[TrialResult]:
    """Run one trial per input rate (fresh router each time).

    Delegates to :mod:`repro.experiments.engine`: ``jobs`` fans the
    trials across worker processes, ``cache=True`` (optionally with
    ``cache_dir``) reuses on-disk results. Output order and every
    ``TrialResult`` field are identical regardless of jobs/cache.
    Resilience knobs (``timeout_s``, ``retries``, ``retry_backoff_s``,
    ``strict``) pass through: with ``strict=False`` a failed trial
    yields a :class:`repro.experiments.engine.TrialFailure` in place of
    its result instead of aborting the sweep.
    """
    from .engine import run_sweep as engine_run_sweep

    return engine_run_sweep(
        config, rates, jobs=jobs, cache=cache, cache_dir=cache_dir, **trial_kwargs
    )


def sweep_series(results: Sequence[TrialResult]):
    """[(offered_rate, output_rate)] pairs from a sweep, sorted by rate.

    Non-strict sweeps may leave :class:`~repro.experiments.engine.
    TrialFailure` records in the list; failed points are omitted from
    the series (the figure shows the trials that completed)."""
    return sorted(
        result.as_point()
        for result in results
        if not getattr(result, "failed", False)
    )


#: Input-rate grid used by the figure experiments (pkt/s), matching the
#: x-extent of figures 6-1..6-6.
DEFAULT_RATE_GRID = (
    500,
    1_000,
    2_000,
    3_000,
    4_000,
    4_500,
    5_000,
    6_000,
    7_000,
    8_000,
    10_000,
    12_000,
)

#: Coarser grid for quick runs and unit tests.
FAST_RATE_GRID = (1_000, 3_000, 5_000, 8_000, 12_000)
