"""Compact binary wire format for :class:`TrialResult` transfer.

Worker processes return trial results to the sweep engine as packed
bytes instead of pickled dataclasses: the scalars are one ``struct``
record, and each numeric dict (latency summary, drop counters, probe
dump) becomes a key blob plus a per-value format string packed in a
single ``struct.pack`` call. Byte strings cross the process boundary
with near-zero pickling cost, which matters once warm workers make
result transfer — not process startup — the per-trial overhead.

The format is loss-free by construction:

* ints travel as ``q`` (signed 64-bit) and floats as ``d`` (IEEE
  double, Python's float), so every value round-trips bit-identically
  and, crucially, *keeps its Python type* — an int count never comes
  back as a float;
* ``watchdog``/``faults`` are nested reports, not flat numeric dicts;
  they travel as canonical JSON, which the on-disk result cache already
  proves loss-free for them;
* anything the binary layout cannot express exactly (non-string keys,
  bools, ints beyond 64 bits, exotic value types) falls back to a
  JSON-encoded record of the whole result — correctness never depends
  on the fast path applying.

This is a transport encoding only: the on-disk cache keeps its JSON
format, and nothing here affects a trial's fingerprint.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict

MAGIC = b"RTW1"

_FMT_SCALARS = "!dddqqd"
_U32 = "!I"


class WireError(ValueError):
    """A blob that is not a valid packed TrialResult."""


class _Fallback(Exception):
    """Internal: value shape the binary layout cannot express exactly."""


def _pack_str(out: list, text: str) -> None:
    blob = text.encode("utf-8")
    out.append(struct.pack(_U32, len(blob)))
    out.append(blob)


def _pack_numdict(out: list, mapping: Dict[str, Any]) -> None:
    """count | key-blob | per-value kind chars | packed values."""
    keys = list(mapping.keys())
    kinds = []
    for key in keys:
        if type(key) is not str or "\x00" in key:
            raise _Fallback
        value = mapping[key]
        if type(value) is int:
            kinds.append("q")
        elif type(value) is float:
            kinds.append("d")
        else:
            raise _Fallback
    kind_str = "".join(kinds)
    try:
        values = struct.pack("!" + kind_str, *mapping.values())
    except struct.error:  # e.g. an int beyond 64 bits
        raise _Fallback from None
    _pack_str(out, "\x00".join(keys))
    out.append(struct.pack(_U32, len(keys)))
    out.append(kind_str.encode("ascii"))
    out.append(values)


def _pack_json_opt(out: list, value) -> None:
    if value is None:
        out.append(b"\x00")
        return
    out.append(b"\x01")
    _pack_str(out, json.dumps(value, sort_keys=True))


def pack_trial(result) -> bytes:
    """Serialize a TrialResult to bytes (binary fast path, JSON fallback)."""
    from .results import trial_to_dict

    out = [MAGIC, b"\x00"]
    try:
        if type(result.delivered) is not int or type(result.generated) is not int:
            raise _Fallback
        for value in (
            result.target_rate_pps,
            result.offered_rate_pps,
            result.output_rate_pps,
            result.duration_s,
        ):
            if type(value) is not float:
                raise _Fallback
        _pack_str(out, result.variant)
        out.append(
            struct.pack(
                _FMT_SCALARS,
                result.target_rate_pps,
                result.offered_rate_pps,
                result.output_rate_pps,
                result.delivered,
                result.generated,
                result.duration_s,
            )
        )
        share = result.user_cpu_share
        if share is None:
            out.append(b"\x00")
        elif type(share) is float:
            out.append(b"\x01" + struct.pack("!d", share))
        else:
            raise _Fallback
        _pack_numdict(out, result.latency_us)
        _pack_numdict(out, result.drops)
        _pack_numdict(out, result.counters)
        _pack_json_opt(out, result.watchdog)
        _pack_json_opt(out, result.faults)
        _pack_json_opt(out, result.timeline)
        _pack_json_opt(out, result.slo)
        backend = result.backend
        if backend is None:
            out.append(b"\x00")
        elif type(backend) is str:
            out.append(b"\x01")
            _pack_str(out, backend)
        else:
            raise _Fallback
    except _Fallback:
        blob = json.dumps(trial_to_dict(result), sort_keys=True).encode("utf-8")
        return MAGIC + b"\x01" + blob
    return b"".join(out)


class _Reader:
    __slots__ = ("blob", "pos")

    def __init__(self, blob: bytes, pos: int) -> None:
        self.blob = blob
        self.pos = pos

    def take(self, count: int) -> bytes:
        end = self.pos + count
        if end > len(self.blob):
            raise WireError("truncated TrialResult blob")
        piece = self.blob[self.pos : end]
        self.pos = end
        return piece

    def u32(self) -> int:
        return struct.unpack(_U32, self.take(4))[0]

    def text(self) -> str:
        return self.take(self.u32()).decode("utf-8")

    def numdict(self) -> Dict[str, Any]:
        key_blob = self.text()
        count = self.u32()
        kind_str = self.take(count).decode("ascii")
        values = struct.unpack("!" + kind_str, self.take(struct.calcsize("!" + kind_str)))
        if count == 0:
            return {}
        keys = key_blob.split("\x00")
        if len(keys) != count:
            raise WireError("key/value count mismatch")
        return dict(zip(keys, values))

    def json_opt(self):
        flag = self.take(1)
        if flag == b"\x00":
            return None
        return json.loads(self.text())


def unpack_trial(blob: bytes):
    """Inverse of :func:`pack_trial`."""
    from .harness import TrialResult
    from .results import trial_from_dict

    if blob[:4] != MAGIC:
        raise WireError("bad magic: %r" % blob[:4])
    mode = blob[4:5]
    if mode == b"\x01":
        return trial_from_dict(json.loads(blob[5:].decode("utf-8")))
    if mode != b"\x00":
        raise WireError("unknown wire mode: %r" % mode)
    reader = _Reader(blob, 5)
    variant = reader.text()
    target, offered, output, delivered, generated, duration = struct.unpack(
        _FMT_SCALARS, reader.take(struct.calcsize(_FMT_SCALARS))
    )
    share = None
    if reader.take(1) == b"\x01":
        share = struct.unpack("!d", reader.take(8))[0]
    latency_us = reader.numdict()
    drops = reader.numdict()
    counters = reader.numdict()
    watchdog = reader.json_opt()
    faults = reader.json_opt()
    timeline = reader.json_opt()
    slo = reader.json_opt()
    backend = None
    if reader.take(1) == b"\x01":
        backend = reader.text()
    if reader.pos != len(blob):
        raise WireError("trailing bytes after TrialResult record")
    return TrialResult(
        variant=variant,
        target_rate_pps=target,
        offered_rate_pps=offered,
        output_rate_pps=output,
        delivered=delivered,
        generated=generated,
        duration_s=duration,
        user_cpu_share=share,
        latency_us=latency_us,
        drops=drops,
        counters=counters,
        watchdog=watchdog,
        faults=faults,
        timeline=timeline,
        slo=slo,
        backend=backend,
    )
