"""Per-figure experiment definitions.

One function per figure in the paper's evaluation; each returns a
:class:`FigureResult` whose series mirror the figure's marks. Benchmarks
and examples are thin wrappers around these functions, so the same code
regenerates a figure everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core import variants
from ..hw.machine import STEERING_AFFINITY, STEERING_RSS, MachineSpec
from ..kernel.config import KernelConfig
from .engine import run_trials
from .harness import DEFAULT_RATE_GRID, sweep_series
from .spec import TrialSpec

Point = Tuple[float, float]

#: Keywords routed to the engine (parallelism/caching/resilience); the
#: rest of a figure's ``**trial_kwargs`` describe the trials themselves.
_ENGINE_KWARGS = (
    "jobs",
    "cache",
    "cache_dir",
    "timeout_s",
    "retries",
    "retry_backoff_s",
    "strict",
)


def _sweep(config, rates, **trial_kwargs):
    """One trial per rate as typed specs (the engine fans them out)."""
    engine_kwargs = {
        key: trial_kwargs.pop(key)
        for key in _ENGINE_KWARGS
        if key in trial_kwargs
    }
    specs = [
        TrialSpec.from_kwargs(config, rate, **trial_kwargs) for rate in rates
    ]
    return run_trials(specs, **engine_kwargs)


@dataclass
class FigureResult:
    """All series of one reproduced figure."""

    figure_id: str
    title: str
    xlabel: str
    ylabel: str
    series: Dict[str, List[Point]] = field(default_factory=dict)
    notes: str = ""
    #: Per-series trial timelines (``TrialResult.timeline`` dicts, in
    #: rate order), populated only when the figure ran with ``trace``.
    timelines: Dict[str, List] = field(default_factory=dict)

    def series_peak(self, label: str) -> float:
        return max(y for _, y in self.series[label])

    def series_at_max_x(self, label: str) -> float:
        return max(self.series[label])[1]


def _throughput_series(
    config: KernelConfig,
    rates: Sequence[float],
    **trial_kwargs,
) -> List[Point]:
    return sweep_series(_sweep(config, rates, **trial_kwargs))


def _add_series(
    result: FigureResult,
    label: str,
    config: KernelConfig,
    rates: Sequence[float],
    **trial_kwargs,
) -> None:
    """Run one sweep and record its series (plus timelines when traced)."""
    trials = _sweep(config, rates, **trial_kwargs)
    result.series[label] = sweep_series(trials)
    trace_val = trial_kwargs.get("trace")
    if trace_val is not None and trace_val is not False:
        result.timelines[label] = [
            trial.timeline
            for trial in trials
            if not getattr(trial, "failed", False)
        ]


# ----------------------------------------------------------------------
# Figure 6-1: forwarding performance of the unmodified kernel
# ----------------------------------------------------------------------

def figure_6_1(
    rates: Sequence[float] = DEFAULT_RATE_GRID,
    **trial_kwargs,
) -> FigureResult:
    """Unmodified kernel, with and without screend (§6.2)."""
    result = FigureResult(
        figure_id="6-1",
        title="Forwarding performance of unmodified kernel",
        xlabel="Input packet rate (pkts/sec)",
        ylabel="Output packet rate (pkts/sec)",
    )
    _add_series(
        result, "Without screend", variants.unmodified(), rates, **trial_kwargs
    )
    _add_series(
        result,
        "With screend",
        variants.unmodified(screend=True),
        rates,
        **trial_kwargs,
    )
    result.notes = (
        "Paper: peak ~4700 pkt/s without screend; with screend poor overload "
        "behaviour above ~2000 pkt/s and complete livelock at ~6000 pkt/s."
    )
    return result


# ----------------------------------------------------------------------
# Figure 6-3: modified kernel without screend
# ----------------------------------------------------------------------

def figure_6_3(
    rates: Sequence[float] = DEFAULT_RATE_GRID,
    **trial_kwargs,
) -> FigureResult:
    """Unmodified vs modified-no-polling vs polling (quota 5 / none)."""
    result = FigureResult(
        figure_id="6-3",
        title="Forwarding performance of modified kernel, without screend",
        xlabel="Input packet rate (pkts/sec)",
        ylabel="Output packet rate (pkts/sec)",
    )
    _add_series(
        result, "Unmodified", variants.unmodified(), rates, **trial_kwargs
    )
    _add_series(
        result, "No polling", variants.modified_no_polling(), rates, **trial_kwargs
    )
    _add_series(
        result,
        "Polling (quota = 5)",
        variants.polling(quota=5),
        rates,
        **trial_kwargs,
    )
    _add_series(
        result,
        "Polling (no quota)",
        variants.polling(quota=None),
        rates,
        **trial_kwargs,
    )
    result.notes = (
        "Paper: polling with a quota slightly improves the MLFRR and stays "
        "flat under overload; with no quota throughput drops almost to zero "
        "above the MLFRR (packets pile up at the output queue)."
    )
    return result


# ----------------------------------------------------------------------
# Figure 6-4: modified kernel with screend
# ----------------------------------------------------------------------

def figure_6_4(
    rates: Sequence[float] = DEFAULT_RATE_GRID,
    **trial_kwargs,
) -> FigureResult:
    """Unmodified vs polling without/with queue-state feedback (§6.6.1)."""
    result = FigureResult(
        figure_id="6-4",
        title="Forwarding performance of modified kernel, with screend",
        xlabel="Input packet rate (pkts/sec)",
        ylabel="Output packet rate (pkts/sec)",
    )
    _add_series(
        result,
        "Unmodified",
        variants.unmodified(screend=True),
        rates,
        **trial_kwargs,
    )
    _add_series(
        result,
        "Polling, no feedback",
        variants.polling(quota=10, screend=True, feedback=False),
        rates,
        **trial_kwargs,
    )
    _add_series(
        result,
        "Polling w/feedback",
        variants.polling(quota=10, screend=True, feedback=True),
        rates,
        **trial_kwargs,
    )
    result.notes = (
        "Paper: without feedback the modified kernel performs about as badly "
        "as the unmodified kernel (screening queue overflows); with feedback "
        "there is no livelock and throughput stays at its peak."
    )
    return result


# ----------------------------------------------------------------------
# Figures 6-5 / 6-6: effect of the packet-count quota
# ----------------------------------------------------------------------

QUOTA_GRID = (5, 10, 20, 100, None)


def _quota_label(quota: Optional[int]) -> str:
    return "quota = infinity" if quota is None else "quota = %d packets" % quota


def figure_6_5(
    rates: Sequence[float] = DEFAULT_RATE_GRID,
    quotas: Sequence[Optional[int]] = QUOTA_GRID,
    **trial_kwargs,
) -> FigureResult:
    """Quota sweep without screend (§6.6.2)."""
    result = FigureResult(
        figure_id="6-5",
        title="Effect of packet-count quota on performance, no screend",
        xlabel="Input packet rate (pkts/sec)",
        ylabel="Output packet rate (pkts/sec)",
    )
    for quota in quotas:
        _add_series(
            result,
            _quota_label(quota),
            variants.polling(quota=quota),
            rates,
            **trial_kwargs,
        )
    result.notes = (
        "Paper: smaller quotas work better; as the quota increases livelock "
        "becomes more of a problem; quota 10-20 is near-optimal."
    )
    return result


def figure_6_6(
    rates: Sequence[float] = DEFAULT_RATE_GRID,
    quotas: Sequence[Optional[int]] = QUOTA_GRID,
    **trial_kwargs,
) -> FigureResult:
    """Quota sweep with screend and queue-state feedback (§6.6.2)."""
    result = FigureResult(
        figure_id="6-6",
        title="Effect of packet-count quota on performance, with screend",
        xlabel="Input packet rate (pkts/sec)",
        ylabel="Output packet rate (pkts/sec)",
    )
    for quota in quotas:
        _add_series(
            result,
            _quota_label(quota),
            variants.polling(quota=quota, screend=True, feedback=True),
            rates,
            **trial_kwargs,
        )
    result.notes = (
        "Paper: with feedback the queue-state mechanism prevents livelock at "
        "every quota; small quotas cost a few per cent of peak throughput."
    )
    return result


# ----------------------------------------------------------------------
# Figure 7-1: user-mode CPU time under the cycle-limit mechanism
# ----------------------------------------------------------------------

THRESHOLD_GRID = (0.25, 0.50, 0.75, 1.00)

FIG_7_1_RATES = (0, 1_000, 2_000, 3_000, 4_000, 5_000, 6_000, 8_000, 10_000)


def figure_7_1(
    rates: Sequence[float] = FIG_7_1_RATES,
    thresholds: Sequence[float] = THRESHOLD_GRID,
    quota: int = 5,
    jobs: Optional[int] = None,
    cache=False,
    cache_dir=None,
    timeout_s: Optional[float] = None,
    retries: int = 1,
    strict: bool = True,
    **trial_kwargs,
) -> FigureResult:
    """Available user-mode CPU vs input rate per cycle threshold (§7)."""
    result = FigureResult(
        figure_id="7-1",
        title="User-mode CPU time available using cycle-limit mechanism",
        xlabel="Input packet rate (pkts/sec)",
        ylabel="Available CPU time (per cent)",
    )
    # One flat spec list so the engine can fan the whole threshold x rate
    # grid out at once, not one row at a time.
    specs = [
        TrialSpec.from_kwargs(
            variants.polling(quota=quota, cycle_limit=threshold),
            rate,
            **dict(trial_kwargs, with_compute=True),
        )
        for threshold in thresholds
        for rate in rates
    ]
    trials = run_trials(
        specs,
        jobs=jobs,
        cache=cache,
        cache_dir=cache_dir,
        timeout_s=timeout_s,
        retries=retries,
        strict=strict,
    )
    for row, threshold in enumerate(thresholds):
        label = "threshold %d %%" % round(threshold * 100)
        row_trials = trials[row * len(rates) : (row + 1) * len(rates)]
        points: List[Point] = [
            (trial.offered_rate_pps, 100.0 * trial.user_cpu_share)
            for trial in row_trials
            if not getattr(trial, "failed", False)
        ]
        result.series[label] = sorted(points)
        trace_val = trial_kwargs.get("trace")
        if trace_val is not None and trace_val is not False:
            result.timelines[label] = [
                trial.timeline
                for trial in row_trials
                if not getattr(trial, "failed", False)
            ]
    result.notes = (
        "Paper: ~94% available at zero load; curves stabilise as input rate "
        "rises but the user process gets less than the threshold implies; "
        "50%/75% curves show initial dips (uncounted interrupt cycles)."
    )
    return result


# ----------------------------------------------------------------------
# Multi-core extensions (no paper counterpart; DESIGN.md SS14)
# ----------------------------------------------------------------------

SMP_CORE_GRID = (1, 2, 4)

#: Output must track at least this fraction of the offered rate for a
#: trial to count as pre-onset.
ONSET_TRACK_FRACTION = 0.9


def _smp_machine(
    cores: int,
    steering: str = STEERING_RSS,
    isolate_polling: bool = True,
) -> Optional[MachineSpec]:
    """None at one core, so those trials stay byte-identical (and
    cache-compatible) with the paper's single-core runs."""
    if cores == 1:
        return None
    return MachineSpec(
        cores=cores, steering=steering, isolate_polling=isolate_polling
    )


def _onset_rate(trials, rates: Sequence[float]) -> float:
    """Lowest target rate whose output stops tracking the offered rate.

    Trials past the MLFRR deliver less than
    :data:`ONSET_TRACK_FRACTION` of what was offered; the first such
    rate is the livelock onset. A machine that tracks the whole grid
    reports the top of the grid (onset is off-scale, not absent).
    """
    by_rate = {trial.target_rate_pps: trial for trial in trials
               if not getattr(trial, "failed", False)}
    for rate in sorted(by_rate):
        trial = by_rate[rate]
        if trial.offered_rate_pps <= 0:
            continue
        if trial.output_rate_pps < ONSET_TRACK_FRACTION * trial.offered_rate_pps:
            return rate
    return max(rates)


def figure_smp_onset(
    rates: Sequence[float] = DEFAULT_RATE_GRID,
    core_counts: Sequence[int] = SMP_CORE_GRID,
    **trial_kwargs,
) -> FigureResult:
    """Livelock onset rate vs core count (RSS steering + isolation).

    Multi-core machines steer the device IRQs off the housekeeping core
    (RSS flow hashing) and dedicate polling cores, so both the classic
    and the polled kernel survive to higher input rates before the
    output curve detaches from the offered load.
    """
    result = FigureResult(
        figure_id="smp-onset",
        title="Livelock onset vs core count (RSS steering, isolated polling)",
        xlabel="Cores",
        ylabel="Onset input rate (pkts/sec)",
    )
    engine_kwargs = {
        key: trial_kwargs.pop(key)
        for key in _ENGINE_KWARGS
        if key in trial_kwargs
    }
    drivers = (
        ("Unmodified", variants.unmodified()),
        ("Polling (quota = 10)", variants.polling(quota=10)),
    )
    specs = [
        TrialSpec.from_kwargs(
            config, rate, machine=_smp_machine(cores), **trial_kwargs
        )
        for _, config in drivers
        for cores in core_counts
        for rate in rates
    ]
    trials = run_trials(specs, **engine_kwargs)
    per_cell = len(rates)
    index = 0
    for label, _ in drivers:
        points: List[Point] = []
        for cores in core_counts:
            cell = trials[index : index + per_cell]
            index += per_cell
            points.append((float(cores), _onset_rate(cell, rates)))
        result.series[label] = points
    result.notes = (
        "Onset = lowest rate whose output falls below %d%% of offered; "
        "cores=1 is the paper's machine, multi-core adds RSS IRQ "
        "steering and dedicated polling cores (top of grid = no onset "
        "within the swept rates)." % round(ONSET_TRACK_FRACTION * 100)
    )
    return result


def figure_smp_policy(
    core_counts: Sequence[int] = SMP_CORE_GRID,
    rate_pps: float = 12_000,
    **trial_kwargs,
) -> FigureResult:
    """Steering/isolation policy crossovers under heavy overload.

    Fixed input rate, polled driver; one series per (steering,
    isolation) policy pair showing delivered throughput as cores are
    added. Affinity and RSS coincide at this topology's two IRQ lines
    unless hashing happens to co-locate them; isolation splits rx/tx
    service across dedicated cores.
    """
    result = FigureResult(
        figure_id="smp-policy",
        title="Steering/isolation policy vs delivered rate (polled, %g pps)"
        % rate_pps,
        xlabel="Cores",
        ylabel="Output packet rate (pkts/sec)",
    )
    engine_kwargs = {
        key: trial_kwargs.pop(key)
        for key in _ENGINE_KWARGS
        if key in trial_kwargs
    }
    policies = (
        ("affinity", STEERING_AFFINITY, False),
        ("affinity + isolate", STEERING_AFFINITY, True),
        ("rss", STEERING_RSS, False),
        ("rss + isolate", STEERING_RSS, True),
    )
    config = variants.polling(quota=10)
    specs = [
        TrialSpec.from_kwargs(
            config,
            rate_pps,
            machine=_smp_machine(cores, steering, isolate),
            **trial_kwargs,
        )
        for _, steering, isolate in policies
        for cores in core_counts
    ]
    trials = run_trials(specs, **engine_kwargs)
    index = 0
    for label, _, _ in policies:
        points = []
        for cores in core_counts:
            trial = trials[index]
            index += 1
            if not getattr(trial, "failed", False):
                points.append((float(cores), trial.output_rate_pps))
        result.series[label] = points
    result.notes = (
        "All policies coincide at one core (MachineSpec canonicalizes "
        "to the paper's machine); crossovers appear as cores are added "
        "and IRQ steering/polling isolation start to matter."
    )
    return result


#: Registry used by the CLI and the benchmarks.
ALL_FIGURES = {
    "6-1": figure_6_1,
    "6-3": figure_6_3,
    "6-4": figure_6_4,
    "6-5": figure_6_5,
    "6-6": figure_6_6,
    "7-1": figure_7_1,
    "smp-onset": figure_smp_onset,
    "smp-policy": figure_smp_policy,
}
