"""Router-under-test topology (§6.1 methodology).

"Our test configuration consisted of a router-under-test connecting two
otherwise unloaded Ethernets. A source host generated IP/UDP packets at
a variety of rates, and sent them via the router to a destination
address. (The destination host did not exist; we fooled the router by
inserting a phantom entry into its ARP table.)"

:class:`Router` assembles one complete router from a
:class:`~repro.kernel.config.KernelConfig`: kernel, two NICs, routing
and ARP tables, the IP layer, the drivers matching the configured
variant, and optionally screend, a compute-bound process, and taps.
The traffic generator is attached by the harness to the input NIC.
"""

from __future__ import annotations

from typing import Optional

from ..apps.compute import ComputeBoundProcess
from ..apps.monitor import PacketFilterTap, PassiveMonitor
from ..apps.screend import Screend, ScreenRule
from ..core.cyclelimit import CycleLimiter
from ..core.feedback import QueueStateFeedback
from ..core.polling import PollingSystem
from ..core.quota import PollQuota
from ..drivers.bsd import BsdDriver, ClassicIPInput
from ..drivers.clocked import ClockedPollingDriver
from ..drivers.highipl import HighIplDriver
from ..drivers.hybrid import HybridDriver
from ..drivers.polled import PolledDriver
from ..hw.cpu import IPL_DEVICE
from ..hw.link import Wire
from ..hw.machine import SINGLE_CORE, MachineSpec
from ..hw.nic import NIC
from ..kernel.config import KernelConfig
from ..kernel.kernel import Kernel
from ..kernel.queues import PacketQueue
from ..metrics.latency import LatencyRecorder
from ..net.arp import ArpTable
from ..net.ip import IPLayer, ScreenPath
from ..net.packet import PacketPool
from ..net.routing import RoutingTable
from .._fastcore import packetpath
from ..sim.probes import ProbeRegistry
from ..sim.signals import Signal
from ..sim.simulator import Simulator
from ..trace.buffer import CPU_ACCOUNT, PKT_DELIVER

#: Canonical addressing used by all experiments.
INPUT_IF = "in0"
OUTPUT_IF = "out0"
SOURCE_NET = "10.1.0.0/16"
DEST_NET = "10.2.0.0/16"
SOURCE_HOST = "10.1.0.2"
DEST_HOST = "10.2.0.2"  # does not exist; phantom ARP entry
PHANTOM_LINK_ADDR = "08:00:2b:00:00:99"


class Router:
    """A fully wired router-under-test."""

    def __init__(
        self,
        config: KernelConfig,
        sim: Optional[Simulator] = None,
        tx_ipl: int = IPL_DEVICE,
        screen_rule: Optional[ScreenRule] = None,
        recycle_packets: bool = True,
        machine: Optional[MachineSpec] = None,
    ) -> None:
        config.validate()
        self.config = config
        #: Core topology (:class:`~repro.hw.machine.MachineSpec`); the
        #: default is the paper's single-core machine, byte-identical to
        #: the pre-SMP router.
        self.machine = machine if machine is not None else SINGLE_CORE
        self.sim = sim if sim is not None else Simulator()
        self.probes = ProbeRegistry(self.sim)
        self.kernel = Kernel(self.sim, config, self.probes, machine=self.machine)
        #: Freelist for the per-packet fast path: generators draw from
        #: it, and the router returns each packet once its transmission
        #: on the output wire completes (RX-overflow rejects are
        #: returned by the generator itself). Pass
        #: ``recycle_packets=False`` — or call ``packet_pool.disable()``
        #: — when test code retains packet references past those points.
        self.packet_pool = PacketPool(enabled=recycle_packets)

        # --- interfaces -------------------------------------------------
        self.nic_in = NIC(
            self.sim,
            INPUT_IF,
            self.probes,
            rx_ring_capacity=config.rx_ring_capacity,
            tx_ring_capacity=config.tx_ring_capacity,
        )
        self.nic_out = NIC(
            self.sim,
            OUTPUT_IF,
            self.probes,
            rx_ring_capacity=config.rx_ring_capacity,
            tx_ring_capacity=config.tx_ring_capacity,
        )

        # --- network layer ----------------------------------------------
        self.routing = RoutingTable()
        self.routing.add(DEST_NET, OUTPUT_IF)
        self.routing.add(SOURCE_NET, INPUT_IF)
        self.arp = ArpTable()
        self.arp.add_entry(DEST_HOST, PHANTOM_LINK_ADDR)  # the §6.1 trick
        self.arp.add_entry(SOURCE_HOST, "08:00:2b:00:00:01")
        self.ip = IPLayer(self.kernel, self.routing, self.arp)

        # --- screend ------------------------------------------------------
        self.screend: Optional[Screend] = None
        self.screen_queue: Optional[PacketQueue] = None
        if config.screend_enabled:
            self.screen_queue = PacketQueue(
                "screenq",
                config.screen_queue_limit,
                self.probes,
                high_watermark=config.screen_queue_high,
                low_watermark=config.screen_queue_low,
            )
            path = ScreenPath(
                self.screen_queue, Signal(self.sim, "screenq.data")
            )
            self.ip.set_screen_path(path)
            self.screend = Screend(self.kernel, self.ip, path, rule=screen_rule)

        # --- drivers (variant-dependent) ----------------------------------
        self.polling: Optional[PollingSystem] = None
        #: Every polling daemon; normally ``[self.polling]``. Multi-core
        #: machines with dedicated polling cores run one system per core
        #: with the devices partitioned across them.
        self.polling_systems: list = []
        self.cycle_limiter: Optional[CycleLimiter] = None
        self.feedback: Optional[QueueStateFeedback] = None
        self.ip_input: Optional[ClassicIPInput] = None
        if config.use_clocked_polling:
            self._build_clocked(tx_ipl)
        elif config.use_high_ipl:
            self._build_high_ipl()
        elif config.use_hybrid:
            self._build_hybrid(tx_ipl)
        elif config.use_polling and not config.emulate_unmodified:
            self._build_polled(tx_ipl)
        else:
            self._build_classic(tx_ipl)
        self.ip.register_output(INPUT_IF, self.driver_in.output)
        self.ip.register_output(OUTPUT_IF, self.driver_out.output)

        # --- measurement ---------------------------------------------------
        self.delivered = self.probes.counter("router.delivered")
        # --- closed-loop mitigation (opt-in; schedules its own periodic
        # sampling event, so it is a determinism axis like the watchdog) --
        self.mitigation = None
        if config.mitigation_enabled:
            from ..core.mitigation import MitigationController

            self.mitigation = MitigationController(
                self.kernel,
                config,
                self.nic_in,
                self.delivered,
                polling=self.polling,
                clocked_drivers=(
                    (self.driver_in, self.driver_out)
                    if config.use_clocked_polling
                    else ()
                ),
                queues=(
                    (self.screen_queue,) if self.screen_queue is not None else ()
                ),
            )
        self.latency = LatencyRecorder(self.sim)
        self.nic_out.on_transmit = self._on_output_transmit
        self.nic_in.on_transmit = self._on_input_transmit
        self.compute: Optional[ComputeBoundProcess] = None
        self.monitor: Optional[PassiveMonitor] = None
        #: Armed fault injector (:meth:`arm_faults`) and the faulty input
        #: wire generators should send through; both None fault-free.
        self.faults = None
        self.wire_in: Optional[Wire] = None
        #: Armed trace buffer (:meth:`attach_trace`); None when untraced.
        self.trace = None
        self._started = False
        self._teardown_report: Optional[dict] = None
        # Compiled per-packet fast path (no-op off the fast-c backend).
        # Arming faults, a trace, or a monitor tears it back out; the
        # sanitizer never sees it because it forces the pure backend.
        packetpath.install(self)

    # ------------------------------------------------------------------
    # Variant wiring
    # ------------------------------------------------------------------

    def _build_classic(self, tx_ipl: int) -> None:
        config = self.config
        extra = (
            config.costs.modified_compat_overhead
            if config.emulate_unmodified
            else 0
        )
        self.ip_input = ClassicIPInput(self.kernel, self.ip)
        self.driver_in = BsdDriver(
            self.kernel,
            self.nic_in,
            self.ip,
            self.ip_input,
            INPUT_IF,
            tx_ipl=tx_ipl,
            extra_rx_cycles=extra,
        )
        self.driver_out = BsdDriver(
            self.kernel,
            self.nic_out,
            self.ip,
            self.ip_input,
            OUTPUT_IF,
            tx_ipl=tx_ipl,
            extra_rx_cycles=extra,
        )

    def _build_polled(self, tx_ipl: int) -> None:
        config = self.config
        if config.cycle_limit_fraction is not None:
            self.cycle_limiter = CycleLimiter(
                self.kernel, config.cycle_limit_fraction
            )
        polling_cores = self.machine.polling_cores()
        if len(polling_cores) > 1 and self.cycle_limiter is None:
            # Dedicated polling cores: one daemon per core, devices
            # partitioned round-robin in registration order. (The §7
            # cycle limit is defined against one polling thread's usage,
            # so a cycle-limited kernel keeps the single daemon.)
            self.polling_systems = [
                PollingSystem(
                    self.kernel,
                    quota=PollQuota.of(config.poll_quota),
                    name="netpoll%d" % index,
                    core=core,
                )
                for index, core in enumerate(polling_cores)
            ]
            self.polling = self.polling_systems[0]
        else:
            self.polling = PollingSystem(
                self.kernel,
                quota=PollQuota.of(config.poll_quota),
                cycle_limiter=self.cycle_limiter,
                core=polling_cores[0],
            )
            self.polling_systems = [self.polling]
        self.driver_in = PolledDriver(
            self.kernel, self.nic_in, self.ip, INPUT_IF, tx_ipl=tx_ipl
        )
        self.driver_out = PolledDriver(
            self.kernel, self.nic_out, self.ip, OUTPUT_IF, tx_ipl=tx_ipl
        )
        systems = self.polling_systems
        systems[0].register(self.driver_in)
        systems[1 % len(systems)].register(self.driver_out)
        if config.feedback_enabled:
            if self.screen_queue is None:
                raise ValueError(
                    "feedback_enabled requires screend (the screening queue)"
                )
            self.feedback = QueueStateFeedback(
                self.kernel,
                self.polling,
                self.screen_queue,
                timeout_ticks=config.feedback_timeout_ticks,
            )

    def _build_high_ipl(self) -> None:
        config = self.config
        self.driver_in = HighIplDriver(
            self.kernel, self.nic_in, self.ip, INPUT_IF, quota=config.poll_quota
        )
        self.driver_out = HighIplDriver(
            self.kernel, self.nic_out, self.ip, OUTPUT_IF, quota=config.poll_quota
        )

    def _build_hybrid(self, tx_ipl: int) -> None:
        config = self.config
        machine = self.machine
        polling_cores = machine.polling_cores()
        coalesce_ns = machine.coalesce_ns
        self.driver_in = HybridDriver(
            self.kernel,
            self.nic_in,
            self.ip,
            INPUT_IF,
            tx_ipl=tx_ipl,
            quota=config.poll_quota,
            coalesce_max_ns=coalesce_ns,
            core=polling_cores[0],
        )
        self.driver_out = HybridDriver(
            self.kernel,
            self.nic_out,
            self.ip,
            OUTPUT_IF,
            tx_ipl=tx_ipl,
            quota=config.poll_quota,
            coalesce_max_ns=coalesce_ns,
            core=polling_cores[1 % len(polling_cores)],
        )

    def _build_clocked(self, tx_ipl: int) -> None:
        config = self.config
        self.driver_in = ClockedPollingDriver(
            self.kernel,
            self.nic_in,
            self.ip,
            INPUT_IF,
            poll_interval_ns=config.clocked_poll_interval_ns,
            quota=config.poll_quota,
        )
        self.driver_out = ClockedPollingDriver(
            self.kernel,
            self.nic_out,
            self.ip,
            OUTPUT_IF,
            poll_interval_ns=config.clocked_poll_interval_ns,
            quota=config.poll_quota,
        )

    # ------------------------------------------------------------------
    # Optional applications
    # ------------------------------------------------------------------

    def add_compute_process(self) -> ComputeBoundProcess:
        """Attach the §7 compute-bound progress probe."""
        if self.compute is not None:
            raise RuntimeError("compute process already attached")
        self.compute = ComputeBoundProcess(self.kernel)
        if self._started:
            self.compute.start()
        return self.compute

    def add_monitor(self, queue_limit: int = 32) -> PassiveMonitor:
        """Attach a passive packet-filter monitor (§2)."""
        if self.monitor is not None:
            raise RuntimeError("monitor already attached")
        packetpath.uninstall(self)
        # The tap queues references to forwarded packets beyond the
        # transmit-complete release point, so recycling is unsafe here.
        self.packet_pool.disable()
        tap = PacketFilterTap(self.kernel, queue_limit=queue_limit)
        self.ip.taps.append(tap)
        self.monitor = PassiveMonitor(self.kernel, tap)
        if self._started:
            self.monitor.start()
        return self.monitor

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------

    def arm_faults(self, plan):
        """Arm a :class:`~repro.faults.FaultPlan` into this router.

        Must run before :meth:`start`. Returns the armed
        :class:`~repro.faults.FaultInjector`; when the plan carries link
        faults, :attr:`wire_in` is the faulty wire the harness hands to
        the traffic generator.
        """
        from ..faults import FaultInjector

        if self.faults is not None:
            raise RuntimeError("faults already armed on this router")
        packetpath.uninstall(self)
        injector = FaultInjector(plan, self.sim, self.probes)
        injector.arm(self)
        self.faults = injector
        if plan.wire_armed:
            self.wire_in = Wire(self.nic_in, pool=self.packet_pool, faults=injector)
        return injector

    # ------------------------------------------------------------------
    # Lifecycle and measurement
    # ------------------------------------------------------------------

    def start(self) -> "Router":
        if self._started:
            raise RuntimeError("router already started")
        self._started = True
        self.kernel.start()
        self.driver_in.attach()
        self.driver_out.attach()
        if self.ip_input is not None:
            self.ip_input.attach()
        if self.faults is not None:
            # The drivers have created their interrupt lines by now, so
            # the injector can attach its IRQ-fault hook.
            self.faults.bind_lines()
        for system in self.polling_systems:
            system.start()
        if self.mitigation is not None:
            self.mitigation.start()
        if self.screend is not None:
            self.screend.start()
        if self.compute is not None:
            self.compute.start()
        if self.monitor is not None:
            self.monitor.start()
        packetpath.install_started(self)
        return self

    def attach_trace(self, buffer) -> "Router":
        """Arm a :class:`~repro.trace.TraceBuffer` on every hook site.

        Must run after :meth:`start` (drivers create their interrupt
        lines there). Every hook is a single ``is None`` check on the
        untraced fast path; arming replaces the None with ``buffer``
        and registers one CPU-accounting observer (the observer list is
        only walked when a task is actually charged time).
        """
        if not self._started:
            raise RuntimeError("attach_trace requires a started router")
        if self.trace is not None:
            raise RuntimeError("trace already attached to this router")
        packetpath.uninstall(self)
        buffer.bind(self.sim)
        self.trace = buffer
        self.nic_in.trace = buffer
        self.nic_out.trace = buffer
        cpu = self.kernel.cpu
        cpu.trace = buffer
        record = buffer.record

        def _account(task, elapsed, _record=record):
            _record(CPU_ACCOUNT, task.name, elapsed, task._eff_ipl)

        cpu.account_observers.append(_account)
        # Extra cores account under a "cpuN/" site prefix; the Perfetto
        # exporter splits these onto per-core tracks. Core 0 keeps bare
        # task names, so single-core traces are byte-identical.
        for extra in self.kernel.cpus[1:]:
            extra.trace = buffer

            def _account_core(
                task, elapsed, _record=record, _prefix=extra.name + "/"
            ):
                _record(CPU_ACCOUNT, _prefix + task.name, elapsed, task._eff_ipl)

            extra.account_observers.append(_account_core)
        for line in self.kernel.irq_lines():
            line.trace = buffer
        for driver in (self.driver_in, self.driver_out):
            driver.trace = buffer
            driver.ifqueue.trace = buffer
        if self.ip_input is not None:
            self.ip_input.ipintrq.trace = buffer
        if self.screen_queue is not None:
            self.screen_queue.trace = buffer
        for system in self.polling_systems:
            system.trace = buffer
        if self.feedback is not None:
            self.feedback.trace = buffer
        if self.cycle_limiter is not None:
            self.cycle_limiter.trace = buffer
        if self.mitigation is not None:
            self.mitigation.trace = buffer
        return self

    def _on_output_transmit(self, packet) -> None:
        # "Opkts" on the output interface — the paper's measured quantity.
        self.delivered.increment()
        self.latency.observe(packet)
        trace = self.trace
        if trace is not None:
            trace.packet_deliver(self.nic_out.name, packet)
        # The packet has left the router: nothing downstream holds a
        # reference (the phantom destination host does not exist), so it
        # goes back to the freelist for the generator to reuse.
        pool = self.packet_pool
        if pool.enabled:
            pool.release(packet)

    def _on_input_transmit(self, packet) -> None:
        # Traffic routed back out the input interface (none in the
        # standard experiments, but possible with source-net destinations)
        # also leaves the router for good here.
        pool = self.packet_pool
        if pool.enabled:
            pool.release(packet)

    def run_for(self, duration_ns: int) -> None:
        self.sim.run_for(duration_ns)

    # ------------------------------------------------------------------
    # Teardown (mid-flight abort / end-of-trial reconciliation)
    # ------------------------------------------------------------------

    def teardown(self, drain_ns: int = 0) -> dict:
        """End the trial: disarm faults, optionally let in-flight work
        drain, recover every packet still parked in hardware rings or
        kernel queues, and reconcile the packet pool's books.

        The caller must stop its traffic generators first. After an
        optional fault-free drain window of ``drain_ns`` (which lets
        suspended handler/daemon frames finish the packets they hold),
        the rings and queues are emptied and their packets released, so
        the pool's ``outstanding`` count should equal exactly the
        interior drops plus locally-delivered packets; the difference is
        reported as ``leaked``. Idempotent — the first report is cached.
        The simulation must not be resumed afterwards.
        """
        if self._teardown_report is not None:
            return self._teardown_report
        if self.faults is not None:
            self.faults.disarm()
        if drain_ns > 0:
            self.sim.run_for(drain_ns)

        pool = self.packet_pool
        recovered = []
        recovered.extend(self.nic_in.drain())
        recovered.extend(self.nic_out.drain())
        queues = [self.driver_in.ifqueue, self.driver_out.ifqueue]
        if self.ip_input is not None:
            queues.append(self.ip_input.ipintrq)
        if self.screen_queue is not None:
            queues.append(self.screen_queue)
        for queue in queues:
            recovered.extend(queue.drain())
        # Packets trapped inside suspended processing frames (a handler,
        # the netisr thread, screend) at the abort instant.
        for context in (self.driver_in, self.driver_out, self.ip_input, self.screend):
            if context is None:
                continue
            in_flight = context.in_flight
            if in_flight is not None:
                if isinstance(in_flight, list):
                    recovered.extend(in_flight)
                else:
                    recovered.append(in_flight)
                context.in_flight = None
        if pool.enabled:
            for packet in recovered:
                try:
                    pool.release(packet)
                except AttributeError:
                    pass  # foreign payload without pool bookkeeping (tests)

        interior_drops = self._interior_drop_count()
        retained = self.ip.local_delivered.value
        report = {
            "recovered": len(recovered),
            "interior_drops": interior_drops,
            "retained": retained,
            "outstanding": pool.outstanding,
            # Only meaningful with the pool enabled: a disabled pool
            # ignores releases, so its books cannot balance.
            "leaked": (
                pool.outstanding - interior_drops - retained
                if pool.enabled
                else None
            ),
        }
        self._teardown_report = report
        return report

    def _interior_drop_count(self) -> int:
        """Packets dropped *inside* the router — the points where the
        ownership protocol deliberately abandons pool packets to the GC.
        An explicit enumeration: substring-matching counter names would
        silently sweep in non-packet events (or miss new drop sites)."""
        total = (
            self.driver_in.ifqueue.drop_count
            + self.driver_out.ifqueue.drop_count
            + self.ip.no_route_drops.value
            + self.ip.arp_failure_drops.value
        )
        if self.ip.corrupt_drops is not None:
            total += self.ip.corrupt_drops.value
        if self.ip_input is not None:
            total += self.ip_input.ipintrq.drop_count
        if self.screen_queue is not None:
            total += self.screen_queue.drop_count
        if self.screend is not None:
            total += self.screend.rejected.value
        return total

    def __repr__(self) -> str:
        from ..core.variants import describe

        return "Router(%s)" % describe(self.config)
