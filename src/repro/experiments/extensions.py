"""Extension experiments (beyond the paper's own figures).

Each produces a :class:`~repro.experiments.figures.FigureResult` so the
same rendering, CSV and CLI machinery serves them. Ids are prefixed
``ext-`` to keep them visually distinct from the paper's figures.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core import variants
from ..sim.units import seconds
from ..workloads.generators import ConstantRateGenerator
from .endhost import EndHost, HOST_ADDR, SERVICE_PORT
from .engine import parallel_map
from .figures import FigureResult, _sweep
from .harness import (
    DEFAULT_DURATION_S,
    DEFAULT_RATE_GRID,
    DEFAULT_WARMUP_S,
    run_sweep,
    sweep_series,
)


def extension_rate_limiting(
    rates: Sequence[float] = DEFAULT_RATE_GRID,
    **trial_kwargs,
) -> FigureResult:
    """§5.1 interrupt-rate limiting alone vs unmodified vs full polling."""
    result = FigureResult(
        figure_id="ext-rate-limit",
        title="Interrupt-rate limiting alone (ipintrq feedback, §5.1)",
        xlabel="Input packet rate (pkts/sec)",
        ylabel="Output packet rate (pkts/sec)",
    )
    for label, config in (
        ("Unmodified", variants.unmodified()),
        ("Rate-limited input", variants.unmodified(input_feedback=True)),
        ("Polling (quota = 10)", variants.polling(quota=10)),
    ):
        result.series[label] = sweep_series(
            _sweep(config, rates, **trial_kwargs)
        )
    result.notes = (
        "The cheapest of the paper's fixes recovers most of the overload "
        "throughput; the full polling design still wins everywhere and "
        "additionally fixes latency, fairness and wasted work."
    )
    return result


def extension_high_ipl(
    rates: Sequence[float] = DEFAULT_RATE_GRID,
    **trial_kwargs,
) -> FigureResult:
    """§5.3's two approaches, throughput view."""
    result = FigureResult(
        figure_id="ext-high-ipl",
        title="Everything at high IPL vs polling thread (§5.3)",
        xlabel="Input packet rate (pkts/sec)",
        ylabel="Output packet rate (pkts/sec)",
    )
    for label, config in (
        ("Unmodified", variants.unmodified()),
        ("High IPL (quota = 10)", variants.high_ipl(quota=10)),
        ("Polling (quota = 10)", variants.polling(quota=10)),
    ):
        result.series[label] = sweep_series(
            _sweep(config, rates, **trial_kwargs)
        )
    result.notes = (
        "Both anti-preemption approaches forward at capacity; they differ "
        "in what happens to user-level code (see benchmarks/test_high_ipl)."
    )
    return result


def _endhost_point(payload):
    """One end-host measurement; top-level so worker processes can run it."""
    config, host_kwargs, rate, duration_s, warmup_s = payload
    host = EndHost(config, **host_kwargs).start()
    ConstantRateGenerator(
        host.sim, host.nic, rate, dst=HOST_ADDR, dst_port=SERVICE_PORT
    ).start()
    host.run_for(seconds(warmup_s))
    before = host.requests_served
    host.run_for(seconds(duration_s))
    served = (host.requests_served - before) / duration_s
    return (float(rate), served)


def extension_endhost(
    rates: Sequence[float] = (1_000, 2_000, 3_000, 4_000, 6_000, 8_000, 10_000),
    duration_s: float = DEFAULT_DURATION_S,
    warmup_s: float = DEFAULT_WARMUP_S,
    seed: int = 0,
    jobs: Optional[int] = None,
    cache=False,
    cache_dir=None,
    timeout_s: Optional[float] = None,
    retries: int = 1,
    strict: bool = True,
) -> FigureResult:
    """Server goodput under request floods (end-system livelock).

    ``jobs`` fans the (kernel, rate) grid across worker processes; the
    end-host measurement is not a plain router trial, so it bypasses the
    TrialResult cache and the engine's retry machinery
    (``cache``/``cache_dir``/``timeout_s``/``retries``/``strict``
    accepted for CLI symmetry — a failed point raises).
    """
    result = FigureResult(
        figure_id="ext-endhost",
        title="RPC server goodput under receive overload",
        xlabel="Offered request rate (req/sec)",
        ylabel="Requests served (req/sec)",
    )
    kernels = (
        ("Unmodified", variants.unmodified(), {}),
        ("Polling (quota = 10)", variants.polling(quota=10), {}),
        (
            "Polling + cycle limit 50%",
            variants.polling(quota=10, cycle_limit=0.5),
            {},
        ),
        (
            "Polling + socket feedback",
            variants.polling(quota=10),
            {"socket_feedback": True},
        ),
    )
    payloads = [
        (config, host_kwargs, rate, duration_s, warmup_s)
        for _, config, host_kwargs in kernels
        for rate in rates
    ]
    points = parallel_map(_endhost_point, payloads, jobs=jobs)
    for row, (label, _, _) in enumerate(kernels):
        result.series[label] = points[row * len(rates) : (row + 1) * len(rates)]
    result.notes = (
        "Useful throughput for an end-system is delivery to the application "
        "(§3). Kernel-side fixes alone move the drop point without feeding "
        "the app; the cycle limit and socket-queue feedback do."
    )
    return result


#: Registry merged into the CLI next to the paper's figures.
EXTENSION_EXPERIMENTS = {
    "ext-rate-limit": extension_rate_limiting,
    "ext-high-ipl": extension_high_ipl,
    "ext-endhost": extension_endhost,
}
