"""End-system topology: receive livelock on a server, not a router.

The paper's motivating applications include network file service —
"servers for protocols such as NFS are commonly built from UNIX
systems" (§2) — and defines useful throughput as delivery "to their
ultimate consumers", which for an end-system is "an application running
on the receiving host" (§3).

:class:`EndHost` builds that scenario: one interface, arriving UDP
datagrams delivered locally through the UDP layer to a user-mode
consumer process (an RPC-server stand-in doing fixed work per request).
Goodput is requests *completed by the application*, so kernel-level
fixes that merely move the drop point don't score; only fixes that let
the application run do (the §7 cycle limit, primarily).
"""

from __future__ import annotations

from typing import Optional

from ..apps.sink import PacketSink
from ..core.cyclelimit import CycleLimiter
from ..core.feedback import QueueStateFeedback
from ..core.polling import PollingSystem
from ..core.quota import PollQuota
from ..drivers.bsd import BsdDriver, ClassicIPInput
from ..drivers.clocked import ClockedPollingDriver
from ..drivers.highipl import HighIplDriver
from ..drivers.polled import PolledDriver
from ..hw.nic import NIC
from ..kernel.config import KernelConfig
from ..kernel.kernel import Kernel
from ..net.arp import ArpTable
from ..net.ip import IPLayer
from ..net.routing import RoutingTable
from ..net.udp import UdpLayer
from ..net.addresses import parse_ip
from ..sim.probes import ProbeRegistry
from ..sim.simulator import Simulator

#: Addressing for the end-host scenario.
HOST_IF = "eth0"
HOST_ADDR = "10.1.0.1"
CLIENT_NET = "10.1.0.0/16"
SERVICE_PORT = 2049  # the NFS port, fittingly

#: Default user-mode work per served request (≈ 80 µs at 150 MHz) —
#: a cheap RPC handler; the kernel path still dominates per packet.
DEFAULT_SERVICE_CYCLES = 12_000


class EndHost:
    """A receiving end-system with a user-mode consumer application."""

    def __init__(
        self,
        config: KernelConfig,
        sim: Optional[Simulator] = None,
        service_cycles: int = DEFAULT_SERVICE_CYCLES,
        socket_queue_limit: int = 64,
        socket_feedback: bool = False,
    ) -> None:
        """``socket_feedback`` applies §6.6.1's queue-state feedback to
        the *socket* queue ("the same queue-state feedback technique
        could be applied to other queues in the system") — requires the
        polling kernel."""
        config.validate()
        if config.screend_enabled:
            raise ValueError("screend is a router-scenario application")
        if socket_feedback and not (
            config.use_polling and not config.emulate_unmodified
        ):
            raise ValueError("socket_feedback requires the polling kernel")
        self.config = config
        self.sim = sim if sim is not None else Simulator()
        self.probes = ProbeRegistry(self.sim)
        self.kernel = Kernel(self.sim, config, self.probes)

        self.nic = NIC(
            self.sim,
            HOST_IF,
            self.probes,
            rx_ring_capacity=config.rx_ring_capacity,
            tx_ring_capacity=config.tx_ring_capacity,
        )
        self.routing = RoutingTable()
        self.routing.add(CLIENT_NET, HOST_IF)
        self.arp = ArpTable()
        self.ip = IPLayer(self.kernel, self.routing, self.arp)
        self.udp = UdpLayer(self.sim, self.probes)
        self.ip.set_udp(self.udp, [parse_ip(HOST_ADDR)])

        watermarks = {}
        if socket_feedback:
            watermarks = dict(
                high_watermark=max(1, int(socket_queue_limit * 0.75)),
                low_watermark=int(socket_queue_limit * 0.25),
            )
        self.socket = self.udp.bind(
            SERVICE_PORT, queue_limit=socket_queue_limit, **watermarks
        )
        self.server = PacketSink(
            self.kernel, self.socket, per_packet_cycles=service_cycles
        )

        self.polling: Optional[PollingSystem] = None
        self.cycle_limiter: Optional[CycleLimiter] = None
        self.ip_input: Optional[ClassicIPInput] = None
        self.socket_feedback: Optional[QueueStateFeedback] = None
        self._build_driver()
        if socket_feedback:
            self.socket_feedback = QueueStateFeedback(
                self.kernel,
                self.polling,
                self.socket.queue,
                timeout_ticks=config.feedback_timeout_ticks,
            )
        self.ip.register_output(HOST_IF, self.driver.output)
        self._started = False

    # ------------------------------------------------------------------

    def _build_driver(self) -> None:
        config = self.config
        if config.use_clocked_polling:
            self.driver = ClockedPollingDriver(
                self.kernel,
                self.nic,
                self.ip,
                HOST_IF,
                poll_interval_ns=config.clocked_poll_interval_ns,
                quota=config.poll_quota,
            )
        elif config.use_high_ipl:
            self.driver = HighIplDriver(
                self.kernel, self.nic, self.ip, HOST_IF, quota=config.poll_quota
            )
        elif config.use_polling and not config.emulate_unmodified:
            if config.cycle_limit_fraction is not None:
                self.cycle_limiter = CycleLimiter(
                    self.kernel, config.cycle_limit_fraction
                )
            self.polling = PollingSystem(
                self.kernel,
                quota=PollQuota.of(config.poll_quota),
                cycle_limiter=self.cycle_limiter,
            )
            self.driver = PolledDriver(self.kernel, self.nic, self.ip, HOST_IF)
            self.polling.register(self.driver)
        else:
            self.ip_input = ClassicIPInput(self.kernel, self.ip)
            extra = (
                config.costs.modified_compat_overhead
                if config.emulate_unmodified
                else 0
            )
            self.driver = BsdDriver(
                self.kernel,
                self.nic,
                self.ip,
                self.ip_input,
                HOST_IF,
                extra_rx_cycles=extra,
            )

    # ------------------------------------------------------------------

    def start(self) -> "EndHost":
        if self._started:
            raise RuntimeError("end host already started")
        self._started = True
        self.kernel.start()
        self.driver.attach()
        if self.ip_input is not None:
            self.ip_input.attach()
        if self.polling is not None:
            self.polling.start()
        self.server.start()
        return self

    def run_for(self, duration_ns: int) -> None:
        self.sim.run_for(duration_ns)

    @property
    def requests_served(self) -> int:
        """Useful throughput: requests completed by the application."""
        return self.server.consumed.snapshot()

    def __repr__(self) -> str:
        from ..core.variants import describe

        return "EndHost(%s)" % describe(self.config)
