"""Sweep engine: parallel, cached execution of independent trials.

Every figure in the reproduction is a sweep of independent measurements —
the paper's methodology (§6.1) builds one fresh router per operating
point — so trials are embarrassingly parallel, and because each trial is
deterministic given ``(config, rate, seed, workload, ...)`` its result is
perfectly cacheable. This module exploits both:

* :func:`run_trials` fans trial specs out across a persistent pool of
  **warm workers** with order-preserving results: the returned list
  matches the spec order and is bit-identical to a serial run. The pool
  outlives individual sweeps (one figure's series, or several figures in
  one process, reuse the same workers), each worker's initializer
  pre-imports the simulation stack and runs one throwaway micro-trial so
  the first real trial pays no import cost, specs are dispatched in
  cost-balanced **chunks** (see
  :func:`repro.experiments.harness.trial_cost_estimate`) to amortize
  submission overhead without letting one slow trial straggle, and
  results return as compact :mod:`~repro.experiments.wire` blobs instead
  of pickled dataclasses;
* a content-addressed on-disk cache keyed by a SHA-256 fingerprint of
  the full :class:`~repro.kernel.config.KernelConfig` (including the
  cost model), the trial kwargs, and :data:`CACHE_VERSION`. Bump the
  version tag whenever simulation semantics change — every old entry
  then misses and the cache re-fills. Entries live under
  ``$REPRO_CACHE_DIR`` (or ``$XDG_CACHE_HOME``/``~/.cache`` +
  ``repro-livelock/``) as one JSON file per trial;
* :func:`parallel_map` is the generic order-preserving fan-out for
  experiments whose unit of work is not a plain trial (e.g. the
  end-host extension); it shares the warm pool.

Workers are started with the ``spawn`` context by default (override via
``$REPRO_MP_START``): fork is unsafe in threaded parents, stops being
the Linux default in newer CPython, and the warm pool exists precisely
to amortize spawn's higher startup cost to zero.

``run_sweep`` here is the real implementation behind
:func:`repro.experiments.harness.run_sweep`; the harness delegates so
existing callers pick up ``jobs=``/``cache=`` without code changes.
"""

from __future__ import annotations

import atexit
import hashlib
import json
import multiprocessing
import os
import pickle
import tempfile
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..kernel.config import KernelConfig
from .spec import TrialSpec, spec_tuple

#: Bump whenever trial semantics, the cost model defaults, or the
#: TrialResult schema change: the fingerprint embeds this tag, so a bump
#: invalidates every existing cache entry without touching the files.
#: "2": TrialResult gained watchdog/faults fields; trials accept
#: fault_plan/watchdog/sanitize.
#: "3": TrialResult gained the timeline field; trials accept
#: trace/trace_capacity; specs may be TrialSpec instances.
#: "4": TrialResult gained the slo field; trials accept
#: attack_rate_pps; adversarial workloads and mitigation configs exist.
CACHE_VERSION = "4"

#: Environment variable overriding the cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable overriding the multiprocessing start method for
#: the warm worker pool ("spawn" default; "fork"/"forkserver" accepted).
MP_START_ENV = "REPRO_MP_START"

#: Target number of dispatch chunks per worker. >1 keeps workers busy
#: when the cost estimate is off (a finished worker picks up another
#: chunk); higher values shrink chunks toward per-spec submission and
#: give the amortization back.
CHUNKS_PER_WORKER = 2

#: The engine's internal trial-spec form: (kernel config, input rate,
#: run_trial keyword args). Public entry points also accept
#: :class:`~repro.experiments.spec.TrialSpec` instances and normalize
#: them to this tuple via :func:`~repro.experiments.spec.spec_tuple`.
SpecTuple = Tuple[KernelConfig, float, Dict[str, Any]]


@dataclass
class TrialFailure:
    """Record of a trial that could not produce a result.

    Non-strict sweeps degrade gracefully: a crashed worker, a hung
    trial, or a trial that raised ends up as one of these in the result
    list (position-for-position with its spec) instead of aborting the
    whole sweep. ``kind`` is ``"timeout"`` (exceeded the per-trial
    wall-clock limit), ``"crash"`` (the worker process died), or
    ``"error"`` (the trial raised — deterministic, never retried).
    """

    variant: str
    target_rate_pps: float
    kind: str
    error: str
    attempts: int

    @property
    def failed(self) -> bool:
        return True


class SweepError(RuntimeError):
    """A strict sweep aborted on an unrecoverable trial failure."""

    def __init__(self, failure: TrialFailure) -> None:
        super().__init__(
            "trial %s @ %.0f pps failed (%s after %d attempt(s)): %s"
            % (
                failure.variant,
                failure.target_rate_pps,
                failure.kind,
                failure.attempts,
                failure.error,
            )
        )
        self.failure = failure


def default_cache_dir() -> Path:
    """Resolve the cache root: ``$REPRO_CACHE_DIR`` wins, then
    ``$XDG_CACHE_HOME/repro-livelock``, then ``~/.cache/repro-livelock``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-livelock"


def trial_fingerprint(
    config, rate_pps: Optional[float] = None, kwargs: Optional[Dict[str, Any]] = None
) -> str:
    """Content hash addressing one trial's cached result.

    Covers everything the result depends on: the complete config
    (``asdict`` recurses into the cost model), the rate, every trial
    keyword, and the code/schema version tag. ``sort_keys`` makes the
    JSON canonical; ``default=repr`` keeps hashing total for exotic
    values (same value → same repr → same key).

    Accepts either the legacy ``(config, rate_pps, kwargs)`` arguments
    or a single :class:`~repro.experiments.spec.TrialSpec` — a spec
    fingerprints identically to the kwargs call it stands for.
    """
    if isinstance(config, TrialSpec):
        if rate_pps is not None or kwargs is not None:
            raise TypeError(
                "trial_fingerprint(spec) takes no further arguments"
            )
        config, rate_pps, kwargs = config.as_tuple()
    if rate_pps is None:
        raise TypeError("trial_fingerprint(config, rate_pps, kwargs)")
    config_payload = asdict(config)
    # Config fields added after CACHE_VERSION "4" are omitted at their
    # default value, so every pre-existing fingerprint (which never saw
    # the field) is preserved without a version bump.
    if not config_payload.get("use_hybrid"):
        config_payload.pop("use_hybrid", None)
    payload = {
        "version": CACHE_VERSION,
        "config": config_payload,
        "rate_pps": rate_pps,
        "kwargs": _canonical_kwargs(kwargs if kwargs is not None else {}),
    }
    blob = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _canonical_kwargs(kwargs: Dict[str, Any]) -> Dict[str, Any]:
    """Kwargs with the fault plan in canonical dict form, so a canned-plan
    name and the equivalent FaultPlan object address the same entry.

    The ``backend`` kwarg is stripped entirely: the pure and fast cores
    are bit-identical by contract (enforced by the backend parity tests
    and ``scripts/bench_fastcore.py``), so a cached result is valid for
    either and the same trial must hash to the same entry under both —
    ``TrialResult.backend`` records which core actually computed it.
    """
    plan = kwargs.get("fault_plan")
    machine = kwargs.get("machine")
    if plan is None and machine is None and "backend" not in kwargs:
        return kwargs
    kwargs = dict(kwargs)
    kwargs.pop("backend", None)
    if plan is not None:
        from ..faults import canned_plan

        if isinstance(plan, str):
            plan = canned_plan(plan)
        kwargs["fault_plan"] = plan.to_dict()
    if machine is not None and not isinstance(machine, dict):
        # MachineSpec → canonical dict, so the object and its dict form
        # address the same cache entry.
        kwargs["machine"] = machine.to_dict()
    return kwargs


class ResultCache:
    """Content-addressed store of TrialResults, one JSON file per trial.

    Malformed, truncated, or version-skewed entries read as misses, so a
    cache directory can always be deleted or shared safely. Writes are
    atomic (temp file + rename) so parallel workers never expose a
    half-written entry.
    """

    def __init__(self, root: Optional[Path] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except FileExistsError:
            raise NotADirectoryError(
                "cache path %s exists and is not a directory" % self.root
            ) from None
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def path(self, key: str) -> Path:
        return self.root / (key + ".json")

    def get(self, key: str):
        from .results import trial_from_dict

        path = self.path(key)
        try:
            handle = open(path, "r", encoding="utf-8")
        except OSError:
            self.misses += 1
            return None
        try:
            with handle:
                entry = json.load(handle)
            if entry.get("version") != CACHE_VERSION:
                raise ValueError("cache version skew")
            result = trial_from_dict(entry["result"])
        except Exception:
            # Corrupt, truncated, or stale-schema entry: quarantine it so
            # it cannot shadow the recomputed result (the recompute's
            # atomic put will replace it anyway, but a crash between miss
            # and put must not leave the bad file behind).
            self.misses += 1
            self.evictions += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        self.hits += 1
        return result

    def put(self, key: str, result) -> None:
        from .results import trial_to_dict

        entry = {"version": CACHE_VERSION, "result": trial_to_dict(result)}
        blob = json.dumps(entry, sort_keys=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(self.root), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(blob)
            os.replace(tmp_name, self.path(key))
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise


def _resolve_cache(cache, cache_dir) -> Optional[ResultCache]:
    """``cache`` may be a ResultCache, True (open the default/-given dir),
    or False/None (caching off)."""
    if isinstance(cache, ResultCache):
        return cache
    if cache:
        return ResultCache(Path(cache_dir) if cache_dir is not None else None)
    return None


def _run_spec(spec: SpecTuple):
    """Top-level worker so ProcessPoolExecutor can pickle it."""
    from .harness import _run_trial_impl

    config, rate_pps, kwargs = spec
    chaos = kwargs.get("_chaos")
    if chaos is not None:
        kwargs = {k: v for k, v in kwargs.items() if k != "_chaos"}
        _apply_chaos(chaos)
    return _run_trial_impl(config, rate_pps, **kwargs)


def _apply_chaos(chaos: Dict[str, Any]) -> None:
    """Engine-level failure injection, for testing the engine itself
    (the simulator has :mod:`repro.faults`; the worker pool needs its
    own seam, reached via a reserved ``_chaos`` trial kwarg).

    ``crash_flag``: hard-kill the worker unless the flag file exists —
    the file is created first, so exactly the first attempt dies and a
    retry succeeds. ``hang_s``: sleep that long before running (trips
    the per-trial timeout). ``raise``: raise a deterministic error.
    """
    flag = chaos.get("crash_flag")
    if flag is not None and not os.path.exists(flag):
        open(flag, "w").close()
        os._exit(1)
    hang = chaos.get("hang_s")
    if hang:
        time.sleep(hang)
    if chaos.get("raise"):
        raise RuntimeError("chaos: injected trial error")


# ----------------------------------------------------------------------
# Warm worker pool
# ----------------------------------------------------------------------

_WARM_POOL: Optional[ProcessPoolExecutor] = None
_WARM_WORKERS: int = 0


def _mp_context():
    return multiprocessing.get_context(os.environ.get(MP_START_ENV, "spawn"))


def _warm_init() -> None:
    """Worker initializer: pre-import the simulation stack and run one
    throwaway micro-trial, so the worker's first real trial pays neither
    import cost nor first-call setup (lazy imports, topology template
    construction, bytecode warmup). Best-effort: a failure here just
    means a cold first trial."""
    try:
        from ..core import variants
        from .harness import _run_trial_impl

        _run_trial_impl(
            variants.unmodified(), 0.0, duration_s=0.001, warmup_s=0.0
        )
    except Exception:  # pragma: no cover - warmup is advisory
        pass


def warm_pool(jobs: int) -> ProcessPoolExecutor:
    """The persistent worker pool, created on first use.

    The pool is sized by the *requested* job count and survives across
    sweeps — that is the point: with spawn workers, pool boot plus
    per-worker interpreter/import startup costs ~1 s, which the old
    pool-per-sweep design paid for every figure series. Asking for a
    different size tears the old pool down first (callers in one run
    overwhelmingly use one ``jobs`` value).
    """
    global _WARM_POOL, _WARM_WORKERS
    workers = max(1, jobs)
    if _WARM_POOL is not None and _WARM_WORKERS != workers:
        shutdown_warm_pool()
    if _WARM_POOL is None:
        _WARM_POOL = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=_mp_context(),
            initializer=_warm_init,
        )
        _WARM_WORKERS = workers
    return _WARM_POOL


def _discard_warm_pool() -> None:
    """Drop a pool that can no longer be trusted (crashed or hung
    worker): terminate its processes and forget it, so the next round
    boots a fresh one."""
    global _WARM_POOL, _WARM_WORKERS
    pool = _WARM_POOL
    _WARM_POOL = None
    _WARM_WORKERS = 0
    if pool is not None:
        _abandon_executor(pool)


def shutdown_warm_pool(wait: bool = True) -> None:
    """Cleanly stop the warm pool (tests, interpreter exit)."""
    global _WARM_POOL, _WARM_WORKERS
    pool = _WARM_POOL
    _WARM_POOL = None
    _WARM_WORKERS = 0
    if pool is not None:
        pool.shutdown(wait=wait)


atexit.register(shutdown_warm_pool, wait=False)


def parallel_map(
    fn: Callable[[Any], Any],
    payloads: Sequence[Any],
    jobs: Optional[int] = None,
) -> List[Any]:
    """Order-preserving map, fanned across the warm worker pool.

    ``jobs`` of None/0/1 runs in-process (no executor overhead); ``fn``
    and every payload must be picklable when ``jobs > 1``. Results come
    back in payload order regardless of completion order, which is what
    makes parallel sweeps reproduce serial output exactly.
    """
    payloads = list(payloads)
    if jobs is None or jobs <= 1 or len(payloads) <= 1:
        return [fn(payload) for payload in payloads]
    pool = warm_pool(jobs)
    try:
        return list(pool.map(fn, payloads))
    except BrokenProcessPool:
        _discard_warm_pool()
        raise


def _spec_failure(spec, kind: str, error: str, attempts: int):
    from ..core.variants import describe

    config, rate_pps, _ = spec_tuple(spec)
    return TrialFailure(
        variant=describe(config),
        target_rate_pps=rate_pps,
        kind=kind,
        error=error,
        attempts=attempts,
    )


def _abandon_executor(executor: ProcessPoolExecutor) -> None:
    """Tear a pool down without waiting: a hung or crashed worker must
    not block the sweep's forward progress."""
    for process in list(getattr(executor, "_processes", {}).values()):
        try:
            process.terminate()
        except Exception:
            pass
    try:
        executor.shutdown(wait=False, cancel_futures=True)
    except TypeError:  # pragma: no cover - pre-3.9 signature
        executor.shutdown(wait=False)


def _run_chunk(specs: List[SpecTuple]) -> List[Tuple[str, Any, Optional[str]]]:
    """Top-level chunk worker: run each spec in order, return tagged,
    wire-packed outcomes.

    One worker round-trip carries many trials (submission overhead is
    amortized), and a trial that raises comes back as data — tagged
    ``("E", pickled_exception, repr)`` — instead of poisoning its
    chunk-mates' finished results. Successes travel as
    ``("R", wire_blob, None)``.
    """
    from .wire import pack_trial

    out: List[Tuple[str, Any, Optional[str]]] = []
    for spec in specs:
        try:
            result = _run_spec(spec)
        except Exception as exc:
            try:
                blob = pickle.dumps(exc)
            except Exception:
                blob = None
            out.append(("E", blob, repr(exc)))
        else:
            out.append(("R", pack_trial(result), None))
    return out


def _decode_outcome(tagged):
    """(TrialResult, None) or (None, exception) from a worker tag."""
    from .wire import unpack_trial

    tag, blob, note = tagged
    if tag == "R":
        return unpack_trial(blob), None
    exc = None
    if blob is not None:
        try:
            exc = pickle.loads(blob)
        except Exception:
            exc = None
    if exc is None:
        # The original exception would not round-trip; re-raise its face.
        exc = RuntimeError(note)
    return None, exc


def _build_chunks(
    indexed_specs: List[Tuple[int, SpecTuple]],
    workers: int,
    timeout_s: Optional[float],
) -> List[List[Tuple[int, SpecTuple]]]:
    """Cut the spec list into contiguous, cost-balanced chunks.

    With a per-trial ``timeout_s`` every chunk is a single spec, so
    ``future.result(timeout=...)`` keeps its exact per-trial meaning and
    a timeout is charged to precisely the trial that hung.
    """
    if timeout_s is not None:
        return [[pair] for pair in indexed_specs]
    from .harness import trial_cost_estimate

    target = max(1, min(len(indexed_specs), workers * CHUNKS_PER_WORKER))
    if target >= len(indexed_specs):
        return [[pair] for pair in indexed_specs]
    costs = [trial_cost_estimate(spec) for _, spec in indexed_specs]
    budget = sum(costs) / target
    chunks: List[List[Tuple[int, SpecTuple]]] = []
    current: List[Tuple[int, SpecTuple]] = []
    acc = 0.0
    for pair, cost in zip(indexed_specs, costs):
        current.append(pair)
        acc += cost
        if acc >= budget and len(chunks) < target - 1:
            chunks.append(current)
            current = []
            acc = 0.0
    if current:
        chunks.append(current)
    return chunks


def _cancel_unstarted(submitted, start: int) -> None:
    """Best-effort cancel of chunks not yet picked up by a worker, so a
    strict abort does not leave queued work running in the warm pool."""
    for _, future in submitted[start:]:
        future.cancel()


def _run_resilient(
    indexed_specs: List[Tuple[int, SpecTuple]],
    jobs: Optional[int],
    timeout_s: Optional[float],
    retries: int,
    retry_backoff_s: float,
    strict: bool,
) -> Dict[int, Any]:
    """Run specs across the warm pool, surviving crashes and hangs.

    Returns {index: TrialResult | TrialFailure}. A worker crash poisons
    the whole pool and a hung worker never frees its slot, so recovery
    is pool-granular: salvage every chunk that already finished, charge
    one failed attempt to each spec of the chunk being waited on,
    discard the pool, and resubmit the remainder to a fresh one (after
    a linear backoff). Retry rounds use single-spec chunks so a repeat
    failure is attributed to exactly the spec that caused it. Trials
    that *raise* are deterministic and are never retried.
    """
    max_attempts = 1 + max(0, retries)
    outcomes: Dict[int, Any] = {}
    attempts = {index: 0 for index, _ in indexed_specs}
    pending = list(indexed_specs)
    round_number = 0
    while pending:
        if round_number > 0 and retry_backoff_s > 0:
            time.sleep(retry_backoff_s * round_number)
        workers = max(1, jobs or 1)
        if round_number == 0:
            chunks = _build_chunks(pending, workers, timeout_s)
        else:
            chunks = [[pair] for pair in pending]
        round_number += 1
        executor = warm_pool(workers)
        submitted = [
            (chunk, executor.submit(_run_chunk, [spec for _, spec in chunk]))
            for chunk in chunks
        ]
        pending = []
        for position, (chunk, future) in enumerate(submitted):
            try:
                payload = future.result(timeout=timeout_s)
            except FutureTimeoutError:
                kind = "timeout"
                error = "exceeded the %.1fs per-trial wall-clock limit" % (
                    timeout_s or 0.0
                )
            except BrokenProcessPool as exc:
                kind = "crash"
                error = "worker process died: %r" % exc
            except Exception as exc:
                # Submission-layer failure (e.g. an unpicklable spec):
                # deterministic, so a retry would fail identically.
                for index, spec in chunk:
                    attempts[index] += 1
                    if strict:
                        _cancel_unstarted(submitted, position + 1)
                        raise
                    outcomes[index] = _spec_failure(
                        spec, "error", repr(exc), attempts[index]
                    )
                continue
            else:
                for (index, spec), tagged in zip(chunk, payload):
                    attempts[index] += 1
                    result, exc = _decode_outcome(tagged)
                    if exc is None:
                        outcomes[index] = result
                        continue
                    # The trial itself raised. It is deterministic, so a
                    # retry would fail identically — record (or raise)
                    # now. The pool is healthy; keep it warm.
                    if strict:
                        _cancel_unstarted(submitted, position + 1)
                        raise exc
                    outcomes[index] = _spec_failure(
                        spec, "error", repr(exc), attempts[index]
                    )
                continue
            # Timeout or crash: the pool is no longer trustworthy.
            for index, spec in chunk:
                attempts[index] += 1
                if attempts[index] >= max_attempts:
                    failure = _spec_failure(spec, kind, error, attempts[index])
                    if strict:
                        _discard_warm_pool()
                        raise SweepError(failure)
                    outcomes[index] = failure
                else:
                    pending.append((index, spec))
            # Salvage completed chunks; everything else re-runs in a
            # fresh pool with no attempt charged (it was not at fault).
            for other_chunk, other_future in submitted[position + 1 :]:
                decoded = None
                if other_future.done():
                    try:
                        decoded = [
                            _decode_outcome(t) for t in other_future.result()
                        ]
                    except Exception:
                        decoded = None
                if decoded is None:
                    pending.extend(other_chunk)
                    continue
                for (index, spec), (result, exc) in zip(other_chunk, decoded):
                    attempts[index] += 1
                    if exc is None:
                        outcomes[index] = result
                    elif strict:
                        _discard_warm_pool()
                        raise exc
                    else:
                        outcomes[index] = _spec_failure(
                            spec, "error", repr(exc), attempts[index]
                        )
            _discard_warm_pool()
            break
        # A clean round leaves the pool warm for the next sweep.
    return outcomes


def run_trials(
    specs: Sequence,
    jobs: Optional[int] = None,
    cache=False,
    cache_dir=None,
    timeout_s: Optional[float] = None,
    retries: int = 1,
    retry_backoff_s: float = 0.25,
    strict: bool = True,
) -> List:
    """Run every trial spec, in parallel and/or from cache.

    Results are returned in spec order and are field-for-field identical
    whether they were computed serially, across ``jobs`` processes, or
    read back from the cache. Specs carrying a pre-built ``router``
    cannot cross a process boundary or be fingerprinted, so they always
    run serially and uncached.

    Resilience: ``timeout_s`` bounds each trial's wall-clock time (it
    forces pool execution, since an in-process trial cannot be
    interrupted); crashed or hung workers are retried up to ``retries``
    extra times with a linear ``retry_backoff_s`` delay. With
    ``strict=True`` (the library default) the first unrecoverable
    failure raises (:class:`SweepError`, or the trial's own exception);
    ``strict=False`` degrades gracefully, leaving a
    :class:`TrialFailure` in the result list at the failed spec's
    position.

    Specs may be :class:`~repro.experiments.spec.TrialSpec` instances,
    legacy ``(config, rate_pps, kwargs)`` tuples, or a mix; a spec and
    the tuple it stands for hit the same cache entry.
    """
    specs = [spec_tuple(spec) for spec in specs]
    store = _resolve_cache(cache, cache_dir)

    results: List[Any] = [None] * len(specs)
    pending: List[int] = []
    keys: Dict[int, str] = {}
    for index, (config, rate_pps, kwargs) in enumerate(specs):
        trace_val = kwargs.get("trace")
        if ("router" in kwargs and kwargs["router"] is not None) or (
            trace_val is not None and not isinstance(trace_val, bool)
        ):
            # Pre-built routers and caller-owned TraceBuffers cannot
            # cross a process boundary or be fingerprinted: run
            # in-process (uncached, no timeout enforcement).
            try:
                results[index] = _run_spec(specs[index])
            except Exception as exc:
                if strict:
                    raise
                results[index] = _spec_failure(
                    specs[index], "error", repr(exc), 1
                )
            continue
        if store is not None:
            key = trial_fingerprint(config, rate_pps, kwargs)
            keys[index] = key
            cached = store.get(key)
            if cached is not None:
                results[index] = cached
                continue
        pending.append(index)

    if timeout_s is None and (jobs is None or jobs <= 1):
        # Serial fast path: no pool, no pickling.
        for index in pending:
            try:
                results[index] = _run_spec(specs[index])
            except Exception as exc:
                if strict:
                    raise
                results[index] = _spec_failure(
                    specs[index], "error", repr(exc), 1
                )
            else:
                if store is not None:
                    store.put(keys[index], results[index])
        return results

    outcomes = _run_resilient(
        [(index, specs[index]) for index in pending],
        jobs=jobs,
        timeout_s=timeout_s,
        retries=retries,
        retry_backoff_s=retry_backoff_s,
        strict=strict,
    )
    for index, result in outcomes.items():
        results[index] = result
        if store is not None and not isinstance(result, TrialFailure):
            store.put(keys[index], result)
    return results


def run_sweep(
    config: KernelConfig,
    rates: Sequence[float],
    jobs: Optional[int] = None,
    cache=False,
    cache_dir=None,
    timeout_s: Optional[float] = None,
    retries: int = 1,
    retry_backoff_s: float = 0.25,
    strict: bool = True,
    **trial_kwargs,
) -> List:
    """One trial per input rate (fresh router each time), engine-backed.

    Raw trial keywords are deprecated in favour of constructing
    :class:`~repro.experiments.spec.TrialSpec` instances and calling
    :func:`run_trials` — same results, same cache fingerprints.
    """
    if trial_kwargs:
        warnings.warn(
            "run_sweep(config, rates, **trial_kwargs) with raw trial "
            "keywords is deprecated; build TrialSpec instances "
            "(TrialSpec.from_kwargs(config, rate, **kw)) and call "
            "run_trials(specs) instead",
            DeprecationWarning,
            stacklevel=2,
        )
    specs: List[Any] = []
    for rate in rates:
        kwargs = dict(trial_kwargs)
        try:
            # The typed form validates eagerly; fingerprints match the
            # tuple form exactly (from_kwargs keeps the explicit set).
            specs.append(TrialSpec.from_kwargs(config, rate, **kwargs))
        except TypeError:
            # Engine-reserved kwargs (router, _chaos) are not spec
            # fields; fall through to the raw tuple form.
            specs.append((config, rate, kwargs))
    return run_trials(
        specs,
        jobs=jobs,
        cache=cache,
        cache_dir=cache_dir,
        timeout_s=timeout_s,
        retries=retries,
        retry_backoff_s=retry_backoff_s,
        strict=strict,
    )
