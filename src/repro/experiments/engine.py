"""Sweep engine: parallel, cached execution of independent trials.

Every figure in the reproduction is a sweep of independent measurements —
the paper's methodology (§6.1) builds one fresh router per operating
point — so trials are embarrassingly parallel, and because each trial is
deterministic given ``(config, rate, seed, workload, ...)`` its result is
perfectly cacheable. This module exploits both:

* :func:`run_trials` fans trial specs out across a
  ``ProcessPoolExecutor`` (``jobs`` worker processes) with
  order-preserving results: the returned list matches the spec order and
  is bit-identical to a serial run;
* a content-addressed on-disk cache keyed by a SHA-256 fingerprint of
  the full :class:`~repro.kernel.config.KernelConfig` (including the
  cost model), the trial kwargs, and :data:`CACHE_VERSION`. Bump the
  version tag whenever simulation semantics change — every old entry
  then misses and the cache re-fills. Entries live under
  ``$REPRO_CACHE_DIR`` (or ``$XDG_CACHE_HOME``/``~/.cache`` +
  ``repro-livelock/``) as one JSON file per trial;
* :func:`parallel_map` is the generic order-preserving fan-out for
  experiments whose unit of work is not a plain trial (e.g. the
  end-host extension).

``run_sweep`` here is the real implementation behind
:func:`repro.experiments.harness.run_sweep`; the harness delegates so
existing callers pick up ``jobs=``/``cache=`` without code changes.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..kernel.config import KernelConfig

#: Bump whenever trial semantics, the cost model defaults, or the
#: TrialResult schema change: the fingerprint embeds this tag, so a bump
#: invalidates every existing cache entry without touching the files.
CACHE_VERSION = "1"

#: Environment variable overriding the cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: A trial spec: (kernel config, input rate, run_trial keyword args).
TrialSpec = Tuple[KernelConfig, float, Dict[str, Any]]


def default_cache_dir() -> Path:
    """Resolve the cache root: ``$REPRO_CACHE_DIR`` wins, then
    ``$XDG_CACHE_HOME/repro-livelock``, then ``~/.cache/repro-livelock``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-livelock"


def trial_fingerprint(
    config: KernelConfig, rate_pps: float, kwargs: Dict[str, Any]
) -> str:
    """Content hash addressing one trial's cached result.

    Covers everything the result depends on: the complete config
    (``asdict`` recurses into the cost model), the rate, every trial
    keyword, and the code/schema version tag. ``sort_keys`` makes the
    JSON canonical; ``default=repr`` keeps hashing total for exotic
    values (same value → same repr → same key).
    """
    payload = {
        "version": CACHE_VERSION,
        "config": asdict(config),
        "rate_pps": rate_pps,
        "kwargs": kwargs,
    }
    blob = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """Content-addressed store of TrialResults, one JSON file per trial.

    Malformed, truncated, or version-skewed entries read as misses, so a
    cache directory can always be deleted or shared safely. Writes are
    atomic (temp file + rename) so parallel workers never expose a
    half-written entry.
    """

    def __init__(self, root: Optional[Path] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except FileExistsError:
            raise NotADirectoryError(
                "cache path %s exists and is not a directory" % self.root
            ) from None
        self.hits = 0
        self.misses = 0

    def path(self, key: str) -> Path:
        return self.root / (key + ".json")

    def get(self, key: str):
        from .results import trial_from_dict

        try:
            with open(self.path(key), "r", encoding="utf-8") as handle:
                entry = json.load(handle)
            if entry.get("version") != CACHE_VERSION:
                raise ValueError("cache version skew")
            result = trial_from_dict(entry["result"])
        except Exception:
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result) -> None:
        from .results import trial_to_dict

        entry = {"version": CACHE_VERSION, "result": trial_to_dict(result)}
        blob = json.dumps(entry, sort_keys=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(self.root), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(blob)
            os.replace(tmp_name, self.path(key))
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise


def _resolve_cache(cache, cache_dir) -> Optional[ResultCache]:
    """``cache`` may be a ResultCache, True (open the default/-given dir),
    or False/None (caching off)."""
    if isinstance(cache, ResultCache):
        return cache
    if cache:
        return ResultCache(Path(cache_dir) if cache_dir is not None else None)
    return None


def _run_spec(spec: TrialSpec):
    """Top-level worker so ProcessPoolExecutor can pickle it."""
    from .harness import run_trial

    config, rate_pps, kwargs = spec
    return run_trial(config, rate_pps, **kwargs)


def parallel_map(
    fn: Callable[[Any], Any],
    payloads: Sequence[Any],
    jobs: Optional[int] = None,
) -> List[Any]:
    """Order-preserving map, fanned across ``jobs`` worker processes.

    ``jobs`` of None/0/1 runs in-process (no executor overhead); ``fn``
    and every payload must be picklable when ``jobs > 1``. Results come
    back in payload order regardless of completion order, which is what
    makes parallel sweeps reproduce serial output exactly.
    """
    payloads = list(payloads)
    if jobs is None or jobs <= 1 or len(payloads) <= 1:
        return [fn(payload) for payload in payloads]
    workers = min(jobs, len(payloads))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, payloads))


def run_trials(
    specs: Sequence[TrialSpec],
    jobs: Optional[int] = None,
    cache=False,
    cache_dir=None,
) -> List:
    """Run every trial spec, in parallel and/or from cache.

    Results are returned in spec order and are field-for-field identical
    whether they were computed serially, across ``jobs`` processes, or
    read back from the cache. Specs carrying a pre-built ``router``
    cannot cross a process boundary or be fingerprinted, so they always
    run serially and uncached.
    """
    specs = list(specs)
    store = _resolve_cache(cache, cache_dir)

    results: List[Any] = [None] * len(specs)
    pending: List[int] = []
    keys: Dict[int, str] = {}
    for index, (config, rate_pps, kwargs) in enumerate(specs):
        if "router" in kwargs and kwargs["router"] is not None:
            results[index] = _run_spec(specs[index])
            continue
        if store is not None:
            key = trial_fingerprint(config, rate_pps, kwargs)
            keys[index] = key
            cached = store.get(key)
            if cached is not None:
                results[index] = cached
                continue
        pending.append(index)

    fresh = parallel_map(_run_spec, [specs[i] for i in pending], jobs=jobs)
    for index, result in zip(pending, fresh):
        results[index] = result
        if store is not None:
            store.put(keys[index], result)
    return results


def run_sweep(
    config: KernelConfig,
    rates: Sequence[float],
    jobs: Optional[int] = None,
    cache=False,
    cache_dir=None,
    **trial_kwargs,
) -> List:
    """One trial per input rate (fresh router each time), engine-backed."""
    specs = [(config, rate, dict(trial_kwargs)) for rate in rates]
    return run_trials(specs, jobs=jobs, cache=cache, cache_dir=cache_dir)
