"""Multi-input router: fairness across event sources (§5.2).

"We can provide fairness by carefully polling all sources of packet
events, using a round-robin schedule ... to prevent a single input
stream from monopolizing the CPU."

:class:`MultiInputRouter` builds a router with N input interfaces, each
on its own source network, all forwarding to one output Ethernet. The
fairness experiments flood one input while others carry light traffic:

* the classic kernel funnels every interface into the shared ``ipintrq``,
  so the flood's packets crowd out the light flows (and the light flows'
  device-level work is wasted on drops);
* the polled kernel round-robins the interfaces with a quota, so light
  flows ride through untouched while the flood takes all the drops — at
  its own interface, for free.

Per-flow delivered counters let experiments quantify exactly that.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.polling import PollingSystem
from ..core.quota import PollQuota
from ..drivers.bsd import BsdDriver, ClassicIPInput
from ..drivers.polled import PolledDriver
from ..hw.nic import NIC
from ..kernel.config import KernelConfig
from ..kernel.kernel import Kernel
from ..metrics.latency import LatencyRecorder
from ..net.arp import ArpTable
from ..net.ip import IPLayer
from ..net.packet import PacketPool
from ..net.routing import RoutingTable
from ..sim.probes import ProbeRegistry
from ..sim.simulator import Simulator

OUTPUT_IF = "out0"
DEST_NET = "10.2.0.0/16"
DEST_HOST = "10.2.0.2"
PHANTOM_LINK_ADDR = "08:00:2b:00:00:99"


def input_interface_name(index: int) -> str:
    return "in%d" % index


def input_source_address(index: int) -> str:
    """Source host address on input network ``index``."""
    return "10.%d.0.2" % (10 + index)


def input_source_network(index: int) -> str:
    return "10.%d.0.0/16" % (10 + index)


class MultiInputRouter:
    """A router with ``input_count`` input Ethernets and one output."""

    def __init__(
        self,
        config: KernelConfig,
        input_count: int = 2,
        sim: Optional[Simulator] = None,
        quota=None,
    ) -> None:
        """``quota`` (int / None / :class:`PollQuota`) overrides the
        config's single poll quota; a :class:`PollQuota` with unlimited
        ``tx`` keeps the shared output queue drained when several inputs
        feed one output (N x rx-quota admissions per round must not
        outpace the output callback)."""
        config.validate()
        if input_count < 1:
            raise ValueError("need at least one input interface")
        if config.use_clocked_polling or config.use_high_ipl:
            raise ValueError(
                "MultiInputRouter supports the classic and polled kernels"
            )
        if config.screend_enabled:
            raise ValueError("screend experiments use the two-port Router")
        self.config = config
        self.input_count = input_count
        self._quota_override = quota
        self.sim = sim if sim is not None else Simulator()
        self.probes = ProbeRegistry(self.sim)
        self.kernel = Kernel(self.sim, config, self.probes)

        self.input_nics: List[NIC] = [
            NIC(
                self.sim,
                input_interface_name(index),
                self.probes,
                rx_ring_capacity=config.rx_ring_capacity,
                tx_ring_capacity=config.tx_ring_capacity,
            )
            for index in range(input_count)
        ]
        self.nic_out = NIC(
            self.sim,
            OUTPUT_IF,
            self.probes,
            rx_ring_capacity=config.rx_ring_capacity,
            tx_ring_capacity=config.tx_ring_capacity,
        )

        self.routing = RoutingTable()
        self.routing.add(DEST_NET, OUTPUT_IF)
        for index in range(input_count):
            self.routing.add(input_source_network(index), input_interface_name(index))
        self.arp = ArpTable()
        self.arp.add_entry(DEST_HOST, PHANTOM_LINK_ADDR)
        self.ip = IPLayer(self.kernel, self.routing, self.arp)

        self.polling: Optional[PollingSystem] = None
        self.ip_input: Optional[ClassicIPInput] = None
        self.input_drivers: List = []
        self._build_drivers()
        for index, driver in enumerate(self.input_drivers):
            self.ip.register_output(input_interface_name(index), driver.output)
        self.ip.register_output(OUTPUT_IF, self.driver_out.output)

        self.delivered = self.probes.counter("router.delivered")
        self.latency = LatencyRecorder(self.sim)
        self.nic_out.on_transmit = self._on_output_transmit
        #: Shared freelist for all of this router's traffic generators
        #: (multi-NIC trials multiply the per-packet allocation cost).
        self.packet_pool = PacketPool()
        self._flow_counters: Dict[str, int] = {}
        self._started = False

    # ------------------------------------------------------------------

    def _build_drivers(self) -> None:
        config = self.config
        if config.use_polling and not config.emulate_unmodified:
            quota = (
                PollQuota.of(self._quota_override)
                if self._quota_override is not None
                else PollQuota.of(config.poll_quota)
            )
            self.polling = PollingSystem(self.kernel, quota=quota)
            for index, nic in enumerate(self.input_nics):
                driver = PolledDriver(
                    self.kernel, nic, self.ip, input_interface_name(index)
                )
                self.polling.register(driver)
                self.input_drivers.append(driver)
            self.driver_out = PolledDriver(
                self.kernel, self.nic_out, self.ip, OUTPUT_IF
            )
            self.polling.register(self.driver_out)
        else:
            self.ip_input = ClassicIPInput(self.kernel, self.ip)
            extra = (
                config.costs.modified_compat_overhead
                if config.emulate_unmodified
                else 0
            )
            for index, nic in enumerate(self.input_nics):
                self.input_drivers.append(
                    BsdDriver(
                        self.kernel,
                        nic,
                        self.ip,
                        self.ip_input,
                        input_interface_name(index),
                        extra_rx_cycles=extra,
                    )
                )
            self.driver_out = BsdDriver(
                self.kernel,
                self.nic_out,
                self.ip,
                self.ip_input,
                OUTPUT_IF,
                extra_rx_cycles=extra,
            )

    # ------------------------------------------------------------------

    def start(self) -> "MultiInputRouter":
        if self._started:
            raise RuntimeError("router already started")
        self._started = True
        self.kernel.start()
        for driver in self.input_drivers:
            driver.attach()
        self.driver_out.attach()
        if self.ip_input is not None:
            self.ip_input.attach()
        if self.polling is not None:
            self.polling.start()
        return self

    def _on_output_transmit(self, packet) -> None:
        self.delivered.increment()
        self.latency.observe(packet)
        flow = getattr(packet, "flow", "default")
        self._flow_counters[flow] = self._flow_counters.get(flow, 0) + 1
        pool = self.packet_pool
        if pool.enabled:
            pool.release(packet)

    def delivered_by_flow(self) -> Dict[str, int]:
        """Packets delivered on the output wire, keyed by flow label."""
        return dict(self._flow_counters)

    def run_for(self, duration_ns: int) -> None:
        self.sim.run_for(duration_ns)

    def __repr__(self) -> str:
        from ..core.variants import describe

        return "MultiInputRouter(%s, inputs=%d)" % (
            describe(self.config),
            self.input_count,
        )
