"""Seeded chaos/soak harness: fuzzed trials, differential checking.

The golden-determinism suite proves a *fixed* matrix of trials never
changes. This module probes everything that matrix does not: it fuzzes
reproducible trial cases — kernel variant x workload (including the
adversarial generators) x rate x a randomly generated
:class:`~repro.faults.FaultPlan` — and runs each case three ways:

1. **reference**: pure backend with the invariant sanitizer attached
   and end-of-trial teardown reconciliation (catches ownership leaks,
   queue-invariant violations, unbalanced pool books);
2. **pure**: plain pure-backend run;
3. **fast**: plain compiled-backend run (:mod:`repro._fastcore`, in
   whatever flavour the host resolves).

All three must produce bit-identical :class:`TrialResult`\\ s (modulo
the ``backend`` attribution field), and the reference run's teardown
must balance to zero leaked packets. Any violation — a crash, a
differential mismatch, a leak — is recorded with the exact ``(seed,
index)`` pair that reproduces it: ``replay_case(seed, index)`` (or
``repro-livelock chaos --seed S --replay I``) re-derives the identical
case from the seed alone, because every fuzzing decision is drawn from
``derive_seed(seed, "chaos:<index>")`` and nothing else.

This is deliberately a *soak* harness: it trades the golden suite's
fixed assertions for breadth, and its budget is a dial (CI runs a small
smoke budget; a nightly soak can run thousands of cases).
"""

from __future__ import annotations

import random
import traceback
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from ..core import variants
from ..faults import FaultPlan
from ..sim.backend import FAST, PURE
from ..sim.randomness import derive_seed
from .harness import _run_trial_impl
from .spec import (
    WORKLOAD_BURSTY,
    WORKLOAD_COMPOSITE,
    WORKLOAD_CONSTANT,
    WORKLOAD_FLASHCROWD,
    WORKLOAD_POISSON,
    WORKLOAD_SYNFLOOD,
)

#: Kernel variants the fuzzer draws from — every driver discipline, with
#: and without the closed-loop mitigation controller.
CHAOS_VARIANTS = {
    "unmodified": lambda: variants.unmodified(),
    "polling": lambda: variants.polling(),
    "polling-inf": lambda: variants.polling(quota=None),
    "polling-mitigate": lambda: variants.polling(quota=None, mitigate=True),
    "clocked": lambda: variants.clocked(),
    "clocked-mitigate": lambda: variants.clocked(mitigate=True),
    "high-ipl": lambda: variants.high_ipl(),
}

CHAOS_WORKLOADS = (
    WORKLOAD_CONSTANT,
    WORKLOAD_POISSON,
    WORKLOAD_BURSTY,
    WORKLOAD_SYNFLOOD,
    WORKLOAD_FLASHCROWD,
    WORKLOAD_COMPOSITE,
)

CHAOS_RATES = (2_000.0, 5_000.0, 8_000.0, 12_000.0)


@dataclass(frozen=True)
class ChaosCase:
    """One fuzzed trial description (pure data, fully seed-derived)."""

    index: int
    variant: str
    workload: str
    rate_pps: float
    trial_seed: int
    duration_s: float
    warmup_s: float
    attack_rate_pps: Optional[float] = None
    fault_plan: Optional[FaultPlan] = None

    def describe(self) -> str:
        bits = [
            "#%d" % self.index,
            self.variant,
            self.workload,
            "%.0fpps" % self.rate_pps,
            "seed=%d" % self.trial_seed,
        ]
        if self.attack_rate_pps is not None:
            bits.append("attack=%.0fpps" % self.attack_rate_pps)
        if self.fault_plan is not None:
            armed = [
                name
                for name, value in asdict(self.fault_plan).items()
                if name != "seed" and value
            ]
            bits.append("faults[%s]" % ",".join(armed))
        return " ".join(bits)


# ----------------------------------------------------------------------
# Fuzzers (all decisions from the passed rng — nothing else)
# ----------------------------------------------------------------------

#: Each axis is (field overrides drawn from rng). Kept moderate: chaos
#: wants trials that *stress* the kernel, not ones that degenerate into
#: an all-faults wall where nothing flows at all.
_FAULT_AXES = (
    lambda rng: {"rx_irq_drop_prob": round(rng.uniform(0.02, 0.15), 3)},
    lambda rng: {"rx_irq_duplicate_prob": round(rng.uniform(0.02, 0.08), 3)},
    lambda rng: {"spurious_rx_irq_rate_pps": float(rng.randrange(100, 800))},
    lambda rng: {
        "rx_stall_mean_interval_ns": rng.randrange(5, 50) * 1_000_000,
        "rx_stall_duration_ns": rng.randrange(500, 3_000) * 1_000,
    },
    lambda rng: {
        "tx_spike_prob": round(rng.uniform(0.005, 0.02), 4),
        "tx_spike_extra_ns": rng.randrange(100, 1_000) * 1_000,
    },
    lambda rng: {"frame_drop_prob": round(rng.uniform(0.01, 0.08), 3)},
    lambda rng: {"frame_corrupt_prob": round(rng.uniform(0.01, 0.05), 3)},
    lambda rng: {
        "brownout_mean_interval_ns": rng.randrange(20, 80) * 1_000_000,
        "brownout_duration_ns": rng.randrange(2, 8) * 1_000_000,
    },
    lambda rng: {"reorder_prob": round(rng.uniform(0.01, 0.05), 3)},
    lambda rng: {
        "tick_jitter_fraction": round(rng.uniform(0.05, 0.3), 3),
        "tick_drift_fraction": round(rng.uniform(-0.05, 0.05), 3),
    },
)


def fuzz_fault_plan(rng: random.Random) -> FaultPlan:
    """A random, always-valid FaultPlan arming 1–3 fault axes."""
    overrides: Dict = {"seed": rng.randrange(2**31)}
    for axis in rng.sample(_FAULT_AXES, rng.randint(1, 3)):
        overrides.update(axis(rng))
    plan = FaultPlan(**overrides)
    plan.validate()
    return plan


def fuzz_case(seed: int, index: int) -> ChaosCase:
    """Derive case ``index`` of the chaos run rooted at ``seed``.

    Pure function of ``(seed, index)``: replaying a failure needs
    nothing but those two numbers.
    """
    rng = random.Random(derive_seed(seed, "chaos:%d" % index))
    variant = rng.choice(sorted(CHAOS_VARIANTS))
    workload = rng.choice(CHAOS_WORKLOADS)
    rate = rng.choice(CHAOS_RATES)
    attack_rate = (
        rng.choice((2.0, 3.0, 4.0)) * rate
        if workload == WORKLOAD_COMPOSITE
        else None
    )
    plan = fuzz_fault_plan(rng) if rng.random() < 0.6 else None
    return ChaosCase(
        index=index,
        variant=variant,
        workload=workload,
        rate_pps=rate,
        trial_seed=rng.randrange(2**31),
        duration_s=rng.choice((0.04, 0.06, 0.08)),
        warmup_s=0.02,
        attack_rate_pps=attack_rate,
        fault_plan=plan,
    )


# ----------------------------------------------------------------------
# Differential execution
# ----------------------------------------------------------------------


def _comparable(result) -> Dict:
    """asdict(result) minus the backend attribution field."""
    data = asdict(result)
    data.pop("backend")
    return data


def _diff_keys(a: Dict, b: Dict) -> List[str]:
    keys = []
    for key in a:
        if a[key] != b.get(key):
            keys.append(key)
    return keys


def _run_case_once(case: ChaosCase, backend: str, sanitize: bool):
    return _run_trial_impl(
        CHAOS_VARIANTS[case.variant](),
        case.rate_pps,
        duration_s=case.duration_s,
        warmup_s=case.warmup_s,
        seed=case.trial_seed,
        workload=case.workload,
        attack_rate_pps=case.attack_rate_pps,
        fault_plan=case.fault_plan,
        watchdog=True,
        sanitize=sanitize,
        backend=backend,
    )


def run_case(case: ChaosCase, fast: bool = True) -> Dict:
    """Run one case three ways; return its structured record.

    The record always carries ``case``/``describe``; on success ``ok``
    is True, otherwise ``failure`` holds the stage, the reason, and the
    replay recipe.
    """
    record: Dict = {
        "index": case.index,
        "describe": case.describe(),
        "ok": True,
        "failure": None,
    }
    stages = [("reference", PURE, True), ("pure", PURE, False)]
    if fast:
        stages.append(("fast", FAST, False))
    results = {}
    for stage, backend, sanitize in stages:
        try:
            results[stage] = _run_case_once(case, backend, sanitize)
        except Exception:
            record["ok"] = False
            record["failure"] = {
                "stage": stage,
                "reason": "exception",
                "detail": traceback.format_exc(limit=20),
            }
            return record

    reference = _comparable(results["reference"])
    for stage in ("pure", "fast"):
        if stage not in results:
            continue
        mismatch = _diff_keys(reference, _comparable(results[stage]))
        if mismatch:
            record["ok"] = False
            record["failure"] = {
                "stage": stage,
                "reason": "differential mismatch vs reference",
                "detail": "fields differ: %s" % ", ".join(mismatch),
            }
            return record

    faults = results["reference"].faults
    if faults is not None:
        leaked = faults["teardown"].get("leaked")
        if leaked:
            record["ok"] = False
            record["failure"] = {
                "stage": "reference",
                "reason": "teardown leak",
                "detail": "%r packet(s) unaccounted for after "
                "reconciliation" % leaked,
            }
            return record
    record["verdict"] = results["reference"].watchdog["verdict"]
    record["delivered"] = results["reference"].delivered
    return record


@dataclass
class ChaosReport:
    """Outcome of one chaos run: every case record, failures separated."""

    seed: int
    budget: int
    fast: bool
    cases: List[Dict] = field(default_factory=list)
    failures: List[Dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> Dict:
        return {
            "seed": self.seed,
            "budget": self.budget,
            "fast": self.fast,
            "ok": self.ok,
            "cases": self.cases,
            "failures": self.failures,
        }

    def summary(self) -> str:
        if self.ok:
            return "chaos: %d/%d cases clean (seed=%d)" % (
                len(self.cases),
                self.budget,
                self.seed,
            )
        lines = [
            "chaos: %d failure(s) in %d cases (seed=%d)"
            % (len(self.failures), len(self.cases), self.seed)
        ]
        for failure in self.failures:
            lines.append(
                "  case %s: %s [%s] — replay: repro-livelock chaos "
                "--seed %d --replay %d"
                % (
                    failure["describe"],
                    failure["failure"]["reason"],
                    failure["failure"]["stage"],
                    self.seed,
                    failure["index"],
                )
            )
        return "\n".join(lines)


def run_chaos(
    seed: int = 0,
    budget: int = 20,
    fast: bool = True,
    progress=None,
) -> ChaosReport:
    """Fuzz and differentially run ``budget`` cases rooted at ``seed``.

    ``fast=False`` skips the compiled-backend leg (pure-only hosts).
    ``progress`` is an optional callable fed each case record as it
    completes (the CLI uses it for live output).
    """
    report = ChaosReport(seed=seed, budget=budget, fast=fast)
    for index in range(budget):
        case = fuzz_case(seed, index)
        record = run_case(case, fast=fast)
        report.cases.append(record)
        if not record["ok"]:
            report.failures.append(record)
        if progress is not None:
            progress(record)
    return report


def replay_case(seed: int, index: int, fast: bool = True) -> Dict:
    """Re-run exactly one case of a previous chaos run.

    ``fuzz_case`` is a pure function of ``(seed, index)``, so this
    reproduces the identical trial trio a failure report points at.
    """
    return run_case(fuzz_case(seed, index), fast=fast)
