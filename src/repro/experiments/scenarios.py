"""Named overload scenarios with SLO verdicts.

A *scenario* binds three things the rest of the repo keeps separate: an
adversarial traffic shape with explicit phases (baseline → ramp →
sustained attack → recovery), the kernel variant under test (optionally
carrying the closed-loop mitigation controller), and service-level
objectives judged over those phases. Running one produces an ordinary
:class:`~repro.experiments.harness.TrialResult` whose ``slo`` field is
the structured verdict — goodput floor during the attack, p99 latency,
watchdog health, time-to-recovery — so scenario results flow through
the cache wire format, the Timeline, and the Perfetto exporter like any
other trial.

The headline scenario is ``syn-flood``: a spoofed-source flood layered
over legitimate constant-rate background traffic. Against the paper's
livelock-prone configuration (unbounded polling quota) the flood drives
goodput to zero; the same kernel with ``mitigation_enabled`` sheds load
gracefully, holds the goodput floor, and provably returns to its
configured state after the flood stops.

Determinism: a scenario run draws every random decision from named
:class:`~repro.sim.randomness.RandomStreams` substreams of ``seed``
(``"traffic"`` for background, ``"attack"`` for the attack source), so
the full phase script — and the resulting verdict — is bit-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from ..core.variants import describe, polling
from ..kernel.config import KernelConfig
from ..sim.backend import make_simulator, resolve_backend
from ..sim.randomness import RandomStreams
from ..sim.units import NS_PER_SEC, seconds
from ..workloads.adversarial import FlashCrowdGenerator, SynFloodGenerator
from ..workloads.generators import ConstantRateGenerator
from .harness import TrialResult
from .topology import Router

ATTACK_SYNFLOOD = "synflood"
ATTACK_FLASHCROWD = "flashcrowd"


@dataclass(frozen=True)
class SLOThresholds:
    """Pass/fail thresholds judged over a scenario's phases."""

    #: Goodput during the attack must stay at/above this fraction of the
    #: pre-attack baseline goodput.
    goodput_floor_fraction: float = 0.5
    #: A recovery window counts as recovered once its goodput reaches
    #: this fraction of baseline (and the mitigation controller, if any,
    #: has restored the configured actuator values).
    recovery_fraction: float = 0.8
    #: Recovery must happen within this many seconds of the attack end.
    recovery_bound_s: float = 0.3
    #: Optional p99 cap (µs) on packets delivered during the attack;
    #: None leaves latency informational.
    p99_latency_us_max: Optional[float] = None
    #: No unhealthy (stalled/livelocked) watchdog windows may accrue
    #: after recovery, and teardown must not leak packets.
    max_leaked: int = 0


@dataclass(frozen=True)
class Scenario:
    """One named attack script: traffic shape + phases + SLOs."""

    name: str
    description: str
    background_rate_pps: float = 4_000.0
    attack_rate_pps: float = 8_000.0
    attack: str = ATTACK_SYNFLOOD
    #: Phase durations (simulated seconds): settle, baseline
    #: measurement, attack ramp, sustained attack, recovery allowance.
    warmup_s: float = 0.03
    baseline_s: float = 0.06
    ramp_s: float = 0.02
    sustain_s: float = 0.12
    recovery_s: float = 0.3
    slo: SLOThresholds = field(default_factory=SLOThresholds)

    def with_attack_rate(self, rate_pps: Optional[float]) -> "Scenario":
        if rate_pps is None or rate_pps == self.attack_rate_pps:
            return self
        return replace(self, attack_rate_pps=float(rate_pps))


#: The named scenarios the CLI exposes.
SCENARIOS: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            name="syn-flood",
            description=(
                "Spoofed-source SYN flood over legitimate background "
                "traffic; the headline overload-defense scenario."
            ),
        ),
        Scenario(
            name="flash-crowd",
            description=(
                "Zipf-popularity flash crowd (many users, on/off waves) "
                "over background traffic."
            ),
            attack=ATTACK_FLASHCROWD,
            attack_rate_pps=7_000.0,
        ),
        Scenario(
            name="mixed",
            description=(
                "Moderate flood plus heavier background: tests graceful "
                "degradation rather than outright collapse."
            ),
            background_rate_pps=5_000.0,
            attack_rate_pps=6_000.0,
            slo=SLOThresholds(goodput_floor_fraction=0.4),
        ),
    )
}


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            "unknown scenario %r (known: %s)"
            % (name, ", ".join(sorted(SCENARIOS)))
        ) from None


def default_config(mitigate: bool = False) -> KernelConfig:
    """The scenario baseline kernel: the paper's modified kernel with an
    *unbounded* quota — the configuration fig 6-3 shows livelocking —
    optionally armed with the closed-loop controller that rescues it."""
    return polling(quota=None, mitigate=mitigate)


def _make_attack(scenario: Scenario, router: Router, rng):
    pool = router.packet_pool
    wire = router.wire_in
    if scenario.attack == ATTACK_SYNFLOOD:
        return SynFloodGenerator(
            router.sim,
            router.nic_in,
            scenario.attack_rate_pps,
            rng=rng,
            ramp_s=scenario.ramp_s,
            sustain_s=scenario.sustain_s,
            pool=pool,
            wire=wire,
        )
    if scenario.attack == ATTACK_FLASHCROWD:
        return FlashCrowdGenerator(
            router.sim,
            router.nic_in,
            scenario.attack_rate_pps,
            rng=rng,
            pool=pool,
            wire=wire,
        )
    raise ValueError("unknown attack kind %r" % scenario.attack)


def run_scenario(
    scenario,
    config: Optional[KernelConfig] = None,
    mitigate: bool = False,
    seed: int = 0,
    trace=False,
    backend: Optional[str] = None,
    machine=None,
) -> TrialResult:
    """Run one scenario and return a TrialResult with an ``slo`` verdict.

    ``scenario`` is a :class:`Scenario` or a name from :data:`SCENARIOS`.
    ``config`` defaults to :func:`default_config` (``mitigate`` selects
    whether the controller is armed); an explicit config wins and
    ``mitigate`` is ignored. The livelock watchdog always runs. ``trace``
    additionally arms the trace ring + Timeline (phase boundaries become
    timeline marks and Perfetto instant events). ``machine`` (a
    :class:`~repro.hw.machine.MachineSpec`) selects the core topology;
    None is the single-core default.
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    if config is None:
        config = default_config(mitigate=mitigate)
    resolved_backend = resolve_backend(backend)
    router = Router(
        config, sim=make_simulator(resolved_backend), machine=machine
    )
    router.start()

    trace_buffer = None
    timeline = None
    if trace is not False and trace is not None:
        from ..trace.buffer import TraceBuffer
        from ..trace.timeline import Timeline

        trace_buffer = trace if not isinstance(trace, bool) else TraceBuffer()
        timeline = trace_buffer.timeline
        if timeline is None:
            timeline = Timeline(
                config.watchdog_window_ticks * config.clock_tick_ns
            )
            trace_buffer.attach_timeline(timeline)
        router.attach_trace(trace_buffer)

    streams = RandomStreams(seed)
    background = ConstantRateGenerator(
        router.sim,
        router.nic_in,
        scenario.background_rate_pps,
        jitter_fraction=0.05,
        rng=streams.stream("traffic"),
        flow="legit",
        name="legit",
        pool=router.packet_pool,
        wire=router.wire_in,
    )
    attack = _make_attack(scenario, router, streams.stream("attack"))
    if trace_buffer is not None:
        background.trace = trace_buffer
        attack.trace = trace_buffer

    # Per-flow goodput: chain the output-transmit callback so legit and
    # attack deliveries stay distinguishable. Counting only — schedules
    # nothing, so the event stream is untouched.
    flow_delivered = {"legit": 0, "other": 0}
    inner_on_transmit = router.nic_out.on_transmit

    def _count_by_flow(packet):
        key = "legit" if packet.flow == "legit" else "other"
        flow_delivered[key] += 1
        inner_on_transmit(packet)

    router.nic_out.on_transmit = _count_by_flow

    from ..sim.watchdog import LivelockWatchdog

    window_ns = config.watchdog_window_ticks * config.clock_tick_ns
    wd = LivelockWatchdog(
        router.sim,
        router.delivered,
        (router.nic_in.rx_accepted, router.nic_in.rx_overflow_drops),
        window_ns=window_ns,
        trace=trace_buffer,
    ).start()

    background.start()
    router.run_for(seconds(scenario.warmup_s))

    # --- baseline phase ------------------------------------------------
    baseline_start = router.delivered.value
    baseline_start_ns = router.sim.now
    measured_generated_start = background.sent
    router.run_for(seconds(scenario.baseline_s))
    baseline_span_s = (router.sim.now - baseline_start_ns) / NS_PER_SEC
    baseline_goodput = (
        (router.delivered.value - baseline_start) / baseline_span_s
    )

    # --- attack phase --------------------------------------------------
    attack_start_ns = router.sim.now
    unhealthy_before_attack = wd.livelock_windows + wd.stall_windows
    if timeline is not None:
        timeline.mark("attack_start", attack_start_ns)
    attack.start()
    router.latency.start()
    attack_delivered_start = router.delivered.value
    attack_legit_start = flow_delivered["legit"]
    router.run_for(seconds(scenario.ramp_s + scenario.sustain_s))
    attack.stop()
    router.latency.stop()
    attack_end_ns = router.sim.now
    if timeline is not None:
        timeline.mark("attack_end", attack_end_ns)
    attack_span_s = (attack_end_ns - attack_start_ns) / NS_PER_SEC
    attack_goodput = (
        (router.delivered.value - attack_delivered_start) / attack_span_s
    )
    attack_legit_goodput = (
        (flow_delivered["legit"] - attack_legit_start) / attack_span_s
    )
    attack_latency = router.latency.summary_us()
    unhealthy_at_attack_end = (
        wd.livelock_windows + wd.stall_windows - unhealthy_before_attack
    )

    # --- recovery phase ------------------------------------------------
    controller = router.mitigation
    recovery_target = baseline_goodput * scenario.slo.recovery_fraction
    recovered_ns: Optional[int] = None
    elapsed = 0
    budget_ns = int(seconds(scenario.recovery_s))
    while elapsed < budget_ns:
        step_start = router.delivered.value
        router.run_for(window_ns)
        elapsed += window_ns
        step_goodput = (
            (router.delivered.value - step_start) * NS_PER_SEC / window_ns
        )
        restored = controller.restored if controller is not None else True
        if step_goodput >= recovery_target and restored:
            recovered_ns = router.sim.now
            break
    if recovered_ns is not None and timeline is not None:
        timeline.mark("recovered", recovered_ns)
    unhealthy_at_recovery = wd.livelock_windows + wd.stall_windows
    # Settle: recovery must hold — no new unhealthy windows afterwards.
    router.run_for(2 * window_ns)
    unhealthy_after = wd.livelock_windows + wd.stall_windows
    time_to_recovery_s = (
        None
        if recovered_ns is None
        else (recovered_ns - attack_end_ns) / NS_PER_SEC
    )

    wd.stop()
    background.stop()
    teardown = router.teardown()
    total_span_ns = router.sim.now - baseline_start_ns
    total_span_s = total_span_ns / NS_PER_SEC
    generated = (
        background.sent - measured_generated_start
    ) + attack.sent
    delivered = router.delivered.value - baseline_start

    # --- verdict -------------------------------------------------------
    slo = scenario.slo
    goodput_fraction = (
        attack_goodput / baseline_goodput if baseline_goodput else 0.0
    )
    violations = []
    if goodput_fraction < slo.goodput_floor_fraction:
        violations.append(
            "goodput floor: %.2f of baseline < %.2f"
            % (goodput_fraction, slo.goodput_floor_fraction)
        )
    if recovered_ns is None:
        violations.append(
            "no recovery within %.2fs of attack end" % slo.recovery_bound_s
        )
    elif time_to_recovery_s > slo.recovery_bound_s:
        violations.append(
            "recovery took %.3fs > bound %.2fs"
            % (time_to_recovery_s, slo.recovery_bound_s)
        )
    if unhealthy_after > unhealthy_at_recovery:
        violations.append(
            "watchdog: %d unhealthy window(s) after recovery"
            % (unhealthy_after - unhealthy_at_recovery)
        )
    p99 = attack_latency.get("p99")
    if (
        slo.p99_latency_us_max is not None
        and p99 is not None
        and p99 > slo.p99_latency_us_max
    ):
        violations.append(
            "p99 latency %.0fµs > %.0fµs" % (p99, slo.p99_latency_us_max)
        )
    leaked = teardown.get("leaked")
    if leaked is not None and leaked > slo.max_leaked:
        violations.append("teardown leaked %d packet(s)" % leaked)

    verdict = {
        "scenario": scenario.name,
        "attack": scenario.attack,
        "attack_rate_pps": scenario.attack_rate_pps,
        "background_rate_pps": scenario.background_rate_pps,
        "mitigated": config.mitigation_enabled,
        "seed": seed,
        "baseline": {
            "goodput_pps": baseline_goodput,
            "window_s": baseline_span_s,
        },
        "attack_phase": {
            "goodput_pps": attack_goodput,
            "goodput_fraction": goodput_fraction,
            "legit_goodput_pps": attack_legit_goodput,
            "p99_latency_us": p99,
            "latency_us": attack_latency,
            "span_s": attack_span_s,
            "unhealthy_windows": unhealthy_at_attack_end,
        },
        "recovery": {
            "recovered": recovered_ns is not None,
            "time_to_recovery_s": time_to_recovery_s,
            "bound_s": slo.recovery_bound_s,
            "unhealthy_windows_after": unhealthy_after - unhealthy_at_recovery,
        },
        "mitigation": controller.report() if controller is not None else None,
        "teardown": teardown,
        "thresholds": {
            "goodput_floor_fraction": slo.goodput_floor_fraction,
            "recovery_fraction": slo.recovery_fraction,
            "recovery_bound_s": slo.recovery_bound_s,
            "p99_latency_us_max": slo.p99_latency_us_max,
            "max_leaked": slo.max_leaked,
        },
        "passed": not violations,
        "violations": violations,
    }

    return TrialResult(
        variant=describe(config),
        target_rate_pps=scenario.background_rate_pps,
        offered_rate_pps=generated / total_span_s,
        output_rate_pps=delivered / total_span_s,
        delivered=delivered,
        generated=generated,
        duration_s=total_span_s,
        latency_us=attack_latency,
        drops={
            name: value
            for name, value in router.probes.dump().items()
            if ("drop" in name) and value > 0
        },
        counters=router.probes.dump(),
        watchdog=wd.verdict(),
        timeline=timeline.to_dict() if timeline is not None else None,
        slo=verdict,
        backend=getattr(router.sim, "backend_name", None),
    )
