"""repro — reproduction of Mogul & Ramakrishnan, "Eliminating Receive
Livelock in an Interrupt-driven Kernel" (USENIX 1996).

The package simulates a 1990s UNIX router at the scheduling level —
a CPU with interrupt priority levels, NICs with bounded descriptor
rings, the 4.2BSD/Digital-UNIX network stack — and implements the
paper's fixes: interrupt-initiated polling with packet quotas,
queue-state feedback, and CPU cycle limits.

Quick start::

    from repro import TrialSpec, variants, run_trial

    result = run_trial(TrialSpec(variants.unmodified(), rate_pps=8_000))
    print(result.output_rate_pps)        # livelocked: far below 8000

    result = run_trial(TrialSpec(variants.polling(quota=5), rate_pps=8_000))
    print(result.output_rate_pps)        # stays at the MLFRR

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every reproduced figure.
"""

from . import (
    core,
    drivers,
    experiments,
    hw,
    kernel,
    metrics,
    net,
    sim,
    trace,
    workloads,
)
from .core import (
    CycleLimiter,
    PollQuota,
    PollingSystem,
    QueueStateFeedback,
    variants,
)
from .experiments import (
    ALL_FIGURES,
    FigureResult,
    Router,
    TrialResult,
    TrialSpec,
    run_sweep,
    run_trial,
    sweep_series,
)
from .kernel import CostModel, DEFAULT_COSTS, KernelConfig
from .metrics import estimate_mlfrr, is_livelock_free, livelock_onset
from .trace import (
    Timeline,
    TraceBuffer,
    perfetto_json,
    timeline_to_csv,
    to_perfetto,
    trace_to_csv,
    write_perfetto,
)

__version__ = "1.1.0"

__all__ = [
    "ALL_FIGURES",
    "CostModel",
    "CycleLimiter",
    "DEFAULT_COSTS",
    "FigureResult",
    "KernelConfig",
    "PollQuota",
    "PollingSystem",
    "QueueStateFeedback",
    "Router",
    "Timeline",
    "TraceBuffer",
    "TrialResult",
    "TrialSpec",
    "core",
    "drivers",
    "estimate_mlfrr",
    "experiments",
    "hw",
    "is_livelock_free",
    "kernel",
    "livelock_onset",
    "metrics",
    "net",
    "perfetto_json",
    "run_sweep",
    "run_trial",
    "sim",
    "sweep_series",
    "timeline_to_csv",
    "to_perfetto",
    "trace",
    "trace_to_csv",
    "variants",
    "workloads",
    "write_perfetto",
]
