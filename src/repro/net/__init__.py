"""Network stack substrate: packets, addresses, ARP, routing, IP and UDP."""

from .addresses import (
    AddressError,
    format_ip,
    parse_ip,
    parse_prefix,
    prefix_contains,
    prefix_mask,
)
from .arp import ArpTable
from .ip import IPLayer, ScreenPath
from .packet import PROTO_UDP, Packet, PacketPool
from .routing import Route, RoutingTable
from .udp import UdpLayer, UdpSocket

__all__ = [
    "AddressError",
    "ArpTable",
    "IPLayer",
    "PROTO_UDP",
    "Packet",
    "PacketPool",
    "Route",
    "RoutingTable",
    "ScreenPath",
    "UdpLayer",
    "UdpSocket",
    "format_ip",
    "parse_ip",
    "parse_prefix",
    "prefix_contains",
    "prefix_mask",
]
