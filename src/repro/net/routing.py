"""Longest-prefix-match routing table."""

from __future__ import annotations

from typing import List, Optional, Tuple

from .addresses import parse_ip, parse_prefix, prefix_contains


class Route:
    """One forwarding entry: destination prefix -> egress interface."""

    __slots__ = ("network", "prefix_len", "interface")

    def __init__(self, network: int, prefix_len: int, interface: str) -> None:
        self.network = network
        self.prefix_len = prefix_len
        self.interface = interface

    def matches(self, address: int) -> bool:
        return prefix_contains(self.network, self.prefix_len, address)


class RoutingTable:
    """A small longest-prefix-match table (linear scan; tables in the
    experiments have a handful of entries, like the paper's two-Ethernet
    router)."""

    def __init__(self) -> None:
        self._routes: List[Route] = []
        self.lookups = 0
        self.misses = 0

    def add(self, prefix: str, interface: str) -> None:
        """Add ``"10.1.0.0/16" -> interface`` (most specific wins)."""
        network, prefix_len = parse_prefix(prefix)
        self._routes.append(Route(network, prefix_len, interface))
        self._routes.sort(key=lambda r: -r.prefix_len)

    def add_default(self, interface: str) -> None:
        self.add("0.0.0.0/0", interface)

    def lookup(self, address: int) -> Optional[str]:
        """Egress interface for ``address``, or None (no route)."""
        self.lookups += 1
        for route in self._routes:
            if route.matches(address):
                return route.interface
        self.misses += 1
        return None

    def lookup_text(self, address: str) -> Optional[str]:
        return self.lookup(parse_ip(address))

    def __len__(self) -> int:
        return len(self._routes)

    def entries(self) -> List[Tuple[int, int, str]]:
        return [(r.network, r.prefix_len, r.interface) for r in self._routes]
