"""ARP-style neighbour table.

The paper's methodology depends on a small ARP trick: the destination
host did not exist, and the router was fooled "by inserting a phantom
entry into its ARP table" (§6.1). The experiment topology does the same
thing here: a static entry makes the output interface willing to transmit
to a host that will never answer.
"""

from __future__ import annotations

from typing import Dict, Optional

from .addresses import format_ip, parse_ip


class ArpTable:
    """Static neighbour resolution (IP -> link address string)."""

    def __init__(self) -> None:
        self._entries: Dict[int, str] = {}
        self.lookups = 0
        self.failures = 0

    def add_entry(self, ip_text: str, link_address: str) -> None:
        """Insert a (possibly phantom) neighbour entry."""
        self._entries[parse_ip(ip_text)] = link_address

    def resolve(self, address: int) -> Optional[str]:
        """Link address for ``address``, or None if unresolvable."""
        self.lookups += 1
        link = self._entries.get(address)
        if link is None:
            self.failures += 1
        return link

    def __contains__(self, ip_text: str) -> bool:
        return parse_ip(ip_text) in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        body = ", ".join(
            "%s->%s" % (format_ip(ip), link) for ip, link in sorted(self._entries.items())
        )
        return "ArpTable(%s)" % body
