"""Minimal UDP layer: port demux into per-socket receive queues.

Used by end-system scenarios (packet sink, monitoring examples). UDP is
datagram-oriented and **not flow-controlled** — exactly the property the
paper blames for congestive collapse (§1) — so the receive queue is a
bounded drop-tail queue like every other queue in the system.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..sim.probes import ProbeRegistry
from ..sim.signals import Signal
from ..sim.simulator import Simulator
from ..kernel.queues import PacketQueue
from .packet import Packet


class UdpSocket:
    """One bound UDP socket with a bounded receive queue."""

    def __init__(
        self,
        sim: Simulator,
        port: int,
        probes: ProbeRegistry,
        queue_limit: int = 64,
        high_watermark: int = None,
        low_watermark: int = None,
    ) -> None:
        self.port = port
        self.queue = PacketQueue(
            "udp.%d" % port,
            queue_limit,
            probes,
            high_watermark=high_watermark,
            low_watermark=low_watermark,
        )
        self.data_signal = Signal(sim, "udp.%d.data" % port)
        self.received = probes.counter("udp.%d.received" % port)

    def deliver(self, packet: Packet) -> bool:
        """Kernel-side delivery; wakes any blocked reader."""
        if not self.queue.enqueue(packet):
            return False
        self.received.increment()
        self.data_signal.fire()
        return True


class UdpLayer:
    """Demultiplexes received datagrams to bound sockets by port."""

    def __init__(self, sim: Simulator, probes: ProbeRegistry) -> None:
        self._sim = sim
        self._probes = probes
        self._sockets: Dict[int, UdpSocket] = {}
        self.no_socket_drops = probes.counter("udp.no_socket_drops")

    def bind(
        self,
        port: int,
        queue_limit: int = 64,
        high_watermark: int = None,
        low_watermark: int = None,
    ) -> UdpSocket:
        if port in self._sockets:
            raise ValueError("port %d already bound" % port)
        socket = UdpSocket(
            self._sim,
            port,
            self._probes,
            queue_limit=queue_limit,
            high_watermark=high_watermark,
            low_watermark=low_watermark,
        )
        self._sockets[port] = socket
        return socket

    def unbind(self, port: int) -> None:
        self._sockets.pop(port, None)

    def socket(self, port: int) -> Optional[UdpSocket]:
        return self._sockets.get(port)

    def deliver(self, packet: Packet) -> bool:
        """Deliver a datagram destined to this host. False if no socket
        is bound or the socket queue overflowed."""
        socket = self._sockets.get(packet.dst_port)
        if socket is None:
            self.no_socket_drops.increment()
            packet.mark_dropped("udp.no_socket")
            return False
        return socket.deliver(packet)
