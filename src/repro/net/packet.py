"""Packet objects and their lifecycle timestamps.

A packet carries addressing (for routing and UDP demux) plus the
timestamps the metrics layer needs: wire arrival at the router's NIC,
transmission completion, and — when dropped — *where* it was dropped.
The drop location is the paper's wasted-work story in data form: a drop
at the RX ring costs nothing, a drop at the output queue costs the whole
forwarding path (§4.2, §6.6).
"""

from __future__ import annotations

import itertools
from typing import Optional

from .addresses import format_ip

#: IP protocol numbers used by the simulation.
PROTO_UDP = 17

_packet_ids = itertools.count(1)


class Packet:
    """One simulated IP/UDP packet."""

    __slots__ = (
        "packet_id",
        "src",
        "dst",
        "src_port",
        "dst_port",
        "protocol",
        "payload_bytes",
        "created_ns",
        "nic_arrival_ns",
        "transmitted_ns",
        "dropped_at",
        "flow",
    )

    def __init__(
        self,
        src: int,
        dst: int,
        src_port: int = 0,
        dst_port: int = 0,
        protocol: int = PROTO_UDP,
        payload_bytes: int = 4,
        created_ns: int = 0,
        flow: str = "default",
    ) -> None:
        self.packet_id = next(_packet_ids)
        self.src = src
        self.dst = dst
        self.src_port = src_port
        self.dst_port = dst_port
        self.protocol = protocol
        self.payload_bytes = payload_bytes
        self.created_ns = created_ns
        self.nic_arrival_ns: Optional[int] = None
        self.transmitted_ns: Optional[int] = None
        self.dropped_at: Optional[str] = None
        self.flow = flow

    # ------------------------------------------------------------------
    # Lifecycle marks (called by NIC / queues via duck typing)
    # ------------------------------------------------------------------

    def mark_nic_arrival(self, now_ns: int) -> None:
        if self.nic_arrival_ns is None:
            self.nic_arrival_ns = now_ns

    def mark_transmitted(self, now_ns: int) -> None:
        self.transmitted_ns = now_ns

    def mark_dropped(self, where: str) -> None:
        self.dropped_at = where

    # ------------------------------------------------------------------

    @property
    def delivered(self) -> bool:
        return self.transmitted_ns is not None

    def latency_ns(self) -> Optional[int]:
        """Router residence time: NIC arrival to transmit completion."""
        if self.nic_arrival_ns is None or self.transmitted_ns is None:
            return None
        return self.transmitted_ns - self.nic_arrival_ns

    def __repr__(self) -> str:
        return "Packet(#%d %s -> %s, flow=%s)" % (
            self.packet_id,
            format_ip(self.src),
            format_ip(self.dst),
            self.flow,
        )
