"""Packet objects, their lifecycle timestamps, and the recycling pool.

A packet carries addressing (for routing and UDP demux) plus the
timestamps the metrics layer needs: wire arrival at the router's NIC,
transmission completion, and — when dropped — *where* it was dropped.
The drop location is the paper's wasted-work story in data form: a drop
at the RX ring costs nothing, a drop at the output queue costs the whole
forwarding path (§4.2, §6.6).

:class:`PacketPool` removes the per-packet allocation from the trial hot
path: once a packet has left the system (transmitted on the output wire,
or rejected at the RX ring before it ever entered), the owning topology
returns it to a freelist and the traffic generators draw the next packet
from there. Reused packets are fully re-initialised (fresh ``packet_id``
included) so a recycled packet is indistinguishable from a new one.
Tests or topologies that retain packet references past those release
points (packet-filter taps, UDP sockets) must run with the pool disabled
— see :meth:`PacketPool.disable`.
"""

from __future__ import annotations

import itertools
from typing import List, Optional

from .addresses import format_ip

#: IP protocol numbers used by the simulation.
PROTO_UDP = 17

_packet_ids = itertools.count(1)


class Packet:
    """One simulated IP/UDP packet."""

    __slots__ = (
        "packet_id",
        "src",
        "dst",
        "src_port",
        "dst_port",
        "protocol",
        "payload_bytes",
        "created_ns",
        "nic_arrival_ns",
        "transmitted_ns",
        "dropped_at",
        "corrupted",
        "flow",
        "_pooled",
    )

    def __init__(
        self,
        src: int,
        dst: int,
        src_port: int = 0,
        dst_port: int = 0,
        protocol: int = PROTO_UDP,
        payload_bytes: int = 4,
        created_ns: int = 0,
        flow: str = "default",
    ) -> None:
        self._pooled = False
        self.reset(
            src,
            dst,
            src_port=src_port,
            dst_port=dst_port,
            protocol=protocol,
            payload_bytes=payload_bytes,
            created_ns=created_ns,
            flow=flow,
        )

    def reset(
        self,
        src: int,
        dst: int,
        src_port: int = 0,
        dst_port: int = 0,
        protocol: int = PROTO_UDP,
        payload_bytes: int = 4,
        created_ns: int = 0,
        flow: str = "default",
    ) -> "Packet":
        """Re-initialise every field, exactly as construction would.

        The reuse-safety contract of the pool: a recycled packet gets a
        fresh ``packet_id`` and cleared lifecycle marks, so no state from
        its previous trip through the router can leak into the next one.
        """
        self.packet_id = next(_packet_ids)
        self.src = src
        self.dst = dst
        self.src_port = src_port
        self.dst_port = dst_port
        self.protocol = protocol
        self.payload_bytes = payload_bytes
        self.created_ns = created_ns
        self.nic_arrival_ns: Optional[int] = None
        self.transmitted_ns: Optional[int] = None
        self.dropped_at: Optional[str] = None
        self.corrupted = False
        self.flow = flow
        return self

    # ------------------------------------------------------------------
    # Lifecycle marks (called by NIC / queues via duck typing)
    # ------------------------------------------------------------------

    def mark_nic_arrival(self, now_ns: int) -> None:
        if self.nic_arrival_ns is None:
            self.nic_arrival_ns = now_ns

    def mark_transmitted(self, now_ns: int) -> None:
        self.transmitted_ns = now_ns

    def mark_dropped(self, where: str) -> None:
        self.dropped_at = where

    def mark_corrupted(self) -> None:
        """Flag a frame-integrity fault; IP input discards the packet as
        a failed checksum."""
        self.corrupted = True

    # ------------------------------------------------------------------

    @property
    def delivered(self) -> bool:
        return self.transmitted_ns is not None

    def latency_ns(self) -> Optional[int]:
        """Router residence time: NIC arrival to transmit completion."""
        if self.nic_arrival_ns is None or self.transmitted_ns is None:
            return None
        return self.transmitted_ns - self.nic_arrival_ns

    def __repr__(self) -> str:
        return "Packet(#%d %s -> %s, flow=%s)" % (
            self.packet_id,
            format_ip(self.src),
            format_ip(self.dst),
            self.flow,
        )


#: Default ceiling on the freelist; the steady-state working set of a
#: two-port router is (rings + queues + in-flight) packets, far below
#: this, so the cap only matters as a backstop against pathological
#: release patterns.
DEFAULT_POOL_CAP = 4_096


class PacketPool:
    """A freelist of :class:`Packet` objects for the per-packet hot path.

    Ownership protocol:

    * generators :meth:`acquire` every emitted packet;
    * the topology :meth:`release`\\ s a packet when it is *done* — its
      transmission on the output wire completed, or the RX ring rejected
      it before it entered the system;
    * packets dropped inside the router (ipintrq, screening queue,
      output queue, routing failures) are **not** returned — nothing
      holds a safe ownership claim at those points — and simply fall to
      the garbage collector as before. Under overload most drops happen
      at the RX ring anyway (the paper's "drop early" point), so the
      steady-state allocation rate stays near zero.

    Call :meth:`disable` (or construct with ``enabled=False``) when any
    component retains packet references beyond the release points — a
    packet-filter tap, a UDP socket queue, or a test that inspects
    packets after the trial. A disabled pool hands out fresh packets and
    ignores releases, restoring plain allocation semantics.
    """

    __slots__ = ("enabled", "max_free", "allocated", "reused", "released", "_free")

    def __init__(self, max_free: int = DEFAULT_POOL_CAP, enabled: bool = True) -> None:
        if max_free < 0:
            raise ValueError("pool cap must be non-negative")
        self.enabled = enabled
        self.max_free = max_free
        #: Packets constructed because the freelist was empty.
        self.allocated = 0
        #: Acquisitions served from the freelist.
        self.reused = 0
        #: Packets returned through :meth:`release` (counted even when the
        #: freelist cap discards them — the ownership claim was still
        #: surrendered).
        self.released = 0
        self._free: List[Packet] = []

    def acquire(
        self,
        src: int,
        dst: int,
        src_port: int = 0,
        dst_port: int = 0,
        protocol: int = PROTO_UDP,
        payload_bytes: int = 4,
        created_ns: int = 0,
        flow: str = "default",
    ) -> Packet:
        """Return a freshly initialised packet, recycled if possible."""
        free = self._free
        if free:
            self.reused += 1
            packet = free.pop()
            packet._pooled = False
            return packet.reset(
                src,
                dst,
                src_port=src_port,
                dst_port=dst_port,
                protocol=protocol,
                payload_bytes=payload_bytes,
                created_ns=created_ns,
                flow=flow,
            )
        self.allocated += 1
        return Packet(
            src,
            dst,
            src_port=src_port,
            dst_port=dst_port,
            protocol=protocol,
            payload_bytes=payload_bytes,
            created_ns=created_ns,
            flow=flow,
        )

    def release(self, packet: Packet) -> None:
        """Return ``packet`` to the freelist (no-op when disabled)."""
        if not self.enabled:
            return
        if packet._pooled:
            raise ValueError("packet %r released to the pool twice" % packet)
        self.released += 1
        free = self._free
        if len(free) < self.max_free:
            packet._pooled = True
            free.append(packet)

    def disable(self) -> None:
        """Opt out of recycling: retain-safe, allocation-per-packet mode.

        Existing freelist entries are discarded so no already-recycled
        packet can be handed out afterwards.
        """
        self.enabled = False
        self._free.clear()

    @property
    def free_count(self) -> int:
        return len(self._free)

    @property
    def outstanding(self) -> int:
        """Acquired-but-not-released packets. After teardown drains every
        holding point, this must equal the number of interior drops (the
        packets the ownership protocol deliberately lets fall to the GC);
        anything more is a leak, anything less a double-release."""
        return self.allocated + self.reused - self.released

    def __repr__(self) -> str:
        return "PacketPool(free=%d, allocated=%d, reused=%d, released=%d%s)" % (
            len(self._free),
            self.allocated,
            self.reused,
            self.released,
            "" if self.enabled else ", disabled",
        )
