"""IP layer: forwarding, screening delivery, and local delivery.

The methods that consume CPU are generator helpers, invoked with
``yield from`` inside whatever context performs the work — the SPLNET
software interrupt, the netisr kernel thread, the polling thread's
received-packet callback, or a user process returning a screend verdict.
The *same* IP logic therefore runs in every kernel variant; only the
scheduling context (and hence the livelock behaviour) differs, which is
precisely the paper's point.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..kernel.costs import CostModel
from ..kernel.kernel import Kernel
from ..kernel.queues import PacketQueue
from ..sim.process import Work
from ..sim.signals import Signal
from .arp import ArpTable
from .packet import Packet
from .routing import RoutingTable
from .udp import UdpLayer

#: Type of per-interface output hooks: enqueue the packet toward one
#: egress interface (the driver's output path provides these).
OutputHook = Callable[[Packet], None]


class ScreenPath:
    """The kernel/user boundary for screend: a bounded screening queue
    plus the wake-up signal for the daemon (§6.6.1)."""

    def __init__(self, queue: PacketQueue, data_signal: Signal) -> None:
        self.queue = queue
        self.data_signal = data_signal

    def deliver(self, packet: Packet) -> bool:
        accepted = self.queue.enqueue(packet)
        if accepted:
            self.data_signal.fire()
        return accepted


class IPLayer:
    """Routing + dispatch for received packets."""

    def __init__(
        self,
        kernel: Kernel,
        routing: RoutingTable,
        arp: ArpTable,
    ) -> None:
        self.kernel = kernel
        self.costs: CostModel = kernel.costs
        self.routing = routing
        self.arp = arp
        self.outputs: Dict[str, OutputHook] = {}
        #: Packet-filter taps (passive monitoring, §2); each receives a
        #: copy of every packet passing IP input processing.
        self.taps: list = []
        self.screen_path: Optional[ScreenPath] = None
        self.udp: Optional[UdpLayer] = None
        self.local_addresses: set = set()
        # Input-processing costs are fixed at construction, so the Work
        # commands are shared across packets rather than allocated per
        # packet (the CPU model only reads ``.cycles``).
        self._tap_work = Work(self.costs.packet_filter_tap)
        self._screen_work = Work(self.costs.ip_input_to_screen_queue)
        self._forward_work = Work(self.costs.ip_forward)
        self._after_screen_work = Work(self.costs.ip_output_after_screen)
        probes = kernel.probes
        self.forwarded = probes.counter("ip.forwarded")
        self.screened_in = probes.counter("ip.screened_in")
        self.local_delivered = probes.counter("ip.local_delivered")
        self.no_route_drops = probes.counter("ip.no_route_drops")
        self.arp_failure_drops = probes.counter("ip.arp_failure_drops")
        #: Registered lazily on the first corrupted frame: fault-free
        #: trials must dump the exact historical counter set (the golden
        #: fixtures compare it key-for-key).
        self.corrupt_drops = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def register_output(self, interface: str, hook: OutputHook) -> None:
        """Attach an egress interface's output path."""
        self.outputs[interface] = hook

    def set_screen_path(self, path: ScreenPath) -> None:
        self.screen_path = path

    def set_udp(self, udp: UdpLayer, local_addresses) -> None:
        self.udp = udp
        self.local_addresses = {addr for addr in local_addresses}

    # ------------------------------------------------------------------
    # Input processing (generator helpers — charge CPU via yield)
    # ------------------------------------------------------------------

    def input_packet(self, packet: Packet):
        """Full IP input processing for one received packet.

        In a screening kernel the packet goes to the screening queue for
        the user-mode daemon; otherwise it is forwarded (or locally
        delivered) in the kernel.
        """
        if packet.corrupted:
            # Header checksum failure (injected frame corruption): the
            # packet is discarded after the work already spent getting it
            # here — an interior drop, so the pool never sees it again.
            counter = self.corrupt_drops
            if counter is None:
                counter = self.corrupt_drops = self.kernel.probes.counter(
                    "ip.corrupt_drops"
                )
            counter.increment()
            packet.mark_dropped("ip.corrupt")
            return
        for tap in self.taps:
            yield self._tap_work
            tap.deliver(packet)
        if self.screen_path is not None:
            yield self._screen_work
            if self.screen_path.deliver(packet):
                self.screened_in.increment()
            return
        yield self._forward_work
        self._dispatch(packet)

    def output_after_screen(self, packet: Packet):
        """Output-side processing once screend has accepted a packet."""
        yield self._after_screen_work
        self._dispatch(packet)

    # ------------------------------------------------------------------
    # Routing core (instantaneous; CPU already charged by callers)
    # ------------------------------------------------------------------

    def _dispatch(self, packet: Packet) -> None:
        if packet.dst in self.local_addresses and self.udp is not None:
            self.local_delivered.increment()
            self.udp.deliver(packet)
            return
        interface = self.routing.lookup(packet.dst)
        if interface is None:
            self.no_route_drops.increment()
            packet.mark_dropped("ip.no_route")
            return
        if self.arp.resolve(packet.dst) is None:
            self.arp_failure_drops.increment()
            packet.mark_dropped("ip.arp_failure")
            return
        hook = self.outputs.get(interface)
        if hook is None:
            raise RuntimeError("no output hook registered for %r" % interface)
        self.forwarded.increment()
        hook(packet)
