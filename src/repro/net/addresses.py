"""IPv4-style addresses and prefixes (self-contained, no stdlib ipaddress
dependency — the simulator needs only parsing, formatting and prefix
matching)."""

from __future__ import annotations

from typing import Tuple


class AddressError(ValueError):
    """Raised for malformed addresses or prefixes."""


def parse_ip(text: str) -> int:
    """Parse dotted-quad IPv4 text into a 32-bit integer."""
    parts = text.split(".")
    if len(parts) != 4:
        raise AddressError("bad IPv4 address %r" % text)
    value = 0
    for part in parts:
        if not part.isdigit():
            raise AddressError("bad IPv4 address %r" % text)
        octet = int(part)
        if octet > 255:
            raise AddressError("bad IPv4 address %r" % text)
        value = (value << 8) | octet
    return value


def format_ip(value: int) -> str:
    """Format a 32-bit integer as dotted-quad text."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise AddressError("IPv4 value out of range: %r" % value)
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def parse_prefix(text: str) -> Tuple[int, int]:
    """Parse ``"10.1.0.0/16"`` into (network_int, prefix_len)."""
    if "/" not in text:
        raise AddressError("prefix must contain '/': %r" % text)
    addr_text, len_text = text.rsplit("/", 1)
    if not len_text.isdigit():
        raise AddressError("bad prefix length in %r" % text)
    prefix_len = int(len_text)
    if prefix_len > 32:
        raise AddressError("prefix length > 32 in %r" % text)
    network = parse_ip(addr_text) & prefix_mask(prefix_len)
    return network, prefix_len


def prefix_mask(prefix_len: int) -> int:
    """Netmask integer for a prefix length."""
    if not 0 <= prefix_len <= 32:
        raise AddressError("prefix length out of range: %d" % prefix_len)
    if prefix_len == 0:
        return 0
    return (0xFFFFFFFF << (32 - prefix_len)) & 0xFFFFFFFF


def prefix_contains(network: int, prefix_len: int, address: int) -> bool:
    """True if ``address`` falls inside ``network/prefix_len``."""
    return (address & prefix_mask(prefix_len)) == network
