"""Timeline: window folding, edge semantics, probe reconciliation."""

import pytest

from repro.core import variants
from repro.experiments.harness import run_trial
from repro.experiments.spec import TrialSpec
from repro.trace.buffer import (
    CPU_ACCOUNT,
    INPUT_ALLOW,
    INPUT_INHIBIT,
    PKT_DELIVER,
    PKT_INJECT,
    Q_DROP,
    RX_OVERFLOW,
    TraceBuffer,
)
from repro.trace.timeline import Timeline


class FakeSim:
    def __init__(self):
        self.now = 0


def traced_buffer(window_ns=100):
    buf = TraceBuffer(capacity=1024).bind(FakeSim())
    buf.attach_timeline(Timeline(window_ns))
    return buf, buf.timeline


def test_window_must_be_positive():
    with pytest.raises(ValueError):
        Timeline(0)


def test_records_fold_into_half_open_windows():
    buf, timeline = traced_buffer(window_ns=100)
    for t in (0, 50, 99, 100, 150):
        buf._sim.now = t
        buf.record(PKT_INJECT, "gen")
    windows = timeline.windows()
    assert [w["index"] for w in windows] == [0, 1]
    assert [w["start_ns"] for w in windows] == [0, 100]
    # t=99 belongs to [0, 100); t=100 starts [100, 200).
    assert windows[0]["inject"] == 3
    assert windows[1]["inject"] == 2
    assert timeline.totals["inject"] == 5


def test_marks_agree_with_window_edges():
    """The documented snapshot-vs-window contract (shared with
    ``ProbeRegistry.dump()``): a cumulative snapshot taken at time T
    equals the sum over all windows strictly before T when T is a
    window edge and nothing has been recorded at or past T yet."""
    buf, timeline = traced_buffer(window_ns=100)
    for t in (0, 50, 99):
        buf._sim.now = t
        buf.record(PKT_INJECT, "gen")
    timeline.mark("edge", 100)
    for t in (100, 150):
        buf._sim.now = t
        buf.record(PKT_INJECT, "gen")
    assert timeline.marks["edge"]["totals"]["inject"] == 3
    assert timeline.windows()[0]["inject"] == 3  # [0, 100) only


def test_deliveries_accumulate_latency():
    buf, timeline = traced_buffer()

    class Pkt:
        created_ns = 10

    buf._sim.now = 30
    buf.packet_deliver("out0", Pkt())
    buf._sim.now = 70
    buf.packet_deliver("out0", Pkt())
    (window,) = timeline.windows()
    assert window["deliver"] == 2
    assert window["latency_ns_sum"] == (30 - 10) + (70 - 10)


def test_drops_split_by_site():
    buf, timeline = traced_buffer()
    buf._sim.now = 5
    buf.record(Q_DROP, "ipintrq")
    buf.record(Q_DROP, "ipintrq")
    buf.record(RX_OVERFLOW, "in0")
    (window,) = timeline.windows()
    assert window["queue_drops"] == 2
    assert window["rx_overflow"] == 1
    assert window["drops"] == {"ipintrq": 2, "in0": 1}


def test_cpu_time_keyed_by_ipl():
    buf, timeline = traced_buffer()
    buf._sim.now = 50
    buf.record(CPU_ACCOUNT, "irq:in0.rx", 40, 3)
    buf.record(CPU_ACCOUNT, "screend", 10, 0)
    buf.record(CPU_ACCOUNT, "irq:in0.rx", 5, 3)
    (window,) = timeline.windows()
    assert window["cpu_ns"] == {"3": 45, "0": 10}


def test_inhibit_allow_flips_counted():
    buf, timeline = traced_buffer()
    buf._sim.now = 1
    buf.record(INPUT_INHIBIT, "feedback")
    buf.record(INPUT_ALLOW, "feedback")
    buf.record(INPUT_INHIBIT, "feedback")
    (window,) = timeline.windows()
    assert window["inhibits"] == 2
    assert window["allows"] == 1


def test_to_dict_is_plain_data():
    import json

    buf, timeline = traced_buffer()
    buf._sim.now = 7
    buf.record(PKT_INJECT, "gen")
    timeline.mark("measure_start", 7)
    data = timeline.to_dict()
    assert json.loads(json.dumps(data)) == data
    assert data["window_ns"] == 100
    assert data["marks"]["measure_start"]["t_ns"] == 7


# ----------------------------------------------------------------------
# Reconciliation against the probe counters (full trial)
# ----------------------------------------------------------------------


def test_timeline_reconciles_with_probe_counters():
    """The timeline is an independent accounting of the same trial the
    probes count; their totals must reconcile exactly."""
    buf = TraceBuffer(capacity=400_000)
    result = run_trial(TrialSpec(
        variants.unmodified(),
        12_000,
        trace=buf,
        duration_s=0.1,
        warmup_s=0.05,
        seed=0,
    ))
    totals = buf.timeline.totals
    counters = result.counters
    # Every injected packet hits the input NIC: accepted or overflowed.
    assert totals["inject"] == (
        counters["nic.in0.rx_accepted"] + counters["nic.in0.rx_overflow_drops"]
    )
    assert totals["deliver"] == counters["router.delivered"]
    assert totals["rx_overflow"] == (
        counters["nic.in0.rx_overflow_drops"]
        + counters["nic.out0.rx_overflow_drops"]
    )
    assert totals["queue_drops"] == sum(
        value
        for name, value in counters.items()
        if name.startswith("queue.") and name.endswith(".dropped")
    )
    # The measurement-window delta between the harness marks equals the
    # TrialResult scalar computed from the probe window.
    marks = buf.timeline.marks
    delta = (
        marks["measure_end"]["totals"]["deliver"]
        - marks["measure_start"]["totals"]["deliver"]
    )
    assert delta == result.delivered


def test_result_timeline_matches_attached_timeline():
    buf = TraceBuffer(capacity=400_000)
    result = run_trial(TrialSpec(
        variants.polling(quota=5),
        9_000,
        trace=buf,
        duration_s=0.06,
        warmup_s=0.03,
        seed=1,
    ))
    assert result.timeline == buf.timeline.to_dict()
