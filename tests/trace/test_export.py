"""Exporters: Perfetto trace_event JSON and CSV round-trips."""

import json

import pytest

from repro.core import variants
from repro.experiments.harness import run_trial
from repro.experiments.spec import TrialSpec
from repro.trace.buffer import (
    CPU_ACCOUNT,
    IRQ_DISPATCH,
    IRQ_RETURN,
    PKT_DELIVER,
    PKT_INJECT,
    Q_DROP,
    TraceBuffer,
)
from repro.trace.export import (
    TIMELINE_CSV_COLUMNS,
    perfetto_json,
    timeline_to_csv,
    to_perfetto,
    trace_to_csv,
    write_perfetto,
)
from repro.trace.timeline import Timeline


class FakeSim:
    def __init__(self):
        self.now = 0


def synthetic_buffer():
    buf = TraceBuffer(capacity=256).bind(FakeSim())
    buf.attach_timeline(Timeline(1_000))
    sim = buf._sim

    class Pkt:
        created_ns = 0

    sim.now = 0
    buf.record(PKT_INJECT, "gen", 0)
    sim.now = 100
    buf.record(IRQ_DISPATCH, "in0.rx", 3)
    sim.now = 600
    buf.record(CPU_ACCOUNT, "irq:in0.rx", 500, 3)
    buf.record(IRQ_RETURN, "in0.rx")
    sim.now = 700
    buf.record(Q_DROP, "ipintrq", 700, 0)
    sim.now = 900
    buf.packet_deliver("out0", Pkt())
    sim.now = 1_200
    buf.record(IRQ_DISPATCH, "in0.rx", 3)  # left dangling on purpose
    return buf


def events_by_phase(trace, phase):
    return [e for e in trace["traceEvents"] if e["ph"] == phase]


def test_perfetto_structure():
    buf = synthetic_buffer()
    trace = to_perfetto(buf)
    assert set(trace) == {"traceEvents", "displayTimeUnit", "otherData"}
    assert trace["otherData"] == {"recorded": 7, "overwritten": 0}

    meta = events_by_phase(trace, "M")
    names = {e["args"]["name"] for e in meta}
    assert "CPU (accounted chunks)" in names
    assert "packet lifecycle" in names
    assert "irq in0.rx" in names

    spans = events_by_phase(trace, "X")
    irq_spans = [e for e in spans if e["cat"] == "irq"]
    # One closed dispatch->return span plus the dangling one, closed at
    # the last record's timestamp instead of being dropped.
    assert len(irq_spans) == 2
    closed = min(irq_spans, key=lambda e: e["ts"])
    assert closed["ts"] == pytest.approx(0.1)
    assert closed["dur"] == pytest.approx(0.5)

    cpu_spans = [e for e in spans if e["cat"] == "cpu"]
    assert cpu_spans[0]["name"] == "irq:in0.rx"
    assert cpu_spans[0]["args"]["ipl"] == 3
    # The chunk is drawn backwards from its accounting instant.
    assert cpu_spans[0]["ts"] == pytest.approx(0.1)
    assert cpu_spans[0]["dur"] == pytest.approx(0.5)

    instants = events_by_phase(trace, "i")
    assert {e["name"] for e in instants} == {
        "pkt_inject",
        "q_drop",
        "pkt_deliver",
    }
    deliver = next(e for e in instants if e["name"] == "pkt_deliver")
    assert deliver["args"]["latency_us"] == pytest.approx(0.9)

    counters = events_by_phase(trace, "C")
    assert {e["name"] for e in counters} == {"pps", "drops/s"}


def test_perfetto_json_round_trips():
    buf = synthetic_buffer()
    assert json.loads(perfetto_json(buf)) == to_perfetto(buf)


def test_write_perfetto(tmp_path):
    buf = synthetic_buffer()
    path = tmp_path / "trace.json"
    write_perfetto(path, buf)
    assert json.loads(path.read_text()) == to_perfetto(buf)


def test_trace_csv_round_trips_records():
    buf = synthetic_buffer()
    lines = trace_to_csv(buf).strip().split("\n")
    assert lines[0] == "t_ns,kind,site,a,b"
    assert len(lines) == 1 + len(buf)
    t, kind, site, a, b = lines[1].split(",")
    assert (int(t), kind, site, int(a), int(b)) == (0, "pkt_inject", "gen", 0, 0)


def test_timeline_csv_shape():
    buf = synthetic_buffer()
    lines = timeline_to_csv(buf.timeline).strip().split("\n")
    assert lines[0] == ",".join(TIMELINE_CSV_COLUMNS)
    rows = [line.split(",") for line in lines[1:]]
    assert len(rows) == buf.timeline.window_count
    header = lines[0].split(",")
    first = dict(zip(header, rows[0]))
    assert first["index"] == "0"
    assert first["inject"] == "1"
    assert first["deliver"] == "1"
    # 1 delivery in a 1us window = 1e6 pps.
    assert float(first["output_pps"]) == pytest.approx(1e6)


def test_timeline_csv_requires_a_timeline():
    with pytest.raises(ValueError):
        timeline_to_csv(None)


# ----------------------------------------------------------------------
# The acceptance trace: a livelocked trial, exported, shows the onset
# ----------------------------------------------------------------------


def test_livelocked_trial_exports_onset(tmp_path):
    """Trace the unmodified kernel at 12k pps (past the cliff) and check
    the export is valid Perfetto JSON whose late windows show the
    livelock signature: input pressure with collapsed deliveries."""
    buf = TraceBuffer(capacity=400_000)
    result = run_trial(TrialSpec(
        variants.unmodified(),
        12_000,
        trace=buf,
        duration_s=0.15,
        warmup_s=0.05,
        seed=0,
    ))
    assert result.output_rate_pps < 4_000  # livelocked, per fig 6-1

    path = tmp_path / "livelock.json"
    write_perfetto(path, buf)
    trace = json.loads(path.read_text())
    events = trace["traceEvents"]
    assert events, "empty trace"
    # Packet instants include drops at the IP input queue — the paper's
    # livelock drop site: the RX interrupt always wins, ipintrq fills,
    # and ip_input never runs (§3).
    names = {e["name"] for e in events if e["ph"] == "i"}
    assert "q_drop" in names
    drop_sites = {
        e["args"]["site"]
        for e in events
        if e["ph"] == "i" and e["name"] == "q_drop"
    }
    assert "ipintrq" in drop_sites

    windows = result.timeline["windows"]
    late = windows[len(windows) // 2 :]
    inject = sum(w["inject"] for w in late)
    deliver = sum(w["deliver"] for w in late)
    assert inject > 0
    # Past the onset nearly everything is dropped, not forwarded.
    assert deliver < inject * 0.5
    # CPU time in the late windows is overwhelmingly at interrupt level.
    irq_ns = sum(
        ns
        for w in late
        for ipl, ns in w["cpu_ns"].items()
        if int(ipl) > 0
    )
    user_ns = sum(w["cpu_ns"].get("0", 0) for w in late)
    assert irq_ns > user_ns
