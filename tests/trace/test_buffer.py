"""TraceBuffer: ring mechanics, interning, bounded memory, determinism."""

import pytest

from repro.core import variants
from repro.experiments.harness import run_trial
from repro.experiments.spec import TrialSpec
from repro.trace.buffer import (
    DEFAULT_CAPACITY,
    KIND_NAMES,
    PKT_DELIVER,
    Q_DROP,
    RX_ACCEPT,
    RX_OVERFLOW,
    TraceBuffer,
)


class FakeSim:
    def __init__(self):
        self.now = 0


def make_buffer(capacity=8):
    return TraceBuffer(capacity=capacity).bind(FakeSim())


# ----------------------------------------------------------------------
# Ring mechanics
# ----------------------------------------------------------------------


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        TraceBuffer(capacity=0)
    with pytest.raises(ValueError):
        TraceBuffer(capacity=-5)


def test_default_capacity():
    assert TraceBuffer().capacity == DEFAULT_CAPACITY


def test_record_and_site_interning():
    buf = make_buffer()
    buf._sim.now = 10
    buf.record(RX_ACCEPT, "in0")
    buf._sim.now = 20
    buf.record(RX_ACCEPT, "out0", 7, 9)
    buf._sim.now = 30
    buf.record(RX_OVERFLOW, "in0")
    assert len(buf) == 3
    assert buf.records() == [
        (10, RX_ACCEPT, 0, 0, 0),
        (20, RX_ACCEPT, 1, 7, 9),
        (30, RX_OVERFLOW, 0, 0, 0),
    ]
    # "in0" interned once, to id 0; ids are first-use order.
    assert buf.site_names == ["in0", "out0"]
    assert buf.site_name(1) == "out0"


def test_ring_wraps_and_stays_chronological():
    buf = make_buffer(capacity=4)
    for i in range(10):
        buf._sim.now = i
        buf.record(RX_ACCEPT, "nic")
    assert buf.recorded == 10
    assert len(buf) == 4
    assert buf.overwritten == 6
    # Oldest-first: only the 4 most recent survive.
    assert [t for t, *_ in buf.records()] == [6, 7, 8, 9]
    assert [t for t, *_ in buf.tail(2)] == [8, 9]
    assert [t for t, *_ in buf.tail(99)] == [6, 7, 8, 9]


def test_ring_memory_is_preallocated_and_never_grows():
    buf = make_buffer(capacity=16)
    assert len(buf._ring) == 16
    for i in range(1000):
        buf._sim.now = i
        buf.record(RX_ACCEPT, "nic")
    assert len(buf._ring) == 16


def test_empty_buffer_is_falsy_but_not_none():
    # The harness must arm with an identity check, not truthiness: a
    # freshly caller-owned buffer has len() == 0.
    buf = make_buffer()
    assert not buf
    assert buf is not None


def test_bind_rejects_a_second_simulator():
    buf = make_buffer()
    with pytest.raises(RuntimeError):
        buf.bind(FakeSim())
    # Re-binding the same sim is a no-op.
    buf.bind(buf._sim)


def test_export_tail_is_json_safe():
    buf = make_buffer()
    buf._sim.now = 5
    buf.record(RX_ACCEPT, "in0", 1, 2)
    rows = buf.export_tail(10)
    assert rows == [[5, "rx_accept", "in0", 1, 2]]


def test_packet_drop_links_age_and_birth():
    class Pkt:
        created_ns = 40

    buf = make_buffer()
    buf._sim.now = 100
    buf.packet_drop(Q_DROP, "ipintrq", Pkt())
    ((t, kind, sid, age, born),) = buf.records()
    assert (t, kind, age, born) == (100, Q_DROP, 60, 40)
    # Items without lifecycle marks still record the drop itself.
    buf.packet_drop(Q_DROP, "ipintrq", object())
    assert buf.records()[-1][3:] == (0, 0)


def test_packet_deliver_records_latency():
    class Pkt:
        created_ns = 25

    buf = make_buffer()
    buf._sim.now = 75
    buf.packet_deliver("out0", Pkt())
    ((t, kind, _sid, latency, born),) = buf.records()
    assert (kind, latency, born) == (PKT_DELIVER, 50, 25)


def test_kind_names_cover_every_kind():
    import repro.trace.buffer as mod

    kinds = {
        value
        for name, value in vars(mod).items()
        if name.isupper()
        and isinstance(value, int)
        and name not in ("DEFAULT_CAPACITY",)
    }
    assert set(KIND_NAMES) == kinds


# ----------------------------------------------------------------------
# Full-trial behavior
# ----------------------------------------------------------------------

TIMING = dict(duration_s=0.1, warmup_s=0.05, seed=0)


def test_bounded_memory_at_saturation():
    """A small ring traced through a 12k-pps livelock stays bounded."""
    buf = TraceBuffer(capacity=2048)
    run_trial(TrialSpec(variants.unmodified(), 12_000, trace=buf, **TIMING))
    assert buf.recorded > 2048
    assert len(buf) == 2048
    assert buf.overwritten == buf.recorded - 2048
    assert len(buf._ring) == 2048
    times = [t for t, *_ in buf.records()]
    assert times == sorted(times)


def test_traced_trial_is_deterministic():
    """Same spec, same seed: byte-identical record streams."""
    streams = []
    for _ in range(2):
        buf = TraceBuffer(capacity=200_000)
        run_trial(TrialSpec(variants.polling(quota=5), 9_000, trace=buf,
                            **TIMING))
        streams.append((buf.records(), buf.site_names, buf.recorded))
    assert streams[0] == streams[1]


def test_tracing_does_not_perturb_the_trial():
    """The whole point: a traced trial is bit-identical to the untraced
    one in every field except ``timeline``."""
    from dataclasses import asdict

    plain = run_trial(TrialSpec(variants.unmodified(), 12_000, **TIMING))
    traced = run_trial(TrialSpec(variants.unmodified(), 12_000, trace=True,
                                 **TIMING))
    plain_d, traced_d = asdict(plain), asdict(traced)
    assert plain_d.pop("timeline") is None
    assert traced_d.pop("timeline") is not None
    assert plain_d == traced_d
