"""Unit tests for the kernel-variant factories."""

import pytest

from repro.core import variants
from repro.core.quota import PollQuota
from repro.kernel.config import IP_LAYER_SOFTIRQ
from repro.kernel.costs import CostModel


def test_unmodified_defaults():
    config = variants.unmodified()
    assert not config.use_polling
    assert not config.screend_enabled
    assert not config.feedback_enabled


def test_unmodified_with_screend():
    config = variants.unmodified(screend=True)
    assert config.screend_enabled


def test_unmodified_softirq_mode():
    config = variants.unmodified(ip_layer_mode=IP_LAYER_SOFTIRQ)
    assert config.ip_layer_mode == IP_LAYER_SOFTIRQ


def test_modified_no_polling():
    config = variants.modified_no_polling()
    assert config.use_polling and config.emulate_unmodified


def test_polling_defaults():
    config = variants.polling()
    assert config.use_polling
    assert config.poll_quota == 10
    assert not config.feedback_enabled  # no screend -> no feedback


def test_polling_feedback_follows_screend():
    assert variants.polling(screend=True).feedback_enabled
    assert not variants.polling(screend=False).feedback_enabled
    assert not variants.polling(screend=True, feedback=False).feedback_enabled


def test_polling_accepts_quota_forms():
    assert variants.polling(quota=None).poll_quota is None
    assert variants.polling(quota=PollQuota.of(7)).poll_quota == 7


def test_polling_cycle_limit():
    config = variants.polling(cycle_limit=0.5)
    assert config.cycle_limit_fraction == 0.5
    with pytest.raises(ValueError):
        variants.polling(cycle_limit=2.0)


def test_clocked_variant():
    config = variants.clocked(poll_interval_ns=500_000, quota=8)
    assert config.use_clocked_polling
    assert config.clocked_poll_interval_ns == 500_000
    assert config.poll_quota == 8


def test_custom_costs_propagate():
    costs = CostModel(ip_forward=1)
    for factory in (variants.unmodified, variants.modified_no_polling,
                    variants.polling, variants.clocked):
        assert factory(costs=costs).costs.ip_forward == 1


def test_describe_labels():
    assert variants.describe(variants.unmodified()) == "unmodified"
    assert variants.describe(variants.unmodified(screend=True)) == (
        "unmodified + screend"
    )
    assert variants.describe(variants.modified_no_polling()) == (
        "modified_no_polling"
    )
    assert "quota=5" in variants.describe(variants.polling(quota=5))
    assert "quota=inf" in variants.describe(variants.polling(quota=None))
    assert "feedback" in variants.describe(variants.polling(screend=True))
    assert "limit=50%" in variants.describe(variants.polling(cycle_limit=0.5))
    assert "clocked" in variants.describe(variants.clocked())
