"""Property-based tests for the feedback and cycle-limit state machines."""

from hypothesis import given, settings, strategies as st

from repro.core import CycleLimiter, PollingSystem, QueueStateFeedback
from repro.kernel import Kernel, KernelConfig, PacketQueue

LIMIT, HIGH, LOW = 16, 12, 4


def make_feedback():
    kernel = Kernel(config=KernelConfig(use_polling=True))
    polling = PollingSystem(kernel, quota=10)
    queue = PacketQueue(
        "q", LIMIT, kernel.probes, high_watermark=HIGH, low_watermark=LOW
    )
    feedback = QueueStateFeedback(kernel, polling, queue, timeout_ticks=None)
    return kernel, polling, queue, feedback


@given(st.lists(st.booleans(), max_size=400))
@settings(max_examples=80)
def test_feedback_state_machine_invariants(ops):
    """Under arbitrary enqueue/dequeue interleavings (no timeout):

    * occupancy >= high  =>  input inhibited;
    * occupancy <= low   =>  input allowed;
    * in between, the state is hysteretic (whatever the last crossing set).
    """
    kernel, polling, queue, feedback = make_feedback()
    for enqueue in ops:
        if enqueue:
            queue.enqueue("p")
        else:
            queue.dequeue()
        if len(queue) >= HIGH:
            assert feedback.inhibited
        elif len(queue) <= LOW:
            assert not feedback.inhibited


@given(st.lists(st.booleans(), max_size=400))
@settings(max_examples=40)
def test_feedback_never_wedges_input_permanently(ops):
    """After fully draining the queue, input is always allowed again."""
    kernel, polling, queue, feedback = make_feedback()
    for enqueue in ops:
        if enqueue:
            queue.enqueue("p")
        else:
            queue.dequeue()
    while not queue.empty:
        queue.dequeue()
    assert not feedback.inhibited
    assert polling.input_allowed


@given(st.lists(st.integers(min_value=0, max_value=400_000), max_size=50))
@settings(max_examples=80)
def test_cycle_limiter_inhibits_exactly_when_over_threshold(charges):
    kernel = Kernel(config=KernelConfig(use_polling=True))
    limiter = CycleLimiter(kernel, 0.5)
    polling = PollingSystem(kernel, quota=10, cycle_limiter=limiter)
    total = 0
    for cycles in charges:
        limiter.charge(cycles)
        total += cycles
        assert limiter.inhibited == (total > limiter.threshold_cycles)
    # A reset always restores input, whatever came before.
    limiter._reset()
    assert not limiter.inhibited
    assert limiter.used_cycles == 0


@given(
    st.integers(min_value=1, max_value=64),
    st.floats(min_value=0.05, max_value=0.95),
    st.floats(min_value=0.05, max_value=0.95),
)
@settings(max_examples=60)
def test_config_watermarks_always_ordered(limit, high_fraction, low_fraction):
    """Any screen-queue config that validates yields usable watermarks."""
    config = KernelConfig(
        screen_queue_limit=limit,
        screen_queue_high_fraction=max(high_fraction, low_fraction + 0.01),
        screen_queue_low_fraction=min(low_fraction, high_fraction - 0.01),
    )
    try:
        config.validate()
    except ValueError:
        return  # rejected configs are out of scope
    assert 0 <= config.screen_queue_low < config.screen_queue_high <= limit
